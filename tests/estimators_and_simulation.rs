//! Cross-crate integration tests: simulation-based estimators vs. exact analysis.
//!
//! The exact machinery (transition matrices, spectra, mixing times) only scales
//! to a few thousand profiles; everything beyond that relies on the simulators
//! and coupling estimators. These tests pin the estimators against the exact
//! answers on games where both are available, so their use at larger scale is
//! justified.

use logit_dynamics::core::coupling::coupling_time_estimate;
use logit_dynamics::core::gibbs::expected_potential;
use logit_dynamics::core::{
    exact_mixing_time, gibbs_distribution, CouplingKind, LogitDynamics, Simulator,
};
use logit_dynamics::games::analysis::best_response_dynamics;
use logit_dynamics::markov::{distance_to_stationarity, expected_hitting_times};
use logit_dynamics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The ensemble simulator's empirical law at t = t_mix is within sampling noise
/// of the Gibbs measure, and far from it at t = 1 — i.e. the exact mixing time
/// really is the time scale at which the simulated system equilibrates.
#[test]
fn ensemble_law_matches_exact_mixing_time_scale() {
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::ring(4),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let beta = 1.0;
    let exact = exact_mixing_time(&game, beta, 0.25, 1 << 30)
        .mixing_time
        .expect("small game mixes");
    let dynamics = LogitDynamics::new(game.clone(), beta);
    let pi = gibbs_distribution(&game, beta);
    let space = game.profile_space();
    let worst_start = space.index_of(&[1, 1, 1, 1]); // the shallower equilibrium

    let sim = Simulator::new(2024, 20_000);
    let tv_early = sim.tv_distance_after(&dynamics, worst_start, 1, &pi);
    let tv_at_mix = sim.tv_distance_after(&dynamics, worst_start, 4 * exact, &pi);
    assert!(
        tv_early > 0.4,
        "one step should be far from stationarity, tv = {tv_early}"
    );
    assert!(
        tv_at_mix < 0.1,
        "a few mixing times should be near stationarity, tv = {tv_at_mix}"
    );
}

/// The empirical TV curve of the simulator tracks the exact worst-case distance
/// d(t) computed from matrix powers.
#[test]
fn empirical_tv_tracks_exact_distance_curve() {
    let game = WellGame::plateau(4, 1.5);
    let beta = 1.0;
    let dynamics = LogitDynamics::new(game.clone(), beta);
    let chain = dynamics.transition_chain();
    let pi = gibbs_distribution(&game, beta);
    let space = game.profile_space();
    let start = space.index_of(&[0, 0, 0, 0]);
    let sim = Simulator::new(5, 30_000);

    for t in [2u64, 8, 32, 128] {
        let exact_d = distance_to_stationarity(&chain, &pi, t); // worst-case over starts
        let empirical = sim.tv_distance_after(&dynamics, start, t, &pi); // one start
                                                                         // The empirical distance from one start can be at most the worst case
                                                                         // plus sampling noise.
        assert!(
            empirical <= exact_d + 0.05,
            "t={t}: empirical {empirical} should not exceed worst-case {exact_d} + noise"
        );
    }
}

/// Coupling estimates upper-bound the exact mixing time (Theorem 2.1) on both
/// couplings, for several games and βs (up to sampling slack on the low side).
#[test]
fn coupling_estimates_upper_bound_exact_mixing() {
    let mut rng = StdRng::seed_from_u64(77);
    let game =
        GraphicalCoordinationGame::new(GraphBuilder::ring(5), CoordinationGame::symmetric(1.0));
    for beta in [0.3, 0.8] {
        let exact = exact_mixing_time(&game, beta, 0.25, 1 << 30)
            .mixing_time
            .unwrap();
        let dynamics = LogitDynamics::new(game.clone(), beta);
        let space = dynamics.space();
        let a = space.index_of(&[0usize; 5]);
        let b = space.index_of(&[1usize; 5]);
        for kind in [CouplingKind::Maximal, CouplingKind::SharedUniform] {
            let est = coupling_time_estimate(&dynamics, &mut rng, a, b, kind, 300, 500_000, 0.25);
            assert_eq!(est.censored, 0, "coupling should succeed at beta {beta}");
            assert!(
                (est.quantile_time as f64) >= 0.3 * exact as f64,
                "{kind:?} at beta {beta}: estimate {} implausibly below exact {exact}",
                est.quantile_time
            );
        }
    }
}

/// Expected hitting time of the risk-dominant consensus: starting from the
/// *competing* (shallower) equilibrium, raising β traps the chain there and the
/// hitting time grows — the metastability effect behind the Section 3 lower
/// bounds; starting from a mixed profile the pull towards the risk-dominant
/// consensus makes hitting much faster than from the trap.
#[test]
fn hitting_time_of_risk_dominant_consensus() {
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::ring(4),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let space = game.profile_space();
    let target = space.index_of(&[0, 0, 0, 0]);
    let trap = space.index_of(&[1, 1, 1, 1]);
    let mixed = space.index_of(&[0, 1, 0, 1]);

    let hits_at = |beta: f64| {
        let chain = LogitDynamics::new(game.clone(), beta).transition_chain();
        expected_hitting_times(&chain, &[target])
    };
    let h_noisy = hits_at(0.1);
    let h_rational = hits_at(2.0);
    assert!(h_noisy[trap].is_finite() && h_rational[trap].is_finite());
    assert!(
        h_rational[trap] > h_noisy[trap],
        "higher beta should trap the chain in the competing equilibrium: {} vs {}",
        h_rational[trap],
        h_noisy[trap]
    );
    assert!(
        h_rational[mixed] < h_rational[trap],
        "from a mixed profile the risk-dominant consensus is reached faster than from the trap"
    );
}

/// The Gibbs expected potential interpolates between the uniform average (β = 0)
/// and the minimum (β → ∞), and the simulator's long-run observable agrees with it.
#[test]
fn expected_potential_interpolates_and_matches_simulation() {
    let game = WellGame::new(5, 3.0, 1.5);
    let space = game.profile_space();
    let uniform_avg: f64 = space
        .indices()
        .map(|i| game.potential(&space.profile_of(i)))
        .sum::<f64>()
        / space.size() as f64;
    let min_phi = game.min_potential();

    let e0 = expected_potential(&game, 0.0);
    let e_mid = expected_potential(&game, 1.0);
    let e_high = expected_potential(&game, 6.0);
    assert!((e0 - uniform_avg).abs() < 1e-9);
    assert!(e_mid < e0 && e_high < e_mid);
    assert!(e_high >= min_phi - 1e-9);
    assert!(
        (e_high - min_phi).abs() < 0.2,
        "high beta should be near the minimum"
    );

    // Simulation agreement at beta = 1.
    let beta = 1.0;
    let dynamics = LogitDynamics::new(game.clone(), beta);
    let sim = Simulator::new(31, 20_000);
    let space2 = dynamics.space().clone();
    let game2 = game.clone();
    let result = sim.run(&dynamics, 0, 600, move |idx| {
        game2.potential(&space2.profile_of(idx))
    });
    assert!(
        (result.observable_stats.mean() - e_mid).abs() < 0.1,
        "simulated mean potential {} should match E_pi[Phi] = {e_mid}",
        result.observable_stats.mean()
    );
}

/// Best-response dynamics (β = ∞ baseline) reaches a pure Nash equilibrium of
/// every game the logit experiments use, and the logit dynamics' Gibbs measure
/// at large β concentrates on profiles that are Nash equilibria.
#[test]
fn best_response_baseline_and_high_beta_consistency() {
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::clique(4),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let (profile, converged) = best_response_dynamics(&game, &[0, 1, 0, 1], 100);
    assert!(converged);
    assert!(logit_dynamics::games::is_pure_nash(&game, &profile));

    // High-β Gibbs mass concentrates on the two consensus equilibria.
    let pi = gibbs_distribution(&game, 8.0);
    let space = game.profile_space();
    let mass_on_nash: f64 = logit_dynamics::games::find_pure_nash_equilibria(&game)
        .iter()
        .map(|eq| pi[space.index_of(eq)])
        .sum();
    assert!(mass_on_nash > 0.99);
}
