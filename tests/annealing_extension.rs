//! Cross-crate integration tests for the annealing / welfare extension
//! (the "β as a learning process" variant suggested in the paper's conclusions).

use logit_dynamics::anneal::welfare::{
    expected_social_welfare, limit_welfare_at_infinite_beta, optimal_social_welfare,
};
use logit_dynamics::core::zeta;
use logit_dynamics::prelude::*;

/// A quench (fixed large β) starting in the non-risk-dominant consensus of a
/// clique coordination game stays trapped, while a ramped schedule escapes and
/// finds the potential minimiser — the barrier picture of Theorem 5.5 seen
/// through the annealing lens.
#[test]
fn ramp_escapes_the_clique_trap_quench_does_not() {
    let n = 5;
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::clique(n),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let space = game.profile_space();
    let start = space.index_of(&vec![1usize; n]);
    let steps = 2_000u64;
    let replicas = 100;

    let quench = anneal_minimize(
        &game,
        ConstantSchedule::new(3.0),
        start,
        steps,
        replicas,
        11,
    );
    let ramp = anneal_minimize(
        &game,
        LinearRamp::new(0.1, 3.0, steps / 2),
        start,
        steps,
        replicas,
        12,
    );

    assert!(
        quench.success_rate < 0.2,
        "a quench should rarely cross the Theta(n^2 delta) barrier, got {}",
        quench.success_rate
    );
    assert!(
        ramp.success_rate > 0.8,
        "a slow ramp should almost always reach the risk-dominant consensus, got {}",
        ramp.success_rate
    );
    assert!(ramp.found_global_minimum(1e-9));
    assert_eq!(ramp.best_profile, vec![0usize; n]);
}

/// The Hajek logarithmic schedule tuned to the game's own barrier ζ also
/// succeeds, tying the extension back to the Section 3.4 quantity.
#[test]
fn logarithmic_schedule_tuned_to_zeta_succeeds() {
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::clique(4),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let barrier = zeta(&game).zeta;
    assert!(barrier > 0.0);
    let space = game.profile_space();
    let start = space.index_of(&[1usize; 4]);
    let outcome = anneal_minimize(
        &game,
        LogarithmicSchedule::new(barrier),
        start,
        3_000,
        80,
        21,
    );
    assert!(outcome.success_rate > 0.8);
}

/// Stationary expected social welfare is monotone in β for a risk-dominant
/// coordination game (higher rationality concentrates mass on the welfare
/// optimum) and converges to the optimal welfare.
#[test]
fn stationary_welfare_increases_to_the_optimum() {
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::ring(5),
        CoordinationGame::new(2.0, 1.0, 0.0, 0.0),
    );
    let (opt, profile) = optimal_social_welfare(&game);
    assert_eq!(profile, vec![0usize; 5]);
    let mut previous = f64::NEG_INFINITY;
    for beta in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let w = expected_social_welfare(&game, beta);
        assert!(
            w >= previous - 1e-9,
            "welfare should not decrease with beta"
        );
        assert!(w <= opt + 1e-9);
        previous = w;
    }
    assert!((limit_welfare_at_infinite_beta(&game) - opt).abs() < 1e-9);
    assert!(
        opt - previous < 0.05 * opt,
        "at beta = 4 the welfare is essentially optimal"
    );
}

/// The annealed dynamics with a constant schedule is statistically
/// indistinguishable from the fixed-β dynamics: long-run fraction of time in the
/// risk-dominant consensus matches the Gibbs mass.
#[test]
fn constant_annealed_dynamics_matches_gibbs_occupancy() {
    use logit_dynamics::core::gibbs_distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let game = GraphicalCoordinationGame::new(
        GraphBuilder::ring(4),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let beta = 1.0;
    let space = game.profile_space();
    let consensus = space.index_of(&[0, 0, 0, 0]);
    let pi = gibbs_distribution(&game, beta);

    let dynamics = AnnealedLogitDynamics::new(game.clone(), ConstantSchedule::new(beta));
    let mut rng = StdRng::seed_from_u64(5);
    // Long single trajectory; compare occupancy of the consensus state with its
    // Gibbs mass (ergodic theorem).
    let burn_in = 2_000u64;
    let horizon = 120_000u64;
    let trajectory = dynamics.simulate(0, horizon, &mut rng);
    let occupancy = trajectory[burn_in as usize..]
        .iter()
        .filter(|&&s| s == consensus)
        .count() as f64
        / (horizon - burn_in + 1) as f64;
    assert!(
        (occupancy - pi[consensus]).abs() < 0.05,
        "occupancy {occupancy} should match the Gibbs mass {}",
        pi[consensus]
    );
}
