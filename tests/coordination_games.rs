//! Cross-crate integration tests: Section 5 (graphical coordination games).

use logit_dynamics::core::bounds;
use logit_dynamics::core::coupling::coupling_time_estimate;
use logit_dynamics::core::{exact_mixing_time, CouplingKind, LogitDynamics};
use logit_dynamics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 0.25;
const BUDGET: u64 = 1 << 34;

/// Theorem 5.1: the cutwidth bound holds on every topology we can compute
/// exactly (path, ring, star, small clique, small grid).
#[test]
fn theorem_5_1_cutwidth_bound_holds() {
    let base = CoordinationGame::from_deltas(1.5, 1.0);
    let graphs = vec![
        ("path", GraphBuilder::path(4)),
        ("ring", GraphBuilder::ring(4)),
        ("star", GraphBuilder::star(4)),
        ("clique", GraphBuilder::clique(4)),
    ];
    for (name, graph) in graphs {
        let n = graph.num_vertices();
        let chi = cutwidth_exact(&graph).cutwidth;
        let game = GraphicalCoordinationGame::new(graph, base);
        for beta in [0.25, 0.5, 1.0] {
            let t = exact_mixing_time(&game, beta, EPS, BUDGET)
                .mixing_time
                .expect("small games mix") as f64;
            let bound = bounds::theorem_5_1_mixing_upper(n, chi, 1.5, 1.0, beta);
            assert!(
                t <= bound,
                "{name}: measured {t} exceeds the Theorem 5.1 bound {bound} at beta {beta}"
            );
        }
    }
}

/// Theorem 5.5: on the clique the growth exponent of log t_mix in β matches the
/// barrier Φ_max − Φ(1) (within a modest tolerance), and the clique is
/// dramatically slower than the ring at the same β.
#[test]
fn theorem_5_5_clique_exponent_and_ring_contrast() {
    let n = 5;
    let (d0, d1) = (1.0, 1.0); // worst case: no risk dominance
    let clique = GraphicalCoordinationGame::new(
        GraphBuilder::clique(n),
        CoordinationGame::from_deltas(d0, d1),
    );
    let ring = GraphicalCoordinationGame::new(
        GraphBuilder::ring(n),
        CoordinationGame::from_deltas(d0, d1),
    );
    let exponent = bounds::theorem_5_5_exponent(n, d0, d1);
    assert!(exponent > 0.0);

    let betas = [1.0, 1.25, 1.5, 1.75];
    let mut clique_logs = Vec::new();
    let mut ring_times = Vec::new();
    let mut clique_times = Vec::new();
    for &beta in &betas {
        let tc = exact_mixing_time(&clique, beta, EPS, BUDGET)
            .mixing_time
            .expect("within budget") as f64;
        let tr = exact_mixing_time(&ring, beta, EPS, BUDGET)
            .mixing_time
            .expect("within budget") as f64;
        clique_logs.push(tc.ln());
        clique_times.push(tc);
        ring_times.push(tr);
    }
    // Same β, same δ: the clique is slower than the ring, and the gap widens.
    for i in 0..betas.len() {
        assert!(
            clique_times[i] >= ring_times[i],
            "clique should be no faster than the ring at beta {}",
            betas[i]
        );
    }
    assert!(
        clique_times[3] / ring_times[3] > clique_times[0] / ring_times[0],
        "the clique/ring gap should widen with beta"
    );
    // Clique growth exponent tracks the Theorem 5.5 barrier.
    let fit = logit_dynamics::linalg::stats::linear_fit(&betas, &clique_logs);
    assert!(
        fit.slope > 0.5 * exponent && fit.slope < 1.5 * exponent,
        "clique growth exponent {} should track the barrier {exponent}",
        fit.slope
    );
}

/// Theorems 5.6 and 5.7: on the ring with no risk dominance the mixing time is
/// sandwiched between Ω(1 + e^{2δβ}) and O(e^{2δβ} n log n).
#[test]
fn theorems_5_6_and_5_7_ring_sandwich() {
    let delta = 1.0;
    for n in [4usize, 5, 6] {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(n),
            CoordinationGame::symmetric(delta),
        );
        for beta in [0.5, 1.0, 1.5] {
            let t = exact_mixing_time(&game, beta, EPS, BUDGET)
                .mixing_time
                .expect("ring mixes fast") as f64;
            let upper = bounds::theorem_5_6_mixing_upper(n, delta, beta, EPS);
            let lower = bounds::theorem_5_7_mixing_lower(delta, beta, EPS);
            assert!(
                t <= upper,
                "n={n}, beta={beta}: measured {t} above the Theorem 5.6 bound {upper}"
            );
            assert!(
                t >= lower,
                "n={n}, beta={beta}: measured {t} below the Theorem 5.7 bound {lower}"
            );
        }
    }
}

/// The Theorem 5.6 proof's coupling, run as a simulation, produces an upper
/// estimate that is consistent with the exact mixing time on the ring.
#[test]
fn ring_coupling_estimate_upper_bounds_exact_mixing() {
    let n = 5;
    let delta = 1.0;
    let beta = 1.0;
    let game =
        GraphicalCoordinationGame::new(GraphBuilder::ring(n), CoordinationGame::symmetric(delta));
    let exact = exact_mixing_time(&game, beta, EPS, BUDGET)
        .mixing_time
        .expect("within budget");

    let dynamics = LogitDynamics::new(game.clone(), beta);
    let space = dynamics.space();
    let all0 = space.index_of(&vec![0usize; n]);
    let all1 = space.index_of(&vec![1usize; n]);
    let mut rng = StdRng::seed_from_u64(2024);
    let est = coupling_time_estimate(
        &dynamics,
        &mut rng,
        all0,
        all1,
        CouplingKind::SharedUniform,
        400,
        1_000_000,
        EPS,
    );
    assert_eq!(est.censored, 0);
    // Coupling gives an upper bound on mixing; allow statistical slack downward.
    assert!(
        (est.quantile_time as f64) >= 0.5 * exact as f64,
        "coupling estimate {} suspiciously below the exact mixing time {exact}",
        est.quantile_time
    );
    assert!(
        (est.quantile_time as f64) <= 200.0 * exact as f64,
        "coupling estimate {} is absurdly loose vs exact {exact}",
        est.quantile_time
    );
}

/// Stationary behaviour: for β large the Gibbs measure of a risk-dominant
/// coordination game on any graph concentrates on the risk-dominant consensus.
#[test]
fn gibbs_concentrates_on_risk_dominant_consensus() {
    let base = CoordinationGame::from_deltas(2.0, 1.0);
    for graph in [
        GraphBuilder::ring(5),
        GraphBuilder::clique(5),
        GraphBuilder::star(5),
    ] {
        let game = GraphicalCoordinationGame::new(graph, base);
        let space = game.profile_space();
        let pi = logit_dynamics::core::gibbs_distribution(&game, 10.0);
        let zero = space.index_of(&[0usize; 5]);
        assert!(
            pi[zero] > 0.99,
            "risk-dominant consensus should dominate the Gibbs measure"
        );
    }
}
