//! Cross-crate integration tests: Section 4 (games with dominant strategies).

use logit_dynamics::core::bounds;
use logit_dynamics::core::exact_mixing_time;
use logit_dynamics::games::dominant::BonusDominantGame;
use logit_dynamics::games::find_dominant_profile;
use logit_dynamics::prelude::*;

const EPS: f64 = 0.25;
const BUDGET: u64 = 1 << 34;

/// Theorem 4.2: the mixing time of a game with a dominant profile stays below
/// the β-independent bound O(mⁿ n log n) for every β, including very large ones.
#[test]
fn theorem_4_2_upper_bound_independent_of_beta() {
    for (n, m) in [(2usize, 2usize), (3, 2), (2, 3)] {
        let game = AllZeroDominantGame::new(n, m);
        assert!(find_dominant_profile(&game).is_some());
        let bound = bounds::theorem_4_2_mixing_upper(n, m);
        for beta in [0.0, 1.0, 5.0, 20.0, 100.0] {
            let t = exact_mixing_time(&game, beta, EPS, BUDGET)
                .mixing_time
                .expect("dominant games mix within the budget") as f64;
            assert!(
                t <= bound,
                "(n={n}, m={m}) measured {t} exceeds the Theorem 4.2 bound {bound} at beta {beta}"
            );
        }
    }
}

/// The contrast the paper draws: a potential game *without* dominant strategies
/// keeps slowing down as β grows, while the dominant-strategy game's mixing
/// time saturates.
#[test]
fn dominant_vs_non_dominant_beta_dependence() {
    let dominant = AllZeroDominantGame::new(3, 2);
    let well = WellGame::plateau(3, 1.0);

    let t_dom_small = exact_mixing_time(&dominant, 1.0, EPS, BUDGET)
        .mixing_time
        .unwrap() as f64;
    let t_dom_large = exact_mixing_time(&dominant, 50.0, EPS, BUDGET)
        .mixing_time
        .unwrap() as f64;
    let t_well_small = exact_mixing_time(&well, 1.0, EPS, BUDGET)
        .mixing_time
        .unwrap() as f64;
    let t_well_large = exact_mixing_time(&well, 8.0, EPS, BUDGET)
        .mixing_time
        .unwrap() as f64;

    // Dominant game: bounded growth (saturation).
    assert!(
        t_dom_large <= 3.0 * t_dom_small + 20.0,
        "dominant-strategy game should saturate: {t_dom_small} -> {t_dom_large}"
    );
    // Well game: strong growth.
    assert!(
        t_well_large >= 5.0 * t_well_small,
        "the well game should slow down dramatically: {t_well_small} -> {t_well_large}"
    );
}

/// Theorem 4.3: for large β the all-zero game's mixing time is at least
/// (mⁿ − 1)/(4(m − 1)); and the stationary distribution still gives the
/// dominant profile non-vanishing mass.
#[test]
fn theorem_4_3_lower_bound_at_large_beta() {
    for (n, m) in [(2usize, 2usize), (3, 2), (2, 3)] {
        let game = AllZeroDominantGame::new(n, m);
        let lower = bounds::theorem_4_3_mixing_lower(n, m);
        let beta = 30.0;
        let t = exact_mixing_time(&game, beta, EPS, BUDGET)
            .mixing_time
            .expect("within budget") as f64;
        assert!(
            t >= lower,
            "(n={n}, m={m}) measured {t} below the Theorem 4.3 lower bound {lower}"
        );

        // Section 4's structural remark: the dominant profile keeps
        // non-vanishing stationary mass as β → ∞.
        let pi = logit_dynamics::core::gibbs_distribution(&game, beta);
        let space = game.profile_space();
        let zero = space.index_of(&vec![0usize; n]);
        assert!(
            pi[zero] > 0.4,
            "dominant profile should carry large stationary mass"
        );
    }
}

/// The benign dominant-strategy game (independent pull towards 0) mixes in
/// O(n log n) regardless of β — much faster than the Theorem 4.2 worst case.
#[test]
fn bonus_dominant_game_mixes_fast_for_all_beta() {
    let n = 4;
    let game = BonusDominantGame::new(n, 2, 1.0);
    let mut previous = None;
    for beta in [0.0, 2.0, 10.0, 50.0] {
        let t = exact_mixing_time(&game, beta, EPS, BUDGET)
            .mixing_time
            .expect("within budget");
        // The chain is a product of independent two-state chains; its mixing time
        // stays within a small constant multiple of n log n.
        assert!(
            (t as f64) <= 10.0 * (n as f64) * (n as f64).ln() + 20.0,
            "bonus game should mix in O(n log n), got {t} at beta {beta}"
        );
        if let Some(prev) = previous {
            // And it never grows much beyond its beta = 0 value.
            assert!((t as f64) <= 4.0 * (prev as f64) + 10.0);
        }
        previous = Some(t);
    }
}
