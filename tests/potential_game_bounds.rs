//! Cross-crate integration tests: Section 3 (potential games).
//!
//! Each test exercises the whole stack — game construction, chain construction,
//! exact mixing time, spectral analysis, barrier computation — and checks the
//! measured quantities against the paper's bounds.

use logit_dynamics::core::bounds;
use logit_dynamics::core::{exact_mixing_time, zeta};
use logit_dynamics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 0.25;
const BUDGET: u64 = 1 << 34;

/// Lemma 3.2: at β = 0 the relaxation time is at most n.
#[test]
fn lemma_3_2_relaxation_time_at_beta_zero() {
    let mut rng = StdRng::seed_from_u64(1);
    for n in 2..=4 {
        for m in 2..=3 {
            let game = TablePotentialGame::random(vec![m; n], 3.0, &mut rng);
            let meas = exact_mixing_time(&game, 0.0, EPS, BUDGET);
            assert!(
                meas.relaxation_time <= bounds::lemma_3_2_relaxation_beta0(n) + 1e-6,
                "t_rel = {} exceeds n = {n}",
                meas.relaxation_time
            );
        }
    }
}

/// Theorem 3.1 + Lemma 3.3: eigenvalues are non-negative and the relaxation
/// time respects 2·m·n·e^{βΔΦ}.
#[test]
fn lemma_3_3_relaxation_upper_bound_holds() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..5 {
        let game = TablePotentialGame::random(vec![2, 2, 2], 2.0, &mut rng);
        let dphi = game.max_global_variation();
        for beta in [0.0, 0.5, 1.0, 2.0] {
            let meas = exact_mixing_time(&game, beta, EPS, BUDGET);
            assert!(meas.lambda_min >= -1e-8, "Theorem 3.1 violated");
            let bound = bounds::lemma_3_3_relaxation_upper(3, 2, beta, dphi);
            assert!(
                meas.relaxation_time <= bound,
                "t_rel {} exceeds Lemma 3.3 bound {bound} at beta {beta}",
                meas.relaxation_time
            );
        }
    }
}

/// Theorem 3.4: the mixing time never exceeds 2mn·e^{βΔΦ}(log 4 + βΔΦ + n log m).
#[test]
fn theorem_3_4_mixing_upper_bound_holds() {
    fn check<G: PotentialGame>(name: &str, game: &G) {
        let n = game.num_players();
        let m = game.max_strategies();
        let dphi = game.max_global_variation();
        for beta in [0.0, 0.5, 1.0, 2.0] {
            let meas = exact_mixing_time(game, beta, EPS, BUDGET);
            let t = meas.mixing_time.expect("these games mix within budget") as f64;
            let bound = bounds::theorem_3_4_mixing_upper(n, m, beta, dphi, EPS);
            assert!(
                t <= bound,
                "{name}: measured {t} exceeds Theorem 3.4 bound {bound} at beta {beta}"
            );
        }
    }
    check("well(4, 2, 2)", &WellGame::plateau(4, 2.0));
    check(
        "coordination ring n=4",
        &GraphicalCoordinationGame::new(
            GraphBuilder::ring(4),
            CoordinationGame::from_deltas(2.0, 1.0),
        ),
    );
    check("congestion 3x2", &CongestionGame::load_balancing(3, 2, 1.0));
}

/// Theorem 3.5: on the well potential the mixing time really does grow
/// exponentially with βΔΦ — the measured growth rate of log t_mix in β is close
/// to ΔΦ, and the explicit lower bound is respected.
#[test]
fn theorem_3_5_lower_bound_and_growth_rate() {
    let n = 4;
    let game = WellGame::plateau(n, 2.0);
    let dphi = game.max_global_variation();
    let dloc = game.max_local_variation();

    let betas = [2.0, 2.5, 3.0, 3.5];
    let mut logs = Vec::new();
    for &beta in &betas {
        let t = exact_mixing_time(&game, beta, EPS, BUDGET)
            .mixing_time
            .expect("within budget") as f64;
        let lower = bounds::theorem_3_5_mixing_lower(n, 2, beta, dphi, dloc, EPS);
        assert!(
            t >= lower,
            "measured {t} below the Theorem 3.5 lower bound {lower} at beta {beta}"
        );
        logs.push(t.ln());
    }
    // Exponential growth rate ≈ ΔΦ (Theorems 3.4 + 3.5 pin it between (1-o(1))ΔΦ and (1+o(1))ΔΦ).
    let fit = logit_dynamics::linalg::stats::linear_fit(&betas, &logs);
    assert!(
        (fit.slope - dphi).abs() < 0.35 * dphi,
        "growth exponent {} should be close to delta_phi {dphi}",
        fit.slope
    );
}

/// Theorem 3.6: for β ≤ c/(nδΦ) the mixing time is O(n log n) — check against
/// the explicit path-coupling constant.
#[test]
fn theorem_3_6_small_beta_fast_mixing() {
    for n in 3..=5 {
        let game =
            GraphicalCoordinationGame::new(GraphBuilder::ring(n), CoordinationGame::symmetric(1.0));
        let dloc = game.max_local_variation();
        let c = 0.5;
        let beta = c / (n as f64 * dloc);
        let t = exact_mixing_time(&game, beta, EPS, BUDGET)
            .mixing_time
            .expect("fast regime") as f64;
        let bound = bounds::theorem_3_6_mixing_upper(n, beta, dloc, EPS);
        assert!(
            t <= bound,
            "n={n}: measured {t} exceeds the Theorem 3.6 bound {bound}"
        );
    }
}

/// Theorems 3.8/3.9: for large β the mixing time is e^{βζ(1±o(1))}; the measured
/// growth rate of log t_mix in β approaches ζ, and the explicit upper bound holds.
#[test]
fn theorems_3_8_and_3_9_zeta_growth() {
    // A game where ζ < ΔΦ, so the refined bound is genuinely sharper: a clique
    // coordination game with risk dominance.
    let n = 4;
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::clique(n),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let barrier = zeta(&game);
    let dphi = game.max_global_variation();
    assert!(barrier.zeta > 0.0);
    assert!(
        barrier.zeta < dphi,
        "zeta should be strictly below delta_phi here"
    );

    let betas = [2.0, 2.5, 3.0, 3.5];
    let mut logs = Vec::new();
    for &beta in &betas {
        let t = exact_mixing_time(&game, beta, EPS, BUDGET)
            .mixing_time
            .expect("within budget") as f64;
        let upper = bounds::theorem_3_8_mixing_upper(n, 2, beta, barrier.zeta, dphi, EPS);
        assert!(
            t <= upper,
            "measured {t} exceeds the Theorem 3.8 bound {upper}"
        );
        logs.push(t.ln());
    }
    let fit = logit_dynamics::linalg::stats::linear_fit(&betas, &logs);
    assert!(
        (fit.slope - barrier.zeta).abs() < 0.4 * barrier.zeta.max(1.0),
        "growth exponent {} should approach zeta {}",
        fit.slope,
        barrier.zeta
    );
}

/// The relaxation time equals 1/(1-λ₂) for potential games (Theorem 3.1's
/// consequence): λ* is always attained by λ₂, never by |λ_min|.
#[test]
fn relaxation_time_driven_by_lambda_2() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..5 {
        let game = TablePotentialGame::random(vec![2, 3], 2.0, &mut rng);
        for beta in [0.3, 1.0, 3.0] {
            let meas = exact_mixing_time(&game, beta, EPS, BUDGET);
            assert!(meas.lambda_min >= -1e-8);
            // spectral gap = 1 - λ₂ and relaxation = 1/(1-λ*) must coincide.
            assert!(
                (meas.relaxation_time - 1.0 / meas.spectral_gap).abs() / meas.relaxation_time
                    < 1e-6,
                "relaxation time should be 1/(1-lambda_2)"
            );
        }
    }
}
