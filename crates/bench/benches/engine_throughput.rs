//! Criterion benches: single-step cost of the flat-index engine vs the
//! in-place profile engine on ring coordination games.
//!
//! The flat engine stops existing at n = 64 (the state index overflows
//! `usize`), so the comparison runs where both engines live and the profile
//! engine continues alone up to n = 100000 — the point of the in-place
//! refactor is that its per-step cost stays flat while n grows by four
//! orders of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logit_core::rules::{Logit, MetropolisLogit, NoisyBestResponse, UpdateRule};
use logit_core::schedules::AllLogit;
use logit_core::{DynamicsEngine, LogitDynamics, Scratch};
use logit_games::{CoordinationGame, Game, GraphicalCoordinationGame};
use logit_graphs::GraphBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ring_dynamics(n: usize) -> LogitDynamics<GraphicalCoordinationGame> {
    LogitDynamics::new(
        GraphicalCoordinationGame::new(
            GraphBuilder::ring(n),
            CoordinationGame::from_deltas(1.0, 2.0),
        ),
        1.5,
    )
}

fn bench_flat_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_engine_step");
    for n in [16usize, 48] {
        let dynamics = ring_dynamics(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &dynamics,
            |b, d| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut scratch = Scratch::for_game(d.game());
                let mut state = 0usize;
                b.iter(|| {
                    state = d.step_indexed(state, &mut scratch, &mut rng);
                    state
                })
            },
        );
    }
    group.finish();
}

fn bench_profile_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_engine_step");
    group.sample_size(10);
    for n in [16usize, 48, 1_000, 10_000, 100_000] {
        let dynamics = ring_dynamics(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &dynamics,
            |b, d| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut scratch = Scratch::for_game(d.game());
                let mut profile = vec![0usize; d.game().num_players()];
                b.iter(|| d.step_profile(&mut profile, &mut scratch, &mut rng))
            },
        );
    }
    group.finish();
}

fn bench_legacy_alloc_step(c: &mut Criterion) {
    // The pre-refactor hot path: a fresh Scratch (hence fresh buffers) per
    // step, as `LogitDynamics::step` still provides for one-off callers.
    let mut group = c.benchmark_group("legacy_alloc_per_step");
    for n in [16usize, 48] {
        let dynamics = ring_dynamics(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &dynamics,
            |b, d| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut state = 0usize;
                b.iter(|| {
                    state = d.step(state, &mut rng);
                    state
                })
            },
        );
    }
    group.finish();
}

fn bench_rules_profile_engine(c: &mut Criterion) {
    // The pluggable-rule seam must be free: every rule is a monomorphised
    // generic inside the same in-place engine, so per-rule cost differences
    // reflect the rule's arithmetic, not dispatch overhead.
    fn bench_rule<U: UpdateRule>(group: &mut criterion::BenchmarkGroup<'_>, rule: U, n: usize) {
        let dynamics = DynamicsEngine::with_rule(
            GraphicalCoordinationGame::new(
                GraphBuilder::ring(n),
                CoordinationGame::from_deltas(1.0, 2.0),
            ),
            rule,
            1.5,
        );
        let name = dynamics.rule().name();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{name}/n={n}")),
            &dynamics,
            |b, d| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut scratch = Scratch::for_game(d.game());
                let mut profile = vec![0usize; d.game().num_players()];
                b.iter(|| d.step_profile(&mut profile, &mut scratch, &mut rng))
            },
        );
    }
    let mut group = c.benchmark_group("rule_profile_step");
    for n in [1_000usize, 100_000] {
        bench_rule(&mut group, Logit, n);
        bench_rule(&mut group, MetropolisLogit, n);
        bench_rule(&mut group, NoisyBestResponse::new(0.1), n);
    }
    group.finish();
}

fn bench_all_logit_block(c: &mut Criterion) {
    // One all-logit tick = n player updates against the frozen profile.
    let mut group = c.benchmark_group("all_logit_block_tick");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let dynamics = ring_dynamics(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &dynamics,
            |b, d| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut scratch = Scratch::for_game(d.game());
                let mut profile = vec![0usize; d.game().num_players()];
                let mut t = 0u64;
                b.iter(|| {
                    let moved =
                        d.step_scheduled(&AllLogit, t, &mut profile, &mut scratch, &mut rng);
                    t += 1;
                    moved
                })
            },
        );
    }
    group.finish();
}

fn bench_tempered_round(c: &mut Criterion) {
    // One tempering round = K·n player updates plus one swap phase (K
    // potential evaluations and K−1 Metropolis coin flips). The per-update
    // cost must track the single profile engine: the sweep phase is the same
    // monomorphised loop, the swap phase amortises over n ticks.
    use logit_anneal::BetaLadder;
    use logit_core::schedules::UniformSingle;
    use logit_core::TemperingEnsemble;

    let mut group = c.benchmark_group("tempered_round");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        for rungs in [1usize, 4] {
            let game = GraphicalCoordinationGame::new(
                GraphBuilder::ring(n),
                CoordinationGame::from_deltas(1.0, 2.0),
            );
            let ladder = BetaLadder::geometric(0.5, 1.5, rungs);
            let ensemble = TemperingEnsemble::new(game, Logit, ladder.betas());
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("K={rungs}/n={n}")),
                &ensemble,
                |b, ens| {
                    let mut state = ens.init_state(&vec![0usize; n], 1);
                    b.iter(|| ens.round(&UniformSingle, &mut state, n as u64))
                },
            );
        }
    }
    group.finish();
}

fn bench_pipelined_ensemble(c: &mut Criterion) {
    // The whole ensemble runner, sequential fold vs the pipelined
    // farm/reducer stages, same seeds and therefore (by the bit-identity
    // contract) the same result — the delta is pure orchestration cost:
    // channel traffic + profile snapshots vs in-line observable evaluation
    // and the end-of-run barrier.
    use logit_core::observables::StrategyFraction;
    use logit_core::Simulator;

    let mut group = c.benchmark_group("ensemble_runner");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let dynamics = ring_dynamics(n);
        let sim = Simulator::new(7, 8);
        let obs = StrategyFraction::new(1, "adopters");
        let start = vec![0usize; n];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sequential/n={n}")),
            &dynamics,
            |b, d| b.iter(|| sim.run_profiles(d, &start, 5_000, 1_250, &obs)),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("pipelined/n={n}")),
            &dynamics,
            |b, d| b.iter(|| sim.run_profiles_pipelined(d, &start, 5_000, 1_250, &obs)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_flat_engine,
    bench_profile_engine,
    bench_rules_profile_engine,
    bench_all_logit_block,
    bench_legacy_alloc_step,
    bench_tempered_round,
    bench_pipelined_ensemble
);
criterion_main!(benches);
