//! Criterion benches: simulation throughput (single steps, trajectories,
//! parallel replica ensembles, coupled chains).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logit_core::coupling::{maximal_coupling_step, shared_uniform_coupling_step};
use logit_core::{simulate_trajectory, LogitDynamics, Simulator};
use logit_games::{CoordinationGame, Game, GraphicalCoordinationGame};
use logit_graphs::GraphBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ring_dynamics(n: usize, beta: f64) -> LogitDynamics<GraphicalCoordinationGame> {
    LogitDynamics::new(
        GraphicalCoordinationGame::new(GraphBuilder::ring(n), CoordinationGame::symmetric(1.0)),
        beta,
    )
}

fn bench_single_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("logit_steps");
    for n in [8usize, 16, 32] {
        let dynamics = ring_dynamics(n, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &dynamics,
            |b, d| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut state = 0usize;
                b.iter(|| {
                    state = d.step(state, &mut rng);
                    state
                })
            },
        );
    }
    group.finish();
}

fn bench_trajectory(c: &mut Criterion) {
    let mut group = c.benchmark_group("trajectory_1000_steps");
    for n in [8usize, 16] {
        let dynamics = ring_dynamics(n, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &dynamics,
            |b, d| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| simulate_trajectory(d, 0, 1000, &mut rng))
            },
        );
    }
    group.finish();
}

fn bench_parallel_ensemble(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_ensemble_256_replicas_x_200_steps");
    group.sample_size(10);
    for n in [8usize, 16] {
        let dynamics = ring_dynamics(n, 1.0);
        let sim = Simulator::new(3, 256);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &(dynamics, sim),
            |b, (d, s)| b.iter(|| s.run(d, 0, 200, |_| 0.0)),
        );
    }
    group.finish();
}

fn bench_coupling_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupling_steps");
    let dynamics = ring_dynamics(12, 1.0);
    let space = dynamics.space();
    let x = space.index_of(&vec![0usize; dynamics.game().num_players()]);
    let y = space.index_of(&vec![1usize; dynamics.game().num_players()]);
    group.bench_function("maximal", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| maximal_coupling_step(&dynamics, &mut rng, x, y))
    });
    group.bench_function("shared_uniform", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| shared_uniform_coupling_step(&dynamics, &mut rng, x, y))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_steps,
    bench_trajectory,
    bench_parallel_ensemble,
    bench_coupling_steps
);
criterion_main!(benches);
