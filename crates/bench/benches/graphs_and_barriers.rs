//! Criterion benches: cutwidth computation, the potential barrier ζ, and
//! the CSR-vs-nested-`Vec` neighbour-iteration race behind the
//! memory-locality engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logit_core::zeta;
use logit_games::{CoordinationGame, GraphicalCoordinationGame, WellGame};
use logit_graphs::{cutwidth_exact, cutwidth_heuristic, CsrGraph, GraphBuilder, VertexOrdering};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_cutwidth_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("cutwidth_exact");
    group.sample_size(15);
    for n in [8usize, 12, 16] {
        let graph = GraphBuilder::grid(2, n / 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("grid_2x{}", n / 2)),
            &graph,
            |b, g| b.iter(|| cutwidth_exact(g)),
        );
    }
    group.finish();
}

fn bench_cutwidth_heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("cutwidth_heuristic");
    for n in [16usize, 32, 64] {
        let mut rng = StdRng::seed_from_u64(7);
        let graph = GraphBuilder::connected_erdos_renyi(n, 0.15, &mut rng, 50);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("er_n={n}")),
            &graph,
            |b, g| {
                let mut rng = StdRng::seed_from_u64(8);
                b.iter(|| cutwidth_heuristic(g, &mut rng, 3))
            },
        );
    }
    group.finish();
}

fn bench_zeta(c: &mut Criterion) {
    let mut group = c.benchmark_group("zeta_barrier");
    group.sample_size(20);
    for n in [8usize, 10, 12] {
        let game = WellGame::plateau(n, 2.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("well_n={n}")),
            &game,
            |b, g| b.iter(|| zeta(g)),
        );
    }
    let clique_game = GraphicalCoordinationGame::new(
        GraphBuilder::clique(10),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    group.bench_function("clique_n=10", |b| b.iter(|| zeta(&clique_game)));
    group.finish();
}

/// The representation race the CSR layer exists to win: a full
/// gather-sweep over every vertex's neighbourhood (the access pattern of
/// one coloured revision round) through the two adjacency layouts, on a
/// label-shuffled circulant so the gathers are cache-hostile. `Graph`
/// stores `Vec<Vec<usize>>` rows (one heap allocation per vertex, 8-byte
/// ids); `CsrGraph` is two contiguous `u32` arrays. Same instance, same
/// iteration order, same accumulator — only the layout differs.
fn bench_neighbour_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbour_iteration");
    group.sample_size(20);
    for n in [10_000usize, 100_000] {
        let graph = {
            let g = GraphBuilder::circulant(n, 4);
            let mut rng = StdRng::seed_from_u64(21);
            g.relabelled(&VertexOrdering::random(n, &mut rng))
        };
        let csr = CsrGraph::from_graph(&graph);
        let strategies: Vec<u8> = (0..n).map(|v| (v % 2) as u8).collect();

        group.bench_with_input(
            BenchmarkId::new("vec_of_vecs", n),
            &(&graph, &strategies),
            |b, (g, s)| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for v in 0..g.num_vertices() {
                        for &u in g.neighbors(v) {
                            acc += s[u] as usize;
                        }
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("csr", n),
            &(&csr, &strategies),
            |b, (g, s)| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for v in 0..g.num_vertices() {
                        for &u in g.neighbors(v) {
                            acc += s[u as usize] as usize;
                        }
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cutwidth_exact,
    bench_cutwidth_heuristic,
    bench_zeta,
    bench_neighbour_iteration
);
criterion_main!(benches);
