//! Criterion benches: spectral analysis and exact mixing-time computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logit_core::{exact_mixing_time, gibbs_distribution, spectral_mixing_bounds, LogitDynamics};
use logit_games::{CoordinationGame, GraphicalCoordinationGame, WellGame};
use logit_graphs::GraphBuilder;
use logit_markov::{mixing_time, stationary_distribution};

fn bench_spectral_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_analysis");
    group.sample_size(20);
    for n in [4usize, 6, 8] {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(n),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &game,
            |b, g| b.iter(|| spectral_mixing_bounds(g, 1.0)),
        );
    }
    group.finish();
}

fn bench_exact_mixing_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_mixing_time");
    group.sample_size(15);
    for n in [4usize, 6] {
        let game = WellGame::plateau(n, 2.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("well_n={n}")),
            &game,
            |b, g| b.iter(|| exact_mixing_time(g, 1.5, 0.25, 1 << 34)),
        );
    }
    group.finish();
}

fn bench_stationary_linear_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("stationary_distribution_lu");
    group.sample_size(20);
    for n in [4usize, 6, 8] {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(n),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let chain = LogitDynamics::new(game, 1.0).transition_chain();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &chain,
            |b, ch| b.iter(|| stationary_distribution(ch)),
        );
    }
    group.finish();
}

fn bench_tv_search_only(c: &mut Criterion) {
    // Mixing-time search with the stationary distribution precomputed: isolates
    // the matrix-power bracketing cost.
    let mut group = c.benchmark_group("mixing_time_search");
    group.sample_size(15);
    let game = WellGame::plateau(6, 2.0);
    let chain = LogitDynamics::new(game.clone(), 1.0).transition_chain();
    let pi = gibbs_distribution(&game, 1.0);
    group.bench_function("well_n=6_beta=1", |b| {
        b.iter(|| mixing_time(&chain, &pi, 0.25, 1 << 34))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spectral_analysis,
    bench_exact_mixing_time,
    bench_stationary_linear_solve,
    bench_tv_search_only
);
criterion_main!(benches);
