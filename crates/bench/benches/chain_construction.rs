//! Criterion benches: building the logit-dynamics chain and its stationary
//! distribution (the per-grid-point cost of every experiment sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logit_core::{gibbs_distribution, LogitDynamics};
use logit_games::{CoordinationGame, GraphicalCoordinationGame};
use logit_graphs::GraphBuilder;

fn ring_game(n: usize) -> GraphicalCoordinationGame {
    GraphicalCoordinationGame::new(
        GraphBuilder::ring(n),
        CoordinationGame::from_deltas(2.0, 1.0),
    )
}

fn bench_dense_transition(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_transition_matrix");
    for n in [4usize, 6, 8, 10] {
        let game = ring_game(n);
        let dynamics = LogitDynamics::new(game, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &dynamics,
            |b, d| b.iter(|| d.transition_matrix()),
        );
    }
    group.finish();
}

fn bench_sparse_transition(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_transition_matrix");
    for n in [8usize, 10, 12] {
        let game = ring_game(n);
        let dynamics = LogitDynamics::new(game, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &dynamics,
            |b, d| b.iter(|| d.transition_sparse()),
        );
    }
    group.finish();
}

fn bench_gibbs(c: &mut Criterion) {
    let mut group = c.benchmark_group("gibbs_distribution");
    for n in [8usize, 10, 12] {
        let game = ring_game(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n}")),
            &game,
            |b, g| b.iter(|| gibbs_distribution(g, 1.5)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_transition,
    bench_sparse_transition,
    bench_gibbs
);
criterion_main!(benches);
