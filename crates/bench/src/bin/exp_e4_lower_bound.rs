//! E4 — Theorem 3.5: matching exponential lower bound (well potential).
fn main() {
    println!("{}", logit_bench::experiments::e4_lower_bound(false));
}
