//! E1 — Theorem 3.1: non-negative spectrum of potential-game logit chains.
fn main() {
    println!("{}", logit_bench::experiments::e1_eigenvalues(false));
}
