//! E7 — Theorems 4.2/4.3: dominant-strategy games mix independently of beta.
fn main() {
    println!("{}", logit_bench::experiments::e7_dominant(false));
}
