//! E8 — Theorem 5.1: cutwidth bound for graphical coordination games.
fn main() {
    println!("{}", logit_bench::experiments::e8_cutwidth(false));
}
