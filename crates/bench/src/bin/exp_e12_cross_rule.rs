//! E12 — cross-rule revision dynamics: logit vs Metropolis vs noisy best
//! response vs the parallel all-logit block schedule, through both the exact
//! flat-index chains and the in-place profile engine.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!("{}", logit_bench::experiments::e12_cross_rule(fast));
}
