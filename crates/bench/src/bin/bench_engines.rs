//! Engine-throughput baseline: steps/sec of the flat-index engine vs the
//! in-place profile engine on ring coordination games, emitted as JSON
//! (the committed `BENCH_step_throughput.json` is this binary's output).
//!
//! The flat engine needs the profile space to fit a `usize`, which caps it at
//! 63 binary players; beyond that its column is `null`. The in-place engine
//! is measured up to n = 100000.

use logit_core::{LogitDynamics, Scratch};
use logit_games::{CoordinationGame, GraphicalCoordinationGame};
use logit_graphs::GraphBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Binary-profile rings stop fitting a flat `usize` index past this size.
const FLAT_LIMIT: usize = 63;

fn ring_dynamics(n: usize) -> LogitDynamics<GraphicalCoordinationGame> {
    LogitDynamics::new(
        GraphicalCoordinationGame::new(
            GraphBuilder::ring(n),
            CoordinationGame::from_deltas(1.0, 2.0),
        ),
        1.5,
    )
}

fn flat_steps_per_sec(n: usize, steps: u64) -> f64 {
    let dynamics = ring_dynamics(n);
    let mut rng = StdRng::seed_from_u64(1);
    let mut scratch = Scratch::for_game(dynamics.game());
    let mut state = 0usize;
    let clock = std::time::Instant::now();
    for _ in 0..steps {
        state = dynamics.step_indexed(state, &mut scratch, &mut rng);
    }
    std::hint::black_box(state);
    steps as f64 / clock.elapsed().as_secs_f64()
}

fn profile_steps_per_sec(n: usize, steps: u64) -> f64 {
    let dynamics = ring_dynamics(n);
    let mut rng = StdRng::seed_from_u64(1);
    let mut scratch = Scratch::for_game(dynamics.game());
    let mut profile = vec![0usize; n];
    let clock = std::time::Instant::now();
    for _ in 0..steps {
        dynamics.step_profile(&mut profile, &mut scratch, &mut rng);
    }
    std::hint::black_box(&profile);
    steps as f64 / clock.elapsed().as_secs_f64()
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let steps: u64 = if fast { 200_000 } else { 2_000_000 };
    let sizes = [16usize, 48, 1_000, 10_000, 100_000];

    let mut rows = Vec::new();
    for &n in &sizes {
        let flat = if n <= FLAT_LIMIT {
            format!("{:.0}", flat_steps_per_sec(n, steps))
        } else {
            "null".to_string()
        };
        let profile = profile_steps_per_sec(n, steps);
        rows.push(format!(
            "    {{\"n\": {n}, \"flat_steps_per_sec\": {flat}, \"profile_steps_per_sec\": {profile:.0}}}"
        ));
        eprintln!("n = {n:>6}: flat = {flat:>12}, profile = {profile:.3e} steps/sec");
    }

    println!(
        "{{\n  \"benchmark\": \"logit step throughput, ring coordination game (delta0=1, delta1=2, beta=1.5)\",\n  \"engines\": {{\n    \"flat\": \"decode flat usize index, step, re-encode (capped at n = {FLAT_LIMIT} binary players)\",\n    \"profile\": \"in-place profile update with reused Scratch buffers\"\n  }},\n  \"steps_per_measurement\": {steps},\n  \"rows\": [\n{}\n  ]\n}}",
        rows.join(",\n")
    );
}
