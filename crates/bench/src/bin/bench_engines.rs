//! Engine-throughput baseline: steps/sec of the flat-index engine vs the
//! in-place profile engine on ring coordination games, one row-set per
//! update rule, emitted as JSON (the committed `BENCH_step_throughput.json`
//! is this binary's output).
//!
//! The flat engine needs the profile space to fit a `usize`, which caps it at
//! 63 binary players; beyond that its column is `null`. The in-place engine
//! is measured up to n = 100000. Every `UpdateRule` runs through the same
//! generic `DynamicsEngine`, so the per-rule rows track whether the
//! pluggable-rule seam costs throughput (it must not: the rule is a
//! monomorphised generic, not a dynamic dispatch).

use logit_anneal::BetaLadder;
use logit_core::observables::StrategyFraction;
use logit_core::parallel::coloring_for_game;
use logit_core::rules::{Logit, MetropolisLogit, NoisyBestResponse, UpdateRule};
use logit_core::schedules::UniformSingle;
use logit_core::{
    DynamicsEngine, RuntimeConfig, Scratch, Simulator, TemperingEnsemble, WorkerPool,
};
use logit_games::{CoordinationGame, Game, GraphicalCoordinationGame};
use logit_graphs::{Coloring, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Binary-profile rings stop fitting a flat `usize` index past this size.
const FLAT_LIMIT: usize = 63;

fn ring_dynamics<U: UpdateRule>(n: usize, rule: U) -> DynamicsEngine<GraphicalCoordinationGame, U> {
    DynamicsEngine::with_rule(
        GraphicalCoordinationGame::new(
            GraphBuilder::ring(n),
            CoordinationGame::from_deltas(1.0, 2.0),
        ),
        rule,
        1.5,
    )
}

fn flat_steps_per_sec<U: UpdateRule>(n: usize, rule: U, steps: u64) -> f64 {
    let dynamics = ring_dynamics(n, rule);
    let mut rng = StdRng::seed_from_u64(1);
    let mut scratch = Scratch::for_game(dynamics.game());
    let mut state = 0usize;
    let clock = std::time::Instant::now();
    for _ in 0..steps {
        state = dynamics.step_indexed(state, &mut scratch, &mut rng);
    }
    std::hint::black_box(state);
    steps as f64 / clock.elapsed().as_secs_f64()
}

fn profile_steps_per_sec<U: UpdateRule>(n: usize, rule: U, steps: u64) -> f64 {
    let dynamics = ring_dynamics(n, rule);
    let mut rng = StdRng::seed_from_u64(1);
    let mut scratch = Scratch::for_game(dynamics.game());
    let mut profile = vec![0usize; n];
    let clock = std::time::Instant::now();
    for _ in 0..steps {
        dynamics.step_profile(&mut profile, &mut scratch, &mut rng);
    }
    std::hint::black_box(&profile);
    steps as f64 / clock.elapsed().as_secs_f64()
}

/// The verbatim pre-refactor logit hot path (inline softmax, inverse-CDF
/// sampling, reused buffers), measured in the same process so the committed
/// baseline certifies on the emitting host that the pluggable-rule seam is
/// free — absolute steps/sec vary across hosts, the engine/legacy ratio must
/// not.
///
/// A sibling reference copy lives in `crates/core/tests/proptest_core.rs`
/// (`legacy_step_profile`): that one pins *bit-identical trajectories*, this
/// one pins *throughput*; keep both in sync with the historical hot path.
fn legacy_logit_steps_per_sec(n: usize, steps: u64) -> f64 {
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::ring(n),
        CoordinationGame::from_deltas(1.0, 2.0),
    );
    let beta = 1.5;
    let mut rng = StdRng::seed_from_u64(1);
    let mut utils: Vec<f64> = Vec::with_capacity(2);
    let mut probs: Vec<f64> = Vec::with_capacity(2);
    let mut profile = vec![0usize; n];
    let clock = std::time::Instant::now();
    for _ in 0..steps {
        let player = rng.gen_range(0..n);
        let m = game.num_strategies(player);
        utils.clear();
        utils.resize(m, 0.0);
        game.utilities_for(player, &mut profile, &mut utils);
        let max = utils
            .iter()
            .map(|&u| beta * u)
            .fold(f64::NEG_INFINITY, f64::max);
        probs.clear();
        probs.extend(utils.iter().map(|&u| (beta * u - max).exp()));
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = probs.len() - 1;
        for (s, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = s;
                break;
            }
        }
        profile[player] = chosen;
    }
    std::hint::black_box(&profile);
    steps as f64 / clock.elapsed().as_secs_f64()
}

/// Per-update throughput of the tempering ensemble: `K` replicas stepping
/// under uniform selection with a Metropolis swap phase every `n` ticks. The
/// sweep phase is the same monomorphised hot loop as the single engine, so
/// per-update cost must match the profile engine up to the amortised swap
/// overhead (K potential evaluations — O(K·n) work — every K·n updates).
fn tempered_updates_per_sec(n: usize, rungs: usize, updates: u64) -> f64 {
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::ring(n),
        CoordinationGame::from_deltas(1.0, 2.0),
    );
    let ladder = BetaLadder::geometric(0.5, 1.5, rungs);
    let ensemble = TemperingEnsemble::new(game, Logit, ladder.betas());
    let mut state = ensemble.init_state(&vec![0usize; n], 1);
    let sweep_ticks = n as u64;
    let rounds = (updates / (sweep_ticks * rungs as u64)).max(1);
    let clock = std::time::Instant::now();
    for _ in 0..rounds {
        ensemble.round(&UniformSingle, &mut state, sweep_ticks);
    }
    std::hint::black_box(state.cold_profile());
    (rounds * sweep_ticks * rungs as u64) as f64 / clock.elapsed().as_secs_f64()
}

fn tempered_rows(rungs: usize, sizes: &[usize], steps: u64) -> String {
    let mut rows = Vec::new();
    for &n in sizes {
        let tempered = tempered_updates_per_sec(n, rungs, steps);
        // The apples-to-apples baseline is the K = 1 ladder: the same stack
        // (step_scheduled loop, ChaCha replica streams) with no swaps, which
        // the bit-identity regression test pins to the plain engine. The
        // per-rule rows above keep the raw profile-engine numbers (StdRng, a
        // cheaper generator), so the two baselines are not comparable to each
        // other — the tempered invariant is this in-stack ratio.
        let single = tempered_updates_per_sec(n, 1, steps);
        rows.push(format!(
            "        {{\"n\": {n}, \"tempered_updates_per_sec\": {tempered:.0}, \"single_chain_updates_per_sec\": {single:.0}, \"tempered_over_single\": {:.3}}}",
            tempered / single
        ));
        eprintln!(
            "   tempered(K={rungs}) n = {n:>6}: tempered = {tempered:.3e}, K=1 = {single:.3e}, ratio = {:.3}",
            tempered / single
        );
    }
    format!(
        "  \"tempered\": {{\n    \"what\": \"TemperingEnsemble (Logit, K = {rungs} geometric ladder 0.5..1.5), per player-update, swap phase every n ticks, vs the K = 1 ladder through the same stack; the ratio is the orchestration-overhead invariant (swaps amortise to noise)\",\n    \"rows\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    values[values.len() / 2]
}

/// One committed `coloured` row: the coloured independent-set engine paths
/// against per-player sequential stepping, one rule per row, on a large-n
/// dense-degree circulant. Four measurements share the instance:
///
/// * `uniform` — per-player sequential stepping (`step_profile`, one random
///   player per update) through the same ChaCha stream stack the ensembles
///   use: the per-player baseline the coloured paths are judged against;
/// * `coloured_seq` — the sequential colour-class sweep (`step_coloured`,
///   per-player counter-derived draws, in-place updates), median over the
///   interleaved gate rounds;
/// * `coloured_par` — the legacy per-tick scoped-thread path
///   (`step_coloured_par`), kept as the orchestration-overhead comparison;
/// * `coloured_pooled` — the persistent-pool path (`step_coloured_pooled`),
///   median over the interleaved gate rounds.
///
/// Two **in-process gates** run before any number is emitted:
///
/// 1. *Bit-identity* — one full colour round through the scoped and pooled
///    paths must reproduce the sequential class sweep exactly.
/// 2. *Throughput* — over five interleaved (sequential, pooled) rounds the
///    best pooled/sequential ratio must reach 1.0 (the pool must not tax
///    the sweep: with one effective worker the pooled path *is* the
///    sequential sweep, so only measurement noise is tolerated away), and
///    the median pooled/uniform ratio must clear the committed 1.5 band.
///
/// `wait_policy` and `pinned` record how the emitting host's pool waited
/// and whether core pinning took effect.
#[allow(clippy::too_many_arguments)]
fn coloured_row<U: UpdateRule>(
    rule: U,
    game: &GraphicalCoordinationGame,
    coloring: &Coloring,
    rounds: u64,
    workers: usize,
    pool: &WorkerPool,
    config: &RuntimeConfig,
) -> String {
    let n = game.num_players();
    let d = DynamicsEngine::with_rule(game.clone(), rule.clone(), 1.5);
    let classes = coloring.num_classes();
    let ticks = rounds * classes as u64;
    let updates = rounds * n as u64;

    // Gate 1, bit-identity: a full colour round through the scoped and the
    // pooled paths must reproduce the sequential class sweep exactly before
    // any throughput number is emitted.
    {
        let mut seq = vec![0usize; n];
        let mut par = vec![0usize; n];
        let mut pooled = vec![0usize; n];
        let mut scratch = Scratch::for_game(game);
        let mut pooled_scratch = Scratch::for_game(game);
        let mut staged = Vec::new();
        let mut pooled_staged = Vec::new();
        for t in 0..classes as u64 {
            d.step_coloured(coloring, t, 0x0C01_C4ED, &mut seq, &mut scratch);
            d.step_coloured_par(coloring, t, 0x0C01_C4ED, &mut par, &mut staged, workers);
            d.step_coloured_pooled(
                coloring,
                t,
                0x0C01_C4ED,
                &mut pooled,
                &mut pooled_scratch,
                &mut pooled_staged,
                pool,
                config,
            );
            assert_eq!(
                seq,
                par,
                "scoped coloured path diverged ({} at tick {t})",
                rule.name()
            );
            assert_eq!(
                seq,
                pooled,
                "pooled coloured path diverged ({} at tick {t})",
                rule.name()
            );
        }
    }

    let uniform = {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut scratch = Scratch::for_game(game);
        let mut profile = vec![0usize; n];
        let clock = std::time::Instant::now();
        for _ in 0..updates {
            d.step_profile(&mut profile, &mut scratch, &mut rng);
        }
        std::hint::black_box(&profile);
        updates as f64 / clock.elapsed().as_secs_f64()
    };

    let coloured_par = {
        let mut staged = Vec::new();
        let mut profile = vec![0usize; n];
        let clock = std::time::Instant::now();
        for t in 0..ticks {
            d.step_coloured_par(coloring, t, 2, &mut profile, &mut staged, workers);
        }
        std::hint::black_box(&profile);
        updates as f64 / clock.elapsed().as_secs_f64()
    };

    // Gate 2, throughput: five interleaved (sequential, pooled) rounds so
    // scheduler drift hits both paths alike; the committed rates are the
    // medians, the pool-tax assertion uses the best pairwise ratio.
    let gate_rounds = 5u64;
    let sub_rounds = (rounds / gate_rounds).max(1);
    let sub_ticks = sub_rounds * classes as u64;
    let sub_updates = (sub_rounds * n as u64) as f64;
    let mut seq_rates = Vec::new();
    let mut pooled_rates = Vec::new();
    let mut ratios = Vec::new();
    {
        let mut scratch = Scratch::for_game(game);
        let mut pooled_scratch = Scratch::for_game(game);
        let mut staged = Vec::new();
        let mut seq_profile = vec![0usize; n];
        let mut pooled_profile = vec![0usize; n];
        for _ in 0..gate_rounds {
            let clock = std::time::Instant::now();
            for t in 0..sub_ticks {
                d.step_coloured(coloring, t, 2, &mut seq_profile, &mut scratch);
            }
            std::hint::black_box(&seq_profile);
            let seq_rate = sub_updates / clock.elapsed().as_secs_f64();

            let clock = std::time::Instant::now();
            for t in 0..sub_ticks {
                d.step_coloured_pooled(
                    coloring,
                    t,
                    2,
                    &mut pooled_profile,
                    &mut pooled_scratch,
                    &mut staged,
                    pool,
                    config,
                );
            }
            std::hint::black_box(&pooled_profile);
            let pooled_rate = sub_updates / clock.elapsed().as_secs_f64();

            ratios.push(pooled_rate / seq_rate);
            seq_rates.push(seq_rate);
            pooled_rates.push(pooled_rate);
        }
    }
    let coloured_seq = median(seq_rates);
    let coloured_pooled = median(pooled_rates);
    let best_pooled_over_seq = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let pooled_over_seq = coloured_pooled / coloured_seq;
    let pooled_over_uniform = coloured_pooled / uniform;
    assert!(
        best_pooled_over_seq >= 1.0,
        "pooled coloured path taxes the sequential sweep ({}: best pooled/seq = {best_pooled_over_seq:.3} over {gate_rounds} rounds)",
        rule.name()
    );
    assert!(
        pooled_over_uniform > 1.5,
        "pooled coloured path fell out of the committed band ({}: pooled/uniform = {pooled_over_uniform:.3}, band > 1.5)",
        rule.name()
    );

    let par_over_uniform = coloured_par / uniform;
    let par_over_seq = coloured_par / coloured_seq;
    let wait_policy = pool.wait_policy().name();
    let pinned = pool.registry().pinned_count() > 0;
    eprintln!(
        "   coloured {:>17} n = {n}: uniform = {uniform:.3e}, seq sweep = {coloured_seq:.3e}, par({workers}) = {coloured_par:.3e}, pooled = {coloured_pooled:.3e}, pooled/uniform = {pooled_over_uniform:.3}, pooled/seq = {pooled_over_seq:.3} (best {best_pooled_over_seq:.3})",
        rule.name()
    );
    format!(
        "        {{\"rule\": \"{}\", \"n\": {n}, \"degree\": {}, \"classes\": {classes}, \"workers\": {workers}, \"wait_policy\": \"{wait_policy}\", \"pinned\": {pinned}, \"uniform_updates_per_sec\": {uniform:.0}, \"coloured_seq_updates_per_sec\": {coloured_seq:.0}, \"coloured_par_updates_per_sec\": {coloured_par:.0}, \"coloured_pooled_updates_per_sec\": {coloured_pooled:.0}, \"par_over_uniform\": {par_over_uniform:.3}, \"par_over_seq\": {par_over_seq:.3}, \"pooled_over_uniform\": {pooled_over_uniform:.3}, \"pooled_over_seq\": {pooled_over_seq:.3}, \"best_pooled_over_seq\": {best_pooled_over_seq:.3}}}",
        rule.name(),
        game.graph().max_degree()
    )
}

fn coloured_rows(steps: u64) -> String {
    // Large-n dense-degree instance: a circulant ring with 64 chords per
    // side (degree 128, adjacency ≈ 50 MB — far beyond cache). At this
    // size coloring_for_game picks first-fit greedy (O(n + m)): 80 classes
    // of ≤ 769 players, between the clique bound k + 1 = 65 and
    // Δ + 1 = 129 (the wrap-around window costs the extra classes when
    // k + 1 does not divide n) — wide independent sets, exactly the shape
    // the parallel path is built for.
    let n = 50_000usize;
    let k = 64usize;
    eprintln!("   building circulant(n = {n}, k = {k}) + colouring ...");
    let graph = GraphBuilder::circulant(n, k);
    let game = GraphicalCoordinationGame::new(graph, CoordinationGame::from_deltas(1.0, 2.0));
    let coloring = coloring_for_game(&game);
    let config = RuntimeConfig::from_env();
    let pool = WorkerPool::new(&config);
    let workers = config.resolved_workers();
    let rounds = (steps / n as u64).max(2);
    let rows = [
        coloured_row(Logit, &game, &coloring, rounds, workers, &pool, &config),
        coloured_row(
            MetropolisLogit,
            &game,
            &coloring,
            rounds,
            workers,
            &pool,
            &config,
        ),
        coloured_row(
            NoisyBestResponse::new(0.1),
            &game,
            &coloring,
            rounds,
            workers,
            &pool,
            &config,
        ),
    ];
    let scaling = worker_scaling_rows(&game, &coloring, rounds, 2 * k);
    format!(
        "  \"coloured\": {{\n    \"what\": \"coloured independent-set revision on a dense-degree circulant (n = {n}, degree {}, first-fit classes via the scale-aware coloring_for_game) vs per-player sequential stepping through the same engine; two in-process gates must pass before rows are emitted: bit-identity (one full colour round, scoped == pooled == sequential class sweep) and throughput (best pooled/seq over 5 interleaved rounds >= 1.0 — the persistent pool must not tax the sweep — and median pooled/uniform > 1.5). Committed invariants: the gates plus the ratios — pooled_over_uniform pins the coloured path beating per-player sequential stepping (the ascending class sweep streams the DRAM-resident adjacency where random-player stepping cache-misses, and counter-derived per-player draws replace stream draws; band to hold: > 1.5), pooled_over_seq pins the persistent-pool orchestration overhead (par_over_seq keeps the legacy per-tick scoped-thread cost for comparison); coloured_pooled additionally scales with cores (the emitting host resolved workers = {workers}; per-player sequential stepping cannot use more than one). wait_policy and pinned record the emitting pool's idle strategy and whether core pinning took effect\",\n    \"rows\": [\n{}\n    ]\n  }},\n{scaling}",
        2 * k,
        rows.join(",\n")
    )
}

/// The worker-scaling row-set: the pooled, scoped and sequential coloured
/// paths at explicit worker counts on the same circulant instance. Recorded,
/// not gated — on hosts with fewer cores than the row's worker count the
/// extra workers oversubscribe and the ratios document that, which is
/// exactly the information the row-set exists to commit.
fn worker_scaling_rows(
    game: &GraphicalCoordinationGame,
    coloring: &Coloring,
    rounds: u64,
    degree: usize,
) -> String {
    let n = game.num_players();
    let d = DynamicsEngine::with_rule(game.clone(), Logit, 1.5);
    let classes = coloring.num_classes() as u64;
    let rounds = (rounds / 2).max(2);
    let ticks = rounds * classes;
    let updates = (rounds * n as u64) as f64;

    let seq_rate = {
        let mut scratch = Scratch::for_game(game);
        let mut profile = vec![0usize; n];
        let clock = std::time::Instant::now();
        for t in 0..ticks {
            d.step_coloured(coloring, t, 2, &mut profile, &mut scratch);
        }
        std::hint::black_box(&profile);
        updates / clock.elapsed().as_secs_f64()
    };

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let config = RuntimeConfig {
            workers,
            ..RuntimeConfig::from_env()
        };
        let pool = WorkerPool::new(&config);

        let scoped_rate = {
            let mut staged = Vec::new();
            let mut profile = vec![0usize; n];
            let clock = std::time::Instant::now();
            for t in 0..ticks {
                d.step_coloured_par(coloring, t, 2, &mut profile, &mut staged, workers);
            }
            std::hint::black_box(&profile);
            updates / clock.elapsed().as_secs_f64()
        };

        let pooled_rate = {
            let mut scratch = Scratch::for_game(game);
            let mut staged = Vec::new();
            let mut profile = vec![0usize; n];
            let clock = std::time::Instant::now();
            for t in 0..ticks {
                d.step_coloured_pooled(
                    coloring,
                    t,
                    2,
                    &mut profile,
                    &mut scratch,
                    &mut staged,
                    &pool,
                    &config,
                );
            }
            std::hint::black_box(&profile);
            updates / clock.elapsed().as_secs_f64()
        };

        let pooled_over_seq = pooled_rate / seq_rate;
        let scoped_over_seq = scoped_rate / seq_rate;
        let pinned = pool.registry().pinned_count() > 0;
        eprintln!(
            "   scaling  workers = {workers}: seq = {seq_rate:.3e}, scoped = {scoped_rate:.3e}, pooled = {pooled_rate:.3e}, pooled/seq = {pooled_over_seq:.3}, scoped/seq = {scoped_over_seq:.3}"
        );
        rows.push(format!(
            "        {{\"workers\": {workers}, \"wait_policy\": \"{}\", \"pinned\": {pinned}, \"coloured_seq_updates_per_sec\": {seq_rate:.0}, \"coloured_par_updates_per_sec\": {scoped_rate:.0}, \"coloured_pooled_updates_per_sec\": {pooled_rate:.0}, \"pooled_over_seq\": {pooled_over_seq:.3}, \"scoped_over_seq\": {scoped_over_seq:.3}}}",
            pool.wait_policy().name()
        ));
    }
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    format!(
        "  \"coloured_worker_scaling\": {{\n    \"what\": \"the pooled vs per-tick-scoped vs sequential coloured paths (Logit) at explicit worker counts on the same circulant (n = {n}, degree {degree}); recorded, not gated — worker counts above the emitting host's cores ({host_cores} here) oversubscribe, and the committed ratios document how gracefully each orchestration degrades (near-linear scaling is the expectation only up to the core count)\",\n    \"rows\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

/// Aggregate stepping throughput of a replica ensemble through either the
/// sequential `run_profiles` path (observables evaluated on the stepping
/// threads, end-of-run fold) or the pipelined farm/reducer stages
/// (observables evaluated off the stepping threads, streamed reduction).
/// Returns the rate and the full result so the caller can pin the
/// bit-identity contract in-process.
fn ensemble_steps_per_sec<U: UpdateRule>(
    n: usize,
    rule: U,
    replicas: usize,
    steps_per_replica: u64,
    pipelined: bool,
) -> (f64, logit_core::ProfileEnsembleResult) {
    let dynamics = ring_dynamics(n, rule);
    let sim = Simulator::new(0xB1BE, replicas);
    let observable = StrategyFraction::new(1, "adopters");
    let start = vec![0usize; n];
    let sample_every = (steps_per_replica / 8).max(1);
    let clock = std::time::Instant::now();
    let result = if pipelined {
        sim.run_profiles_pipelined(
            &dynamics,
            &start,
            steps_per_replica,
            sample_every,
            &observable,
        )
    } else {
        sim.run_profiles(
            &dynamics,
            &start,
            steps_per_replica,
            sample_every,
            &observable,
        )
    };
    let total = steps_per_replica * replicas as u64;
    let rate = total as f64 / clock.elapsed().as_secs_f64();
    std::hint::black_box(&result.final_values);
    (rate, result)
}

/// The in-process bit-identity gate: final observable values *and* every
/// per-time `RunningStats` must match exactly — a fold-order regression at
/// an intermediate sample index cannot hide behind matching finals.
fn assert_bit_identical(
    seq: &logit_core::ProfileEnsembleResult,
    pipe: &logit_core::ProfileEnsembleResult,
    context: &str,
) {
    assert_eq!(
        seq.final_values, pipe.final_values,
        "pipelined ensemble diverged from the sequential path ({context})"
    );
    assert_eq!(seq.times, pipe.times, "time grids diverged ({context})");
    for (k, (s, p)) in seq.series.iter().zip(&pipe.series).enumerate() {
        assert!(
            s.count() == p.count()
                && s.mean() == p.mean()
                && s.variance() == p.variance()
                && s.min() == p.min()
                && s.max() == p.max(),
            "pipelined series stats diverged at sample {k} ({context})"
        );
    }
}

/// One committed `pipelined` row: median-of-3 interleaved sequential vs
/// pipelined rounds for one rule, with the bit-identity contract asserted on
/// every round (the pipelined runner must reproduce the sequential ensemble
/// exactly, not just at matching speed).
fn pipelined_row<U: UpdateRule>(
    rule: U,
    n: usize,
    replicas: usize,
    steps_per_replica: u64,
) -> String {
    let mut rounds: Vec<(f64, f64)> = (0..3)
        .map(|_| {
            let (seq, seq_result) =
                ensemble_steps_per_sec(n, rule.clone(), replicas, steps_per_replica, false);
            let (pipe, pipe_result) =
                ensemble_steps_per_sec(n, rule.clone(), replicas, steps_per_replica, true);
            assert_bit_identical(
                &seq_result,
                &pipe_result,
                &format!("{} at n = {n}", rule.name()),
            );
            (seq, pipe)
        })
        .collect();
    rounds.sort_by(|a, b| {
        (a.1 / a.0)
            .partial_cmp(&(b.1 / b.0))
            .expect("finite ratios")
    });
    let (seq, pipe) = rounds[1];
    let ratio = pipe / seq;
    eprintln!(
        "  pipelined {:>17} n = {n:>6}: sequential = {seq:.3e}, pipelined = {pipe:.3e}, ratio = {ratio:.3}",
        rule.name()
    );
    format!(
        "        {{\"rule\": \"{}\", \"n\": {n}, \"replicas\": {replicas}, \"sequential_steps_per_sec\": {seq:.0}, \"pipelined_steps_per_sec\": {pipe:.0}, \"pipelined_over_sequential\": {ratio:.3}}}",
        rule.name()
    )
}

fn pipelined_rows(n: usize, steps: u64) -> String {
    let replicas = 8usize;
    let steps_per_replica = (steps / replicas as u64).max(1);
    let rows = [
        pipelined_row(Logit, n, replicas, steps_per_replica),
        pipelined_row(MetropolisLogit, n, replicas, steps_per_replica),
        pipelined_row(NoisyBestResponse::new(0.1), n, replicas, steps_per_replica),
    ];
    format!(
        "  \"pipelined\": {{\n    \"what\": \"Simulator::run_profiles_pipelined (farm of step workers -> bounded channels -> streamed observable reducer) vs run_profiles through the same engine, {replicas} replicas, StrategyFraction sampled 8x per run; bit-identity of the final observable values and every per-time series statistic is asserted in-process every round, and the committed per-rule ratio is the invariant (stepping throughput must stay within 10% of the sequential baseline while reduction runs off the stepping threads)\",\n    \"rows\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

fn rule_rows<U: UpdateRule>(rule: U, sizes: &[usize], steps: u64) -> String {
    let mut rows = Vec::new();
    for &n in sizes {
        let flat = if n <= FLAT_LIMIT {
            format!("{:.0}", flat_steps_per_sec(n, rule.clone(), steps))
        } else {
            "null".to_string()
        };
        let profile = profile_steps_per_sec(n, rule.clone(), steps);
        rows.push(format!(
            "        {{\"n\": {n}, \"flat_steps_per_sec\": {flat}, \"profile_steps_per_sec\": {profile:.0}}}"
        ));
        eprintln!(
            "{:>19} n = {n:>6}: flat = {flat:>12}, profile = {profile:.3e} steps/sec",
            rule.name()
        );
    }
    format!(
        "    {{\n      \"rule\": \"{}\",\n      \"rows\": [\n{}\n      ]\n    }}",
        rule.name(),
        rows.join(",\n")
    )
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let steps: u64 = if fast { 200_000 } else { 2_000_000 };
    let sizes = [16usize, 48, 1_000, 10_000, 100_000];

    let rule_sets = [
        rule_rows(Logit, &sizes, steps),
        rule_rows(MetropolisLogit, &sizes, steps),
        rule_rows(NoisyBestResponse::new(0.1), &sizes, steps),
    ];

    // Same-host parity certificate: generic engine vs the verbatim
    // pre-refactor loop at a representative size. Absolute throughput varies
    // with the host; this ratio is the invariant the baseline pins. Three
    // interleaved rounds, median ratio, to damp scheduler noise.
    let parity_n = 1_000;
    let mut ratios: Vec<(f64, f64, f64)> = (0..3)
        .map(|_| {
            let legacy = legacy_logit_steps_per_sec(parity_n, steps);
            let engine = profile_steps_per_sec(parity_n, Logit, steps);
            (engine / legacy, legacy, engine)
        })
        .collect();
    ratios.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite ratios"));
    let (ratio, legacy, engine) = ratios[1];
    eprintln!(
        "parity (n = {parity_n}, median of 3): legacy = {legacy:.3e}, engine = {engine:.3e}, ratio = {ratio:.3}"
    );

    // Tempered-engine rows: measured at the sizes where the ensemble is the
    // interesting tool (large-n in-place replicas; the tiny sizes only add
    // noise). The in-process ratio against the single profile engine is the
    // committed invariant.
    let tempered = tempered_rows(4, &[1_000, 10_000, 100_000], steps);

    // Pipelined-ensemble rows: the farm/reducer stages against the in-line
    // sequential ensemble, per rule, at the size where snapshot traffic is
    // realistic. Bit-identity is asserted inside, so a diverging pipeline
    // can never emit a baseline.
    let pipelined = pipelined_rows(10_000, steps);

    // Coloured independent-set rows: the parallel-revision engine paths on
    // a dense-degree circulant, gated on the in-process bit-identity check.
    let coloured = coloured_rows(steps);

    println!(
        "{{\n  \"benchmark\": \"revision-dynamics step throughput, ring coordination game (delta0=1, delta1=2, beta=1.5)\",\n  \"engines\": {{\n    \"flat\": \"decode flat usize index, step, re-encode (capped at n = {FLAT_LIMIT} binary players)\",\n    \"profile\": \"in-place profile update with reused Scratch buffers\"\n  }},\n  \"steps_per_measurement\": {steps},\n  \"legacy_parity\": {{\n    \"what\": \"generic engine (Logit rule) vs verbatim pre-refactor inline loop, same host, same process, n = {parity_n}, median of 3 interleaved rounds\",\n    \"legacy_steps_per_sec\": {legacy:.0},\n    \"engine_steps_per_sec\": {engine:.0},\n    \"engine_over_legacy\": {ratio:.3}\n  }},\n{tempered},\n{pipelined},\n{coloured},\n  \"rules\": [\n{}\n  ]\n}}",
        rule_sets.join(",\n")
    );
}
