//! Engine-throughput baseline: steps/sec of the flat-index engine vs the
//! in-place profile engine on ring coordination games, one row-set per
//! update rule, emitted as JSON (the committed `BENCH_step_throughput.json`
//! is this binary's output).
//!
//! The flat engine needs the profile space to fit a `usize`, which caps it at
//! 63 binary players; beyond that its column is `null`. The in-place engine
//! is measured up to n = 100000. Every `UpdateRule` runs through the same
//! generic `DynamicsEngine`, so the per-rule rows track whether the
//! pluggable-rule seam costs throughput (it must not: the rule is a
//! monomorphised generic, not a dynamic dispatch).

use logit_anneal::BetaLadder;
use logit_core::observables::StrategyFraction;
use logit_core::parallel::{coloring_for_game, coloring_for_graph};
use logit_core::rules::{Logit, MetropolisLogit, NoisyBestResponse, UpdateRule};
use logit_core::schedules::UniformSingle;
use logit_core::{
    ChannelBackendKind, DynamicsEngine, LocalityLayout, PipelineConfig, ReducerMode, RuntimeConfig,
    Scratch, Simulator, TemperingEnsemble, WorkerPool,
};
use logit_games::{CoordinationGame, Game, GraphicalCoordinationGame};
use logit_graphs::{Coloring, Graph, GraphBuilder, VertexOrdering};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Binary-profile rings stop fitting a flat `usize` index past this size.
const FLAT_LIMIT: usize = 63;

fn ring_dynamics<U: UpdateRule>(n: usize, rule: U) -> DynamicsEngine<GraphicalCoordinationGame, U> {
    DynamicsEngine::with_rule(
        GraphicalCoordinationGame::new(
            GraphBuilder::ring(n),
            CoordinationGame::from_deltas(1.0, 2.0),
        ),
        rule,
        1.5,
    )
}

fn flat_steps_per_sec<U: UpdateRule>(n: usize, rule: U, steps: u64) -> f64 {
    let dynamics = ring_dynamics(n, rule);
    let mut rng = StdRng::seed_from_u64(1);
    let mut scratch = Scratch::for_game(dynamics.game());
    let mut state = 0usize;
    let clock = std::time::Instant::now();
    for _ in 0..steps {
        state = dynamics.step_indexed(state, &mut scratch, &mut rng);
    }
    std::hint::black_box(state);
    steps as f64 / clock.elapsed().as_secs_f64()
}

fn profile_steps_per_sec<U: UpdateRule>(n: usize, rule: U, steps: u64) -> f64 {
    let dynamics = ring_dynamics(n, rule);
    let mut rng = StdRng::seed_from_u64(1);
    let mut scratch = Scratch::for_game(dynamics.game());
    let mut profile = vec![0usize; n];
    let clock = std::time::Instant::now();
    for _ in 0..steps {
        dynamics.step_profile(&mut profile, &mut scratch, &mut rng);
    }
    std::hint::black_box(&profile);
    steps as f64 / clock.elapsed().as_secs_f64()
}

/// The verbatim pre-refactor logit hot path (inline softmax, inverse-CDF
/// sampling, reused buffers), measured in the same process so the committed
/// baseline certifies on the emitting host that the pluggable-rule seam is
/// free — absolute steps/sec vary across hosts, the engine/legacy ratio must
/// not.
///
/// A sibling reference copy lives in `crates/core/tests/proptest_core.rs`
/// (`legacy_step_profile`): that one pins *bit-identical trajectories*, this
/// one pins *throughput*; keep both in sync with the historical hot path.
fn legacy_logit_steps_per_sec(n: usize, steps: u64) -> f64 {
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::ring(n),
        CoordinationGame::from_deltas(1.0, 2.0),
    );
    let beta = 1.5;
    let mut rng = StdRng::seed_from_u64(1);
    let mut utils: Vec<f64> = Vec::with_capacity(2);
    let mut probs: Vec<f64> = Vec::with_capacity(2);
    let mut profile = vec![0usize; n];
    let clock = std::time::Instant::now();
    for _ in 0..steps {
        let player = rng.gen_range(0..n);
        let m = game.num_strategies(player);
        utils.clear();
        utils.resize(m, 0.0);
        game.utilities_for(player, &mut profile, &mut utils);
        let max = utils
            .iter()
            .map(|&u| beta * u)
            .fold(f64::NEG_INFINITY, f64::max);
        probs.clear();
        probs.extend(utils.iter().map(|&u| (beta * u - max).exp()));
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = probs.len() - 1;
        for (s, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = s;
                break;
            }
        }
        profile[player] = chosen;
    }
    std::hint::black_box(&profile);
    steps as f64 / clock.elapsed().as_secs_f64()
}

/// Per-update throughput of the tempering ensemble: `K` replicas stepping
/// under uniform selection with a Metropolis swap phase every `n` ticks. The
/// sweep phase is the same monomorphised hot loop as the single engine, so
/// per-update cost must match the profile engine up to the amortised swap
/// overhead (K potential evaluations — O(K·n) work — every K·n updates).
fn tempered_updates_per_sec(n: usize, rungs: usize, updates: u64) -> f64 {
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::ring(n),
        CoordinationGame::from_deltas(1.0, 2.0),
    );
    let ladder = BetaLadder::geometric(0.5, 1.5, rungs);
    let ensemble = TemperingEnsemble::new(game, Logit, ladder.betas());
    let mut state = ensemble.init_state(&vec![0usize; n], 1);
    let sweep_ticks = n as u64;
    let rounds = (updates / (sweep_ticks * rungs as u64)).max(1);
    let clock = std::time::Instant::now();
    for _ in 0..rounds {
        ensemble.round(&UniformSingle, &mut state, sweep_ticks);
    }
    std::hint::black_box(state.cold_profile());
    (rounds * sweep_ticks * rungs as u64) as f64 / clock.elapsed().as_secs_f64()
}

fn tempered_rows(rungs: usize, sizes: &[usize], steps: u64) -> String {
    let mut rows = Vec::new();
    for &n in sizes {
        let tempered = tempered_updates_per_sec(n, rungs, steps);
        // The apples-to-apples baseline is the K = 1 ladder: the same stack
        // (step_scheduled loop, ChaCha replica streams) with no swaps, which
        // the bit-identity regression test pins to the plain engine. The
        // per-rule rows above keep the raw profile-engine numbers (StdRng, a
        // cheaper generator), so the two baselines are not comparable to each
        // other — the tempered invariant is this in-stack ratio.
        let single = tempered_updates_per_sec(n, 1, steps);
        rows.push(format!(
            "        {{\"n\": {n}, \"tempered_updates_per_sec\": {tempered:.0}, \"single_chain_updates_per_sec\": {single:.0}, \"tempered_over_single\": {:.3}}}",
            tempered / single
        ));
        eprintln!(
            "   tempered(K={rungs}) n = {n:>6}: tempered = {tempered:.3e}, K=1 = {single:.3e}, ratio = {:.3}",
            tempered / single
        );
    }
    format!(
        "  \"tempered\": {{\n    \"what\": \"TemperingEnsemble (Logit, K = {rungs} geometric ladder 0.5..1.5), per player-update, swap phase every n ticks, vs the K = 1 ladder through the same stack; the ratio is the orchestration-overhead invariant (swaps amortise to noise)\",\n    \"rows\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    values[values.len() / 2]
}

/// One committed `coloured` row: the coloured independent-set engine paths
/// against per-player sequential stepping, one rule per row, on a large-n
/// dense-degree circulant. Four measurements share the instance:
///
/// * `uniform` — per-player sequential stepping (`step_profile`, one random
///   player per update) through the same ChaCha stream stack the ensembles
///   use: the per-player baseline the coloured paths are judged against,
///   median over the interleaved gate rounds;
/// * `coloured_seq` — the sequential colour-class sweep (`step_coloured`,
///   per-player counter-derived draws, in-place updates), median over the
///   interleaved gate rounds;
/// * `coloured_par` — the legacy per-tick scoped-thread path
///   (`step_coloured_par`), kept as the orchestration-overhead comparison;
/// * `coloured_pooled` — the persistent-pool path (`step_coloured_pooled`),
///   median over the interleaved gate rounds.
///
/// Two **in-process gates** run before any number is emitted:
///
/// 1. *Bit-identity* — one full colour round through the scoped and pooled
///    paths must reproduce the sequential class sweep exactly.
/// 2. *Throughput* — over five interleaved (uniform, sequential, pooled)
///    rounds the best pooled/sequential ratio must reach 1.0 (the pool must
///    not tax the sweep: with one effective worker the pooled path *is* the
///    sequential sweep, so only measurement noise is tolerated away), and
///    the median same-round pooled/uniform ratio must clear the committed
///    1.5 band.
///
/// `wait_policy` and `pinned` record how the emitting host's pool waited
/// and whether core pinning took effect.
#[allow(clippy::too_many_arguments)]
fn coloured_row<U: UpdateRule>(
    rule: U,
    game: &GraphicalCoordinationGame,
    coloring: &Coloring,
    rounds: u64,
    workers: usize,
    pool: &WorkerPool,
    config: &RuntimeConfig,
) -> String {
    let n = game.num_players();
    let d = DynamicsEngine::with_rule(game.clone(), rule.clone(), 1.5);
    let classes = coloring.num_classes();
    let ticks = rounds * classes as u64;
    let updates = rounds * n as u64;

    // Gate 1, bit-identity: a full colour round through the scoped and the
    // pooled paths must reproduce the sequential class sweep exactly before
    // any throughput number is emitted.
    {
        let mut seq = vec![0usize; n];
        let mut par = vec![0usize; n];
        let mut pooled = vec![0usize; n];
        let mut scratch = Scratch::for_game(game);
        let mut pooled_scratch = Scratch::for_game(game);
        let mut staged = Vec::new();
        let mut pooled_staged = Vec::new();
        for t in 0..classes as u64 {
            d.step_coloured(coloring, t, 0x0C01_C4ED, &mut seq, &mut scratch);
            d.step_coloured_par(coloring, t, 0x0C01_C4ED, &mut par, &mut staged, workers);
            d.step_coloured_pooled(
                coloring,
                t,
                0x0C01_C4ED,
                &mut pooled,
                &mut pooled_scratch,
                &mut pooled_staged,
                pool,
                config,
            );
            assert_eq!(
                seq,
                par,
                "scoped coloured path diverged ({} at tick {t})",
                rule.name()
            );
            assert_eq!(
                seq,
                pooled,
                "pooled coloured path diverged ({} at tick {t})",
                rule.name()
            );
        }
    }

    let coloured_par = {
        let mut staged = Vec::new();
        let mut profile = vec![0usize; n];
        let clock = std::time::Instant::now();
        for t in 0..ticks {
            d.step_coloured_par(coloring, t, 2, &mut profile, &mut staged, workers);
        }
        std::hint::black_box(&profile);
        updates as f64 / clock.elapsed().as_secs_f64()
    };

    // Gate 2, throughput: five interleaved (uniform, sequential, pooled)
    // rounds so scheduler drift hits every path alike; the committed rates
    // are the medians, the pool-tax assertion uses the best pairwise
    // pooled/seq ratio and the uniform band uses the median same-round
    // pooled/uniform ratio. The uniform leg used to be a single measurement
    // taken minutes before the gate loop, which let the 1-vCPU emitting
    // host's ±15% drift land entirely on one side of the quotient —
    // same-binary reruns swung pooled/uniform 1.3–2.3 on identical code;
    // paired rounds cancel the drift the same way the legacy-parity and
    // large-n measurements already do.
    let gate_rounds = 5u64;
    let sub_rounds = (rounds / gate_rounds).max(1);
    let sub_ticks = sub_rounds * classes as u64;
    let sub_updates = (sub_rounds * n as u64) as f64;
    let mut uniform_rates = Vec::new();
    let mut seq_rates = Vec::new();
    let mut pooled_rates = Vec::new();
    let mut ratios = Vec::new();
    let mut uniform_ratios = Vec::new();
    {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut uniform_scratch = Scratch::for_game(game);
        let mut scratch = Scratch::for_game(game);
        let mut pooled_scratch = Scratch::for_game(game);
        let mut staged = Vec::new();
        let mut uniform_profile = vec![0usize; n];
        let mut seq_profile = vec![0usize; n];
        let mut pooled_profile = vec![0usize; n];
        for _ in 0..gate_rounds {
            let clock = std::time::Instant::now();
            for _ in 0..sub_rounds * n as u64 {
                d.step_profile(&mut uniform_profile, &mut uniform_scratch, &mut rng);
            }
            std::hint::black_box(&uniform_profile);
            let uniform_rate = sub_updates / clock.elapsed().as_secs_f64();

            let clock = std::time::Instant::now();
            for t in 0..sub_ticks {
                d.step_coloured(coloring, t, 2, &mut seq_profile, &mut scratch);
            }
            std::hint::black_box(&seq_profile);
            let seq_rate = sub_updates / clock.elapsed().as_secs_f64();

            let clock = std::time::Instant::now();
            for t in 0..sub_ticks {
                d.step_coloured_pooled(
                    coloring,
                    t,
                    2,
                    &mut pooled_profile,
                    &mut pooled_scratch,
                    &mut staged,
                    pool,
                    config,
                );
            }
            std::hint::black_box(&pooled_profile);
            let pooled_rate = sub_updates / clock.elapsed().as_secs_f64();

            ratios.push(pooled_rate / seq_rate);
            uniform_ratios.push(pooled_rate / uniform_rate);
            uniform_rates.push(uniform_rate);
            seq_rates.push(seq_rate);
            pooled_rates.push(pooled_rate);
        }
    }
    let uniform = median(uniform_rates);
    let coloured_seq = median(seq_rates);
    let coloured_pooled = median(pooled_rates);
    let best_pooled_over_seq = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let pooled_over_seq = coloured_pooled / coloured_seq;
    let pooled_over_uniform = median(uniform_ratios);
    assert!(
        best_pooled_over_seq >= 1.0,
        "pooled coloured path taxes the sequential sweep ({}: best pooled/seq = {best_pooled_over_seq:.3} over {gate_rounds} rounds)",
        rule.name()
    );
    assert!(
        pooled_over_uniform > 1.5,
        "pooled coloured path fell out of the committed band ({}: pooled/uniform = {pooled_over_uniform:.3}, band > 1.5)",
        rule.name()
    );

    let par_over_uniform = coloured_par / uniform;
    let par_over_seq = coloured_par / coloured_seq;
    let wait_policy = pool.wait_policy().name();
    let pinned = pool.registry().pinned_count() > 0;
    eprintln!(
        "   coloured {:>17} n = {n}: uniform = {uniform:.3e}, seq sweep = {coloured_seq:.3e}, par({workers}) = {coloured_par:.3e}, pooled = {coloured_pooled:.3e}, pooled/uniform = {pooled_over_uniform:.3}, pooled/seq = {pooled_over_seq:.3} (best {best_pooled_over_seq:.3})",
        rule.name()
    );
    format!(
        "        {{\"rule\": \"{}\", \"n\": {n}, \"degree\": {}, \"classes\": {classes}, \"workers\": {workers}, \"wait_policy\": \"{wait_policy}\", \"pinned\": {pinned}, \"uniform_updates_per_sec\": {uniform:.0}, \"coloured_seq_updates_per_sec\": {coloured_seq:.0}, \"coloured_par_updates_per_sec\": {coloured_par:.0}, \"coloured_pooled_updates_per_sec\": {coloured_pooled:.0}, \"par_over_uniform\": {par_over_uniform:.3}, \"par_over_seq\": {par_over_seq:.3}, \"pooled_over_uniform\": {pooled_over_uniform:.3}, \"pooled_over_seq\": {pooled_over_seq:.3}, \"best_pooled_over_seq\": {best_pooled_over_seq:.3}}}",
        rule.name(),
        game.graph().max_degree()
    )
}

fn coloured_rows(steps: u64) -> String {
    // Large-n dense-degree instance: a circulant ring with 64 chords per
    // side (degree 128, adjacency ≈ 50 MB — far beyond cache). At this
    // size coloring_for_game picks first-fit greedy (O(n + m)): 80 classes
    // of ≤ 769 players, between the clique bound k + 1 = 65 and
    // Δ + 1 = 129 (the wrap-around window costs the extra classes when
    // k + 1 does not divide n) — wide independent sets, exactly the shape
    // the parallel path is built for.
    let n = 50_000usize;
    let k = 64usize;
    eprintln!("   building circulant(n = {n}, k = {k}) + colouring ...");
    let graph = GraphBuilder::circulant(n, k);
    let game = GraphicalCoordinationGame::new(graph, CoordinationGame::from_deltas(1.0, 2.0));
    let coloring = coloring_for_game(&game);
    let config = RuntimeConfig::from_env();
    let pool = WorkerPool::new(&config);
    let workers = config.resolved_workers();
    let rounds = (steps / n as u64).max(2);
    let rows = [
        coloured_row(Logit, &game, &coloring, rounds, workers, &pool, &config),
        coloured_row(
            MetropolisLogit,
            &game,
            &coloring,
            rounds,
            workers,
            &pool,
            &config,
        ),
        coloured_row(
            NoisyBestResponse::new(0.1),
            &game,
            &coloring,
            rounds,
            workers,
            &pool,
            &config,
        ),
    ];
    let scaling = worker_scaling_rows(&game, &coloring, rounds, 2 * k);
    format!(
        "  \"coloured\": {{\n    \"what\": \"coloured independent-set revision on a dense-degree circulant (n = {n}, degree {}, first-fit classes via the scale-aware coloring_for_game) vs per-player sequential stepping through the same engine; two in-process gates must pass before rows are emitted: bit-identity (one full colour round, scoped == pooled == sequential class sweep) and throughput (best pooled/seq over 5 interleaved rounds >= 1.0 — the persistent pool must not tax the sweep — and median pooled/uniform > 1.5). Committed invariants: the gates plus the ratios — pooled_over_uniform pins the coloured path beating per-player sequential stepping (the ascending class sweep streams the DRAM-resident adjacency where random-player stepping cache-misses, and counter-derived per-player draws replace stream draws; band to hold: > 1.5), pooled_over_seq pins the persistent-pool orchestration overhead (par_over_seq keeps the legacy per-tick scoped-thread cost for comparison); coloured_pooled additionally scales with cores (the emitting host resolved workers = {workers}; per-player sequential stepping cannot use more than one). wait_policy and pinned record the emitting pool's idle strategy and whether core pinning took effect\",\n    \"rows\": [\n{}\n    ]\n  }},\n{scaling}",
        2 * k,
        rows.join(",\n")
    )
}

/// The worker-scaling row-set: the pooled, scoped and sequential coloured
/// paths at explicit worker counts on the same circulant instance. Recorded,
/// not gated — on hosts with fewer cores than the row's worker count the
/// extra workers oversubscribe and the ratios document that, which is
/// exactly the information the row-set exists to commit.
fn worker_scaling_rows(
    game: &GraphicalCoordinationGame,
    coloring: &Coloring,
    rounds: u64,
    degree: usize,
) -> String {
    let n = game.num_players();
    let d = DynamicsEngine::with_rule(game.clone(), Logit, 1.5);
    let classes = coloring.num_classes() as u64;
    let rounds = (rounds / 2).max(2);
    let ticks = rounds * classes;
    let updates = (rounds * n as u64) as f64;

    let seq_rate = {
        let mut scratch = Scratch::for_game(game);
        let mut profile = vec![0usize; n];
        let clock = std::time::Instant::now();
        for t in 0..ticks {
            d.step_coloured(coloring, t, 2, &mut profile, &mut scratch);
        }
        std::hint::black_box(&profile);
        updates / clock.elapsed().as_secs_f64()
    };

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let config = RuntimeConfig {
            workers,
            ..RuntimeConfig::from_env()
        };
        let pool = WorkerPool::new(&config);

        let scoped_rate = {
            let mut staged = Vec::new();
            let mut profile = vec![0usize; n];
            let clock = std::time::Instant::now();
            for t in 0..ticks {
                d.step_coloured_par(coloring, t, 2, &mut profile, &mut staged, workers);
            }
            std::hint::black_box(&profile);
            updates / clock.elapsed().as_secs_f64()
        };

        let pooled_rate = {
            let mut scratch = Scratch::for_game(game);
            let mut staged = Vec::new();
            let mut profile = vec![0usize; n];
            let clock = std::time::Instant::now();
            for t in 0..ticks {
                d.step_coloured_pooled(
                    coloring,
                    t,
                    2,
                    &mut profile,
                    &mut scratch,
                    &mut staged,
                    &pool,
                    &config,
                );
            }
            std::hint::black_box(&profile);
            updates / clock.elapsed().as_secs_f64()
        };

        let pooled_over_seq = pooled_rate / seq_rate;
        let scoped_over_seq = scoped_rate / seq_rate;
        let pinned = pool.registry().pinned_count() > 0;
        eprintln!(
            "   scaling  workers = {workers}: seq = {seq_rate:.3e}, scoped = {scoped_rate:.3e}, pooled = {pooled_rate:.3e}, pooled/seq = {pooled_over_seq:.3}, scoped/seq = {scoped_over_seq:.3}"
        );
        rows.push(format!(
            "        {{\"workers\": {workers}, \"wait_policy\": \"{}\", \"pinned\": {pinned}, \"coloured_seq_updates_per_sec\": {seq_rate:.0}, \"coloured_par_updates_per_sec\": {scoped_rate:.0}, \"coloured_pooled_updates_per_sec\": {pooled_rate:.0}, \"pooled_over_seq\": {pooled_over_seq:.3}, \"scoped_over_seq\": {scoped_over_seq:.3}}}",
            pool.wait_policy().name()
        ));
    }
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    format!(
        "  \"coloured_worker_scaling\": {{\n    \"what\": \"the pooled vs per-tick-scoped vs sequential coloured paths (Logit) at explicit worker counts on the same circulant (n = {n}, degree {degree}); recorded, not gated — worker counts above the emitting host's cores ({host_cores} here) oversubscribe, and the committed ratios document how gracefully each orchestration degrades (near-linear scaling is the expectation only up to the core count)\",\n    \"rows\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

/// A circulant with its player labels scrambled by a seeded random
/// permutation — the worst-case-locality instance the `large_n` rows run
/// on: the interaction structure is a narrow band, but the labelling hides
/// it, so the unrelabelled engine gathers from all over an `O(n)` array
/// while the RCM layout recovers bandwidth ≈ `2k` and turns every gather
/// into a near-neighbour load.
fn shuffled_circulant(n: usize, k: usize, seed: u64) -> Graph {
    let graph = GraphBuilder::circulant(n, k);
    let mut rng = StdRng::seed_from_u64(seed);
    let shuffle = VertexOrdering::random(n, &mut rng);
    graph.relabelled(&shuffle)
}

/// Nonzero entries of [`Graph::degree_histogram`] as a compact
/// `"degree:count"` string — the per-row record that the instance's degree
/// profile is what the row claims (uniform `2k` for the circulants here).
fn degree_histogram_summary(graph: &Graph) -> String {
    graph
        .degree_histogram()
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count > 0)
        .map(|(d, &count)| format!("{d}:{count}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// One timed leg of the relabelled CSR byte engine: `rounds` full colour
/// rounds of `step_coloured_pooled_bytes`, returning updates per second.
#[allow(clippy::too_many_arguments)]
fn csr_leg<U: UpdateRule>(
    engine: &DynamicsEngine<GraphicalCoordinationGame, U>,
    layout: &LocalityLayout,
    rounds: u64,
    bytes: &mut [u8],
    scratch: &mut Scratch,
    pool: &WorkerPool,
    config: &RuntimeConfig,
) -> f64 {
    let classes = layout.coloring().num_classes() as u64;
    let updates = rounds * bytes.len() as u64;
    let clock = std::time::Instant::now();
    for t in 0..rounds * classes {
        engine.step_coloured_pooled_bytes(
            layout.coloring(),
            t,
            2,
            Some(layout.labels()),
            bytes,
            scratch,
            pool,
            config,
        );
    }
    std::hint::black_box(&bytes);
    updates as f64 / clock.elapsed().as_secs_f64()
}

/// One committed `large_n` row: the memory-locality engine (RCM-relabelled
/// game, CSR adjacency, byte SoA profile, cache-blocked pooled sweeps,
/// draws keyed by original player ids) against the pooled usize engine on
/// the same label-shuffled circulant. Two in-process gates run before any
/// number is emitted:
///
/// 1. *Bit-identity* — one full colour round of the relabelled byte pooled
///    path, unpacked through the inverse permutation, must reproduce the
///    unrelabelled sequential class sweep exactly (moved counts included).
/// 2. *Throughput* — at `n ≥ 10⁵` (adjacency past L2) the best
///    csr_relabelled/pooled ratio over the interleaved rounds must reach
///    1.0: the locality layer must never tax the engine where it matters.
///
/// `rate_vs_n1e4` (the tentpole's ≥ 0.70-at-`10⁶` win condition) is
/// measured as a **paired** ratio: csr-only legs on this instance alternate
/// with equal-update legs on a same-rule `n = 10⁴` reference instance, and
/// the committed number is the median of the per-pair ratios — so host
/// throughput drift (the emitting host is a 1-core VM whose sustained rate
/// wanders ±15% over minutes) cancels instead of landing in the quotient.
fn large_n_row<U: UpdateRule>(
    rule: U,
    n: usize,
    k: usize,
    rounds: u64,
    pool: &WorkerPool,
    config: &RuntimeConfig,
) -> String {
    let shuffled = shuffled_circulant(n, k, 0x0BAD_C0DE ^ n as u64);
    let histogram = degree_histogram_summary(&shuffled);
    let coloring = coloring_for_graph(&shuffled);
    let layout = LocalityLayout::from_graph(&shuffled, &coloring);
    let base = CoordinationGame::from_deltas(1.0, 2.0);
    let game = GraphicalCoordinationGame::new(shuffled.clone(), base);
    let relabelled = GraphicalCoordinationGame::new(layout.relabel_graph(&shuffled), base);
    drop(shuffled);
    let classes = coloring.num_classes();
    let d = DynamicsEngine::with_rule(game, rule.clone(), 1.5);
    let dl = DynamicsEngine::with_rule(relabelled, rule.clone(), 1.5);

    // Gate 1, bit-identity: a full colour round of the relabelled byte
    // pooled path must replay the unrelabelled sequential class sweep
    // exactly after the inverse permutation.
    {
        let mut reference = vec![0usize; n];
        let mut ref_scratch = Scratch::for_game(d.game());
        let mut bytes = Vec::new();
        layout.pack_profile(&reference, &mut bytes);
        let mut byte_scratch = Scratch::for_game(dl.game());
        let mut unpacked = Vec::new();
        for t in 0..classes as u64 {
            let moved_ref =
                d.step_coloured(&coloring, t, 0x10CA_117F, &mut reference, &mut ref_scratch);
            let moved_csr = dl.step_coloured_pooled_bytes(
                layout.coloring(),
                t,
                0x10CA_117F,
                Some(layout.labels()),
                &mut bytes,
                &mut byte_scratch,
                pool,
                config,
            );
            assert_eq!(
                moved_ref,
                moved_csr,
                "relabelled moved count diverged ({} at n = {n}, tick {t})",
                rule.name()
            );
            layout.unpack_profile(&bytes, &mut unpacked);
            assert_eq!(
                unpacked,
                reference,
                "relabelled CSR path diverged ({} at n = {n}, tick {t})",
                rule.name()
            );
        }
    }

    // Interleaved throughput rounds so scheduler drift hits both paths
    // alike; committed rates are the medians, the gate uses the best ratio.
    let gate_rounds = 3u64;
    let sub_rounds = rounds.max(1);
    let sub_ticks = sub_rounds * classes as u64;
    let sub_updates = (sub_rounds * n as u64) as f64;
    let mut pooled_rates = Vec::new();
    let mut csr_rates = Vec::new();
    let mut ratios = Vec::new();
    {
        let mut pooled_profile = vec![0usize; n];
        let mut pooled_scratch = Scratch::for_game(d.game());
        let mut pooled_staged = Vec::new();
        let mut bytes = Vec::new();
        layout.pack_profile(&pooled_profile, &mut bytes);
        let mut byte_scratch = Scratch::for_game(dl.game());
        for _ in 0..gate_rounds {
            let clock = std::time::Instant::now();
            for t in 0..sub_ticks {
                d.step_coloured_pooled(
                    &coloring,
                    t,
                    2,
                    &mut pooled_profile,
                    &mut pooled_scratch,
                    &mut pooled_staged,
                    pool,
                    config,
                );
            }
            std::hint::black_box(&pooled_profile);
            let pooled_rate = sub_updates / clock.elapsed().as_secs_f64();

            let clock = std::time::Instant::now();
            for t in 0..sub_ticks {
                dl.step_coloured_pooled_bytes(
                    layout.coloring(),
                    t,
                    2,
                    Some(layout.labels()),
                    &mut bytes,
                    &mut byte_scratch,
                    pool,
                    config,
                );
            }
            std::hint::black_box(&bytes);
            let csr_rate = sub_updates / clock.elapsed().as_secs_f64();

            ratios.push(csr_rate / pooled_rate);
            pooled_rates.push(pooled_rate);
            csr_rates.push(csr_rate);
        }
    }
    let pooled = median(pooled_rates);
    let csr = median(csr_rates);
    let csr_over_pooled = csr / pooled;
    let best_csr_over_pooled = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    // Steady-state rate and the size-vs-size ratio. Two separate defects of
    // the naive protocol are handled here:
    //
    // * The interleaved rounds above are the fair csr-vs-pooled head-to-head
    //   (both paths eat the same scheduler drift), but they also make each
    //   csr leg restart with a cache full of the pooled leg's
    //   `Vec<Vec<usize>>` adjacency — a real ~25% tax at n = 10⁶ that no
    //   sustained simulation pays. The committed steady rate is therefore
    //   the median of csr-only legs.
    // * Dividing this instance's rate by an `n = 10⁴` rate measured minutes
    //   earlier bakes host throughput drift into the quotient (the emitting
    //   1-core VM wanders ±15% over minutes). So each csr leg is *paired*
    //   with an equal-update leg on a same-rule `n = 10⁴` reference
    //   instance run seconds before it, and `rate_vs_n1e4` is the median of
    //   the per-pair ratios.
    let steady_pairs = 5;
    let mut reference_1e4 = (n > 10_000).then(|| {
        let ref_graph = shuffled_circulant(10_000, k, 0x0BAD_C0DE ^ 10_000);
        let ref_coloring = coloring_for_graph(&ref_graph);
        let ref_layout = LocalityLayout::from_graph(&ref_graph, &ref_coloring);
        let ref_game = GraphicalCoordinationGame::new(ref_layout.relabel_graph(&ref_graph), base);
        let engine = DynamicsEngine::with_rule(ref_game, rule.clone(), 1.5);
        let bytes = vec![0u8; 10_000];
        let scratch = Scratch::for_game(engine.game());
        (engine, ref_layout, bytes, scratch)
    });
    let ref_rounds = sub_rounds * (n as u64 / 10_000);
    let (csr_steady, rate_vs_n1e4) = {
        let zeros = vec![0usize; n];
        let mut bytes = Vec::new();
        layout.pack_profile(&zeros, &mut bytes);
        let mut byte_scratch = Scratch::for_game(dl.game());
        let mut steady_rates = Vec::new();
        let mut paired_ratios = Vec::new();
        for _ in 0..steady_pairs {
            let ref_rate = reference_1e4
                .as_mut()
                .map(|(engine, l, b, s)| csr_leg(engine, l, ref_rounds, b, s, pool, config));
            let rate = csr_leg(
                &dl,
                &layout,
                sub_rounds,
                &mut bytes,
                &mut byte_scratch,
                pool,
                config,
            );
            steady_rates.push(rate);
            if let Some(ref_rate) = ref_rate {
                paired_ratios.push(rate / ref_rate);
            }
        }
        let ratio = (!paired_ratios.is_empty()).then(|| median(paired_ratios));
        (median(steady_rates), ratio)
    };

    // Gate 2, throughput: once the adjacency is past L2 the locality layer
    // must pay for itself on the emitting host.
    if n >= 100_000 {
        assert!(
            best_csr_over_pooled >= 1.0,
            "relabelled CSR path taxes the pooled engine ({}: best csr/pooled = {best_csr_over_pooled:.3} at n = {n})",
            rule.name()
        );
    }

    let rate_vs_field = rate_vs_n1e4
        .map(|r| format!("{r:.3}"))
        .unwrap_or_else(|| "null".to_string());
    eprintln!(
        "   large_n {:>17} n = {n:>8}: bandwidth {} -> {}, pooled = {pooled:.3e}, csr_relabelled = {csr:.3e} (steady {csr_steady:.3e}), csr/pooled = {csr_over_pooled:.3} (best {best_csr_over_pooled:.3}), vs n=1e4: {rate_vs_field}",
        rule.name(),
        layout.bandwidth_before(),
        layout.bandwidth_after(),
    );
    let row = format!(
        "        {{\"rule\": \"{}\", \"n\": {n}, \"degree_histogram\": \"{histogram}\", \"classes\": {classes}, \"bandwidth_shuffled\": {}, \"bandwidth_rcm\": {}, \"block_players\": {}, \"pooled_updates_per_sec\": {pooled:.0}, \"csr_relabelled_updates_per_sec\": {csr:.0}, \"csr_steady_updates_per_sec\": {csr_steady:.0}, \"csr_over_pooled\": {csr_over_pooled:.3}, \"best_csr_over_pooled\": {best_csr_over_pooled:.3}, \"rate_vs_n1e4\": {rate_vs_field}}}",
        rule.name(),
        layout.bandwidth_before(),
        layout.bandwidth_after(),
        config.block_players,
    );
    row
}

fn large_n_rows(steps: u64, full: bool) -> String {
    let k = 4usize;
    let config = RuntimeConfig::from_env();
    let pool = WorkerPool::new(&config);
    let sizes: &[usize] = if full {
        &[10_000, 100_000, 1_000_000]
    } else {
        &[10_000, 100_000]
    };
    let mut rows = Vec::new();
    // A named runner per rule: (n, rounds) -> row.
    type LargeNRunner<'a> = Box<dyn Fn(usize, u64) -> String + 'a>;
    let rules: [(&str, LargeNRunner); 3] = [
        (
            "logit",
            Box::new(|n, r| large_n_row(Logit, n, k, r, &pool, &config)),
        ),
        (
            "metropolis-logit",
            Box::new(|n, r| large_n_row(MetropolisLogit, n, k, r, &pool, &config)),
        ),
        (
            "noisy-best-response",
            Box::new(|n, r| large_n_row(NoisyBestResponse::new(0.1), n, k, r, &pool, &config)),
        ),
    ];
    for (name, run) in &rules {
        for &n in sizes {
            eprintln!(
                "   building shuffled circulant(n = {n}, k = {k}) + RCM layout for {name} ..."
            );
            // Every leg gets ~`steps` updates regardless of size, so every
            // rate is measured over the same wall-clock scale.
            let rounds = (steps / n as u64).max(1);
            rows.push(run(n, rounds));
        }
        // The 10⁷ tail is measured for the logit rule only: the other rules
        // share the kernel shape, and the instance build dominates the run.
        if *name == "logit" && full {
            eprintln!(
                "   building shuffled circulant(n = 10000000, k = {k}) + RCM layout for logit ..."
            );
            rows.push(run(10_000_000, 1));
        }
    }
    format!(
        "  \"large_n\": {{\n    \"what\": \"memory-locality engine (reverse-Cuthill-McKee relabelled game, CSR adjacency, byte SoA strategy profile, cache-blocked pooled sweeps of at most block_players players, draws keyed by original ids) vs the pooled usize engine on the same label-shuffled circulant (degree {}); two in-process gates before emission: bit-identity (one full colour round of the relabelled byte path, unpacked through the inverse permutation, == the unrelabelled sequential class sweep, moved counts included) and throughput (best csr_relabelled/pooled over 3 interleaved rounds >= 1.0 at n >= 1e5). Committed invariants: the gates, bandwidth_shuffled >> bandwidth_rcm (the relabelling recovers the hidden band), and rate_vs_n1e4 — each size's csr rate against the same rule's n = 1e4 reference, measured as the median of paired ratios (each csr-only steady leg runs seconds after an equal-update leg on a same-rule n = 1e4 reference instance, so host throughput drift cancels in the quotient instead of being committed); the tentpole win condition is >= 0.70 at n = 1e6 (the locality layer holds most of the in-cache rate at 100x the size). csr_steady_updates_per_sec is the median of the csr-only legs — the rate a sustained run sees, without the interleaved rounds' cache-repollution tax\",\n    \"rows\": [\n{}\n    ]\n  }}",
        2 * k,
        rows.join(",\n")
    )
}

/// Aggregate stepping throughput of a replica ensemble through either the
/// sequential `run_profiles` path (observables evaluated on the stepping
/// threads, end-of-run fold) or the pipelined farm/reducer stages
/// (observables evaluated off the stepping threads, streamed reduction).
/// Returns the rate and the full result so the caller can pin the
/// bit-identity contract in-process.
fn ensemble_steps_per_sec<U: UpdateRule>(
    n: usize,
    rule: U,
    replicas: usize,
    steps_per_replica: u64,
    pipelined: bool,
) -> (f64, logit_core::ProfileEnsembleResult) {
    let dynamics = ring_dynamics(n, rule);
    let sim = Simulator::new(0xB1BE, replicas);
    let observable = StrategyFraction::new(1, "adopters");
    let start = vec![0usize; n];
    let sample_every = (steps_per_replica / 8).max(1);
    let clock = std::time::Instant::now();
    let result = if pipelined {
        sim.run_profiles_pipelined(
            &dynamics,
            &start,
            steps_per_replica,
            sample_every,
            &observable,
        )
    } else {
        sim.run_profiles(
            &dynamics,
            &start,
            steps_per_replica,
            sample_every,
            &observable,
        )
    };
    let total = steps_per_replica * replicas as u64;
    let rate = total as f64 / clock.elapsed().as_secs_f64();
    std::hint::black_box(&result.final_values);
    (rate, result)
}

/// The in-process bit-identity gate: final observable values *and* every
/// per-time `RunningStats` must match exactly — a fold-order regression at
/// an intermediate sample index cannot hide behind matching finals.
fn assert_bit_identical(
    seq: &logit_core::ProfileEnsembleResult,
    pipe: &logit_core::ProfileEnsembleResult,
    context: &str,
) {
    assert_eq!(
        seq.final_values, pipe.final_values,
        "pipelined ensemble diverged from the sequential path ({context})"
    );
    assert_eq!(seq.times, pipe.times, "time grids diverged ({context})");
    for (k, (s, p)) in seq.series.iter().zip(&pipe.series).enumerate() {
        assert!(
            s.count() == p.count()
                && s.mean() == p.mean()
                && s.variance() == p.variance()
                && s.min() == p.min()
                && s.max() == p.max(),
            "pipelined series stats diverged at sample {k} ({context})"
        );
    }
}

/// One committed `pipelined` row: median-of-3 interleaved sequential vs
/// pipelined rounds for one rule, with the bit-identity contract asserted on
/// every round (the pipelined runner must reproduce the sequential ensemble
/// exactly, not just at matching speed).
fn pipelined_row<U: UpdateRule>(
    rule: U,
    n: usize,
    replicas: usize,
    steps_per_replica: u64,
) -> String {
    let mut rounds: Vec<(f64, f64)> = (0..3)
        .map(|_| {
            let (seq, seq_result) =
                ensemble_steps_per_sec(n, rule.clone(), replicas, steps_per_replica, false);
            let (pipe, pipe_result) =
                ensemble_steps_per_sec(n, rule.clone(), replicas, steps_per_replica, true);
            assert_bit_identical(
                &seq_result,
                &pipe_result,
                &format!("{} at n = {n}", rule.name()),
            );
            (seq, pipe)
        })
        .collect();
    rounds.sort_by(|a, b| {
        (a.1 / a.0)
            .partial_cmp(&(b.1 / b.0))
            .expect("finite ratios")
    });
    let (seq, pipe) = rounds[1];
    let ratio = pipe / seq;
    eprintln!(
        "  pipelined {:>17} n = {n:>6}: sequential = {seq:.3e}, pipelined = {pipe:.3e}, ratio = {ratio:.3}",
        rule.name()
    );
    format!(
        "        {{\"rule\": \"{}\", \"n\": {n}, \"replicas\": {replicas}, \"sequential_steps_per_sec\": {seq:.0}, \"pipelined_steps_per_sec\": {pipe:.0}, \"pipelined_over_sequential\": {ratio:.3}}}",
        rule.name()
    )
}

/// One pipelined ensemble run under an explicit channel backend and reducer
/// mode, for the `channel_backends` row-set. Same workload shape as
/// [`ensemble_steps_per_sec`] so the rows are comparable to the `pipelined`
/// row-set.
fn backend_ensemble_steps_per_sec(
    n: usize,
    replicas: usize,
    steps_per_replica: u64,
    backend: ChannelBackendKind,
    reducer: ReducerMode,
) -> (f64, logit_core::ProfileEnsembleResult) {
    let dynamics = ring_dynamics(n, Logit);
    let sim = Simulator::new(0xB1BE, replicas);
    let observable = StrategyFraction::new(1, "adopters");
    let start = vec![0usize; n];
    let sample_every = (steps_per_replica / 8).max(1);
    let config = PipelineConfig {
        backend,
        reducer,
        ..PipelineConfig::default()
    };
    let clock = std::time::Instant::now();
    let result = sim.run_profiles_pipelined_with(
        &dynamics,
        &start,
        steps_per_replica,
        sample_every,
        &observable,
        &config,
    );
    let total = steps_per_replica * replicas as u64;
    let rate = total as f64 / clock.elapsed().as_secs_f64();
    std::hint::black_box(&result.final_values);
    (rate, result)
}

/// The unordered-reducer gate: counts, min/max, finals and the empirical
/// law must match the ordered result exactly; the Welford moments only to
/// floating-point rounding of the arrival-order fold.
fn assert_unordered_matches_ordered(
    ordered: &logit_core::ProfileEnsembleResult,
    unordered: &logit_core::ProfileEnsembleResult,
    context: &str,
) {
    assert_eq!(
        ordered.final_values, unordered.final_values,
        "unordered finals diverged ({context})"
    );
    assert_eq!(
        ordered.times, unordered.times,
        "time grids diverged ({context})"
    );
    assert_eq!(
        ordered.law().ks_distance(&unordered.law()),
        0.0,
        "final-time empirical laws diverged ({context})"
    );
    for (k, (o, u)) in ordered.series.iter().zip(&unordered.series).enumerate() {
        assert!(
            o.count() == u.count() && o.min() == u.min() && o.max() == u.max(),
            "unordered counts/min/max diverged at sample {k} ({context})"
        );
        assert!(
            (o.mean() - u.mean()).abs() <= 1e-9 * (1.0 + o.mean().abs())
                && (o.variance() - u.variance()).abs() <= 1e-9 * (1.0 + o.variance().abs()),
            "unordered moments drifted beyond fp rounding at sample {k} ({context})"
        );
    }
}

/// The `channel_backends` row-set: the three channel backends race on the
/// same pipelined ensemble, interleaved within each round so host drift
/// cancels out of the ratios. Gates asserted in-process before any row is
/// emitted:
/// * ordered mode is bit-identical to `run_profiles` on **every** backend;
/// * the best backend's median ratio vs the same-round `sync_channel` rate
///   is >= 1.0 (sync itself scores exactly 1.0, so the gate pins "no
///   backend regression" rather than a host-dependent speedup);
/// * unordered mode matches the ordered result per the merge contract.
fn channel_backend_rows(n: usize, steps: u64) -> String {
    let replicas = 8usize;
    let steps_per_replica = (steps / replicas as u64).max(1);
    let backends = ChannelBackendKind::ALL;
    let mut rates: Vec<Vec<f64>> = vec![Vec::new(); backends.len()];
    for _round in 0..3 {
        let (_, seq_result) = ensemble_steps_per_sec(n, Logit, replicas, steps_per_replica, false);
        for (b, &backend) in backends.iter().enumerate() {
            let (rate, result) = backend_ensemble_steps_per_sec(
                n,
                replicas,
                steps_per_replica,
                backend,
                ReducerMode::Ordered,
            );
            assert_bit_identical(
                &seq_result,
                &result,
                &format!("{} backend at n = {n}", backend.name()),
            );
            rates[b].push(rate);
        }
    }
    // Correctness leg (untimed): the unordered reducer on every backend.
    let (_, ordered_ref) = backend_ensemble_steps_per_sec(
        n,
        replicas,
        steps_per_replica,
        ChannelBackendKind::Sync,
        ReducerMode::Ordered,
    );
    for &backend in &backends {
        let (_, unordered) = backend_ensemble_steps_per_sec(
            n,
            replicas,
            steps_per_replica,
            backend,
            ReducerMode::Unordered,
        );
        assert_unordered_matches_ordered(
            &ordered_ref,
            &unordered,
            &format!("{} backend at n = {n}", backend.name()),
        );
    }
    // Per-round ratios vs the same round's sync rate, then the median.
    let ratios: Vec<f64> = (0..backends.len())
        .map(|b| {
            median(
                (0..rates[b].len())
                    .map(|round| rates[b][round] / rates[0][round])
                    .collect(),
            )
        })
        .collect();
    let best = ratios.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        best >= 1.0,
        "no channel backend reached the sync_channel baseline (best ratio {best:.3})"
    );
    let rows: Vec<String> = backends
        .iter()
        .enumerate()
        .map(|(b, backend)| {
            let rate = median(rates[b].clone());
            eprintln!(
                "  channel_backends {:>6} n = {n:>6}: ordered = {rate:.3e} steps/s, ratio vs sync = {:.3}",
                backend.name(),
                ratios[b]
            );
            format!(
                "        {{\"backend\": \"{}\", \"n\": {n}, \"replicas\": {replicas}, \"ordered_steps_per_sec\": {rate:.0}, \"ratio_vs_sync\": {:.3}, \"unordered_equivalence_checked\": true}}",
                backend.name(),
                ratios[b]
            )
        })
        .collect();
    format!(
        "  \"channel_backends\": {{\n    \"what\": \"run_profiles_pipelined_with racing the three ChannelBackendKind transports (sync_channel, lock-free SPSC rings, lock-free MPMC) on the same Logit ensemble, {replicas} replicas, 3 interleaved rounds; in-process gates before emission: ordered mode bit-identical to run_profiles on every backend, best median ratio vs the same-round sync rate >= 1.0, and the unordered merge-on-arrival reducer matching ordered exactly on counts/min/max/finals/law and to fp rounding on moments\",\n    \"rows\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

fn pipelined_rows(n: usize, steps: u64) -> String {
    let replicas = 8usize;
    let steps_per_replica = (steps / replicas as u64).max(1);
    let rows = [
        pipelined_row(Logit, n, replicas, steps_per_replica),
        pipelined_row(MetropolisLogit, n, replicas, steps_per_replica),
        pipelined_row(NoisyBestResponse::new(0.1), n, replicas, steps_per_replica),
    ];
    format!(
        "  \"pipelined\": {{\n    \"what\": \"Simulator::run_profiles_pipelined (farm of step workers -> bounded channels -> streamed observable reducer) vs run_profiles through the same engine, {replicas} replicas, StrategyFraction sampled 8x per run; bit-identity of the final observable values and every per-time series statistic is asserted in-process every round, and the committed per-rule ratio is the invariant (stepping throughput must stay within 10% of the sequential baseline while reduction runs off the stepping threads)\",\n    \"rows\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

fn rule_rows<U: UpdateRule>(rule: U, sizes: &[usize], steps: u64) -> String {
    let mut rows = Vec::new();
    for &n in sizes {
        let flat = if n <= FLAT_LIMIT {
            format!("{:.0}", flat_steps_per_sec(n, rule.clone(), steps))
        } else {
            "null".to_string()
        };
        let profile = profile_steps_per_sec(n, rule.clone(), steps);
        rows.push(format!(
            "        {{\"n\": {n}, \"flat_steps_per_sec\": {flat}, \"profile_steps_per_sec\": {profile:.0}}}"
        ));
        eprintln!(
            "{:>19} n = {n:>6}: flat = {flat:>12}, profile = {profile:.3e} steps/sec",
            rule.name()
        );
    }
    format!(
        "    {{\n      \"rule\": \"{}\",\n      \"rows\": [\n{}\n      ]\n    }}",
        rule.name(),
        rows.join(",\n")
    )
}

/// Service row-set: the `logit-server` job server under a concurrent mixed
/// batch, measured as admission-to-DONE latency per job plus aggregate
/// throughput. The in-process gate is the service's whole contract: every
/// streamed series must be **byte-identical** (as wire frames, i.e. f64 bit
/// patterns) to an offline `run_direct` replay of the same description on a
/// fresh `Simulator` — across cache hits, concurrent tenants and a
/// cancellation racing the batch. A diverging stream panics before any row
/// is emitted.
fn service_rows(steps: u64) -> String {
    use logit_server::{
        prepare, run_direct, submit_job, ArtifactCache, ClientOutcome, JobSpec, RunningServer,
        ServerConfig,
    };
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    use std::sync::Arc;

    let steps = steps.min(200_000);
    let job_text = |seed: u64, flavour: usize| -> String {
        match flavour {
            0 => format!(
                "game=graphical\ntopology=ring\nn=1000\ndelta0=2.0\ndelta1=1.0\n\
                 rule=logit\nschedule=uniform\nmode=pipelined\nbeta=1.2\nsteps={steps}\n\
                 sample_every={}\nobservable=fraction1\nreplicas=8\nseed={seed}",
                steps / 8
            ),
            1 => format!(
                "game=ising\ntopology=torus\nrows=24\ncols=24\ncoupling=0.8\n\
                 rule=metropolis\nschedule=sweep\nmode=pipelined\nbeta=0.9\nsteps={steps}\n\
                 sample_every={}\nobservable=potential\nreplicas=6\nseed={seed}",
                steps / 8
            ),
            _ => format!(
                "game=ising\ntopology=circulant\nn=600\nk=3\ncoupling=1.0\n\
                 rule=logit\nschedule=coloured\nmode=pipelined\nbeta=1.5\nsteps={}\n\
                 sample_every={}\nobservable=fraction0\nreplicas=4\nseed={seed}",
                steps / 4,
                steps / 16
            ),
        }
    };

    let server = RunningServer::start(0, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();
    let jobs = 12usize;
    let clients = 4usize;
    let next = Arc::new(AtomicUsize::new(0));
    let started = std::time::Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let next = Arc::clone(&next);
                scope.spawn(move || {
                    let mut secs = Vec::new();
                    loop {
                        let j = next.fetch_add(1, AtomicOrdering::Relaxed);
                        if j >= jobs {
                            return secs;
                        }
                        let text = job_text(j as u64, j % 3);
                        let (outcome, timing) =
                            submit_job(addr, &text, None).expect("service bench client io");
                        let streamed = match outcome {
                            ClientOutcome::Done(s) => s,
                            other => panic!("service bench job must complete, got {other:?}"),
                        };
                        // The gate: streamed bytes == offline replay bytes.
                        let spec = JobSpec::parse(&text).expect("bench job parses");
                        let offline_cache = ArtifactCache::new(4);
                        let direct =
                            run_direct(&prepare(spec, &offline_cache).expect("bench job admits"));
                        assert_eq!(
                            streamed.wire_text(),
                            direct.wire_text(),
                            "service stream diverged from the offline replay"
                        );
                        secs.push(timing.total_secs);
                    }
                })
            })
            .collect();
        // A cancellation in flight alongside the measured batch: it must
        // end cleanly without disturbing any measured job.
        let cancel_text = job_text(999, 0);
        let cancelled = submit_job(addr, &cancel_text, Some(0)).expect("cancel client io");
        assert!(
            matches!(
                cancelled.0,
                ClientOutcome::Cancelled(_) | ClientOutcome::Done(_)
            ),
            "in-flight cancel must end the stream cleanly"
        );
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("service bench client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(stats.internal_errors, 0, "no job may panic a pool worker");
    assert_eq!(latencies.len(), jobs);
    assert!(
        stats.artifact_cache.hits >= 1,
        "repeated game descriptions must hit the artifact cache"
    );

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = latencies[latencies.len() / 2];
    let p95 = latencies[(latencies.len() * 95 / 100).min(latencies.len() - 1)];
    let jobs_per_sec = jobs as f64 / wall;
    eprintln!(
        "service: {jobs} jobs / {clients} clients, {jobs_per_sec:.2} jobs/s, p50 = {:.1} ms, p95 = {:.1} ms, cache {} hits / {} misses",
        p50 * 1e3,
        p95 * 1e3,
        stats.artifact_cache.hits,
        stats.artifact_cache.misses
    );
    format!(
        "  \"service\": {{\n    \"what\": \"logit-serve job server: {jobs} mixed jobs (graphical-uniform, ising-sweep, coloured-circulant) over {clients} concurrent clients with one cancellation in flight, {steps} steps per pipelined job; every streamed series asserted byte-identical (f64 bit patterns) to an offline run_direct replay before emission; latency is client-side submit-to-DONE\",\n    \"jobs\": {jobs},\n    \"concurrent_clients\": {clients},\n    \"jobs_per_sec\": {jobs_per_sec:.2},\n    \"latency_p50_ms\": {:.1},\n    \"latency_p95_ms\": {:.1},\n    \"artifact_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n    \"accepted\": {},\n    \"completed\": {},\n    \"cancelled\": {}\n  }}",
        p50 * 1e3,
        p95 * 1e3,
        stats.artifact_cache.hits,
        stats.artifact_cache.misses,
        stats.artifact_cache.evictions,
        stats.accepted,
        stats.completed,
        stats.cancelled,
    )
}

/// Escapes `text` for embedding as a JSON string value.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    // Force recording on (a no-op without the `telemetry` feature): the
    // committed row-sets below then travel with the registry dump of the
    // run that produced them.
    logit_telemetry::enable();
    let fast = std::env::args().any(|a| a == "--fast");
    let steps: u64 = if fast { 200_000 } else { 2_000_000 };
    let sizes = [16usize, 48, 1_000, 10_000, 100_000];

    let rule_sets = [
        rule_rows(Logit, &sizes, steps),
        rule_rows(MetropolisLogit, &sizes, steps),
        rule_rows(NoisyBestResponse::new(0.1), &sizes, steps),
    ];

    // Same-host parity certificate: generic engine vs the verbatim
    // pre-refactor loop at a representative size. Absolute throughput varies
    // with the host; this ratio is the invariant the baseline pins. Five
    // interleaved rounds, median ratio: three proved too few — a single
    // frequency-scaling or scheduler event during one leg skews a
    // median-of-3 enough to drift the committed ratio below the 10% band
    // (the 0.895 episode), while the engine and legacy loops are the same
    // hot path and genuinely at parity.
    let parity_n = 1_000;
    let mut ratios: Vec<(f64, f64, f64)> = (0..5)
        .map(|_| {
            let legacy = legacy_logit_steps_per_sec(parity_n, steps);
            let engine = profile_steps_per_sec(parity_n, Logit, steps);
            (engine / legacy, legacy, engine)
        })
        .collect();
    ratios.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite ratios"));
    let (ratio, legacy, engine) = ratios[ratios.len() / 2];
    eprintln!(
        "parity (n = {parity_n}, median of 5): legacy = {legacy:.3e}, engine = {engine:.3e}, ratio = {ratio:.3}"
    );

    // Tempered-engine rows: measured at the sizes where the ensemble is the
    // interesting tool (large-n in-place replicas; the tiny sizes only add
    // noise). The in-process ratio against the single profile engine is the
    // committed invariant.
    let tempered = tempered_rows(4, &[1_000, 10_000, 100_000], steps);

    // Pipelined-ensemble rows: the farm/reducer stages against the in-line
    // sequential ensemble, per rule, at the size where snapshot traffic is
    // realistic. Bit-identity is asserted inside, so a diverging pipeline
    // can never emit a baseline.
    let pipelined = pipelined_rows(10_000, steps);

    // Channel-backend rows: the three farm transports raced on the same
    // ensemble, with the ordered bit-identity and unordered-equivalence
    // gates asserted before any row is emitted.
    let channel_backends = channel_backend_rows(10_000, steps);

    // Coloured independent-set rows: the parallel-revision engine paths on
    // a dense-degree circulant, gated on the in-process bit-identity check.
    let coloured = coloured_rows(steps);

    // Memory-locality rows: the RCM-relabelled CSR byte engine against the
    // pooled usize engine on label-shuffled circulants up to n = 10⁷,
    // gated on relabelled bit-identity. `--fast` stops at n = 10⁵ (the
    // larger instances exist to measure DRAM behaviour, not to smoke-test).
    let large_n = large_n_rows(steps, !fast);

    // Service rows: the job server end-to-end, gated on streamed-vs-direct
    // bit-identity for every completed job.
    let service = service_rows(steps);

    // The metrics-registry dump of this very run (span histograms, pool
    // and farm counters), attached beside the committed row-sets. In a
    // build without the `telemetry` feature this is the one-line
    // "disabled" snapshot.
    let telemetry = json_escape(&logit_telemetry::global().render());

    println!(
        "{{\n  \"benchmark\": \"revision-dynamics step throughput, ring coordination game (delta0=1, delta1=2, beta=1.5)\",\n  \"engines\": {{\n    \"flat\": \"decode flat usize index, step, re-encode (capped at n = {FLAT_LIMIT} binary players)\",\n    \"profile\": \"in-place profile update with reused Scratch buffers\"\n  }},\n  \"steps_per_measurement\": {steps},\n  \"legacy_parity\": {{\n    \"what\": \"generic engine (Logit rule) vs verbatim pre-refactor inline loop, same host, same process, n = {parity_n}, median of 5 interleaved rounds\",\n    \"legacy_steps_per_sec\": {legacy:.0},\n    \"engine_steps_per_sec\": {engine:.0},\n    \"engine_over_legacy\": {ratio:.3}\n  }},\n{tempered},\n{pipelined},\n{channel_backends},\n{coloured},\n{large_n},\n{service},\n  \"telemetry\": \"{telemetry}\",\n  \"rules\": [\n{}\n  ]\n}}",
        rule_sets.join(",\n")
    );
}
