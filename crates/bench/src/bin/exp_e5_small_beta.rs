//! E5 — Theorem 3.6: O(n log n) mixing for small beta.
fn main() {
    println!("{}", logit_bench::experiments::e5_small_beta(false));
}
