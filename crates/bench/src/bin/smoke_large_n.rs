//! CI smoke test for the memory-locality engine at real scale: `n = 10⁶`
//! ring and circulant instances, a few colour rounds, multi-worker pooled
//! byte sweeps — with the relabelled bit-identity gate asserted in-process
//! before any rate is printed.
//!
//! The committed `large_n` rows in `BENCH_step_throughput.json` certify
//! throughput on the emitting host; this binary certifies *correctness at
//! scale on every CI host*: the RCM-relabelled CSR byte path (pooled,
//! `LOGIT_WORKERS`-driven worker count) must replay the unrelabelled
//! sequential class sweep exactly after the inverse permutation. It is the
//! one place the relabelled engine runs with a million players and more
//! than one worker on every push.
//!
//! Exits nonzero on any divergence; prints per-instance rates and the
//! bandwidth the relabelling recovered.

use logit_core::parallel::coloring_for_graph;
use logit_core::rules::Logit;
use logit_core::{DynamicsEngine, LocalityLayout, RuntimeConfig, Scratch, WorkerPool};
use logit_games::{CoordinationGame, GraphicalCoordinationGame};
use logit_graphs::{Graph, GraphBuilder, VertexOrdering};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_instance(
    name: &str,
    graph: Graph,
    rounds: u64,
    pool: &WorkerPool,
    config: &RuntimeConfig,
) {
    let n = graph.num_vertices();
    let coloring = coloring_for_graph(&graph);
    let layout = LocalityLayout::from_graph(&graph, &coloring);
    let base = CoordinationGame::from_deltas(1.0, 2.0);
    let game = GraphicalCoordinationGame::new(graph.clone(), base);
    let relabelled = GraphicalCoordinationGame::new(layout.relabel_graph(&graph), base);
    drop(graph);
    let reference_engine = DynamicsEngine::with_rule(game, Logit, 1.5);
    let engine = DynamicsEngine::with_rule(relabelled, Logit, 1.5);

    let seed = 0x5A0C_E5ED;
    let mut reference = vec![0usize; n];
    let mut ref_scratch = Scratch::for_game(reference_engine.game());
    let mut bytes = Vec::new();
    layout.pack_profile(&reference, &mut bytes);
    let mut byte_scratch = Scratch::for_game(engine.game());
    let mut unpacked = Vec::new();

    let ticks = rounds * coloring.num_classes() as u64;
    let mut ref_elapsed = 0.0;
    let mut csr_elapsed = 0.0;
    for t in 0..ticks {
        let clock = std::time::Instant::now();
        let moved_ref =
            reference_engine.step_coloured(&coloring, t, seed, &mut reference, &mut ref_scratch);
        ref_elapsed += clock.elapsed().as_secs_f64();

        let clock = std::time::Instant::now();
        let moved_csr = engine.step_coloured_pooled_bytes(
            layout.coloring(),
            t,
            seed,
            Some(layout.labels()),
            &mut bytes,
            &mut byte_scratch,
            pool,
            config,
        );
        csr_elapsed += clock.elapsed().as_secs_f64();

        // The gate: every tick, not just the final state, so a transient
        // divergence cannot cancel out.
        assert_eq!(
            moved_ref, moved_csr,
            "{name}: moved count diverged at tick {t}"
        );
        layout.unpack_profile(&bytes, &mut unpacked);
        assert_eq!(
            unpacked, reference,
            "{name}: relabelled CSR path diverged at tick {t}"
        );
    }

    let updates = (rounds * n as u64) as f64;
    println!(
        "{name}: n = {n}, classes = {}, bandwidth {} -> {}, workers = {}, block = {}: \
         seq = {:.3e} updates/sec, csr_relabelled_pooled = {:.3e} updates/sec — bit-identical over {rounds} rounds",
        coloring.num_classes(),
        layout.bandwidth_before(),
        layout.bandwidth_after(),
        config.resolved_workers(),
        config.block_players,
        updates / ref_elapsed,
        updates / csr_elapsed,
    );
}

fn main() {
    let n = 1_000_000usize;
    let config = RuntimeConfig::from_env();
    let pool = WorkerPool::new(&config);

    // A plain ring keeps its natural (already banded) labels: the layout
    // must not disturb an instance that is already optimal.
    smoke_instance("ring", GraphBuilder::ring(n), 2, &pool, &config);

    // A label-shuffled circulant is the adversarial case: the band exists
    // but the labelling hides it until RCM recovers it.
    let circulant = {
        let graph = GraphBuilder::circulant(n, 4);
        let mut rng = StdRng::seed_from_u64(0xC1AC);
        graph.relabelled(&VertexOrdering::random(n, &mut rng))
    };
    smoke_instance("shuffled-circulant", circulant, 2, &pool, &config);

    println!("large-n smoke: relabelled CSR engine bit-identical on both instances");
}
