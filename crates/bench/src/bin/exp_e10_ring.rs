//! E10 — Theorems 5.6/5.7: the ring mixes in Theta~(e^{2 delta beta}).
fn main() {
    println!("{}", logit_bench::experiments::e10_ring(false));
}
