//! E6 — Theorems 3.8/3.9: the barrier zeta governs the large-beta exponent.
fn main() {
    println!("{}", logit_bench::experiments::e6_zeta(false));
}
