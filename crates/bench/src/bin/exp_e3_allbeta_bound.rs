//! E3 — Theorem 3.4: the all-beta mixing-time upper bound.
fn main() {
    println!("{}", logit_bench::experiments::e3_all_beta_bound(false));
}
