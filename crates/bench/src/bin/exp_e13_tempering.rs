//! E13 — parallel tempering vs the Theorem 3.5 exponential barrier (well game).
//!
//! `--fast` shrinks the instance to the grid the test suite and the CI smoke
//! step use.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!("{}", logit_bench::experiments::e13_tempering(fast));
}
