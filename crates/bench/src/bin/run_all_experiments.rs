//! Runs the whole experiment suite (E1-E14 plus the stationary and simulation
//! panels) and prints every report; `--fast` shrinks the parameter grids.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    for (id, report) in logit_bench::experiments::all_reports(fast) {
        println!("==================== {id} ====================\n");
        println!("{report}");
    }
    println!("==================== Simulation ====================\n");
    println!("{}", logit_bench::experiments::simulation_check(fast));
}
