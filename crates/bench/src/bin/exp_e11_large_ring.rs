//! E11 — the large-n in-place simulation engine on rings of 10^3 to 10^5
//! players (state spaces up to 2^100000: no flat index exists).
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!("{}", logit_bench::experiments::e11_large_ring(fast));
}
