//! E9 — Theorem 5.5: clique growth exponent equals the potential barrier.
fn main() {
    println!("{}", logit_bench::experiments::e9_clique(false));
}
