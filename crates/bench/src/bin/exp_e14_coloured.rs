//! E14 — coloured parallel revision: block schedules × topologies, with the
//! coloured round-chain exactness panel and the in-process bit-identity
//! check of the parallel independent-set engine path.
//!
//! `--fast` shrinks the instance to the grid the test suite and the CI smoke
//! step use.
fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!("{}", logit_bench::experiments::e14_coloured_schedules(fast));
}
