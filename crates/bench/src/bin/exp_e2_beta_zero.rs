//! E2 — Lemma 3.2: relaxation time at beta = 0 is at most n.
fn main() {
    println!("{}", logit_bench::experiments::e2_beta_zero(false));
}
