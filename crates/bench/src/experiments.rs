//! The experiment suite E1–E14.
//!
//! Each experiment regenerates one quantitative claim of the paper (see
//! `DESIGN.md` §3 for the index and `EXPERIMENTS.md` for the recorded outputs);
//! E11 exercises the large-`n` in-place simulation engine beyond the reach of
//! any exact analysis; E12 compares the pluggable revision rules (logit,
//! Metropolis, noisy best response, Fermi, imitate-the-better) and the
//! parallel all-logit schedule; E13 races the tempering ensemble against the
//! exact single-chain barrier; E14 sweeps the coloured parallel-revision
//! schedules across topologies with the round-chain exactness panel.
//! Every function takes a `fast` flag: `true` shrinks the parameter grid so
//! the whole suite can run inside the test suite; `false` is the full grid
//! used to produce `EXPERIMENTS.md`.

use crate::table::{f1, f3, show_time, Table};
use logit_core::bounds;
use logit_core::observables::StrategyFraction;
use logit_core::{exact_mixing_time, gibbs_distribution, zeta, LogitDynamics, Simulator};
use logit_games::dominant::BonusDominantGame;
use logit_games::{
    AllZeroDominantGame, CoordinationGame, Game, GraphicalCoordinationGame, PotentialGame,
    TablePotentialGame, WellGame,
};
use logit_graphs::{cutwidth_exact, Graph, GraphBuilder};
use logit_linalg::stats::linear_fit;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 0.25;
const BUDGET: u64 = 1 << 36;

/// E1 — Theorem 3.1: every eigenvalue of the logit chain of a potential game is
/// non-negative, so λ* = λ₂.
pub fn e1_eigenvalues(fast: bool) -> String {
    let mut table = Table::new(vec![
        "game",
        "beta",
        "lambda_min",
        "lambda_2",
        "lambda_star=lambda_2",
    ]);
    let betas: &[f64] = if fast {
        &[0.5, 2.0]
    } else {
        &[0.1, 0.5, 1.0, 2.0, 5.0]
    };
    let mut rng = StdRng::seed_from_u64(1);
    let seeds = if fast { 2 } else { 4 };

    let mut check = |name: &str, game: &dyn PotentialGameObj| {
        for &beta in betas {
            let m = game.measure(beta);
            table.push_row(vec![
                name.to_string(),
                f3(beta),
                format!("{:.6}", m.lambda_min),
                format!("{:.6}", 1.0 - m.spectral_gap),
                (m.lambda_min >= -1e-9).to_string(),
            ]);
        }
    };

    for s in 0..seeds {
        let game = TablePotentialGame::random(vec![2, 2, 2], 3.0, &mut rng);
        check(&format!("random potential #{s}"), &game);
    }
    let coord = GraphicalCoordinationGame::new(
        GraphBuilder::ring(4),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    check("coordination ring n=4", &coord);

    format!(
        "E1 — Theorem 3.1 (non-negative spectrum of potential-game logit chains)\n\n{}\nPASS iff the last column is always `true`.\n",
        table.render()
    )
}

/// Object-safe helper so E1 can mix different game types in one loop.
trait PotentialGameObj {
    fn measure(&self, beta: f64) -> logit_core::MixingMeasurement;
}
impl<G: PotentialGame> PotentialGameObj for G {
    fn measure(&self, beta: f64) -> logit_core::MixingMeasurement {
        exact_mixing_time(self, beta, EPS, 2)
    }
}

/// E2 — Lemma 3.2: the relaxation time of the β = 0 chain is at most n.
pub fn e2_beta_zero(fast: bool) -> String {
    let mut table = Table::new(vec!["n", "m", "t_rel(beta=0)", "bound n"]);
    let mut rng = StdRng::seed_from_u64(2);
    let ns: Vec<usize> = if fast {
        vec![2, 3, 4]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    for &n in &ns {
        for m in 2..=3usize {
            if m.pow(n as u32) > 1024 {
                continue;
            }
            let game = TablePotentialGame::random(vec![m; n], 2.0, &mut rng);
            let meas = exact_mixing_time(&game, 0.0, EPS, 4);
            table.push_row(vec![
                n.to_string(),
                m.to_string(),
                f3(meas.relaxation_time),
                n.to_string(),
            ]);
        }
    }
    format!(
        "E2 — Lemma 3.2 (relaxation time at beta = 0 is at most n)\n\n{}\nPASS iff column 3 <= column 4 in every row.\n",
        table.render()
    )
}

/// E3 — Theorem 3.4: the all-β upper bound `2mn e^{βΔΦ}(log 4 + βΔΦ + n log m)`.
pub fn e3_all_beta_bound(fast: bool) -> String {
    let betas: Vec<f64> = if fast {
        vec![0.0, 1.0, 2.0]
    } else {
        vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
    };
    let game = WellGame::plateau(4, 2.0);
    let (n, m) = (game.num_players(), game.max_strategies());
    let dphi = game.max_global_variation();
    let mut table = Table::new(vec![
        "beta",
        "t_mix",
        "t_rel",
        "Lemma3.3 bound",
        "Thm3.4 bound",
    ]);
    for &beta in &betas {
        let meas = exact_mixing_time(&game, beta, EPS, BUDGET);
        table.push_row(vec![
            f3(beta),
            show_time(meas.mixing_time),
            f1(meas.relaxation_time),
            f1(bounds::lemma_3_3_relaxation_upper(n, m, beta, dphi)),
            f1(bounds::theorem_3_4_mixing_upper(n, m, beta, dphi, EPS)),
        ]);
    }
    format!(
        "E3 — Theorem 3.4 (upper bound for every beta), well game n={n}, deltaPhi={dphi}\n\n{}\nPASS iff t_mix <= Thm3.4 bound and t_rel <= Lemma3.3 bound in every row.\n",
        table.render()
    )
}

/// E4 — Theorem 3.5: the well potential's mixing time grows as `e^{βΔΦ(1−o(1))}`.
pub fn e4_lower_bound(fast: bool) -> String {
    let game = if fast {
        WellGame::plateau(4, 2.0)
    } else {
        WellGame::new(6, 4.0, 2.0)
    };
    let n = game.num_players();
    let dphi = game.max_global_variation();
    let dloc = game.max_local_variation();
    let betas: Vec<f64> = if fast {
        vec![1.5, 2.0, 2.5]
    } else {
        vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5]
    };
    let mut table = Table::new(vec!["beta", "t_mix", "Thm3.5 lower", "Thm3.4 upper"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &beta in &betas {
        let meas = exact_mixing_time(&game, beta, EPS, BUDGET);
        let t = meas.mixing_time;
        table.push_row(vec![
            f3(beta),
            show_time(t),
            f1(bounds::theorem_3_5_mixing_lower(
                n, 2, beta, dphi, dloc, EPS,
            )),
            f1(bounds::theorem_3_4_mixing_upper(n, 2, beta, dphi, EPS)),
        ]);
        if let Some(t) = t {
            xs.push(beta);
            ys.push((t as f64).ln());
        }
    }
    let fit = linear_fit(&xs, &ys);
    format!(
        "E4 — Theorem 3.5 (matching lower bound, well potential n={n}, deltaPhi={dphi}, deltaLocal={dloc})\n\n{}\nfitted growth exponent d(log t_mix)/d(beta) = {:.3}   (paper: deltaPhi = {dphi}, sandwich {:.3}..{:.3})\nPASS iff Thm3.5 lower <= t_mix <= Thm3.4 upper and the fitted exponent is close to deltaPhi.\n",
        table.render(),
        fit.slope,
        0.6 * dphi,
        1.2 * dphi,
    )
}

/// E5 — Theorem 3.6: for β ≤ c/(nδΦ) the mixing time is O(n log n).
pub fn e5_small_beta(fast: bool) -> String {
    let ns: Vec<usize> = if fast {
        vec![3, 4, 5]
    } else {
        vec![3, 4, 5, 6, 7, 8]
    };
    let c = 0.5;
    let mut table = Table::new(vec![
        "n",
        "beta=c/(n dPhi)",
        "t_mix",
        "n log n",
        "Thm3.6 bound",
    ]);
    for &n in &ns {
        let game =
            GraphicalCoordinationGame::new(GraphBuilder::ring(n), CoordinationGame::symmetric(1.0));
        let dloc = game.max_local_variation();
        let beta = c / (n as f64 * dloc);
        let meas = exact_mixing_time(&game, beta, EPS, BUDGET);
        table.push_row(vec![
            n.to_string(),
            f3(beta),
            show_time(meas.mixing_time),
            f1(n as f64 * (n as f64).ln()),
            f1(bounds::theorem_3_6_mixing_upper(n, beta, dloc, EPS)),
        ]);
    }
    format!(
        "E5 — Theorem 3.6 (small beta: O(n log n) mixing), ring coordination, c = {c}\n\n{}\nPASS iff t_mix <= Thm3.6 bound and t_mix grows roughly like n log n.\n",
        table.render()
    )
}

/// E6 — Theorems 3.8/3.9: for large β, `t_mix = e^{βζ(1±o(1))}` with ζ the
/// potential barrier (strictly smaller than ΔΦ on risk-dominant cliques).
pub fn e6_zeta(fast: bool) -> String {
    let n = if fast { 4 } else { 5 };
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::clique(n),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let barrier = zeta(&game).zeta;
    let dphi = game.max_global_variation();
    let betas: Vec<f64> = if fast {
        vec![1.5, 2.0, 2.5]
    } else {
        vec![1.0, 1.5, 2.0, 2.5, 3.0]
    };
    let mut table = Table::new(vec!["beta", "t_mix", "e^(beta*zeta)", "Thm3.8 upper"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &beta in &betas {
        let meas = exact_mixing_time(&game, beta, EPS, BUDGET);
        table.push_row(vec![
            f3(beta),
            show_time(meas.mixing_time),
            f1((beta * barrier).exp()),
            format!(
                "{:.3e}",
                bounds::theorem_3_8_mixing_upper(n, 2, beta, barrier, dphi, EPS)
            ),
        ]);
        if let Some(t) = meas.mixing_time {
            xs.push(beta);
            ys.push((t as f64).ln());
        }
    }
    let fit = linear_fit(&xs, &ys);
    format!(
        "E6 — Theorems 3.8/3.9 (large beta: exponent is the barrier zeta), clique n={n}, delta0=2, delta1=1\n\nzeta = {barrier:.3}   deltaPhi = {dphi:.3}  (zeta < deltaPhi: the refined exponent is sharper)\n\n{}\nfitted growth exponent = {:.3}  (paper: zeta = {barrier:.3})\nPASS iff the fitted exponent tracks zeta rather than deltaPhi.\n",
        table.render(),
        fit.slope,
    )
}

/// E7 — Theorems 4.2/4.3: dominant-strategy games mix in time independent of β,
/// and the worst case is Θ(m^{n-1})-ish.
pub fn e7_dominant(fast: bool) -> String {
    let configs: Vec<(usize, usize)> = if fast {
        vec![(2, 2), (3, 2)]
    } else {
        vec![(2, 2), (3, 2), (2, 3), (4, 2), (3, 3)]
    };
    let betas: Vec<f64> = if fast {
        vec![1.0, 10.0, 100.0]
    } else {
        vec![0.0, 1.0, 5.0, 20.0, 100.0]
    };
    let mut table = Table::new(vec![
        "n",
        "m",
        "beta",
        "t_mix (Thm4.3 game)",
        "t_mix (bonus game)",
        "Thm4.2 upper",
        "Thm4.3 lower",
    ]);
    for &(n, m) in &configs {
        let worst = AllZeroDominantGame::new(n, m);
        let bonus = BonusDominantGame::new(n, m, 1.0);
        for &beta in &betas {
            let tw = exact_mixing_time(&worst, beta, EPS, BUDGET).mixing_time;
            let tb = exact_mixing_time(&bonus, beta, EPS, BUDGET).mixing_time;
            table.push_row(vec![
                n.to_string(),
                m.to_string(),
                f1(beta),
                show_time(tw),
                show_time(tb),
                f1(bounds::theorem_4_2_mixing_upper(n, m)),
                f3(bounds::theorem_4_3_mixing_lower(n, m)),
            ]);
        }
    }
    format!(
        "E7 — Theorems 4.2/4.3 (dominant strategies: mixing time independent of beta)\n\n{}\nPASS iff for each (n, m) the measured times saturate as beta grows, stay below the\nThm 4.2 bound, and (for large beta) the Thm 4.3 game stays above the Thm 4.3 lower bound.\n",
        table.render()
    )
}

/// E8 — Theorem 5.1: the cutwidth bound across topologies.
pub fn e8_cutwidth(fast: bool) -> String {
    let (d0, d1) = (1.5, 1.0);
    let base = CoordinationGame::from_deltas(d0, d1);
    let n = if fast { 4 } else { 6 };
    let topologies: Vec<(&str, Graph)> = vec![
        ("path", GraphBuilder::path(n)),
        ("ring", GraphBuilder::ring(n)),
        ("star", GraphBuilder::star(n)),
        ("binary tree", GraphBuilder::binary_tree(n)),
        ("clique", GraphBuilder::clique(n)),
    ];
    let betas: Vec<f64> = if fast { vec![0.5] } else { vec![0.5, 1.0] };
    let mut table = Table::new(vec!["graph", "cutwidth", "beta", "t_mix", "Thm5.1 bound"]);
    for (name, graph) in &topologies {
        let chi = cutwidth_exact(graph).cutwidth;
        let game = GraphicalCoordinationGame::new(graph.clone(), base);
        for &beta in &betas {
            let meas = exact_mixing_time(&game, beta, EPS, BUDGET);
            table.push_row(vec![
                name.to_string(),
                chi.to_string(),
                f3(beta),
                show_time(meas.mixing_time),
                format!(
                    "{:.3e}",
                    bounds::theorem_5_1_mixing_upper(n, chi, d0, d1, beta)
                ),
            ]);
        }
    }
    format!(
        "E8 — Theorem 5.1 (cutwidth bound), graphical coordination n={n}, delta0={d0}, delta1={d1}\n\n{}\nPASS iff t_mix <= Thm5.1 bound everywhere, and mixing times order with the cutwidth\n(path/ring/tree fast, clique slowest).\n",
        table.render()
    )
}

/// E9 — Theorem 5.5: on the clique the growth exponent is `Φ_max − Φ(1)`.
pub fn e9_clique(fast: bool) -> String {
    let n = if fast { 4 } else { 6 };
    let (d0, d1) = (1.0, 1.0);
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::clique(n),
        CoordinationGame::from_deltas(d0, d1),
    );
    let exponent = bounds::theorem_5_5_exponent(n, d0, d1);
    let betas: Vec<f64> = if fast {
        vec![1.0, 1.5, 2.0]
    } else {
        vec![0.5, 0.75, 1.0, 1.25, 1.5, 1.75]
    };
    let mut table = Table::new(vec!["beta", "t_mix", "e^(beta*(PhiMax-Phi(1)))"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &beta in &betas {
        let meas = exact_mixing_time(&game, beta, EPS, BUDGET);
        table.push_row(vec![
            f3(beta),
            show_time(meas.mixing_time),
            f1((beta * exponent).exp()),
        ]);
        if let Some(t) = meas.mixing_time {
            xs.push(beta);
            ys.push((t as f64).ln());
        }
    }
    let fit = linear_fit(&xs, &ys);
    format!(
        "E9 — Theorem 5.5 (clique), n={n}, delta0=delta1={d0} (no risk dominance: worst case)\n\nbarrier PhiMax - Phi(1) = {exponent:.3}\n\n{}\nfitted growth exponent = {:.3}  (paper: {exponent:.3})\nPASS iff the fitted exponent is within ~35% of the barrier.\n",
        table.render(),
        fit.slope,
    )
}

/// E10 — Theorems 5.6/5.7: the ring mixes in `Θ̃(e^{2δβ})`, far faster than the
/// clique at the same β.
pub fn e10_ring(fast: bool) -> String {
    let n = if fast { 5 } else { 7 };
    let delta = 1.0;
    let ring =
        GraphicalCoordinationGame::new(GraphBuilder::ring(n), CoordinationGame::symmetric(delta));
    let clique =
        GraphicalCoordinationGame::new(GraphBuilder::clique(n), CoordinationGame::symmetric(delta));
    let betas: Vec<f64> = if fast {
        vec![0.5, 1.0, 1.5]
    } else {
        vec![0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]
    };
    let mut table = Table::new(vec![
        "beta",
        "t_mix ring",
        "Thm5.7 lower",
        "Thm5.6 upper",
        "t_mix clique",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &beta in &betas {
        let tr = exact_mixing_time(&ring, beta, EPS, BUDGET).mixing_time;
        let tc = exact_mixing_time(&clique, beta, EPS, BUDGET).mixing_time;
        table.push_row(vec![
            f3(beta),
            show_time(tr),
            f1(bounds::theorem_5_7_mixing_lower(delta, beta, EPS)),
            f1(bounds::theorem_5_6_mixing_upper(n, delta, beta, EPS)),
            show_time(tc),
        ]);
        if let Some(t) = tr {
            xs.push(beta);
            ys.push((t as f64).ln());
        }
    }
    let fit = linear_fit(&xs, &ys);
    format!(
        "E10 — Theorems 5.6/5.7 (ring vs clique), n={n}, delta0=delta1={delta}\n\n{}\nfitted ring growth exponent = {:.3}  (paper: 2*delta = {:.3})\nPASS iff Thm5.7 lower <= t_mix(ring) <= Thm5.6 upper, the ring exponent is about 2*delta,\nand the clique is increasingly slower than the ring as beta grows.\n",
        table.render(),
        fit.slope,
        2.0 * delta,
    )
}

/// E11 — the large-`n` in-place engine: ring coordination games far beyond
/// the flat-index limit (`n > 63` binary players already overflows a `usize`
/// state index; the in-place profile engine does not care).
///
/// For each ring size the experiment runs a replica ensemble with the profile
/// engine, streams the adopter fraction of the risk-dominant strategy, and
/// reports wall-clock throughput in steps/sec. The full grid simulates
/// `n = 10⁵` players for 10⁷ total steps.
pub fn e11_large_ring(fast: bool) -> String {
    let sizes: &[usize] = if fast {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let total_steps: u64 = if fast { 400_000 } else { 10_000_000 };
    let replicas = 8;
    let steps = total_steps / replicas as u64;
    let (delta0, delta1) = (1.0, 2.0);
    let beta = 1.5;

    let mut table = Table::new(vec![
        "n",
        "replicas",
        "total steps",
        "seconds",
        "steps/sec",
        "adopters (mean)",
        "adopters (q10..q90)",
        "pipelined steps/sec",
        "pipe/seq",
    ]);
    let mut throughputs = Vec::new();
    for &n in sizes {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(n),
            CoordinationGame::from_deltas(delta0, delta1),
        );
        let dynamics = LogitDynamics::new(game, beta);
        let sim = Simulator::new(0xE11, replicas);
        let observable = StrategyFraction::new(1, "adopters");
        let start = vec![0usize; n];
        let clock = std::time::Instant::now();
        let result = sim.run_profiles(&dynamics, &start, steps, (steps / 4).max(1), &observable);
        let seconds = clock.elapsed().as_secs_f64();
        // The same workload through the pipelined farm/reducer stages: the
        // result must be bit-identical (same seeds, order-restoring reducer),
        // so the in-process assertion doubles as an acceptance check.
        let pipe_clock = std::time::Instant::now();
        let pipelined =
            sim.run_profiles_pipelined(&dynamics, &start, steps, (steps / 4).max(1), &observable);
        let pipe_seconds = pipe_clock.elapsed().as_secs_f64();
        assert_eq!(
            result.final_values, pipelined.final_values,
            "pipelined ensemble diverged from the sequential path at n = {n}"
        );
        for (k, (s, p)) in result.series.iter().zip(&pipelined.series).enumerate() {
            assert!(
                s.count() == p.count()
                    && s.mean() == p.mean()
                    && s.variance() == p.variance()
                    && s.min() == p.min()
                    && s.max() == p.max(),
                "pipelined series stats diverged at sample {k}, n = {n}"
            );
        }
        let ran = steps * replicas as u64;
        let law = result.law();
        throughputs.push(ran as f64 / seconds);
        table.push_row(vec![
            n.to_string(),
            replicas.to_string(),
            ran.to_string(),
            format!("{seconds:.2}"),
            format!("{:.3e}", ran as f64 / seconds),
            f3(law.mean()),
            format!("{}..{}", f3(law.quantile(0.1)), f3(law.quantile(0.9))),
            format!("{:.3e}", ran as f64 / pipe_seconds),
            format!("{:.2}", seconds / pipe_seconds),
        ]);
    }
    let spread = throughputs
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        / throughputs.iter().copied().fold(f64::INFINITY, f64::min);
    format!(
        "E11 — large-n in-place profile engine, ring, delta0={delta0}, delta1={delta1}, beta={beta}\n\n{}\nthroughput spread max/min across n = {spread:.2}\nPASS iff every row completes (the flat engine cannot represent any of these state spaces),\nthe spread stays below 10 — per-step cost is O(deg), not O(|S|) — and the pipelined\nrunner reproduces the sequential ensemble bit-for-bit (asserted in-process).\n",
        table.render(),
    )
}

/// E12 — cross-rule revision dynamics: mixing and metastability proxies of
/// the pluggable update rules (logit, Metropolis, noisy best response) and
/// the parallel all-logit block schedule on ring and clique coordination
/// games, through *both* engines (exact flat-index chains and the in-place
/// profile engine).
pub fn e12_cross_rule(fast: bool) -> String {
    use logit_core::observables::StrategyFraction;
    use logit_core::rules::{
        Fermi, ImitateBetter, Logit, MetropolisLogit, NoisyBestResponse, UpdateRule,
    };
    use logit_core::schedules::AllLogit;
    use logit_core::DynamicsEngine;
    use logit_markov::{mixing_time, spectral_analysis, stationary_distribution};

    let n = if fast { 4 } else { 5 };
    let betas: &[f64] = if fast { &[0.5, 1.5] } else { &[0.5, 1.0, 2.0] };

    // Part 1 — exact flat-index engine: per-rule mixing time, relaxation time
    // and stationary mass of the risk-dominant consensus on ring vs clique.
    let mut exact = Table::new(vec![
        "graph",
        "rule/schedule",
        "beta",
        "t_mix",
        "t_rel",
        "pi(risk-dom consensus)",
    ]);
    let graphs = [
        ("ring", GraphBuilder::ring(n)),
        ("clique", GraphBuilder::clique(n)),
    ];
    for (gname, graph) in &graphs {
        let game =
            GraphicalCoordinationGame::new(graph.clone(), CoordinationGame::from_deltas(2.0, 1.0));
        let space = game.profile_space();
        let consensus = space.index_of(&vec![0usize; n]);
        for &beta in betas {
            let mut push_rule = |label: &str, mix: Option<u64>, t_rel: f64, pi0: f64| {
                exact.push_row(vec![
                    gname.to_string(),
                    label.to_string(),
                    f3(beta),
                    show_time(mix),
                    f3(t_rel),
                    format!("{pi0:.4}"),
                ]);
            };
            // One exact chain build + one stationary solve per cell; t_mix,
            // t_rel and the consensus mass all derive from the same pair.
            fn measure_rule<U: UpdateRule>(
                game: &GraphicalCoordinationGame,
                rule: U,
                beta: f64,
                consensus: usize,
            ) -> (Option<u64>, f64, f64) {
                let chain = DynamicsEngine::with_rule(game.clone(), rule, beta).transition_chain();
                let pi = stationary_distribution(&chain);
                let mix = mixing_time(&chain, &pi, EPS, BUDGET).map(|r| r.mixing_time);
                let t_rel = if chain.is_reversible(&pi, 1e-7) {
                    spectral_analysis(&chain, &pi).relaxation_time
                } else {
                    f64::NAN
                };
                (mix, t_rel, pi[consensus])
            }
            let (mix, t_rel, pi0) = measure_rule(&game, Logit, beta, consensus);
            push_rule("logit", mix, t_rel, pi0);
            let (mix, t_rel, pi0) = measure_rule(&game, MetropolisLogit, beta, consensus);
            push_rule("metropolis", mix, t_rel, pi0);
            let (mix, t_rel, pi0) =
                measure_rule(&game, NoisyBestResponse::new(0.1), beta, consensus);
            push_rule("nbr(0.10)", mix, t_rel, pi0);
            // The imitation rules: Fermi shares the Gibbs stationary law
            // (reversible, finite t_rel); imitate-the-better does not.
            let (mix, t_rel, pi0) = measure_rule(&game, Fermi, beta, consensus);
            push_rule("fermi", mix, t_rel, pi0);
            let (mix, t_rel, pi0) = measure_rule(&game, ImitateBetter::new(0.1), beta, consensus);
            push_rule("imitate(0.10)", mix, t_rel, pi0);

            // The all-logit block schedule as its own exact chain (one block
            // step = n player updates).
            let d = LogitDynamics::new(game.clone(), beta);
            let chain = d.transition_chain_all_logit();
            let pi = stationary_distribution(&chain);
            let mix = mixing_time(&chain, &pi, EPS, BUDGET).map(|r| r.mixing_time);
            exact.push_row(vec![
                gname.to_string(),
                "all-logit (block)".to_string(),
                f3(beta),
                show_time(mix),
                "NA".to_string(),
                format!("{:.4}", pi[consensus]),
            ]);
        }
    }

    // Part 2 — in-place profile engine: metastability proxy. Start every
    // replica in the *wrong* consensus at high beta and record the fraction
    // of players that escaped to the risk-dominant strategy by the horizon —
    // the per-rule analogue of the transient panel, at sizes no flat index
    // can reach on the clique-free topology.
    let (ring_n, clique_n) = if fast { (16, 8) } else { (40, 12) };
    let beta = 2.0;
    let steps: u64 = if fast { 6_000 } else { 40_000 };
    let replicas = if fast { 16 } else { 32 };
    let mut sim_table = Table::new(vec![
        "graph",
        "n",
        "rule/schedule",
        "updates",
        "escaped fraction (mean)",
        "q10..q90",
    ]);
    for (gname, graph, players) in [
        ("ring", GraphBuilder::ring(ring_n), ring_n),
        ("clique", GraphBuilder::clique(clique_n), clique_n),
    ] {
        let game = GraphicalCoordinationGame::new(graph, CoordinationGame::from_deltas(2.0, 1.0));
        let start = vec![1usize; players];
        let obs = StrategyFraction::new(0, "risk-dominant fraction");
        let sim = Simulator::new(0xE12, replicas);
        let mut push_sim = |label: &str, updates: u64, law: logit_core::EmpiricalLaw| {
            sim_table.push_row(vec![
                gname.to_string(),
                players.to_string(),
                label.to_string(),
                updates.to_string(),
                f3(law.mean()),
                format!("{}..{}", f3(law.quantile(0.1)), f3(law.quantile(0.9))),
            ]);
        };
        fn run_rule<U: UpdateRule>(
            sim: &Simulator,
            game: &GraphicalCoordinationGame,
            rule: U,
            beta: f64,
            start: &[usize],
            steps: u64,
            obs: &StrategyFraction,
        ) -> logit_core::EmpiricalLaw {
            let d = DynamicsEngine::with_rule(game.clone(), rule, beta);
            sim.run_profiles(&d, start, steps, steps, obs).law()
        }
        let law = run_rule(&sim, &game, Logit, beta, &start, steps, &obs);
        push_sim("logit", steps, law);
        let law = run_rule(&sim, &game, MetropolisLogit, beta, &start, steps, &obs);
        push_sim("metropolis", steps, law);
        let law = run_rule(
            &sim,
            &game,
            NoisyBestResponse::new(0.1),
            beta,
            &start,
            steps,
            &obs,
        );
        push_sim("nbr(0.10)", steps, law);
        let law = run_rule(&sim, &game, Fermi, beta, &start, steps, &obs);
        push_sim("fermi", steps, law);
        let law = run_rule(
            &sim,
            &game,
            ImitateBetter::new(0.1),
            beta,
            &start,
            steps,
            &obs,
        );
        push_sim("imitate(0.10)", steps, law);
        // All-logit: one tick = n updates, so match the update budget.
        let ticks = (steps / players as u64).max(1);
        let d = LogitDynamics::new(game.clone(), beta);
        let law = sim
            .run_profiles_scheduled(&d, &AllLogit, &start, ticks, ticks, &obs)
            .law();
        push_sim("all-logit (block)", ticks * players as u64, law);
    }

    format!(
        "E12 — cross-rule revision dynamics, coordination games (delta0=2, delta1=1)\n\n\
         Exact flat-index engine (n={n} per topology): per-rule chains under uniform selection,\n\
         plus the parallel all-logit block chain.\n\n{}\n\
         In-place profile engine at beta={beta}: replicas start in the wrong consensus; the table\n\
         reports the fraction of players on the risk-dominant strategy at the horizon.\n\n{}\n\
         PASS iff every rule/schedule produces rows through both engines, logit, metropolis and\n\
         fermi report finite t_rel (reversible chains — the Fermi acceptance ratio is e^{{beta*du}}\n\
         like theirs), and the clique escape fraction stays below the ring's for the reversible\n\
         rules (the paper's ring-vs-clique metastability contrast).\n",
        exact.render(),
        sim_table.render()
    )
}

/// E13 — parallel tempering vs the single-chain exponential barrier: on E4's
/// well game the single logit chain at high β needs `e^{βΔΦ(1−o(1))}` steps
/// to reach the opposite well (Theorem 3.5); a replica-exchange ensemble
/// across a geometric β-ladder crosses through its hot rungs and hands the
/// crossing down by Metropolis-accepted state swaps.
///
/// The single-chain baseline is *exact* — the expected hitting time of the
/// opposite well solved by LU on the flat chain, per ladder rung — so the
/// comparison is against closed-form Markov-chain theory, not a lucky
/// simulation. The tempered cost is measured: independent tempering
/// ensembles run until the **cold** replica first sits in the opposite well,
/// and every replica's ticks are charged (total engine steps = K × ticks).
pub fn e13_tempering(fast: bool) -> String {
    use logit_anneal::BetaLadder;
    use logit_core::schedules::UniformSingle;
    use logit_core::TemperingEnsemble;
    use logit_markov::expected_hitting_times;
    use rand::Rng;

    let game = if fast {
        WellGame::plateau(6, 2.0)
    } else {
        WellGame::new(8, 4.0, 2.0)
    };
    let n = game.num_players();
    let dphi = game.max_global_variation();
    let beta_cold = if fast { 6.0 } else { 4.0 };
    let rungs = if fast { 5 } else { 6 };
    let ladder = BetaLadder::geometric(0.3, beta_cold, rungs);
    let trials = if fast { 24 } else { 48 };
    let sweep_ticks = n as u64;
    let max_rounds = 100_000u64;

    // Exact per-rung baseline: expected hitting time of the opposite well
    // from the all-zero well under the single uniform-selection logit chain.
    let space = game.profile_space();
    let start_idx = space.index_of(&vec![0usize; n]);
    let targets: Vec<usize> = space
        .indices()
        .filter(|&idx| game.in_opposite_well(&space.profile_of(idx)))
        .collect();
    let mut exact_table = Table::new(vec!["beta", "exact E[T_hit] (single chain)"]);
    let mut hit_cold = f64::NAN;
    for &beta in ladder.betas() {
        let chain = LogitDynamics::new(game.clone(), beta).transition_chain();
        let h = expected_hitting_times(&chain, &targets);
        exact_table.push_row(vec![f3(beta), format!("{:.3e}", h[start_idx])]);
        hit_cold = h[start_idx];
    }

    // Measured tempered cost: ticks (per replica) until the cold replica
    // first sits in the opposite well, averaged over independent ensembles.
    let ensemble = TemperingEnsemble::new(game.clone(), logit_core::Logit, ladder.betas());
    let mut rng = StdRng::seed_from_u64(0xE13);
    let mut ticks_sum = 0.0f64;
    let mut worst = 0u64;
    let mut stats = logit_core::SwapStats::new(rungs - 1);
    let mut timeouts = 0usize;
    for _ in 0..trials {
        let mut state = ensemble.init_state(&vec![0usize; n], rng.gen::<u64>());
        match ensemble.run_until(&UniformSingle, &mut state, sweep_ticks, max_rounds, |p| {
            game.in_opposite_well(p)
        }) {
            Some(ticks) => {
                ticks_sum += ticks as f64;
                worst = worst.max(ticks);
            }
            None => timeouts += 1,
        }
        stats.merge(state.swap_stats());
    }
    let hits = trials - timeouts;
    let mean_ticks = ticks_sum / hits.max(1) as f64;
    let total_steps = mean_ticks * rungs as f64;
    let speedup = hit_cold / total_steps;

    let mut tempered_table = Table::new(vec![
        "trials",
        "K",
        "mean ticks/replica",
        "worst",
        "total engine steps (K x ticks)",
        "speedup vs exact cold chain",
    ]);
    tempered_table.push_row(vec![
        format!("{hits}/{trials}"),
        rungs.to_string(),
        f1(mean_ticks),
        worst.to_string(),
        f1(total_steps),
        format!("{speedup:.1}x"),
    ]);

    let rates: Vec<String> = stats.rates().iter().map(|r| format!("{r:.2}")).collect();
    format!(
        "E13 — parallel tempering vs the Theorem 3.5 barrier, well game n={n}, deltaPhi={dphi}\n\n\
         Geometric beta-ladder {:?} (hot -> cold), swaps every {sweep_ticks} ticks.\n\n\
         Exact single-chain baseline (LU solve of E[T_hit(opposite well)] from all-zeros):\n\n{}\n\
         Tempered ensemble (measured, cold-replica first hit):\n\n{}\n\
         adjacent swap acceptance rates (hot -> cold): [{}]\n\
         PASS iff every trial hits, the speedup at beta_cold = {beta_cold} is >= 10x, and every\n\
         swap rate is bounded away from 0 (a connected ladder).\n",
        ladder
            .betas()
            .iter()
            .map(|b| (b * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        exact_table.render(),
        tempered_table.render(),
        rates.join(", "),
    )
}

/// E14 — coloured parallel revision: schedule × topology sweep of the new
/// block schedules (`RandomBlock(k)`, `ColouredBlocks`) against the
/// established ones, plus the exactness panel of the coloured round chain.
///
/// Part 1 (exact, small instances): per topology, the greedy and DSATUR
/// colourings (class counts against the `Δ + 1` bound) and the stationary
/// law of the coloured **round** chain versus Gibbs — the round is a
/// permuted sweep of commuting kernels, so for the logit rule it keeps
/// Gibbs stationary *exactly*, while the all-logit block chain's stationary
/// law visibly drifts (its TV from Gibbs is reported alongside).
///
/// Part 2 (simulation, large instances): adoption of the risk-dominant
/// strategy from the wrong consensus at a **matched update budget** across
/// schedules — one uniform/sweep tick is 1 update, a `RandomBlock(k)` tick
/// is `k`, an all-logit tick is `n`, and a coloured round is `n` spread
/// over `num_classes` ticks. The coloured rows are produced by the
/// genuinely parallel `step_coloured_pooled` engine path (the simulator's
/// persistent worker pool, honouring the `LOGIT_*` env overrides), with
/// bit-identity against the sequential class sweep and the scoped path
/// asserted in-process before the row is emitted.
pub fn e14_coloured_schedules(fast: bool) -> String {
    use logit_core::parallel::{coloring_for_game, ColouredBlocks, RandomBlock};
    use logit_core::schedules::{AllLogit, SystematicSweep, UniformSingle};
    use logit_core::Scratch;
    use logit_graphs::{dsatur_coloring, greedy_coloring};
    use logit_markov::stationary_distribution;

    let beta_exact = 1.0;

    // Part 1 — exact colourings + round-chain stationarity.
    let mut exact = Table::new(vec![
        "topology",
        "n",
        "Delta+1",
        "greedy",
        "dsatur",
        "TV(coloured round, Gibbs)",
        "TV(all-logit, Gibbs)",
    ]);
    let mut rng = StdRng::seed_from_u64(0xE14);
    let mut small: Vec<(String, Graph)> = vec![
        ("ring".into(), GraphBuilder::ring(5)),
        ("hypercube d=3".into(), GraphBuilder::hypercube(3)),
        (
            "ER(5, 0.5)".into(),
            GraphBuilder::connected_erdos_renyi(5, 0.5, &mut rng, 20),
        ),
    ];
    if !fast {
        small.push(("torus 3x3".into(), GraphBuilder::torus(3, 3)));
        small.push(("ring n=8".into(), GraphBuilder::ring(8)));
        small.push((
            "ER(7, 0.4)".into(),
            GraphBuilder::connected_erdos_renyi(7, 0.4, &mut rng, 20),
        ));
    }
    let mut worst_round_tv = 0.0f64;
    let mut best_block_tv = f64::INFINITY;
    for (name, graph) in &small {
        let game =
            GraphicalCoordinationGame::new(graph.clone(), CoordinationGame::from_deltas(2.0, 1.0));
        let greedy = greedy_coloring(graph);
        let dsatur = dsatur_coloring(graph);
        assert!(greedy.is_proper(graph) && dsatur.is_proper(graph));
        let d = LogitDynamics::new(game.clone(), beta_exact);
        let gibbs = d.gibbs();
        let round_tv = logit_markov::total_variation(
            &stationary_distribution(&d.transition_chain_coloured_round(&dsatur)),
            &gibbs,
        );
        let block_tv = logit_markov::total_variation(
            &stationary_distribution(&d.transition_chain_all_logit()),
            &gibbs,
        );
        worst_round_tv = worst_round_tv.max(round_tv);
        best_block_tv = best_block_tv.min(block_tv);
        exact.push_row(vec![
            name.clone(),
            graph.num_vertices().to_string(),
            (graph.max_degree() + 1).to_string(),
            greedy.num_classes().to_string(),
            dsatur.num_classes().to_string(),
            format!("{round_tv:.2e}"),
            format!("{block_tv:.2e}"),
        ]);
    }
    assert!(
        worst_round_tv < 1e-8,
        "the coloured round chain must keep Gibbs stationary, worst TV = {worst_round_tv:.2e}"
    );

    // Part 2 — schedule × topology adoption sweep at a matched update budget.
    let (side, hyper_d, er_n, rounds, replicas) = if fast {
        (16usize, 8u32, 256usize, 60u64, 8usize)
    } else {
        (48, 11, 2048, 200, 16)
    };
    let beta = 1.5;
    let mut rng = StdRng::seed_from_u64(0xE14 + 1);
    let topologies: Vec<(String, Graph)> = vec![
        ("ring".into(), GraphBuilder::ring(side * side)),
        ("torus".into(), GraphBuilder::torus(side, side)),
        (
            format!("hypercube d={hyper_d}"),
            GraphBuilder::hypercube(hyper_d as usize),
        ),
        (
            format!("ER({er_n}, 8/n)"),
            GraphBuilder::connected_erdos_renyi(er_n, 8.0 / er_n as f64, &mut rng, 10),
        ),
    ];
    let mut sim_table = Table::new(vec![
        "topology",
        "n",
        "classes",
        "schedule",
        "ticks",
        "updates",
        "adopted fraction (mean)",
    ]);
    let mut coloured_moved_total = 0usize;
    for (name, graph) in &topologies {
        let n = graph.num_vertices();
        let game =
            GraphicalCoordinationGame::new(graph.clone(), CoordinationGame::from_deltas(2.0, 1.0));
        let coloring = coloring_for_game(&game);
        let classes = coloring.num_classes();
        let updates = rounds * n as u64;
        let start = vec![1usize; n];
        let obs = StrategyFraction::new(0, "risk-dominant fraction");
        let sim = Simulator::new(0xE14, replicas);
        let d = LogitDynamics::new(game.clone(), beta);
        let mut push = |label: &str, ticks: u64, updates: u64, mean: f64| {
            sim_table.push_row(vec![
                name.clone(),
                n.to_string(),
                classes.to_string(),
                label.to_string(),
                ticks.to_string(),
                updates.to_string(),
                f3(mean),
            ]);
        };
        let mean = sim
            .run_profiles_scheduled(&d, &UniformSingle, &start, updates, updates, &obs)
            .law()
            .mean();
        push("uniform single", updates, updates, mean);
        let mean = sim
            .run_profiles_scheduled(&d, &SystematicSweep, &start, updates, updates, &obs)
            .law()
            .mean();
        push("systematic sweep", updates, updates, mean);
        let k = (n / 8).max(1);
        let ticks = updates / k as u64;
        let mean = sim
            .run_profiles_scheduled(&d, &RandomBlock::new(k), &start, ticks, ticks, &obs)
            .law()
            .mean();
        push(
            &format!("random block k={k}"),
            ticks,
            ticks * k as u64,
            mean,
        );
        let mean = sim
            .run_profiles_scheduled(&d, &AllLogit, &start, rounds, rounds, &obs)
            .law()
            .mean();
        push("all-logit (block)", rounds, rounds * n as u64, mean);
        // ColouredBlocks through the generic scheduled engine (shared
        // stream)...
        let ticks = rounds * classes as u64;
        let mean = sim
            .run_profiles_scheduled(
                &d,
                &ColouredBlocks::new(coloring.clone()),
                &start,
                ticks,
                ticks,
                &obs,
            )
            .law()
            .mean();
        push("coloured blocks", ticks, rounds * n as u64, mean);
        // ...and through the genuinely parallel per-player-stream engine
        // path, routed over the simulator's persistent worker pool (worker
        // count and wait policy honour the LOGIT_* env overrides — the CI
        // pool smoke drives this with LOGIT_WORKERS=2): the same replica
        // count as every other row (one deterministic seed per replica, so
        // the column stays an ensemble mean and the rows are comparable
        // like-for-like), with bit-identity against both the sequential
        // class sweep and the legacy scoped path asserted on every tick of
        // the first replica before the row is emitted.
        let mut staged = Vec::new();
        let mut pooled_staged = Vec::new();
        let mut scratch = Scratch::for_game(&game);
        let mut pooled_scratch = Scratch::for_game(&game);
        let mut moved = 0usize;
        let mut adopted_sum = 0.0f64;
        let pool = sim.pool();
        for replica in 0..replicas {
            let seed = 0xE14C ^ (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut pooled = start.clone();
            let mut check = (replica == 0).then(|| (start.clone(), start.clone()));
            for t in 0..ticks {
                moved += d.step_coloured_pooled(
                    &coloring,
                    t,
                    seed,
                    &mut pooled,
                    &mut pooled_scratch,
                    &mut pooled_staged,
                    pool,
                    sim.runtime(),
                );
                if let Some((seq, par)) = check.as_mut() {
                    d.step_coloured(&coloring, t, seed, seq, &mut scratch);
                    d.step_coloured_par(&coloring, t, seed, par, &mut staged, 0);
                    assert_eq!(
                        &pooled, seq,
                        "step_coloured_pooled diverged from the class sweep"
                    );
                    assert_eq!(
                        &pooled, par,
                        "step_coloured_pooled diverged from step_coloured_par"
                    );
                }
            }
            adopted_sum += pooled.iter().filter(|&&s| s == 0).count() as f64 / n as f64;
        }
        coloured_moved_total += moved;
        push(
            "coloured par (engine)",
            ticks,
            rounds * n as u64,
            adopted_sum / replicas as f64,
        );
    }
    assert!(
        coloured_moved_total > 0,
        "the coloured engine path must move"
    );

    format!(
        "E14 — coloured parallel revision: block schedules x topologies (delta0=2, delta1=1)\n\n\
         Exact panel (beta = {beta_exact}): colour-class counts against Delta+1, and the stationary law\n\
         of one coloured round (DSATUR classes, ordered block product) vs the all-logit block chain.\n\n{}\n\
         worst coloured-round TV from Gibbs = {worst_round_tv:.2e}; smallest all-logit TV = {best_block_tv:.2e}\n\n\
         Simulation panel (beta = {beta}, {replicas} replicas, {rounds} rounds of n updates each, started\n\
         from the wrong consensus): adoption of the risk-dominant strategy at a matched update budget.\n\
         The parallel-engine rows run step_coloured_pooled (per-player RNG streams, frozen-profile\n\
         blocks, persistent worker pool) over the same replica count as the other rows — the column\n\
         is an ensemble mean everywhere — with bit-identity against the sequential class sweep and\n\
         the scoped path asserted per tick.\n\n{}\n\
         PASS iff every topology produces one row per schedule, the coloured round keeps Gibbs\n\
         stationary to < 1e-8 while the all-logit block chain does not ({best_block_tv:.1e} >> 0), and the\n\
         parallel engine path never diverges from the sequential sweep (asserted, not just printed).\n",
        exact.render(),
        sim_table.render(),
    )
}

/// Gibbs-measure sanity panel printed alongside the suite: stationary mass of
/// the consensus profiles on ring vs clique as β grows (the "who wins" picture).
pub fn stationary_panel(fast: bool) -> String {
    let n = if fast { 4 } else { 6 };
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::ring(n),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let space = game.profile_space();
    let zero = space.index_of(&vec![0usize; n]);
    let one = space.index_of(&vec![1usize; n]);
    let mut table = Table::new(vec!["beta", "pi(all-0) [risk dom.]", "pi(all-1)"]);
    for beta in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let pi = gibbs_distribution(&game, beta);
        table.push_row(vec![
            f3(beta),
            format!("{:.6}", pi[zero]),
            format!("{:.6}", pi[one]),
        ]);
    }
    format!(
        "Stationary-distribution panel (ring n={n}, delta0=2, delta1=1)\n\n{}\nAs beta grows the Gibbs measure concentrates on the risk-dominant consensus, as in Blume's analysis.\n",
        table.render()
    )
}

/// Transient-phase panel: when the mixing time is exponential the system spends
/// its life in a metastable phase (the conclusions' closing discussion). The
/// panel tracks the ensemble-averaged fraction of players on the risk-dominant
/// strategy on a clique at high β, started from the *wrong* consensus: it stays
/// pinned near 0 for a time exponential in β while the stationary value is ≈ 1.
pub fn transient_panel(fast: bool) -> String {
    use logit_core::observables::{ensemble_time_series, StrategyFraction};

    let n = if fast { 4 } else { 6 };
    let beta = if fast { 2.0 } else { 2.5 };
    let game = GraphicalCoordinationGame::new(
        GraphBuilder::clique(n),
        CoordinationGame::from_deltas(2.0, 1.0),
    );
    let space = game.profile_space();
    let wrong_consensus = space.index_of(&vec![1usize; n]);
    let pi = gibbs_distribution(&game, beta);
    let stationary_fraction: f64 = space
        .indices()
        .map(|idx| {
            let zeros = (0..n).filter(|&i| space.strategy_of(idx, i) == 0).count();
            pi[idx] * zeros as f64 / n as f64
        })
        .sum();

    let dynamics = LogitDynamics::new(game.clone(), beta);
    let observable = StrategyFraction::new(0, "risk-dominant fraction");
    let record: Vec<u64> = vec![1, 10, 100, 1_000, 10_000];
    let replicas = if fast { 200 } else { 500 };
    let series = ensemble_time_series(
        &dynamics,
        &observable,
        wrong_consensus,
        &record,
        replicas,
        17,
    );

    let mut table = Table::new(vec![
        "t",
        "mean fraction on risk-dominant strategy",
        "std err",
    ]);
    for (t, stat) in record.iter().zip(&series.stats) {
        table.push_row(vec![
            t.to_string(),
            format!("{:.4}", stat.mean()),
            format!("{:.4}", stat.std_err()),
        ]);
    }
    format!(
        "Transient-phase panel — clique n={n}, beta={beta}, started from the wrong consensus\n\nstationary expected fraction on the risk-dominant strategy = {stationary_fraction:.4}\n\n{}\nThe ensemble stays pinned near 0 (metastable in the wrong consensus) for times far\nbeyond the fast-mixing scale, while the stationary value is close to 1 — the transient\nphase the conclusions point to, and the reason the Theorem 5.5 mixing time is exponential.\n",
        table.render()
    )
}

/// All experiment reports, in order, as `(id, report)` pairs.
pub fn all_reports(fast: bool) -> Vec<(&'static str, String)> {
    vec![
        ("E1", e1_eigenvalues(fast)),
        ("E2", e2_beta_zero(fast)),
        ("E3", e3_all_beta_bound(fast)),
        ("E4", e4_lower_bound(fast)),
        ("E5", e5_small_beta(fast)),
        ("E6", e6_zeta(fast)),
        ("E7", e7_dominant(fast)),
        ("E8", e8_cutwidth(fast)),
        ("E9", e9_clique(fast)),
        ("E10", e10_ring(fast)),
        ("E11", e11_large_ring(fast)),
        ("E12", e12_cross_rule(fast)),
        ("E13", e13_tempering(fast)),
        ("E14", e14_coloured_schedules(fast)),
        ("Stationary", stationary_panel(fast)),
        ("Transient", transient_panel(fast)),
    ]
}

/// Extracts the single simulation-based check used by the run-all binary: a
/// parallel ensemble of the ring game approaches the Gibbs measure.
pub fn simulation_check(fast: bool) -> String {
    let n = if fast { 4 } else { 6 };
    let beta = 0.8;
    let game =
        GraphicalCoordinationGame::new(GraphBuilder::ring(n), CoordinationGame::symmetric(1.0));
    let pi = gibbs_distribution(&game, beta);
    let dynamics = LogitDynamics::new(game.clone(), beta);
    let replicas = if fast { 2000 } else { 20_000 };
    let sim = logit_core::Simulator::new(99, replicas);
    let mut table = Table::new(vec!["steps", "TV(empirical, Gibbs)"]);
    for steps in [1u64, 4, 16, 64, 256, 1024] {
        let tv = sim.tv_distance_after(&dynamics, 0, steps, &pi);
        table.push_row(vec![steps.to_string(), format!("{tv:.4}")]);
    }
    format!(
        "Simulation panel — parallel ensemble ({replicas} replicas) of the ring game at beta = {beta}\n\n{}\nThe empirical law of X_t converges to the Gibbs measure as t grows (residual ~ sampling noise).\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fast variants of every experiment must run and produce the PASS
    // conditions they print. These are smoke tests for the harness; the
    // quantitative assertions live in the workspace integration tests.

    #[test]
    fn e1_and_e2_fast_reports_have_rows() {
        let r1 = e1_eigenvalues(true);
        assert!(r1.contains("Theorem 3.1"));
        assert!(r1.matches("true").count() >= 4);
        let r2 = e2_beta_zero(true);
        assert!(r2.lines().count() > 5);
    }

    #[test]
    fn e3_to_e6_fast_reports_have_rows() {
        for report in [
            e3_all_beta_bound(true),
            e4_lower_bound(true),
            e5_small_beta(true),
            e6_zeta(true),
        ] {
            assert!(report.contains("beta"));
            assert!(report.lines().count() > 5, "report too short:\n{report}");
            assert!(
                !report.contains("> budget"),
                "an experiment exceeded its budget:\n{report}"
            );
        }
    }

    #[test]
    fn e12_fast_report_covers_every_rule_through_both_engines() {
        let report = e12_cross_rule(true);
        // Labels are matched with a leading space (table cells are padded) so
        // the bare-rule rows are counted separately from "all-logit (block)".
        for label in [
            " logit ",
            " metropolis ",
            " nbr(0.10) ",
            " fermi ",
            " imitate(0.10) ",
            "all-logit (block)",
        ] {
            // Each rule/schedule appears in both the exact and the simulated
            // table: twice per topology in part 1, once per topology in part 2.
            assert!(
                report.matches(label).count() >= 4,
                "{label:?} missing from the cross-rule report"
            );
        }
        assert!(report.contains("ring"));
        assert!(report.contains("clique"));
        assert!(!report.contains("> budget"), "an exact chain did not mix");
    }

    #[test]
    fn e11_fast_report_simulates_beyond_flat_capacity() {
        let report = e11_large_ring(true);
        assert!(report.contains("in-place profile engine"));
        // The PASS condition on cross-n throughput is actually enforced.
        let spread: f64 = report
            .lines()
            .find(|l| l.starts_with("throughput spread"))
            .and_then(|l| l.split('=').nth(1))
            .expect("spread line present")
            .trim()
            .parse()
            .expect("spread parses");
        assert!(
            spread < 10.0,
            "per-step cost must not scale with n (spread = {spread})"
        );
        // Both fast grid sizes produce a data row.
        assert!(report.contains("1000"), "n=1000 row missing:\n{report}");
        assert!(report.contains("10000"), "n=10000 row missing:\n{report}");
        // Adoption of the risk-dominant strategy happens at beta = 1.5. The
        // fast grid gives n = 1000 fifty updates per player — enough to near
        // consensus (n = 10000 only gets five, so it is still in transit).
        let mean: f64 = report
            .lines()
            .find(|l| l.trim_start().starts_with("1000 "))
            .and_then(|l| l.split_whitespace().nth(5))
            .expect("adopters column present")
            .parse()
            .expect("adopters mean parses");
        assert!(
            mean > 0.5,
            "risk-dominant adoption should exceed one half, got {mean}"
        );
    }

    #[test]
    fn e13_fast_report_shows_at_least_tenfold_tempering_speedup() {
        let report = e13_tempering(true);
        assert!(report.contains("parallel tempering"));
        // The acceptance criterion is enforced, not just printed: the cold
        // replica of the tempered ensemble reaches the opposite well in >= 10x
        // fewer total engine steps than the exact single chain at beta_cold.
        let speedup: f64 = report
            .lines()
            .flat_map(|l| l.split_whitespace())
            .find(|w| w.ends_with('x') && w.chars().next().unwrap().is_ascii_digit())
            .expect("speedup cell present")
            .trim_end_matches('x')
            .parse()
            .expect("speedup parses");
        assert!(
            speedup >= 10.0,
            "tempering should beat the exponential barrier by >= 10x, got {speedup}x"
        );
        // Every trial hit the opposite well within the budget.
        assert!(report.contains("24/24"), "all trials must hit:\n{report}");
        // The ladder is connected: no swap rate collapsed to zero.
        let rates_line = report
            .lines()
            .find(|l| l.starts_with("adjacent swap acceptance"))
            .expect("swap-rate line present");
        let rates: Vec<f64> = rates_line
            .split('[')
            .nth(1)
            .unwrap()
            .trim_end_matches(']')
            .split(',')
            .map(|r| r.trim().parse().expect("rate parses"))
            .collect();
        assert_eq!(rates.len(), 4, "K = 5 rungs give 4 adjacent pairs");
        assert!(
            rates.iter().all(|&r| r > 0.05),
            "swap rates must stay bounded away from 0, got {rates:?}"
        );
    }

    #[test]
    fn e14_fast_report_sweeps_schedules_across_topologies() {
        // The in-process assertions (round-chain stationarity, parallel
        // bit-identity) must already have held for the report to exist.
        let report = e14_coloured_schedules(true);
        for schedule in [
            "uniform single",
            "systematic sweep",
            "random block",
            "all-logit (block)",
            "coloured blocks",
            "coloured par (engine)",
        ] {
            assert_eq!(
                report.matches(schedule).count(),
                4,
                "{schedule:?} must appear once per topology"
            );
        }
        for topology in [" ring ", " torus ", "hypercube", "ER("] {
            assert!(report.contains(topology), "{topology:?} row missing");
        }
        // The exactness contrast is quantitative: the coloured round fixes
        // Gibbs, the all-logit block chain does not.
        let worst: f64 = report
            .lines()
            .find(|l| l.starts_with("worst coloured-round TV"))
            .and_then(|l| l.split('=').nth(1))
            .and_then(|v| v.split(';').next())
            .expect("worst-TV line present")
            .trim()
            .parse()
            .expect("worst TV parses");
        assert!(worst < 1e-8, "coloured round drifted from Gibbs: {worst}");
        let smallest_block: f64 = report
            .lines()
            .find(|l| l.starts_with("worst coloured-round TV"))
            .and_then(|l| l.rsplit('=').next())
            .expect("smallest block TV present")
            .trim()
            .parse()
            .expect("block TV parses");
        assert!(
            smallest_block > 1e-3,
            "the all-logit stationary law should visibly differ at beta = 1, got {smallest_block}"
        );
    }

    #[test]
    fn e7_to_e10_fast_reports_have_rows() {
        for report in [
            e7_dominant(true),
            e8_cutwidth(true),
            e9_clique(true),
            e10_ring(true),
        ] {
            assert!(report.lines().count() > 5);
        }
    }

    #[test]
    fn panels_render() {
        assert!(stationary_panel(true).contains("pi(all-0)"));
        assert!(simulation_check(true).contains("TV"));
    }

    #[test]
    fn transient_panel_shows_metastability() {
        let report = transient_panel(true);
        assert!(report.contains("stationary expected fraction"));
        // The early-time rows should show a fraction close to zero (trapped in
        // the wrong consensus) — check the t=1 row mentions 0.0-something.
        let first_row = report
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .expect("t=1 row present");
        let mean: f64 = first_row
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            mean < 0.2,
            "at t=1 the ensemble should still be trapped, mean = {mean}"
        );
    }
}
