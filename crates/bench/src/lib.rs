//! # logit-bench
//!
//! Experiment harness and criterion benchmarks.
//!
//! Every quantitative claim of the paper has an experiment (E1–E14, see
//! `DESIGN.md` for the index). Each experiment is a library function in
//! [`experiments`] returning a plain-text report (a header plus a CSV-ish
//! table), and a thin binary in `src/bin/` prints it; `run_all_experiments`
//! regenerates the data behind `EXPERIMENTS.md` in one go.
//!
//! The criterion benches in `benches/` cover the hot kernels: chain
//! construction, spectral analysis, exact mixing-time computation, simulation
//! throughput, cutwidth and barrier computation.

pub mod experiments;
pub mod table;

pub use table::Table;
