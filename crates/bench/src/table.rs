//! Minimal fixed-width text tables for experiment reports.

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to the widest cell.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics when the row length does not match the header length.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as an aligned plain-text block.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (comma-separated, no quoting — cells are numeric).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an `Option<u64>` mixing time, with `> budget` for censored values.
pub fn show_time(t: Option<u64>) -> String {
    t.map(|v| v.to_string())
        .unwrap_or_else(|| "> budget".into())
}

/// Formats a float with 3 decimal places (compact experiment output).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["beta", "t_mix"]);
        t.push_row(vec!["0.5", "12"]);
        t.push_row(vec!["10", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("beta"));
        assert!(lines[3].ends_with("123456"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_round_trip_structure() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "2"]);
        let csv = t.render_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1"]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(show_time(Some(7)), "7");
        assert_eq!(show_time(None), "> budget");
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(2.0), "2.0");
    }
}
