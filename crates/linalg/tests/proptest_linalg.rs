//! Property-based tests for the linear-algebra substrate.

use logit_linalg::{jacobi_eigen, solve, CsrMatrix, JacobiOptions, Matrix, Vector};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dot product is symmetric and the Cauchy–Schwarz inequality holds.
    #[test]
    fn dot_symmetric_and_cauchy_schwarz(a in small_vec(8), b in small_vec(8)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let d1 = va.dot(&vb);
        let d2 = vb.dot(&va);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1.abs() <= va.norm2() * vb.norm2() + 1e-9);
    }

    /// Triangle inequality for the Euclidean norm.
    #[test]
    fn norm_triangle_inequality(a in small_vec(6), b in small_vec(6)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let sum = &va + &vb;
        prop_assert!(sum.norm2() <= va.norm2() + vb.norm2() + 1e-9);
    }

    /// Matrix multiplication is associative on small matrices.
    #[test]
    fn matmul_associative(data_a in small_vec(9), data_b in small_vec(9), data_c in small_vec(9)) {
        let a = Matrix::from_vec(3, 3, data_a);
        let b = Matrix::from_vec(3, 3, data_b);
        let c = Matrix::from_vec(3, 3, data_c);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-7);
    }

    /// (A B)^T = B^T A^T.
    #[test]
    fn transpose_of_product(data_a in small_vec(12), data_b in small_vec(8)) {
        let a = Matrix::from_vec(3, 4, data_a);
        let b = Matrix::from_vec(4, 2, data_b);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    /// LU solve returns a vector whose residual is tiny for diagonally dominant systems.
    #[test]
    fn lu_solve_small_residual(off in small_vec(16), rhs in small_vec(4)) {
        let n = 4;
        let mut a = Matrix::from_vec(n, n, off);
        for i in 0..n {
            // Make the matrix strictly diagonally dominant so it is invertible.
            let rowsum: f64 = a.row(i).iter().map(|x| x.abs()).sum();
            a[(i, i)] = rowsum + 1.0;
        }
        let b = Vector::from_vec(rhs);
        let x = solve(&a, &b).expect("diagonally dominant matrices are invertible");
        let residual = &a.matvec(&x) - &b;
        prop_assert!(residual.norm_inf() < 1e-8);
    }

    /// Jacobi eigenvalues of a symmetric matrix preserve trace and Frobenius norm.
    #[test]
    fn jacobi_preserves_invariants(data in small_vec(25)) {
        let n = 5;
        let raw = Matrix::from_vec(n, n, data);
        // Symmetrise.
        let a = Matrix::from_fn(n, n, |i, j| 0.5 * (raw[(i, j)] + raw[(j, i)]));
        let e = jacobi_eigen(&a, JacobiOptions::default());
        let trace: f64 = e.eigenvalues.iter().sum();
        prop_assert!((trace - a.trace()).abs() < 1e-7);
        let sumsq: f64 = e.eigenvalues.iter().map(|l| l * l).sum();
        prop_assert!((sumsq - a.frobenius_norm().powi(2)).abs() < 1e-6);
    }

    /// CSR and dense agree on matvec / vecmat for arbitrary sparse patterns.
    #[test]
    fn csr_matches_dense(entries in prop::collection::vec((0usize..6, 0usize..6, -5.0..5.0f64), 0..30),
                         v in small_vec(6)) {
        let mut dense = Matrix::zeros(6, 6);
        let mut builder = logit_linalg::sparse::CsrBuilder::new(6, 6);
        for (i, j, val) in entries {
            dense[(i, j)] += val;
            builder.push(i, j, val);
        }
        let sparse = builder.build();
        let vv = Vector::from_vec(v);
        let d1 = dense.matvec(&vv);
        let s1 = sparse.matvec(&vv);
        prop_assert!((&d1 - &s1).norm_inf() < 1e-9);
        let d2 = dense.vecmat(&vv);
        let s2 = sparse.vecmat(&vv);
        prop_assert!((&d2 - &s2).norm_inf() < 1e-9);
    }

    /// Round-tripping dense -> CSR -> dense is the identity (up to dropping exact zeros).
    #[test]
    fn csr_round_trip(data in small_vec(16)) {
        let d = Matrix::from_vec(4, 4, data);
        let s = CsrMatrix::from_dense(&d, 0.0);
        prop_assert!(s.to_dense().max_abs_diff(&d) == 0.0);
    }
}
