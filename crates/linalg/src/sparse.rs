//! Compressed-sparse-row matrices.
//!
//! The logit-dynamics transition matrix on `n` players with `m` strategies has
//! `mⁿ` states but only `n(m-1)+1` non-zero entries per row (single-player
//! updates plus the self loop). [`CsrMatrix`] stores exactly those entries and
//! supports the distribution-step and matrix-vector products used by the
//! simulation-scale analyses where a dense matrix would not fit.

use crate::matrix::Matrix;
use crate::vector::Vector;

/// A sparse matrix in compressed-sparse-row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Row pointer: entries of row `i` live in `indices/values[row_ptr[i]..row_ptr[i+1]]`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    indices: Vec<usize>,
    /// Non-zero values.
    values: Vec<f64>,
}

/// Incremental builder that accepts triplets in any order and merges duplicates
/// by summing them.
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    nrows: usize,
    ncols: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl CsrBuilder {
    /// Creates a builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            triplets: Vec::new(),
        }
    }

    /// Adds `value` to entry `(row, col)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.nrows, "row {row} out of range");
        assert!(col < self.ncols, "col {col} out of range");
        if value != 0.0 {
            self.triplets.push((row, col, value));
        }
    }

    /// Number of triplets currently buffered (before duplicate merging).
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// Returns `true` when no triplet has been pushed.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Finalises the builder into a [`CsrMatrix`].
    pub fn build(mut self) -> CsrMatrix {
        self.triplets.sort_by_key(|a| (a.0, a.1));
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.nrows];
        for (r, c, v) in self.triplets {
            match rows[r].last_mut() {
                Some((lc, lv)) if *lc == c => *lv += v,
                _ => rows[r].push((c, v)),
            }
        }
        CsrMatrix::from_rows(self.ncols, rows)
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix directly from per-row `(col, value)` lists.
    ///
    /// Duplicate columns within a row are summed; columns are sorted.
    pub fn from_rows(ncols: usize, rows: Vec<Vec<(usize, f64)>>) -> Self {
        let nrows = rows.len();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for mut row in rows {
            row.sort_by_key(|&(c, _)| c);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for (c, v) in row {
                assert!(c < ncols, "column {c} out of range");
                if v == 0.0 {
                    continue;
                }
                match merged.last_mut() {
                    Some((lc, lv)) if *lc == c => *lv += v,
                    _ => merged.push((c, v)),
                }
            }
            for (c, v) in merged {
                indices.push(c);
                values.push(v);
            }
            row_ptr.push(indices.len());
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            indices,
            values,
        }
    }

    /// Converts a dense matrix to CSR, dropping entries with absolute value `<= drop_tol`.
    pub fn from_dense(m: &Matrix, drop_tol: f64) -> Self {
        let rows = (0..m.nrows())
            .map(|i| {
                m.row(i)
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v.abs() > drop_tol)
                    .map(|(j, &v)| (j, v))
                    .collect()
            })
            .collect();
        Self::from_rows(m.ncols(), rows)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(col, value)` pairs of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Value at `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row_iter(i)
            .find(|&(c, _)| c == j)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &Vector) -> Vector {
        assert_eq!(self.ncols, v.len(), "matvec: dimension mismatch");
        let mut out = Vector::zeros(self.nrows);
        for i in 0..self.nrows {
            let mut acc = 0.0;
            for (c, val) in self.row_iter(i) {
                acc += val * v[c];
            }
            out[i] = acc;
        }
        out
    }

    /// Row-vector–matrix product `vᵀ * self` (one distribution step for a
    /// row-stochastic matrix).
    pub fn vecmat(&self, v: &Vector) -> Vector {
        assert_eq!(self.nrows, v.len(), "vecmat: dimension mismatch");
        let mut out = Vector::zeros(self.ncols);
        for i in 0..self.nrows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (c, val) in self.row_iter(i) {
                out[c] += vi * val;
            }
        }
        out
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for (c, v) in self.row_iter(i) {
                m[(i, c)] = v;
            }
        }
        m
    }

    /// Sum of row `i`.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row_iter(i).map(|(_, v)| v).sum()
    }

    /// `true` when the matrix is square, entries are non-negative and rows sum
    /// to one within `tol`.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            if self.row_iter(i).any(|(_, v)| v < -tol) {
                return false;
            }
            if (self.row_sum(i) - 1.0).abs() > tol {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, 0.5, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.25, 0.25, 0.5],
        ])
    }

    #[test]
    fn from_dense_round_trip() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 6);
        assert_eq!(s.to_dense(), d);
        assert!(s.is_row_stochastic(1e-12));
    }

    #[test]
    fn from_rows_merges_duplicates_and_sorts() {
        let s = CsrMatrix::from_rows(
            3,
            vec![vec![(2, 1.0), (0, 0.5), (2, 0.5)], vec![], vec![(1, 2.0)]],
        );
        assert_eq!(s.get(0, 2), 1.5);
        assert_eq!(s.get(0, 0), 0.5);
        assert_eq!(s.get(1, 1), 0.0);
        assert_eq!(s.get(2, 1), 2.0);
        let cols: Vec<usize> = s.row_iter(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2]);
    }

    #[test]
    fn matvec_and_vecmat_match_dense() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d, 0.0);
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(s.matvec(&v).as_slice(), d.matvec(&v).as_slice());
        assert_eq!(s.vecmat(&v).as_slice(), d.vecmat(&v).as_slice());
    }

    #[test]
    fn builder_accumulates_triplets() {
        let mut b = CsrBuilder::new(2, 2);
        assert!(b.is_empty());
        b.push(0, 0, 1.0);
        b.push(1, 1, 2.0);
        b.push(0, 1, 3.0);
        b.push(0, 0, 0.0); // zero is dropped
        assert_eq!(b.len(), 3);
        let s = b.build();
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 3.0);
        assert_eq!(s.get(1, 1), 2.0);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn empty_rows_are_handled() {
        let s = CsrMatrix::from_rows(4, vec![vec![], vec![(3, 1.0)], vec![], vec![]]);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.row_sum(0), 0.0);
        assert_eq!(s.row_sum(1), 1.0);
        let v = Vector::from_slice(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.matvec(&v).as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn drop_tolerance_removes_small_entries() {
        let d = Matrix::from_rows(&[vec![1e-15, 1.0], vec![0.5, 0.5]]);
        let s = CsrMatrix::from_dense(&d, 1e-12);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.get(0, 0), 0.0);
    }

    #[test]
    fn random_dense_sparse_consistency() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 17;
        let d = Matrix::from_fn(n, n, |_, _| {
            if rng.gen_bool(0.2) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        let s = CsrMatrix::from_dense(&d, 0.0);
        let v = Vector::from_vec((0..n).map(|i| i as f64).collect());
        let dv = d.matvec(&v);
        let sv = s.matvec(&v);
        assert!((&dv - &sv).norm_inf() < 1e-12);
        let dtv = d.vecmat(&v);
        let stv = s.vecmat(&v);
        assert!((&dtv - &stv).norm_inf() < 1e-12);
    }
}
