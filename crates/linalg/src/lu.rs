//! LU decomposition with partial pivoting.
//!
//! Used for the linear solves the workspace needs: stationary distributions of
//! small non-reversible chains (solving `πP = π` as a linear system) and expected
//! hitting times (`(I - P_restricted) h = 1`).

use crate::matrix::Matrix;
use crate::vector::Vector;

/// Errors produced by the LU factorisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare,
    /// The matrix is singular (a pivot smaller than the tolerance was found).
    Singular {
        /// Index of the failing pivot column.
        column: usize,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "LU decomposition requires a square matrix"),
            LuError::Singular { column } => {
                write!(f, "matrix is singular (zero pivot in column {column})")
            }
        }
    }
}

impl std::error::Error for LuError {}

/// An LU decomposition `PA = LU` with partial (row) pivoting.
///
/// `L` is unit lower triangular, `U` upper triangular and `P` a permutation.
/// Both factors are packed into a single square matrix.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed factors: strictly-lower part is `L` (unit diagonal implied), upper part is `U`.
    lu: Matrix,
    /// Row permutation: row `i` of the factorised matrix is row `perm[i]` of the original.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used for the determinant.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Pivot tolerance below which a matrix is declared singular.
    pub const PIVOT_TOL: f64 = 1e-13;

    /// Factorises `a`.
    pub fn new(a: &Matrix) -> Result<Self, LuError> {
        if !a.is_square() {
            return Err(LuError::NotSquare);
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < Self::PIVOT_TOL {
                return Err(LuError::Singular { column: k });
            }
            if pivot_row != k {
                // Swap rows k and pivot_row.
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve: right-hand side has wrong length");
        // Apply permutation and forward-substitute L y = P b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back-substitute U x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.nrows(), n);
        let mut out = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let col = b.col(j);
            let x = self.solve(&col);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Inverse of the factorised matrix.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factorised matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// Convenience wrapper: solves `A x = b` in one call.
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector, LuError> {
    Ok(LuDecomposition::new(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5 ; x + 3y = 10  => x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let b = Vector::from_slice(&[5.0, 10.0]);
        let x = solve(&a, &b).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-10));
        assert!(approx_eq(x[1], 3.0, 1e-10));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Vector::from_slice(&[2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert!(approx_eq(x[0], 3.0, 1e-12));
        assert!(approx_eq(x[1], 2.0, 1e-12));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        match LuDecomposition::new(&a) {
            Err(LuError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(LuDecomposition::new(&a).unwrap_err(), LuError::NotSquare);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.5],
            vec![1.0, 3.0, -1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let inv = LuDecomposition::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![0.0, 4.0, 5.0],
            vec![1.0, 0.0, 6.0],
        ]);
        // det = 1*(24-0) - 2*(0-5) + 3*(0-4) = 24 + 10 - 12 = 22
        let det = LuDecomposition::new(&a).unwrap().determinant();
        assert!(approx_eq(det, 22.0, 1e-10));
    }

    #[test]
    fn residual_is_small_for_random_systems() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(7);
        for n in [3usize, 6, 12, 25] {
            let a = Matrix::from_fn(n, n, |i, j| {
                let base: f64 = rng.gen_range(-1.0..1.0);
                if i == j {
                    base + n as f64 // diagonally dominant => well-conditioned
                } else {
                    base
                }
            });
            let b = Vector::from_vec((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let x = solve(&a, &b).unwrap();
            let r = &a.matvec(&x) - &b;
            assert!(r.norm_inf() < 1e-9, "large residual for n={n}");
        }
    }
}
