//! Symmetric eigensolvers.
//!
//! The workspace analyses *reversible* Markov chains: for a chain with transition
//! matrix `P` and stationary distribution `π`, the similarity transform
//! `A = D^{1/2} P D^{-1/2}` (with `D = diag(π)`) is symmetric and shares its
//! spectrum with `P`. A classic **cyclic Jacobi** sweep is a simple, numerically
//! robust way to obtain the full spectrum (and eigenvectors) of such matrices at
//! the sizes we care about (up to a few thousand states).
//!
//! The module also provides shifted [`power_iteration`] which is used to
//! cross-check the dominant eigenvalues obtained by Jacobi.

use crate::matrix::Matrix;
use crate::vector::Vector;

/// Options controlling the cyclic Jacobi iteration.
#[derive(Debug, Clone, Copy)]
pub struct JacobiOptions {
    /// Maximum number of full sweeps over all off-diagonal entries.
    pub max_sweeps: usize,
    /// Convergence threshold on the off-diagonal Frobenius norm.
    pub tol: f64,
    /// When `true`, eigenvectors are accumulated (slower, needed only when the
    /// caller wants the eigenbasis and not just the spectrum).
    pub compute_eigenvectors: bool,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        Self {
            max_sweeps: 64,
            tol: 1e-12,
            compute_eigenvectors: false,
        }
    }
}

/// Result of a symmetric eigendecomposition.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted in non-increasing order.
    pub eigenvalues: Vec<f64>,
    /// Matching eigenvectors as columns (empty when not requested).
    pub eigenvectors: Option<Matrix>,
    /// Number of sweeps performed.
    pub sweeps: usize,
    /// Final off-diagonal Frobenius norm.
    pub off_diagonal_norm: f64,
}

impl EigenDecomposition {
    /// Largest eigenvalue.
    pub fn lambda_max(&self) -> f64 {
        self.eigenvalues[0]
    }

    /// Smallest eigenvalue.
    pub fn lambda_min(&self) -> f64 {
        *self.eigenvalues.last().expect("non-empty spectrum")
    }

    /// Second-largest eigenvalue, `None` for 1×1 matrices.
    pub fn lambda_2(&self) -> Option<f64> {
        self.eigenvalues.get(1).copied()
    }

    /// `λ*`: the largest absolute value among eigenvalues other than the first.
    ///
    /// For an ergodic transition matrix `λ₁ = 1` and `λ*` determines the
    /// relaxation time `1/(1-λ*)`.
    pub fn lambda_star(&self) -> Option<f64> {
        if self.eigenvalues.len() < 2 {
            return None;
        }
        Some(
            self.eigenvalues[1..]
                .iter()
                .fold(0.0f64, |acc, &l| acc.max(l.abs())),
        )
    }
}

fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.nrows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)] * a[(i, j)];
            }
        }
    }
    s.sqrt()
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic Jacobi
/// method.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is the caller's responsibility; only
/// the upper triangle drives the rotations, and a strongly asymmetric input will
/// simply produce the spectrum of its symmetric part.
pub fn jacobi_eigen(a: &Matrix, opts: JacobiOptions) -> EigenDecomposition {
    assert!(a.is_square(), "jacobi_eigen: matrix must be square");
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = if opts.compute_eigenvectors {
        Some(Matrix::identity(n))
    } else {
        None
    };

    if n == 0 {
        return EigenDecomposition {
            eigenvalues: Vec::new(),
            eigenvectors: v,
            sweeps: 0,
            off_diagonal_norm: 0.0,
        };
    }

    let mut sweeps = 0;
    let mut off = off_diagonal_norm(&m);
    while sweeps < opts.max_sweeps && off > opts.tol {
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= opts.tol * 1e-2 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                if let Some(vm) = v.as_mut() {
                    for k in 0..n {
                        let vkp = vm[(k, p)];
                        let vkq = vm[(k, q)];
                        vm[(k, p)] = c * vkp - s * vkq;
                        vm[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        sweeps += 1;
        off = off_diagonal_norm(&m);
    }

    // Extract and sort eigenvalues (descending), permuting eigenvectors along.
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let eigenvectors = v.map(|vm| {
        let mut sorted = Matrix::zeros(n, n);
        for (new_col, &old_col) in idx.iter().enumerate() {
            for r in 0..n {
                sorted[(r, new_col)] = vm[(r, old_col)];
            }
        }
        sorted
    });

    EigenDecomposition {
        eigenvalues,
        eigenvectors,
        sweeps,
        off_diagonal_norm: off,
    }
}

/// Result of a power iteration.
#[derive(Debug, Clone)]
pub struct PowerIterationResult {
    /// Estimated dominant eigenvalue (by absolute value).
    pub eigenvalue: f64,
    /// Corresponding unit eigenvector estimate.
    pub eigenvector: Vector,
    /// Iterations performed.
    pub iterations: usize,
    /// `true` when the iteration converged within the tolerance.
    pub converged: bool,
}

/// Power iteration for the dominant eigenpair of a square matrix.
///
/// `start` seeds the iteration (pass a positive vector for stochastic matrices
/// to avoid starting orthogonal to the dominant eigenvector).
pub fn power_iteration(
    a: &Matrix,
    start: &Vector,
    max_iters: usize,
    tol: f64,
) -> PowerIterationResult {
    assert!(a.is_square(), "power_iteration: matrix must be square");
    assert_eq!(a.nrows(), start.len());
    let mut v = start.clone();
    let norm = v.norm2();
    assert!(norm > 0.0, "power_iteration: start vector must be non-zero");
    v.scale(1.0 / norm);

    let mut lambda = 0.0;
    for it in 0..max_iters {
        let mut w = a.matvec(&v);
        let new_lambda = v.dot(&w);
        let wnorm = w.norm2();
        if wnorm == 0.0 {
            // a v = 0: eigenvalue 0 with eigenvector v.
            return PowerIterationResult {
                eigenvalue: 0.0,
                eigenvector: v,
                iterations: it + 1,
                converged: true,
            };
        }
        w.scale(1.0 / wnorm);
        let delta = (&w - &v).norm_inf().min((&w + &v).norm_inf());
        v = w;
        if (new_lambda - lambda).abs() < tol && delta < tol.sqrt() {
            return PowerIterationResult {
                eigenvalue: new_lambda,
                eigenvector: v,
                iterations: it + 1,
                converged: true,
            };
        }
        lambda = new_lambda;
    }
    PowerIterationResult {
        eigenvalue: lambda,
        eigenvector: v,
        iterations: max_iters,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn symmetric_3x3() -> Matrix {
        Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ])
    }

    #[test]
    fn jacobi_diagonal_matrix_is_trivial() {
        let d = Matrix::diag(&Vector::from_slice(&[3.0, 1.0, 2.0]));
        let e = jacobi_eigen(&d, JacobiOptions::default());
        assert_eq!(e.eigenvalues, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn jacobi_known_spectrum() {
        // Eigenvalues of [[2,1,0],[1,3,1],[0,1,2]] are 4, 2, 1.
        let e = jacobi_eigen(&symmetric_3x3(), JacobiOptions::default());
        assert!(approx_eq(e.eigenvalues[0], 4.0, 1e-9));
        assert!(approx_eq(e.eigenvalues[1], 2.0, 1e-9));
        assert!(approx_eq(e.eigenvalues[2], 1.0, 1e-9));
    }

    #[test]
    fn jacobi_trace_and_frobenius_preserved() {
        let a = symmetric_3x3();
        let e = jacobi_eigen(&a, JacobiOptions::default());
        let trace: f64 = e.eigenvalues.iter().sum();
        assert!(approx_eq(trace, a.trace(), 1e-9));
        let sumsq: f64 = e.eigenvalues.iter().map(|l| l * l).sum();
        assert!(approx_eq(sumsq, a.frobenius_norm().powi(2), 1e-9));
    }

    #[test]
    fn jacobi_eigenvectors_satisfy_av_eq_lv() {
        let a = symmetric_3x3();
        let opts = JacobiOptions {
            compute_eigenvectors: true,
            ..Default::default()
        };
        let e = jacobi_eigen(&a, opts);
        let vm = e.eigenvectors.expect("requested eigenvectors");
        for (k, &lambda) in e.eigenvalues.iter().enumerate() {
            let v = vm.col(k);
            let av = a.matvec(&v);
            let lv = v.scaled(lambda);
            assert!((&av - &lv).norm_inf() < 1e-8, "eigenpair {k} fails");
        }
    }

    #[test]
    fn jacobi_random_symmetric_spectrum_consistency() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 5, 10, 20] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in i..n {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    a[(i, j)] = v;
                    a[(j, i)] = v;
                }
            }
            let e = jacobi_eigen(&a, JacobiOptions::default());
            assert_eq!(e.eigenvalues.len(), n);
            // Eigenvalues sorted descending.
            for w in e.eigenvalues.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
            // Trace preserved.
            let tr: f64 = e.eigenvalues.iter().sum();
            assert!(approx_eq(tr, a.trace(), 1e-8));
        }
    }

    #[test]
    fn lambda_star_and_accessors() {
        let e = EigenDecomposition {
            eigenvalues: vec![1.0, 0.7, -0.9],
            eigenvectors: None,
            sweeps: 1,
            off_diagonal_norm: 0.0,
        };
        assert_eq!(e.lambda_max(), 1.0);
        assert_eq!(e.lambda_min(), -0.9);
        assert_eq!(e.lambda_2(), Some(0.7));
        assert!(approx_eq(e.lambda_star().unwrap(), 0.9, 1e-15));
    }

    #[test]
    fn power_iteration_dominant_pair() {
        let a = symmetric_3x3();
        let start = Vector::from_slice(&[1.0, 1.0, 1.0]);
        let r = power_iteration(&a, &start, 10_000, 1e-12);
        assert!(r.converged);
        assert!(approx_eq(r.eigenvalue, 4.0, 1e-6));
        // Residual check.
        let res = &a.matvec(&r.eigenvector) - &r.eigenvector.scaled(r.eigenvalue);
        assert!(res.norm_inf() < 1e-5);
    }

    #[test]
    fn power_iteration_zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let start = Vector::from_slice(&[1.0, 0.0, 0.0]);
        let r = power_iteration(&a, &start, 100, 1e-12);
        assert!(r.converged);
        assert_eq!(r.eigenvalue, 0.0);
    }

    #[test]
    fn jacobi_empty_matrix() {
        let a = Matrix::zeros(0, 0);
        let e = jacobi_eigen(&a, JacobiOptions::default());
        assert!(e.eigenvalues.is_empty());
    }
}
