//! Dense `f64` vectors.
//!
//! [`Vector`] is a thin, owned wrapper around `Vec<f64>` with the handful of
//! numerical operations the rest of the workspace needs: dot products, norms,
//! axpy-style updates and probability-distribution helpers (normalisation and
//! total-variation distance live in `logit-markov`, but the building blocks are
//! here).

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense vector of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector of `n` copies of `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            data: vec![value; n],
        }
    }

    /// Creates a vector from a `Vec<f64>`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(data: &[f64]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Standard basis vector `e_i` of length `n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for length {n}");
        let mut v = Self::zeros(n);
        v.data[i] = 1.0;
        v
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over entries.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.data.iter()
    }

    /// Dot product `self · other`.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Max norm (largest absolute value). Returns 0 for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// Sum of entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest entry (not absolute value). Returns `f64::NEG_INFINITY` when empty.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest entry. Returns `f64::INFINITY` when empty.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// In-place `self += alpha * other` (the BLAS `axpy` update).
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Vector {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Normalises the vector so its entries sum to one.
    ///
    /// # Panics
    /// Panics if the sum is zero or non-finite, since the result would not be a
    /// probability distribution.
    pub fn normalize_l1(&mut self) {
        let s = self.sum();
        assert!(
            s.is_finite() && s != 0.0,
            "normalize_l1: sum must be finite and non-zero, got {s}"
        );
        self.scale(1.0 / s);
    }

    /// Normalises the vector to unit Euclidean norm.
    ///
    /// # Panics
    /// Panics if the norm is zero or non-finite.
    pub fn normalize_l2(&mut self) {
        let s = self.norm2();
        assert!(
            s.is_finite() && s != 0.0,
            "normalize_l2: norm must be finite and non-zero, got {s}"
        );
        self.scale(1.0 / s);
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns `true` when the vector is a probability distribution up to
    /// tolerance `tol`: non-negative entries summing to one.
    pub fn is_distribution(&self, tol: f64) -> bool {
        self.data.iter().all(|&x| x >= -tol) && (self.sum() - 1.0).abs() <= tol
    }

    /// Entry-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "hadamard: length mismatch");
        Vector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        )
    }

    /// Index of the largest entry (first one in case of ties). `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector({:?})", self.data)
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Vector::zeros(4);
        assert_eq!(z.len(), 4);
        assert_eq!(z.sum(), 0.0);
        let f = Vector::filled(3, 2.5);
        assert_eq!(f.sum(), 7.5);
    }

    #[test]
    fn basis_vectors_are_orthonormal() {
        let n = 5;
        for i in 0..n {
            for j in 0..n {
                let ei = Vector::basis(n, i);
                let ej = Vector::basis(n, j);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_eq!(ei.dot(&ej), expected);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(3, 3);
    }

    #[test]
    fn dot_and_norms() {
        let v = Vector::from_slice(&[3.0, -4.0]);
        assert_eq!(v.norm2(), 5.0);
        assert_eq!(v.norm1(), 7.0);
        assert_eq!(v.norm_inf(), 4.0);
        let w = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(v.dot(&w), -1.0);
    }

    #[test]
    fn axpy_and_ops() {
        let mut v = Vector::from_slice(&[1.0, 2.0]);
        let w = Vector::from_slice(&[10.0, 20.0]);
        v.axpy(0.5, &w);
        assert_eq!(v.as_slice(), &[6.0, 12.0]);

        let s = &v - &w;
        assert_eq!(s.as_slice(), &[-4.0, -8.0]);
        let a = &v + &w;
        assert_eq!(a.as_slice(), &[16.0, 32.0]);
        let m = &v * 2.0;
        assert_eq!(m.as_slice(), &[12.0, 24.0]);
        let n = -&v;
        assert_eq!(n.as_slice(), &[-6.0, -12.0]);
    }

    #[test]
    fn normalize_l1_gives_distribution() {
        let mut v = Vector::from_slice(&[1.0, 3.0, 4.0]);
        v.normalize_l1();
        assert!(v.is_distribution(1e-12));
        assert!((v[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "normalize_l1")]
    fn normalize_l1_zero_panics() {
        let mut v = Vector::zeros(3);
        v.normalize_l1();
    }

    #[test]
    fn normalize_l2_unit_norm() {
        let mut v = Vector::from_slice(&[3.0, 4.0]);
        v.normalize_l2();
        assert!((v.norm2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_and_extrema() {
        let v = Vector::from_slice(&[1.0, 5.0, -2.0, 5.0]);
        assert_eq!(v.argmax(), Some(1));
        assert_eq!(v.max(), 5.0);
        assert_eq!(v.min(), -2.0);
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn hadamard_product() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let w = Vector::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(v.hadamard(&w).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let v = Vector::from_slice(&[1.0, f64::NAN]);
        assert!(!v.is_finite());
        let w = Vector::from_slice(&[1.0, 2.0]);
        assert!(w.is_finite());
    }
}
