//! Summary statistics and regression helpers.
//!
//! The experiment harness needs to turn a series of measured mixing times into a
//! growth exponent (e.g. fit `log t_mix ≈ a·β + b` and compare `a` with the
//! paper's `ΔΦ` or `ζ` or `2δ`), and simulation estimators need running means and
//! confidence-interval-ish spreads. These small, dependency-free routines cover
//! that.

/// Arithmetic mean of a slice. Returns `NaN` for the empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance. Returns 0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of the two central elements for even lengths).
/// Returns `NaN` for the empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Empirical quantile via linear interpolation, `q` in `[0, 1]`.
/// Returns `NaN` for the empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Result of an ordinary least-squares fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

/// Ordinary least-squares line fit.
///
/// # Panics
/// Panics if the slices have different lengths or fewer than two points.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "linear_fit: length mismatch");
    assert!(xs.len() >= 2, "linear_fit: need at least two points");
    let n = xs.len() as f64;
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    assert!(sxx > 0.0, "linear_fit: x values are all identical");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
        n: n as usize,
    }
}

/// Fits `y ≈ C · e^{rate · x}` by regressing `ln y` on `x`.
///
/// Non-positive `y` values are rejected with a panic because the model cannot
/// represent them. Returns `(rate, C, r_squared)` wrapped in [`ExponentialFit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Growth rate `rate` in `C·e^{rate·x}`.
    pub rate: f64,
    /// Prefactor `C`.
    pub prefactor: f64,
    /// R² of the underlying log-linear fit.
    pub r_squared: f64,
}

/// Least-squares fit of an exponential growth model (see [`ExponentialFit`]).
pub fn exponential_fit(xs: &[f64], ys: &[f64]) -> ExponentialFit {
    assert!(
        ys.iter().all(|&y| y > 0.0),
        "exponential_fit: all y values must be positive"
    );
    let logs: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let fit = linear_fit(xs, &logs);
    ExponentialFit {
        rate: fit.slope,
        prefactor: fit.intercept.exp(),
        r_squared: fit.r_squared,
    }
}

/// Running (streaming) mean and variance via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn mean_variance_median() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx_eq(mean(&xs), 5.0, 1e-12));
        assert!(approx_eq(std_dev(&xs), (32.0f64 / 7.0).sqrt(), 1e-12));
        assert!(approx_eq(median(&xs), 4.5, 1e-12));
        assert!(mean(&[]).is_nan());
        assert!(median(&[]).is_nan());
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(approx_eq(quantile(&xs, 0.0), 1.0, 1e-12));
        assert!(approx_eq(quantile(&xs, 1.0), 4.0, 1e-12));
        assert!(approx_eq(quantile(&xs, 0.5), 2.5, 1e-12));
        assert!(approx_eq(quantile(&xs, 1.0 / 3.0), 2.0, 1e-12));
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&xs, &ys);
        assert!(approx_eq(f.slope, 2.0, 1e-12));
        assert!(approx_eq(f.intercept, 1.0, 1e-12));
        assert!(approx_eq(f.r_squared, 1.0, 1e-12));
    }

    #[test]
    fn linear_fit_noisy_data_reasonable() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                3.0 * x - 2.0
                    + if (x as u64).is_multiple_of(2) {
                        0.1
                    } else {
                        -0.1
                    }
            })
            .collect();
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 3.0).abs() < 0.01);
        assert!(f.r_squared > 0.999);
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * (1.3 * x).exp()).collect();
        let f = exponential_fit(&xs, &ys);
        assert!(approx_eq(f.rate, 1.3, 1e-9));
        assert!(approx_eq(f.prefactor, 2.5, 1e-9));
        assert!(f.r_squared > 0.999999);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_fit_rejects_nonpositive() {
        let _ = exponential_fit(&[0.0, 1.0], &[1.0, 0.0]);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 5);
        assert!(approx_eq(rs.mean(), mean(&xs), 1e-12));
        assert!(approx_eq(rs.variance(), variance(&xs), 1e-12));
        assert_eq!(rs.min(), 1.0);
        assert_eq!(rs.max(), 10.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, -1.0];
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..3] {
            a.push(x);
        }
        for &x in &xs[3..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!(approx_eq(a.mean(), all.mean(), 1e-12));
        assert!(approx_eq(a.variance(), all.variance(), 1e-12));
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn running_stats_merge_with_empty() {
        let mut a = RunningStats::new();
        let empty = RunningStats::new();
        a.push(4.0);
        a.merge(&empty);
        assert_eq!(a.count(), 1);
        let mut e2 = RunningStats::new();
        e2.merge(&a);
        assert_eq!(e2.count(), 1);
        assert!(approx_eq(e2.mean(), 4.0, 1e-12));
    }
}
