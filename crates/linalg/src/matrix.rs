//! Dense row-major `f64` matrices.
//!
//! [`Matrix`] is the workhorse representation of a transition matrix in the
//! workspace: state spaces up to a few thousand profiles fit comfortably in a
//! dense row-major buffer, and exact mixing-time computation needs repeated
//! matrix–matrix products (via repeated squaring) which are simplest and fastest
//! on contiguous storage.

use crate::vector::Vector;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major `Vec`.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: expected {} entries, got {}",
            rows * cols,
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|row| row.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a square diagonal matrix from a vector of diagonal entries.
    pub fn diag(d: &Vector) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = d[i];
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols);
        Vector::from_vec((0..self.rows).map(|i| self[(i, j)]).collect())
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &Vector) -> Vector {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        let mut out = Vector::zeros(self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.as_slice()) {
                acc += a * b;
            }
            out[i] = acc;
        }
        out
    }

    /// Row-vector–matrix product `vᵀ * self`, returned as a vector.
    ///
    /// This is the natural "distribution step" for a row-stochastic transition
    /// matrix: if `v` is a distribution over states then `vec_mat(v)` is the
    /// distribution after one step of the chain.
    pub fn vecmat(&self, v: &Vector) -> Vector {
        assert_eq!(self.rows, v.len(), "vecmat: dimension mismatch");
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (j, &a) in row.iter().enumerate() {
                out[j] += vi * a;
            }
        }
        out
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// Classic triple loop with the `k` loop innermost over contiguous rows of
    /// `other` (ikj order), which keeps the inner loop cache-friendly.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &bkj) in b_row.iter().enumerate() {
                    out_row[j] += aik * bkj;
                }
            }
        }
        out
    }

    /// Matrix power `self^k` via exponentiation by squaring.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn pow(&self, mut k: u64) -> Matrix {
        assert!(self.is_square(), "pow: matrix must be square");
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        while k > 0 {
            if k & 1 == 1 {
                result = result.matmul(&base);
            }
            k >>= 1;
            if k > 0 {
                base = base.matmul(&base);
            }
        }
        result
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc: f64, x| acc.max(x.abs()))
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace: matrix must be square");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Sum of the entries of row `i`.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row(i).iter().sum()
    }

    /// Returns `true` when the matrix is row-stochastic up to tolerance `tol`:
    /// all entries non-negative and every row sums to one.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            if self.row(i).iter().any(|&x| x < -tol) {
                return false;
            }
            if (self.row_sum(i) - 1.0).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Returns `true` when the matrix is symmetric up to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Entry-wise maximum absolute difference with another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0, |acc: f64, (a, b)| acc.max((a - b).abs()))
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Mul<&Vector> for &Matrix {
    type Output = Vector;
    fn mul(self, rhs: &Vector) -> Vector {
        self.matvec(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
    }

    #[test]
    fn construction_and_indexing() {
        let m = sample();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = sample();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = sample();
        let v = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(m.matvec(&v).as_slice(), &[3.0, 7.0]);
        assert_eq!(m.vecmat(&v).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample();
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = sample();
        let mut expect = Matrix::identity(2);
        for _ in 0..5 {
            expect = expect.matmul(&a);
        }
        let got = a.pow(5);
        assert!(got.max_abs_diff(&expect) < 1e-9);
        assert_eq!(a.pow(0), Matrix::identity(2));
        assert_eq!(a.pow(1), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn stochastic_and_symmetric_checks() {
        let p = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.25, 0.75]]);
        assert!(p.is_row_stochastic(1e-12));
        assert!(!p.is_symmetric(1e-12));
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 5.0]]);
        assert!(s.is_symmetric(1e-12));
        let neg = Matrix::from_rows(&[vec![-0.1, 1.1], vec![0.5, 0.5]]);
        assert!(!neg.is_row_stochastic(1e-12));
    }

    #[test]
    fn trace_diag_and_norms() {
        let d = Matrix::diag(&Vector::from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d.frobenius_norm(), (14.0f64).sqrt());
        assert_eq!(d.max_abs(), 3.0);
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m[(2, 2)], 8.0);
        assert_eq!(m.row_sum(0), 3.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn operators() {
        let a = sample();
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &b;
        assert!(diff.max_abs_diff(&a) < 1e-15);
        let prod = &a * &b;
        assert_eq!(prod, a);
    }
}
