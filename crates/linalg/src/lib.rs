//! # logit-linalg
//!
//! A small, dependency-free dense/sparse linear-algebra substrate used by the
//! logit-dynamics workspace.
//!
//! The workspace needs exactly the numerical kernels required to analyse finite,
//! reversible Markov chains on state spaces of size up to a few thousand:
//!
//! * dense row-major matrices with matrix/vector products ([`Matrix`], [`Vector`]),
//! * an LU decomposition with partial pivoting for linear solves ([`lu`]),
//! * a cyclic Jacobi eigensolver for symmetric matrices ([`eigen`]) — this is what
//!   turns a reversible transition matrix into its spectrum (relaxation time,
//!   Theorem 3.1 checks),
//! * power iteration / deflation helpers ([`eigen::power_iteration`]),
//! * a compressed-sparse-row matrix for large sparse chains ([`sparse`]),
//! * summary statistics and least-squares exponent fitting ([`stats`]) used by the
//!   experiment harness to recover growth exponents such as `βΔΦ` from measured
//!   mixing times.
//!
//! Sizes involved never exceed a few thousand rows, so portability and clarity are
//! preferred over BLAS-level tuning; the hot kernels are nevertheless written to be
//! cache-friendly (row-major traversal, no per-element bounds checks in inner loops
//! beyond what the compiler can elide).

pub mod eigen;
pub mod lu;
pub mod matrix;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use eigen::{jacobi_eigen, power_iteration, EigenDecomposition, JacobiOptions};
pub use lu::{solve, LuDecomposition, LuError};
pub use matrix::Matrix;
pub use sparse::CsrMatrix;
pub use vector::Vector;

/// Default absolute tolerance used by iterative routines in this crate.
pub const DEFAULT_TOL: f64 = 1e-12;

/// Returns `true` when `a` and `b` are equal up to absolute tolerance `tol`.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Returns `true` when `a` and `b` are equal up to a relative tolerance `tol`
/// (falling back to absolute comparison near zero).
#[inline]
pub fn approx_eq_rel(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6, 1e-12));
    }

    #[test]
    fn approx_eq_rel_scales_with_magnitude() {
        assert!(approx_eq_rel(1e9, 1e9 + 1.0, 1e-8));
        assert!(!approx_eq_rel(1.0, 1.1, 1e-8));
        // near zero it behaves like an absolute comparison
        assert!(approx_eq_rel(0.0, 1e-13, 1e-12));
    }
}
