//! Property-based tests for the game substrate.

use logit_games::analysis::{best_response_dynamics, is_pure_nash, verify_exact_potential};
use logit_games::{
    CoordinationGame, Game, GraphicalCoordinationGame, PotentialGame, ProfileSpace,
    TablePotentialGame, WellGame,
};
use logit_graphs::GraphBuilder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any potential table yields an exact potential game, and the global
    /// variation always dominates the local variation.
    #[test]
    fn table_potential_games_are_exact(seed in 0u64..10_000, n in 2usize..4, m in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = TablePotentialGame::random(vec![m; n], 5.0, &mut rng);
        prop_assert!(verify_exact_potential(&g, 1e-9));
        prop_assert!(g.max_global_variation() + 1e-12 >= g.max_local_variation());
        prop_assert!(g.max_local_variation() >= 0.0);
    }

    /// Best-response dynamics converges to a pure Nash equilibrium in every
    /// potential game (finite improvement property).
    #[test]
    fn best_response_converges_in_potential_games(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = TablePotentialGame::random(vec![2, 2, 3], 3.0, &mut rng);
        let (profile, converged) = best_response_dynamics(&g, &[0, 0, 0], 200);
        prop_assert!(converged);
        prop_assert!(is_pure_nash(&g, &profile));
    }

    /// Graphical coordination games: the potential of any profile is between the
    /// potential of the two consensus profiles... more precisely it is at least
    /// -|E|·max(δ0,δ1) and at most 0, and the consensus profiles are Nash.
    #[test]
    fn graphical_coordination_invariants(
        n in 3usize..7,
        d0 in 0.5f64..3.0,
        d1 in 0.5f64..3.0,
        profile_bits in 0usize..128,
    ) {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(n),
            CoordinationGame::from_deltas(d0, d1),
        );
        let edges = game.graph().num_edges() as f64;
        let space = game.profile_space();
        let idx = profile_bits % space.size();
        let profile = space.profile_of(idx);
        let phi = game.potential(&profile);
        prop_assert!(phi <= 1e-12);
        prop_assert!(phi >= -edges * d0.max(d1) - 1e-12);
        prop_assert!(is_pure_nash(&game, &vec![0usize; n]));
        prop_assert!(is_pure_nash(&game, &vec![1usize; n]));
    }

    /// The well game's variations equal the requested (global, local) pair
    /// whenever the Theorem 3.5 constraints hold.
    #[test]
    fn well_game_variations(n in 4usize..9, l in 1.0f64..3.0, mult in 1usize..3) {
        let g_total = l * mult as f64; // global = local * integer c keeps c <= n/2 for mult <= 2, n >= 4
        prop_assume!(g_total / l <= n as f64 / 2.0);
        let game = WellGame::new(n, g_total, l);
        prop_assert!((game.max_global_variation() - g_total).abs() < 1e-9);
        prop_assert!((game.max_local_variation() - l).abs() < 1e-9);
        prop_assert!(verify_exact_potential(&game, 1e-9));
    }

    /// Profile space round-trips and Hamming-distance symmetry.
    #[test]
    fn profile_space_roundtrip(sizes in prop::collection::vec(2usize..4, 1..5), a in 0usize..500, b in 0usize..500) {
        let space = ProfileSpace::new(sizes);
        let ia = a % space.size();
        let ib = b % space.size();
        prop_assert_eq!(space.index_of(&space.profile_of(ia)), ia);
        prop_assert_eq!(space.hamming_distance(ia, ib), space.hamming_distance(ib, ia));
        prop_assert_eq!(space.hamming_distance(ia, ia), 0);
    }
}
