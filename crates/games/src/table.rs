//! Explicit table-form games.
//!
//! [`TableGame`] stores every player's utility for every profile; it is the
//! general-form representation used by the randomised tests and as a target for
//! converting any other game. [`TablePotentialGame`] builds an *exact potential
//! game* from an arbitrary potential table by defining every player's utility as
//! `-Φ` (a team/identical-interest game), which is the standard way to realise
//! an arbitrary potential function as a game — this is exactly what the paper
//! does implicitly in the Theorem 3.5 and Theorem 4.3 constructions.

use crate::game::{Game, PotentialGame};
use crate::profile::ProfileSpace;
use rand::Rng;

/// A game stored as explicit per-player utility tables indexed by flat profile index.
#[derive(Debug, Clone, PartialEq)]
pub struct TableGame {
    space: ProfileSpace,
    /// `utilities[player][profile_index]`.
    utilities: Vec<Vec<f64>>,
}

impl TableGame {
    /// Creates a table game.
    ///
    /// # Panics
    /// Panics when the utility tables do not match the profile-space size.
    pub fn new(space: ProfileSpace, utilities: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            utilities.len(),
            space.num_players(),
            "one utility table per player"
        );
        for (i, table) in utilities.iter().enumerate() {
            assert_eq!(
                table.len(),
                space.size(),
                "utility table of player {i} has wrong size"
            );
        }
        Self { space, utilities }
    }

    /// Materialises any game into table form.
    pub fn from_game<G: Game>(game: &G) -> Self {
        let space = game.profile_space();
        let mut buf = vec![0usize; game.num_players()];
        let utilities = (0..game.num_players())
            .map(|player| {
                space
                    .indices()
                    .map(|idx| {
                        space.write_profile(idx, &mut buf);
                        game.utility(player, &buf)
                    })
                    .collect()
            })
            .collect();
        Self { space, utilities }
    }

    /// A uniformly random game: utilities i.i.d. uniform on `[-1, 1]`.
    pub fn random<R: Rng + ?Sized>(sizes: Vec<usize>, rng: &mut R) -> Self {
        let space = ProfileSpace::new(sizes);
        let utilities = (0..space.num_players())
            .map(|_| {
                (0..space.size())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect()
            })
            .collect();
        Self { space, utilities }
    }

    /// Direct access to the underlying space (shared indexing with callers).
    pub fn space(&self) -> &ProfileSpace {
        &self.space
    }
}

impl Game for TableGame {
    fn num_players(&self) -> usize {
        self.space.num_players()
    }

    fn num_strategies(&self, player: usize) -> usize {
        self.space.num_strategies(player)
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        self.utilities[player][self.space.index_of(profile)]
    }
}

/// An exact potential game built from an explicit potential table.
///
/// Every player's utility is `-Φ(x)` (identical-interest game), which trivially
/// satisfies eq. (1) of the paper with potential `Φ`.
#[derive(Debug, Clone, PartialEq)]
pub struct TablePotentialGame {
    space: ProfileSpace,
    potential: Vec<f64>,
}

impl TablePotentialGame {
    /// Creates a potential game from a potential table indexed by flat profile index.
    ///
    /// # Panics
    /// Panics when the table size does not match the profile space.
    pub fn new(space: ProfileSpace, potential: Vec<f64>) -> Self {
        assert_eq!(
            potential.len(),
            space.size(),
            "potential table size mismatch"
        );
        assert!(
            potential.iter().all(|p| p.is_finite()),
            "potential values must be finite"
        );
        Self { space, potential }
    }

    /// Builds the table by evaluating `phi` on every profile.
    pub fn from_fn<F: FnMut(&[usize]) -> f64>(space: ProfileSpace, mut phi: F) -> Self {
        let mut buf = vec![0usize; space.num_players()];
        let potential = space
            .indices()
            .map(|idx| {
                space.write_profile(idx, &mut buf);
                phi(&buf)
            })
            .collect();
        Self::new(space, potential)
    }

    /// A random potential game: potential values i.i.d. uniform on `[0, scale]`.
    pub fn random<R: Rng + ?Sized>(sizes: Vec<usize>, scale: f64, rng: &mut R) -> Self {
        let space = ProfileSpace::new(sizes);
        let potential = (0..space.size())
            .map(|_| rng.gen_range(0.0..scale))
            .collect();
        Self::new(space, potential)
    }

    /// Potential by flat index (avoids re-encoding the profile).
    pub fn potential_by_index(&self, index: usize) -> f64 {
        self.potential[index]
    }

    /// The underlying profile space.
    pub fn space(&self) -> &ProfileSpace {
        &self.space
    }
}

impl Game for TablePotentialGame {
    fn num_players(&self) -> usize {
        self.space.num_players()
    }

    fn num_strategies(&self, player: usize) -> usize {
        self.space.num_strategies(player)
    }

    fn utility(&self, _player: usize, profile: &[usize]) -> f64 {
        -self.potential[self.space.index_of(profile)]
    }
}

impl PotentialGame for TablePotentialGame {
    fn potential(&self, profile: &[usize]) -> f64 {
        self.potential[self.space.index_of(profile)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::verify_exact_potential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_game_round_trip_through_from_game() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = TableGame::random(vec![2, 3], &mut rng);
        let h = TableGame::from_game(&g);
        assert_eq!(g, h);
    }

    #[test]
    fn table_potential_game_satisfies_eq_1() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = TablePotentialGame::random(vec![2, 2, 3], 5.0, &mut rng);
        assert!(verify_exact_potential(&g, 1e-9));
    }

    #[test]
    fn from_fn_matches_direct_evaluation() {
        let space = ProfileSpace::uniform(3, 2);
        let g = TablePotentialGame::from_fn(space.clone(), |p| {
            p.iter().map(|&x| x as f64).sum::<f64>()
        });
        assert_eq!(g.potential(&[0, 0, 0]), 0.0);
        assert_eq!(g.potential(&[1, 1, 1]), 3.0);
        assert_eq!(g.potential_by_index(space.index_of(&[1, 0, 1])), 2.0);
        assert_eq!(g.max_global_variation(), 3.0);
        assert_eq!(g.max_local_variation(), 1.0);
    }

    #[test]
    fn utilities_are_negated_potential() {
        let space = ProfileSpace::uniform(2, 2);
        let g = TablePotentialGame::from_fn(space, |p| (p[0] + 2 * p[1]) as f64);
        for player in 0..2 {
            assert_eq!(g.utility(player, &[1, 1]), -3.0);
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_table_size_rejected() {
        let space = ProfileSpace::uniform(2, 2);
        let _ = TablePotentialGame::new(space, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_potential_rejected() {
        let space = ProfileSpace::uniform(1, 2);
        let _ = TablePotentialGame::new(space, vec![0.0, f64::NAN]);
    }
}
