//! Two-player games in explicit (bimatrix) form.

use crate::game::Game;

/// A finite two-player game given by explicit payoff matrices.
///
/// `payoff_row[(i, j)]` is the row player's utility and `payoff_col[(i, j)]` the
/// column player's when the row player picks strategy `i` and the column player
/// strategy `j`. Stored row-major as `Vec`s to avoid pulling in the matrix type
/// for what is just a lookup table.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoPlayerGame {
    rows: usize,
    cols: usize,
    payoff_row: Vec<f64>,
    payoff_col: Vec<f64>,
}

impl TwoPlayerGame {
    /// Creates a bimatrix game.
    ///
    /// # Panics
    /// Panics when the payoff tables do not have `rows × cols` entries.
    pub fn new(rows: usize, cols: usize, payoff_row: Vec<f64>, payoff_col: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "both players need strategies");
        assert_eq!(payoff_row.len(), rows * cols, "row payoff table size");
        assert_eq!(payoff_col.len(), rows * cols, "column payoff table size");
        Self {
            rows,
            cols,
            payoff_row,
            payoff_col,
        }
    }

    /// A symmetric game: both players share the strategy count and
    /// `payoff(i, j)` is the payoff of a player choosing `i` against `j`.
    pub fn symmetric(m: usize, payoff: &[f64]) -> Self {
        assert_eq!(payoff.len(), m * m);
        let payoff_row = payoff.to_vec();
        let mut payoff_col = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                payoff_col[i * m + j] = payoff[j * m + i];
            }
        }
        Self::new(m, m, payoff_row, payoff_col)
    }

    /// Row player's payoff at `(i, j)`.
    pub fn payoff_row(&self, i: usize, j: usize) -> f64 {
        self.payoff_row[i * self.cols + j]
    }

    /// Column player's payoff at `(i, j)`.
    pub fn payoff_col(&self, i: usize, j: usize) -> f64 {
        self.payoff_col[i * self.cols + j]
    }

    /// Classic 2×2 prisoner's dilemma (dominant strategies, not a coordination game).
    ///
    /// Strategy 0 = defect, strategy 1 = cooperate, with the standard payoffs
    /// T=5 > R=3 > P=1 > S=0.
    pub fn prisoners_dilemma() -> Self {
        // rows/cols: 0 = defect, 1 = cooperate
        let row = vec![1.0, 5.0, 0.0, 3.0];
        let col = vec![1.0, 0.0, 5.0, 3.0];
        Self::new(2, 2, row, col)
    }

    /// Matching pennies (no pure Nash equilibrium, not a potential game).
    pub fn matching_pennies() -> Self {
        let row = vec![1.0, -1.0, -1.0, 1.0];
        let col = vec![-1.0, 1.0, 1.0, -1.0];
        Self::new(2, 2, row, col)
    }
}

impl Game for TwoPlayerGame {
    fn num_players(&self) -> usize {
        2
    }

    fn num_strategies(&self, player: usize) -> usize {
        match player {
            0 => self.rows,
            1 => self.cols,
            _ => panic!("two-player game has players 0 and 1, asked for {player}"),
        }
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        let (i, j) = (profile[0], profile[1]);
        match player {
            0 => self.payoff_row(i, j),
            1 => self.payoff_col(i, j),
            _ => panic!("two-player game has players 0 and 1, asked for {player}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{find_dominant_profile, find_pure_nash_equilibria};

    #[test]
    fn payoff_lookup() {
        let g = TwoPlayerGame::new(
            2,
            3,
            vec![1., 2., 3., 4., 5., 6.],
            vec![6., 5., 4., 3., 2., 1.],
        );
        assert_eq!(g.num_strategies(0), 2);
        assert_eq!(g.num_strategies(1), 3);
        assert_eq!(g.utility(0, &[1, 2]), 6.0);
        assert_eq!(g.utility(1, &[0, 0]), 6.0);
        assert_eq!(g.num_profiles(), 6);
    }

    #[test]
    fn symmetric_game_transposes_column_payoffs() {
        let g = TwoPlayerGame::symmetric(2, &[3.0, 0.0, 5.0, 1.0]);
        // Row plays 0, column plays 1: row gets payoff(0 vs 1) = 0, column gets payoff(1 vs 0) = 5.
        assert_eq!(g.utility(0, &[0, 1]), 0.0);
        assert_eq!(g.utility(1, &[0, 1]), 5.0);
    }

    #[test]
    fn prisoners_dilemma_has_defect_dominant() {
        let g = TwoPlayerGame::prisoners_dilemma();
        let dom = find_dominant_profile(&g);
        assert_eq!(dom, Some(vec![0, 0]));
        let nash = find_pure_nash_equilibria(&g);
        assert_eq!(nash, vec![vec![0, 0]]);
    }

    #[test]
    fn matching_pennies_has_no_pure_nash() {
        let g = TwoPlayerGame::matching_pennies();
        assert!(find_pure_nash_equilibria(&g).is_empty());
        assert!(find_dominant_profile(&g).is_none());
    }

    #[test]
    #[should_panic(expected = "players 0 and 1")]
    fn third_player_panics() {
        let g = TwoPlayerGame::matching_pennies();
        let _ = g.utility(2, &[0, 0]);
    }
}
