//! Locality structure of games: the [`LocalGame`] trait.
//!
//! In every game the paper simulates at scale, a player's utility depends
//! only on her own strategy and the strategies of a small *neighbourhood* —
//! graph neighbours for graphical coordination and Ising games, players
//! sharing a resource for congestion games. The flat-index simulation engine
//! cannot exploit this (decoding a flat state index is `O(n)` and the index
//! itself overflows `usize` beyond ~60 binary players); the in-place profile
//! engine in `logit-core` can: one logit update of a [`LocalGame`] costs
//! `O(|S_i| + deg(i))` work, independent of both `n` and `|S|`.
//!
//! The contract: `utility(i, x)` and `utilities_for(i, x, out)` read only
//! `x[i]` and `x[j]` for `j ∈ neighbors_of(i)`. The proptest suite checks
//! this by perturbing strategies outside the neighbourhood.
//!
//! Locality is also what makes **parallel revision** correct: two
//! non-neighbouring players' single-tick updates commute, so a whole
//! independent set of the interaction graph can revise simultaneously. Two
//! hooks serve that path: [`LocalGame::utilities_for_frozen`] (a read-only
//! batch evaluation, so parallel workers can share the frozen pre-tick
//! profile immutably) and [`interaction_graph`] (the bridge that turns any
//! `LocalGame`'s neighbourhood structure into a `logit_graphs::Graph`, ready
//! for the colouring algorithms in `logit-graphs`).

use crate::congestion::CongestionGame;
use crate::game::Game;
use crate::graphical::GraphicalCoordinationGame;
use crate::ising::IsingGame;
use logit_graphs::{CsrGraph, Graph};

/// A game whose utilities have bounded-neighbourhood locality.
pub trait LocalGame: Game {
    /// The players (other than `player`) whose strategies can affect
    /// `player`'s utility.
    fn neighbors_of(&self, player: usize) -> &[usize];

    /// Read-only batch utilities: like [`Game::utilities_for`], but the
    /// profile is borrowed *immutably* — the hook of the parallel
    /// independent-set engine path, where many workers evaluate different
    /// players against one shared frozen profile at the same time.
    ///
    /// The default clones the profile and delegates, which is correct for
    /// every game but allocates `O(n)` per call; every concrete `LocalGame`
    /// here overrides it with its one-pass read-only evaluation. The
    /// contract is exact agreement with `utilities_for` on the same profile
    /// (the proptest harness pins this through the coloured-step
    /// bit-identity checks).
    fn utilities_for_frozen(&self, player: usize, profile: &[usize], out: &mut [f64]) {
        let mut work = profile.to_vec();
        self.utilities_for(player, &mut work, out);
    }

    /// Read-only batch utilities against a **byte-packed** strategy profile
    /// — the SoA buffer of the cache-blocked CSR sweeps in `logit-core`,
    /// where a binary game's profile is 1 byte per player (an `n = 10⁶`
    /// profile fits a 2 MiB L2) instead of 8. Entries are strategy indices;
    /// the engine only routes games with `max_strategies() ≤ 256` here.
    ///
    /// The contract is *bitwise* agreement with
    /// [`utilities_for_frozen`](Self::utilities_for_frozen) on the widened
    /// profile. The default widens into a temporary and delegates — correct
    /// for every game but `O(n)` per call; the graph-backed games override
    /// it with one-pass CSR kernels (congestion games keep the default:
    /// their resource loads are inherently a full-profile scan).
    fn utilities_for_frozen_bytes(&self, player: usize, profile: &[u8], out: &mut [f64]) {
        let wide: Vec<usize> = profile.iter().map(|&s| s as usize).collect();
        self.utilities_for_frozen(player, &wide, out);
    }

    /// Hints the cache that the data
    /// [`utilities_for_frozen_bytes`](Self::utilities_for_frozen_bytes)
    /// will read for `player` is about to be needed — the byte-sweep loops
    /// in `logit-core` call this a few players ahead of the revision so the
    /// neighbourhood row is resident when the gather runs. Purely a
    /// performance hint: the default is a no-op, and implementations must
    /// have no observable effect.
    #[inline]
    fn prefetch_frozen_bytes(&self, _player: usize) {}

    /// Size of `player`'s neighbourhood.
    fn degree(&self, player: usize) -> usize {
        self.neighbors_of(player).len()
    }

    /// Largest neighbourhood size over all players (used to size scratch
    /// buffers and bound per-step cost).
    fn max_degree(&self) -> usize {
        (0..self.num_players())
            .map(|i| self.degree(i))
            .max()
            .unwrap_or(0)
    }

    /// Upper bound on the cost of one logit update of any player:
    /// `max_i (|S_i| + deg(i))`.
    fn step_cost_bound(&self) -> usize {
        (0..self.num_players())
            .map(|i| self.num_strategies(i) + self.degree(i))
            .max()
            .unwrap_or(0)
    }
}

impl<G: LocalGame + ?Sized> LocalGame for &G {
    fn neighbors_of(&self, player: usize) -> &[usize] {
        (**self).neighbors_of(player)
    }
    fn utilities_for_frozen(&self, player: usize, profile: &[usize], out: &mut [f64]) {
        (**self).utilities_for_frozen(player, profile, out)
    }
    fn utilities_for_frozen_bytes(&self, player: usize, profile: &[u8], out: &mut [f64]) {
        (**self).utilities_for_frozen_bytes(player, profile, out)
    }
    fn prefetch_frozen_bytes(&self, player: usize) {
        (**self).prefetch_frozen_bytes(player)
    }
}

/// Shared-ownership locality: a replica ensemble's engines hold the game
/// through an `Arc`, and the coloured parallel-revision path needs the
/// locality hooks through that indirection too. Forwarded explicitly so the
/// games' read-only overrides survive (same reasoning as the `Arc<G>: Game`
/// impl in [`crate::game`]).
impl<G: LocalGame + ?Sized> LocalGame for std::sync::Arc<G> {
    fn neighbors_of(&self, player: usize) -> &[usize] {
        (**self).neighbors_of(player)
    }
    fn utilities_for_frozen(&self, player: usize, profile: &[usize], out: &mut [f64]) {
        (**self).utilities_for_frozen(player, profile, out)
    }
    fn utilities_for_frozen_bytes(&self, player: usize, profile: &[u8], out: &mut [f64]) {
        (**self).utilities_for_frozen_bytes(player, profile, out)
    }
    fn prefetch_frozen_bytes(&self, player: usize) {
        (**self).prefetch_frozen_bytes(player)
    }
}

impl LocalGame for GraphicalCoordinationGame {
    fn neighbors_of(&self, player: usize) -> &[usize] {
        self.graph().neighbors(player)
    }
    fn utilities_for_frozen(&self, player: usize, profile: &[usize], out: &mut [f64]) {
        self.utilities_readonly(player, profile, out);
    }
    fn utilities_for_frozen_bytes(&self, player: usize, profile: &[u8], out: &mut [f64]) {
        self.utilities_readonly_bytes(player, profile, out);
    }
    fn prefetch_frozen_bytes(&self, player: usize) {
        self.csr().prefetch_row(player);
    }
}

impl LocalGame for IsingGame {
    fn neighbors_of(&self, player: usize) -> &[usize] {
        self.graph().neighbors(player)
    }
    fn utilities_for_frozen(&self, player: usize, profile: &[usize], out: &mut [f64]) {
        self.utilities_readonly(player, profile, out);
    }
    fn utilities_for_frozen_bytes(&self, player: usize, profile: &[u8], out: &mut [f64]) {
        self.utilities_readonly_bytes(player, profile, out);
    }
    fn prefetch_frozen_bytes(&self, player: usize) {
        self.csr().prefetch_row(player);
    }
}

impl LocalGame for CongestionGame {
    fn neighbors_of(&self, player: usize) -> &[usize] {
        self.interaction_neighbors(player)
    }
    fn utilities_for_frozen(&self, player: usize, profile: &[usize], out: &mut [f64]) {
        self.utilities_readonly(player, profile, out);
    }
}

/// The `LocalGame`-to-`Graph` adjacency bridge: materialises any local
/// game's interaction structure as a `logit_graphs::Graph` on the players.
///
/// This closes the loop with `GraphBuilder`: every builder topology (ring,
/// torus, hypercube, Erdős–Rényi, circulant, …) becomes a playable
/// coordination/Ising instance by construction, and every *other*
/// `LocalGame` — congestion games, whose interaction graph is implicit in
/// resource sharing — comes back out as a graph the colouring algorithms in
/// `logit-graphs` can schedule (`greedy_coloring` / `dsatur_coloring` →
/// `ColouredBlocks` in `logit-core`).
///
/// Neighbourhoods are symmetrised: an edge is added when either endpoint
/// lists the other (for the games here the relation is already symmetric,
/// and `Graph::from_edges` deduplicates, so every directed pair is pushed
/// unconditionally).
pub fn interaction_graph<G: LocalGame>(game: &G) -> Graph {
    let n = game.num_players();
    let mut edges = Vec::new();
    for u in 0..n {
        for &v in game.neighbors_of(u) {
            edges.push((u.min(v), u.max(v)));
        }
    }
    Graph::from_edges(n, &edges)
}

/// [`interaction_graph`] frozen to CSR form — the locality-first view of
/// any local game's interaction structure, ready for the bandwidth
/// machinery (`logit_graphs::rcm_ordering`) and the cache-blocked engine
/// paths. Graph-backed games expose their own cached `csr()` accessor;
/// this bridge covers the games whose interaction graph is implicit
/// (congestion via resource sharing).
///
/// # Panics
/// Panics when the player or directed-edge count exceeds the CSR `u32`
/// validity bound (see [`CsrGraph::from_graph`]).
pub fn interaction_csr<G: LocalGame>(game: &G) -> CsrGraph {
    CsrGraph::from_graph(&interaction_graph(game))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::CoordinationGame;
    use logit_graphs::GraphBuilder;

    /// Changing a strategy outside `neighbors_of(i)` must not change
    /// `utility(i, ·)` — the defining property of the trait.
    fn check_locality<G: LocalGame>(game: &G) {
        let n = game.num_players();
        let mut profile = vec![0usize; n];
        for player in 0..n {
            let local: std::collections::BTreeSet<usize> =
                game.neighbors_of(player).iter().copied().collect();
            assert!(
                !local.contains(&player),
                "a player is not her own neighbour"
            );
            let base = game.utility(player, &profile);
            for other in 0..n {
                if other == player || local.contains(&other) {
                    continue;
                }
                for s in 0..game.num_strategies(other) {
                    let saved = profile[other];
                    profile[other] = s;
                    assert_eq!(
                        game.utility(player, &profile),
                        base,
                        "utility of {player} changed when non-neighbour {other} moved"
                    );
                    profile[other] = saved;
                }
            }
        }
    }

    #[test]
    fn graphical_and_ising_neighbourhoods_are_graph_neighbours() {
        let graph = GraphBuilder::ring(6);
        let coord = GraphicalCoordinationGame::new(graph.clone(), CoordinationGame::symmetric(1.0));
        let ising = IsingGame::zero_field(graph.clone(), 0.5);
        for v in 0..6 {
            assert_eq!(coord.neighbors_of(v), graph.neighbors(v));
            assert_eq!(ising.neighbors_of(v), graph.neighbors(v));
        }
        assert_eq!(coord.max_degree(), 2);
        assert_eq!(coord.step_cost_bound(), 4);
        check_locality(&coord);
        check_locality(&ising);
    }

    #[test]
    fn star_degrees() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::star(5),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        // The hub interacts with everyone, the leaves only with the hub.
        let degrees: Vec<usize> = (0..5).map(|v| game.degree(v)).collect();
        assert_eq!(degrees.iter().max(), Some(&4));
        assert_eq!(game.max_degree(), 4);
        check_locality(&game);
    }

    #[test]
    fn congestion_neighbourhood_is_resource_sharing() {
        // Players 0 and 1 can share machine 0; player 2 is isolated on machine 1.
        let delays = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]];
        let strategies = vec![vec![vec![0]], vec![vec![0]], vec![vec![1]]];
        let game = CongestionGame::new(delays, strategies);
        assert_eq!(game.neighbors_of(0), &[1]);
        assert_eq!(game.neighbors_of(1), &[0]);
        assert_eq!(game.neighbors_of(2), &[] as &[usize]);
        check_locality(&game);
    }

    #[test]
    fn load_balancing_is_fully_coupled() {
        let game = CongestionGame::load_balancing(4, 2, 1.0);
        for i in 0..4 {
            assert_eq!(
                game.degree(i),
                3,
                "every player shares machines with all others"
            );
        }
        check_locality(&game);
    }

    #[test]
    fn reference_delegation() {
        let game =
            GraphicalCoordinationGame::new(GraphBuilder::path(4), CoordinationGame::symmetric(1.0));
        let r = &game;
        assert_eq!(r.neighbors_of(1), game.neighbors_of(1));
        assert_eq!(r.max_degree(), 2);
    }

    /// The frozen batch hook must agree exactly with the mutable one on
    /// every concrete `LocalGame` (and through `&G` / `Arc<G>` forwarding).
    #[test]
    fn frozen_utilities_match_the_mutable_hook() {
        fn check<G: LocalGame>(game: &G, profile: &[usize]) {
            let mut work = profile.to_vec();
            for player in 0..game.num_players() {
                let m = game.num_strategies(player);
                let mut mutable = vec![0.0; m];
                let mut frozen = vec![0.0; m];
                game.utilities_for(player, &mut work, &mut mutable);
                game.utilities_for_frozen(player, profile, &mut frozen);
                assert_eq!(mutable, frozen, "hooks disagree for player {player}");
                assert_eq!(work, profile, "mutable hook must restore the profile");
            }
        }
        let coord = GraphicalCoordinationGame::new(
            GraphBuilder::torus(3, 3),
            CoordinationGame::new(5.0, 4.0, 1.0, 2.0),
        );
        check(&coord, &[0, 1, 0, 1, 1, 0, 0, 1, 1]);
        let ising = IsingGame::new(GraphBuilder::hypercube(3), 0.7, 0.2);
        check(&ising, &[1, 0, 0, 1, 0, 1, 1, 0]);
        let congestion = CongestionGame::load_balancing(4, 2, 1.5);
        check(&congestion, &[0, 1, 1, 0]);
        // Forwarding layers: &G and Arc<G> reach the same overrides.
        check(&&coord, &[0, 1, 0, 1, 1, 0, 0, 1, 1]);
        check(&std::sync::Arc::new(ising), &[1, 0, 0, 1, 0, 1, 1, 0]);
    }

    /// The byte-profile hook must agree bitwise with the widened frozen
    /// hook on every concrete `LocalGame` — including the congestion
    /// default, which widens internally — and through the forwarding
    /// layers.
    #[test]
    fn byte_profile_utilities_match_the_frozen_hook_bitwise() {
        fn check<G: LocalGame>(game: &G, profile: &[usize]) {
            let bytes: Vec<u8> = profile.iter().map(|&s| s as u8).collect();
            for player in 0..game.num_players() {
                let m = game.num_strategies(player);
                let mut frozen = vec![0.0; m];
                let mut packed = vec![0.0; m];
                game.utilities_for_frozen(player, profile, &mut frozen);
                game.utilities_for_frozen_bytes(player, &bytes, &mut packed);
                assert!(
                    frozen
                        .iter()
                        .zip(&packed)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "byte hook diverged for player {player}: {frozen:?} vs {packed:?}"
                );
            }
        }
        let coord = GraphicalCoordinationGame::new(
            GraphBuilder::torus(3, 3),
            CoordinationGame::new(5.0, 4.0, 1.0, 2.0),
        );
        check(&coord, &[0, 1, 0, 1, 1, 0, 0, 1, 1]);
        let ising = IsingGame::new(GraphBuilder::hypercube(3), 0.7, 0.2);
        check(&ising, &[1, 0, 0, 1, 0, 1, 1, 0]);
        let congestion = CongestionGame::load_balancing(4, 2, 1.5);
        check(&congestion, &[0, 1, 1, 0]);
        check(&&coord, &[1, 1, 0, 0, 1, 0, 1, 0, 1]);
        check(&std::sync::Arc::new(ising), &[0, 1, 1, 0, 1, 0, 0, 1]);
    }

    /// The bridge reproduces the social graph for graph-backed games and
    /// materialises the implicit resource-sharing graph of congestion games.
    #[test]
    fn interaction_graph_bridges_every_local_game() {
        let graph = GraphBuilder::circulant(10, 2);
        let coord =
            GraphicalCoordinationGame::new(graph.clone(), CoordinationGame::from_deltas(2.0, 1.0));
        let bridged = interaction_graph(&coord);
        assert_eq!(bridged.num_vertices(), graph.num_vertices());
        assert_eq!(bridged.num_edges(), graph.num_edges());
        for v in 0..10 {
            assert_eq!(bridged.neighbors(v), graph.neighbors(v));
        }
        let ising = IsingGame::zero_field(GraphBuilder::torus(3, 4), 1.0);
        let bridged = interaction_graph(&ising);
        assert_eq!(bridged.num_edges(), ising.graph().num_edges());
        // Congestion: players 0 and 1 share machine 0, player 2 is isolated.
        let delays = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]];
        let strategies = vec![vec![vec![0]], vec![vec![0]], vec![vec![1]]];
        let game = CongestionGame::new(delays, strategies);
        let bridged = interaction_graph(&game);
        assert!(bridged.has_edge(0, 1));
        assert_eq!(bridged.degree(2), 0);
        assert_eq!(bridged.num_edges(), 1);
    }

    /// The CSR bridge and the cached per-game CSR views agree with the
    /// adjacency-list graph.
    #[test]
    fn interaction_csr_matches_the_graph_bridge() {
        let graph = GraphBuilder::circulant(10, 2);
        let coord =
            GraphicalCoordinationGame::new(graph.clone(), CoordinationGame::from_deltas(2.0, 1.0));
        let csr = interaction_csr(&coord);
        assert_eq!(csr.num_vertices(), graph.num_vertices());
        assert_eq!(csr.num_edges(), graph.num_edges());
        for v in 0..10 {
            let row: Vec<usize> = csr.neighbors(v).iter().map(|&j| j as usize).collect();
            assert_eq!(row, graph.neighbors(v));
        }
        assert_eq!(coord.csr(), &csr, "cached game CSR is the same view");
        let ising = IsingGame::zero_field(GraphBuilder::torus(3, 4), 1.0);
        assert_eq!(interaction_csr(&ising), *ising.csr());
    }
}
