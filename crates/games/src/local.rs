//! Locality structure of games: the [`LocalGame`] trait.
//!
//! In every game the paper simulates at scale, a player's utility depends
//! only on her own strategy and the strategies of a small *neighbourhood* —
//! graph neighbours for graphical coordination and Ising games, players
//! sharing a resource for congestion games. The flat-index simulation engine
//! cannot exploit this (decoding a flat state index is `O(n)` and the index
//! itself overflows `usize` beyond ~60 binary players); the in-place profile
//! engine in `logit-core` can: one logit update of a [`LocalGame`] costs
//! `O(|S_i| + deg(i))` work, independent of both `n` and `|S|`.
//!
//! The contract: `utility(i, x)` and `utilities_for(i, x, out)` read only
//! `x[i]` and `x[j]` for `j ∈ neighbors_of(i)`. The proptest suite checks
//! this by perturbing strategies outside the neighbourhood.

use crate::congestion::CongestionGame;
use crate::game::Game;
use crate::graphical::GraphicalCoordinationGame;
use crate::ising::IsingGame;

/// A game whose utilities have bounded-neighbourhood locality.
pub trait LocalGame: Game {
    /// The players (other than `player`) whose strategies can affect
    /// `player`'s utility.
    fn neighbors_of(&self, player: usize) -> &[usize];

    /// Size of `player`'s neighbourhood.
    fn degree(&self, player: usize) -> usize {
        self.neighbors_of(player).len()
    }

    /// Largest neighbourhood size over all players (used to size scratch
    /// buffers and bound per-step cost).
    fn max_degree(&self) -> usize {
        (0..self.num_players())
            .map(|i| self.degree(i))
            .max()
            .unwrap_or(0)
    }

    /// Upper bound on the cost of one logit update of any player:
    /// `max_i (|S_i| + deg(i))`.
    fn step_cost_bound(&self) -> usize {
        (0..self.num_players())
            .map(|i| self.num_strategies(i) + self.degree(i))
            .max()
            .unwrap_or(0)
    }
}

impl<G: LocalGame + ?Sized> LocalGame for &G {
    fn neighbors_of(&self, player: usize) -> &[usize] {
        (**self).neighbors_of(player)
    }
}

impl LocalGame for GraphicalCoordinationGame {
    fn neighbors_of(&self, player: usize) -> &[usize] {
        self.graph().neighbors(player)
    }
}

impl LocalGame for IsingGame {
    fn neighbors_of(&self, player: usize) -> &[usize] {
        self.graph().neighbors(player)
    }
}

impl LocalGame for CongestionGame {
    fn neighbors_of(&self, player: usize) -> &[usize] {
        self.interaction_neighbors(player)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::CoordinationGame;
    use logit_graphs::GraphBuilder;

    /// Changing a strategy outside `neighbors_of(i)` must not change
    /// `utility(i, ·)` — the defining property of the trait.
    fn check_locality<G: LocalGame>(game: &G) {
        let n = game.num_players();
        let mut profile = vec![0usize; n];
        for player in 0..n {
            let local: std::collections::BTreeSet<usize> =
                game.neighbors_of(player).iter().copied().collect();
            assert!(
                !local.contains(&player),
                "a player is not her own neighbour"
            );
            let base = game.utility(player, &profile);
            for other in 0..n {
                if other == player || local.contains(&other) {
                    continue;
                }
                for s in 0..game.num_strategies(other) {
                    let saved = profile[other];
                    profile[other] = s;
                    assert_eq!(
                        game.utility(player, &profile),
                        base,
                        "utility of {player} changed when non-neighbour {other} moved"
                    );
                    profile[other] = saved;
                }
            }
        }
    }

    #[test]
    fn graphical_and_ising_neighbourhoods_are_graph_neighbours() {
        let graph = GraphBuilder::ring(6);
        let coord = GraphicalCoordinationGame::new(graph.clone(), CoordinationGame::symmetric(1.0));
        let ising = IsingGame::zero_field(graph.clone(), 0.5);
        for v in 0..6 {
            assert_eq!(coord.neighbors_of(v), graph.neighbors(v));
            assert_eq!(ising.neighbors_of(v), graph.neighbors(v));
        }
        assert_eq!(coord.max_degree(), 2);
        assert_eq!(coord.step_cost_bound(), 4);
        check_locality(&coord);
        check_locality(&ising);
    }

    #[test]
    fn star_degrees() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::star(5),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        // The hub interacts with everyone, the leaves only with the hub.
        let degrees: Vec<usize> = (0..5).map(|v| game.degree(v)).collect();
        assert_eq!(degrees.iter().max(), Some(&4));
        assert_eq!(game.max_degree(), 4);
        check_locality(&game);
    }

    #[test]
    fn congestion_neighbourhood_is_resource_sharing() {
        // Players 0 and 1 can share machine 0; player 2 is isolated on machine 1.
        let delays = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]];
        let strategies = vec![vec![vec![0]], vec![vec![0]], vec![vec![1]]];
        let game = CongestionGame::new(delays, strategies);
        assert_eq!(game.neighbors_of(0), &[1]);
        assert_eq!(game.neighbors_of(1), &[0]);
        assert_eq!(game.neighbors_of(2), &[] as &[usize]);
        check_locality(&game);
    }

    #[test]
    fn load_balancing_is_fully_coupled() {
        let game = CongestionGame::load_balancing(4, 2, 1.0);
        for i in 0..4 {
            assert_eq!(
                game.degree(i),
                3,
                "every player shares machines with all others"
            );
        }
        check_locality(&game);
    }

    #[test]
    fn reference_delegation() {
        let game =
            GraphicalCoordinationGame::new(GraphBuilder::path(4), CoordinationGame::symmetric(1.0));
        let r = &game;
        assert_eq!(r.neighbors_of(1), game.neighbors_of(1));
        assert_eq!(r.max_degree(), 2);
    }
}
