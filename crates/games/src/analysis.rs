//! Game-theoretic analysis helpers: best responses, pure Nash equilibria,
//! dominant strategies and exact-potential verification.

use crate::game::{Game, PotentialGame};

/// The set of best responses of `player` to the other players' strategies in
/// `profile` (the player's own entry is ignored). Ties are all returned.
pub fn best_responses<G: Game>(game: &G, player: usize, profile: &[usize]) -> Vec<usize> {
    let mut work = profile.to_vec();
    let mut best_value = f64::NEG_INFINITY;
    let mut best = Vec::new();
    for s in 0..game.num_strategies(player) {
        work[player] = s;
        let u = game.utility(player, &work);
        if u > best_value + 1e-12 {
            best_value = u;
            best = vec![s];
        } else if (u - best_value).abs() <= 1e-12 {
            best.push(s);
        }
    }
    best
}

/// Returns `true` when `profile` is a pure Nash equilibrium: no player can
/// strictly improve by a unilateral deviation.
pub fn is_pure_nash<G: Game>(game: &G, profile: &[usize]) -> bool {
    let mut work = profile.to_vec();
    for player in 0..game.num_players() {
        let current = game.utility(player, profile);
        for s in 0..game.num_strategies(player) {
            if s == profile[player] {
                continue;
            }
            work[player] = s;
            if game.utility(player, &work) > current + 1e-12 {
                return false;
            }
        }
        work[player] = profile[player];
    }
    true
}

/// Enumerates every pure Nash equilibrium of the game (exponential in `n`; meant
/// for the small games the exact analyses handle anyway).
pub fn find_pure_nash_equilibria<G: Game>(game: &G) -> Vec<Vec<usize>> {
    let space = game.profile_space();
    let mut buf = vec![0usize; game.num_players()];
    let mut out = Vec::new();
    for idx in space.indices() {
        space.write_profile(idx, &mut buf);
        if is_pure_nash(game, &buf) {
            out.push(buf.clone());
        }
    }
    out
}

/// Returns `true` when `strategy` is a (weakly) dominant strategy for `player`:
/// for every profile of the others it maximises the player's utility
/// (Section 4's definition `u_i(s, x_{-i}) ≥ u_i(s', x_{-i})` for all `s'`, `x`).
pub fn is_dominant_strategy<G: Game>(game: &G, player: usize, strategy: usize) -> bool {
    let space = game.profile_space();
    let mut buf = vec![0usize; game.num_players()];
    for idx in space.indices() {
        space.write_profile(idx, &mut buf);
        buf[player] = strategy;
        let dominant_value = game.utility(player, &buf);
        for s in 0..game.num_strategies(player) {
            buf[player] = s;
            if game.utility(player, &buf) > dominant_value + 1e-12 {
                return false;
            }
        }
    }
    true
}

/// Finds a dominant profile — one dominant strategy per player — if every player
/// has one (Section 4). Returns the lexicographically first such profile.
pub fn find_dominant_profile<G: Game>(game: &G) -> Option<Vec<usize>> {
    let mut profile = Vec::with_capacity(game.num_players());
    for player in 0..game.num_players() {
        let s =
            (0..game.num_strategies(player)).find(|&s| is_dominant_strategy(game, player, s))?;
        profile.push(s);
    }
    Some(profile)
}

/// Verifies eq. (1) of the paper on every profile, player and pair of strategies:
/// `u_i(a, x_{-i}) - u_i(b, x_{-i}) = Φ(b, x_{-i}) - Φ(a, x_{-i})` up to `tol`.
pub fn verify_exact_potential<G: PotentialGame>(game: &G, tol: f64) -> bool {
    let space = game.profile_space();
    let mut x = vec![0usize; game.num_players()];
    let mut y = vec![0usize; game.num_players()];
    for idx in space.indices() {
        space.write_profile(idx, &mut x);
        let phi_x = game.potential(&x);
        for player in 0..game.num_players() {
            let ux = game.utility(player, &x);
            y.copy_from_slice(&x);
            for s in 0..game.num_strategies(player) {
                if s == x[player] {
                    continue;
                }
                y[player] = s;
                let uy = game.utility(player, &y);
                let phi_y = game.potential(&y);
                // u_i(x) - u_i(y) should equal Φ(y) - Φ(x).
                if ((ux - uy) - (phi_y - phi_x)).abs() > tol {
                    return false;
                }
            }
        }
    }
    true
}

/// Social welfare: the sum of all players' utilities in `profile`.
pub fn social_welfare<G: Game>(game: &G, profile: &[usize]) -> f64 {
    (0..game.num_players())
        .map(|i| game.utility(i, profile))
        .sum()
}

/// The best-response profile-improvement step: returns a profile obtained from
/// `profile` by letting `player` switch to (the smallest of) her best responses,
/// together with whether this strictly improved her utility.
pub fn best_response_step<G: Game>(
    game: &G,
    player: usize,
    profile: &[usize],
) -> (Vec<usize>, bool) {
    let responses = best_responses(game, player, profile);
    let target = responses[0];
    let mut next = profile.to_vec();
    let improved = {
        let before = game.utility(player, profile);
        next[player] = target;
        game.utility(player, &next) > before + 1e-12
    };
    (next, improved)
}

/// Runs best-response dynamics (round-robin player order) until a pure Nash
/// equilibrium is reached or `max_rounds` full rounds have elapsed. Returns the
/// final profile and whether it is an equilibrium.
///
/// For potential games this always terminates at an equilibrium when given
/// enough rounds (the potential strictly decreases at every improving step);
/// this is the `β = ∞` baseline the paper contrasts the logit dynamics with.
pub fn best_response_dynamics<G: Game>(
    game: &G,
    start: &[usize],
    max_rounds: usize,
) -> (Vec<usize>, bool) {
    let mut profile = start.to_vec();
    for _ in 0..max_rounds {
        let mut any_improved = false;
        for player in 0..game.num_players() {
            let (next, improved) = best_response_step(game, player, &profile);
            if improved {
                profile = next;
                any_improved = true;
            }
        }
        if !any_improved {
            return (profile, true);
        }
    }
    let is_nash = is_pure_nash(game, &profile);
    (profile, is_nash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::CoordinationGame;
    use crate::dominant::AllZeroDominantGame;
    use crate::graphical::GraphicalCoordinationGame;
    use crate::table::{TableGame, TablePotentialGame};
    use crate::well::WellGame;
    use logit_graphs::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn best_responses_in_coordination_game() {
        let g = CoordinationGame::from_deltas(3.0, 2.0);
        assert_eq!(best_responses(&g, 0, &[1, 0]), vec![0]);
        assert_eq!(best_responses(&g, 0, &[0, 1]), vec![1]);
        assert_eq!(best_responses(&g, 1, &[1, 0]), vec![1]);
    }

    #[test]
    fn ties_are_all_reported() {
        // A game where both strategies give the same payoff.
        let space = crate::profile::ProfileSpace::uniform(2, 2);
        let g = TablePotentialGame::new(space, vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(best_responses(&g, 0, &[0, 0]), vec![0, 1]);
    }

    #[test]
    fn nash_detection_in_well_game() {
        let g = WellGame::plateau(3, 2.0);
        // All-zeros and everything with weight >= 2 minimise potential locally.
        assert!(is_pure_nash(&g, &[0, 0, 0]));
        assert!(!is_pure_nash(&g, &[1, 0, 0]));
        assert!(is_pure_nash(&g, &[1, 1, 1]));
    }

    #[test]
    fn dominant_strategy_detection() {
        let g = AllZeroDominantGame::new(3, 2);
        assert!(is_dominant_strategy(&g, 0, 0));
        assert!(!is_dominant_strategy(&g, 0, 1));
        assert_eq!(find_dominant_profile(&g), Some(vec![0, 0, 0]));

        let coord = CoordinationGame::from_deltas(1.0, 1.0);
        assert!(find_dominant_profile(&coord).is_none());
    }

    #[test]
    fn exact_potential_verification_detects_non_potential_games() {
        // Matching pennies is not a potential game; pretend its "potential" is zero
        // and check the verifier rejects it.
        struct FakePotential(crate::matrix_game::TwoPlayerGame);
        impl Game for FakePotential {
            fn num_players(&self) -> usize {
                self.0.num_players()
            }
            fn num_strategies(&self, p: usize) -> usize {
                self.0.num_strategies(p)
            }
            fn utility(&self, p: usize, x: &[usize]) -> f64 {
                self.0.utility(p, x)
            }
        }
        impl PotentialGame for FakePotential {
            fn potential(&self, _x: &[usize]) -> f64 {
                0.0
            }
        }
        let fake = FakePotential(crate::matrix_game::TwoPlayerGame::matching_pennies());
        assert!(!verify_exact_potential(&fake, 1e-9));
    }

    #[test]
    fn social_welfare_sums_utilities() {
        let g = CoordinationGame::new(5.0, 3.0, 1.0, 2.0);
        assert_eq!(social_welfare(&g, &[0, 0]), 10.0);
        assert_eq!(social_welfare(&g, &[0, 1]), 3.0);
    }

    #[test]
    fn best_response_dynamics_reaches_nash_in_potential_games() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let g = TablePotentialGame::random(vec![2, 3, 2], 4.0, &mut rng);
            let (profile, is_nash) = best_response_dynamics(&g, &[0, 0, 0], 100);
            assert!(is_nash, "BR dynamics must converge in a potential game");
            assert!(is_pure_nash(&g, &profile));
        }
    }

    #[test]
    fn best_response_dynamics_on_graphical_coordination_reaches_consensus_or_nash() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(6),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let (profile, is_nash) = best_response_dynamics(&game, &[0, 1, 0, 1, 0, 1], 50);
        assert!(is_nash);
        assert!(is_pure_nash(&game, &profile));
    }

    #[test]
    fn random_table_games_equilibria_are_consistent() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..5 {
            let g = TableGame::random(vec![2, 2, 2], &mut rng);
            for eq in find_pure_nash_equilibria(&g) {
                assert!(is_pure_nash(&g, &eq));
            }
        }
    }
}
