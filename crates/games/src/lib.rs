//! # logit-games
//!
//! Strategic-game substrate for the logit-dynamics workspace.
//!
//! A strategic game has `n` players, each with a finite strategy set, and a
//! utility function per player ([`Game`]). *Potential games* additionally admit
//! an exact potential `Φ` with
//! `u_i(a, x_{-i}) - u_i(b, x_{-i}) = Φ(b, x_{-i}) - Φ(a, x_{-i})`
//! (eq. (1) of the paper — note the **cost convention**: higher utility means
//! *lower* potential, so the logit dynamics' stationary distribution is the Gibbs
//! measure `π(x) ∝ e^{-βΦ(x)}`). [`PotentialGame`] captures this.
//!
//! The crate contains every concrete game the paper analyses or uses in a proof:
//!
//! * [`coordination::CoordinationGame`] — the 2×2 basic coordination game of
//!   Section 5 (payoff matrix (10), `δ₀ = a - d`, `δ₁ = b - c`),
//! * [`graphical::GraphicalCoordinationGame`] — the same game played on every
//!   edge of a social graph,
//! * [`ising::IsingGame`] — the zero-field Ising model as the special graphical
//!   coordination game without a risk-dominant equilibrium,
//! * [`well::WellGame`] — the Theorem 3.5 lower-bound construction
//!   `Φ(x) = -l·min{c, |c - w(x)|}`,
//! * [`dominant::AllZeroDominantGame`] — the Theorem 4.3 construction
//!   (`u_i(x) = 0` iff `x = 0`, else `-1`),
//! * [`congestion::CongestionGame`] — Rosenthal congestion games (the related
//!   work on hitting times is stated for these),
//! * [`matrix_game::TwoPlayerGame`] and [`table::TableGame`] /
//!   [`table::TablePotentialGame`] — explicit general-form games used for
//!   randomised testing.
//!
//! [`analysis`] provides best responses, pure Nash equilibria, dominant-strategy
//! detection and exact-potential verification; [`profile`] provides the
//! mixed-radix profile space shared with the Markov-chain layer; [`local`]
//! provides the [`local::LocalGame`] locality contract (bounded interaction
//! neighbourhoods) that the large-`n` in-place simulation engine in
//! `logit-core` builds on.

pub mod analysis;
pub mod congestion;
pub mod coordination;
pub mod dominant;
pub mod game;
pub mod graphical;
pub mod ising;
pub mod local;
pub mod matrix_game;
pub mod profile;
pub mod table;
pub mod well;

pub use analysis::{
    best_responses, find_dominant_profile, find_pure_nash_equilibria, is_dominant_strategy,
    is_pure_nash, verify_exact_potential,
};
pub use congestion::CongestionGame;
pub use coordination::{CoordinationError, CoordinationGame};
pub use dominant::AllZeroDominantGame;
pub use game::{Game, PotentialGame};
pub use graphical::GraphicalCoordinationGame;
pub use ising::{IsingError, IsingGame};
pub use local::{interaction_csr, interaction_graph, LocalGame};
pub use matrix_game::TwoPlayerGame;
pub use profile::ProfileSpace;
pub use table::{TableGame, TablePotentialGame};
pub use well::WellGame;
