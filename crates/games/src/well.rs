//! The Theorem 3.5 lower-bound construction ("well" potential).
//!
//! For target global variation `g = ΔΦ` and local variation `l = δΦ` with
//! `2g/n ≤ l ≤ g`, set `c = g/l` and define on `{0,1}ⁿ`
//!
//! `Φ(x) = -l · min{ c, |c - w(x)| }`
//!
//! where `w(x)` is the Hamming weight of `x`. The potential has two "wells" of
//! depth `g` (around `w = 0` and `w ≥ 2c`), separated by a ridge of maximal
//! potential `0` at `w(x) = c`. The bottleneck at the ridge forces the logit
//! dynamics to take time `e^{βΔΦ(1-o(1))}` to cross (Theorem 3.5), matching the
//! Theorem 3.4 upper bound.
//!
//! The game realising the potential is the identical-interest game `u_i = -Φ`.

use crate::game::{Game, PotentialGame};

/// The potential-game family of Theorem 3.5.
#[derive(Debug, Clone, PartialEq)]
pub struct WellGame {
    n: usize,
    /// Local variation `l = δΦ`.
    local: f64,
    /// The ridge location `c = g / l`.
    c: f64,
}

impl WellGame {
    /// Creates the game with `n` players, global variation `global = ΔΦ` and
    /// local variation `local = δΦ`.
    ///
    /// # Panics
    /// Panics unless `n ≥ 2`, both variations are positive and
    /// `2·global/n ≤ local ≤ global` (the admissible range in Theorem 3.5).
    pub fn new(n: usize, global: f64, local: f64) -> Self {
        assert!(n >= 2, "need at least two players");
        assert!(global > 0.0 && local > 0.0, "variations must be positive");
        assert!(
            local <= global + 1e-12,
            "local variation cannot exceed the global variation"
        );
        assert!(
            local + 1e-12 >= 2.0 * global / n as f64,
            "Theorem 3.5 requires local >= 2*global/n (got local={local}, 2g/n={})",
            2.0 * global / n as f64
        );
        Self {
            n,
            local,
            c: global / local,
        }
    }

    /// The simplest instance: `ΔΦ = δΦ = L`, i.e. `c = 1` — a single-step ridge.
    /// This is the "two ground states separated by a uniform plateau of height L"
    /// example discussed before Theorem 3.5.
    pub fn plateau(n: usize, height: f64) -> Self {
        Self::new(n, height, height)
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Target global variation `g = ΔΦ`.
    pub fn global_variation(&self) -> f64 {
        self.c * self.local
    }

    /// Target local variation `l = δΦ`.
    pub fn local_variation(&self) -> f64 {
        self.local
    }

    /// The ridge location `c = g / l`.
    pub fn ridge(&self) -> f64 {
        self.c
    }

    /// Potential as a function of the Hamming weight `w(x)` alone.
    pub fn potential_by_weight(&self, weight: usize) -> f64 {
        let w = weight as f64;
        -self.local * self.c.min((self.c - w).abs())
    }

    /// Hamming weight `w(x)` of a profile (number of players on strategy 1).
    pub fn weight(&self, profile: &[usize]) -> usize {
        profile.iter().filter(|&&x| x == 1).count()
    }

    /// The smallest Hamming weight at which the potential reaches its minimum
    /// on the far side of the ridge: `⌈2c⌉`. Profiles at weight `0` form one
    /// well; profiles at weight `≥ ⌈2c⌉` form the **opposite well** across
    /// the barrier — the target of the E13 tempering benchmark.
    pub fn opposite_well_min_weight(&self) -> usize {
        (2.0 * self.c).ceil() as usize
    }

    /// Whether a profile sits in the opposite (far) well at full depth, i.e.
    /// the dynamics has crossed the Theorem 3.5 barrier from the all-zero
    /// well: `w(x) ≥ ⌈2c⌉`.
    pub fn in_opposite_well(&self, profile: &[usize]) -> bool {
        self.weight(profile) >= self.opposite_well_min_weight()
    }
}

impl Game for WellGame {
    fn num_players(&self) -> usize {
        self.n
    }

    fn num_strategies(&self, _player: usize) -> usize {
        2
    }

    fn utility(&self, _player: usize, profile: &[usize]) -> f64 {
        -self.potential(profile)
    }
}

impl PotentialGame for WellGame {
    fn potential(&self, profile: &[usize]) -> f64 {
        let weight = profile.iter().filter(|&&x| x == 1).count();
        self.potential_by_weight(weight)
    }

    fn max_global_variation(&self) -> f64 {
        self.global_variation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::verify_exact_potential;

    #[test]
    fn plateau_instance_shape() {
        let g = WellGame::plateau(4, 2.0);
        // Φ(0) = Φ(weight n) = -2, everything in between ... c = 1, so
        // weight 1 gives |1-1| = 0 -> Φ = 0 ; weight 2 gives min(1, 1) -> -2.
        assert_eq!(g.potential_by_weight(0), -2.0);
        assert_eq!(g.potential_by_weight(1), 0.0);
        assert_eq!(g.potential_by_weight(2), -2.0);
        assert_eq!(g.potential_by_weight(4), -2.0);
        assert_eq!(g.potential(&[0, 0, 0, 0]), -2.0);
        assert_eq!(g.potential(&[1, 0, 0, 0]), 0.0);
    }

    #[test]
    fn variations_match_requested_values() {
        let g = WellGame::new(8, 6.0, 2.0); // c = 3
        assert_eq!(g.ridge(), 3.0);
        assert_eq!(g.global_variation(), 6.0);
        assert_eq!(g.local_variation(), 2.0);
        // Enumerate: ΔΦ and δΦ really are as requested.
        assert!((g.max_global_variation() - 6.0).abs() < 1e-12);
        assert!((g.max_local_variation() - 2.0).abs() < 1e-12);
        // min at weight 0 (and at weights >= 2c), max (= 0) at weight c.
        assert_eq!(g.potential_by_weight(0), -6.0);
        assert_eq!(g.potential_by_weight(3), 0.0);
        assert_eq!(g.potential_by_weight(6), -6.0);
        assert_eq!(g.potential_by_weight(8), -6.0);
    }

    #[test]
    fn symmetric_around_ridge() {
        let g = WellGame::new(10, 8.0, 2.0); // c = 4
        for d in 0..4 {
            assert!(
                (g.potential_by_weight(4 - d) - g.potential_by_weight(4 + d)).abs() < 1e-12,
                "potential should be symmetric around the ridge"
            );
        }
    }

    #[test]
    fn opposite_well_accessors_mark_the_far_basin() {
        let g = WellGame::new(8, 6.0, 2.0); // c = 3, far well at w >= 6
        assert_eq!(g.opposite_well_min_weight(), 6);
        assert_eq!(g.weight(&[1, 1, 0, 1, 0, 0, 0, 0]), 3);
        assert!(!g.in_opposite_well(&[1, 1, 1, 1, 1, 0, 0, 0])); // w = 5
        assert!(g.in_opposite_well(&[1, 1, 1, 1, 1, 1, 0, 0])); // w = 6
        assert!(g.in_opposite_well(&[1; 8]));
        // The threshold weight really attains the full well depth.
        assert_eq!(
            g.potential_by_weight(g.opposite_well_min_weight()),
            -g.global_variation()
        );
        // The plateau instance: ridge at w = 1, far well from w = 2 on.
        let p = WellGame::plateau(4, 2.0);
        assert_eq!(p.opposite_well_min_weight(), 2);
        assert!(!p.in_opposite_well(&[1, 0, 0, 0]));
        assert!(p.in_opposite_well(&[1, 1, 0, 0]));
    }

    #[test]
    fn identical_interest_game_is_exact_potential() {
        let g = WellGame::new(5, 4.0, 2.0);
        assert!(verify_exact_potential(&g, 1e-12));
    }

    #[test]
    #[should_panic(expected = "local >= 2*global/n")]
    fn local_variation_too_small_rejected() {
        // n = 4, g = 10, l = 1  => 2g/n = 5 > 1.
        let _ = WellGame::new(4, 10.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn local_variation_above_global_rejected() {
        let _ = WellGame::new(4, 1.0, 2.0);
    }
}
