//! The 2×2 basic coordination game of Section 5.
//!
//! Payoff matrix (10) of the paper:
//!
//! ```text
//!          0        1
//!   0    a, a     c, d
//!   1    d, c     b, b
//! ```
//!
//! with `δ₀ = a - d > 0` and `δ₁ = b - c > 0`, so both players prefer to match.
//! The two pure Nash equilibria are `(0,0)` and `(1,1)`; the one with the larger
//! `δ` is *risk dominant* (Harsanyi–Selten). The edge potential is
//! `φ(0,0) = -δ₀`, `φ(1,1) = -δ₁`, `φ(0,1) = φ(1,0) = 0` (eq. (11)).

use crate::game::{Game, PotentialGame};

/// Which equilibrium of a 2×2 coordination game is risk dominant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiskDominance {
    /// `(0,0)` is risk dominant (`δ₀ > δ₁`).
    ZeroZero,
    /// `(1,1)` is risk dominant (`δ₁ > δ₀`).
    OneOne,
    /// No risk-dominant equilibrium (`δ₀ = δ₁`), the Ising-like case.
    None,
}

/// A 2×2 coordination game with payoffs `a, b, c, d` as in matrix (10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinationGame {
    a: f64,
    b: f64,
    c: f64,
    d: f64,
}

/// Why a payoff matrix was rejected as a coordination game: the typed
/// counterpart of the constructor `assert!`s, so admission-time validation
/// (e.g. in a job server) can return the failure instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinationError {
    /// `δ₀ = a - d` was not strictly positive (or not a number).
    NonPositiveDelta0,
    /// `δ₁ = b - c` was not strictly positive (or not a number).
    NonPositiveDelta1,
}

impl std::fmt::Display for CoordinationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordinationError::NonPositiveDelta0 => {
                write!(f, "coordination requires delta0 = a - d > 0")
            }
            CoordinationError::NonPositiveDelta1 => {
                write!(f, "coordination requires delta1 = b - c > 0")
            }
        }
    }
}

impl std::error::Error for CoordinationError {}

impl CoordinationGame {
    /// Creates the game from the four payoffs of matrix (10).
    ///
    /// # Panics
    /// Panics unless `δ₀ = a - d > 0` and `δ₁ = b - c > 0`, i.e. unless the game
    /// really is a coordination game. Use [`try_new`](Self::try_new) where the
    /// failure must be a value instead.
    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        match Self::try_new(a, b, c, d) {
            Ok(game) => game,
            Err(e) => panic!("{e}"),
        }
    }

    /// The fallible form of [`new`](Self::new): `Err` with a typed
    /// [`CoordinationError`] instead of panicking when the payoffs do not
    /// describe a coordination game.
    pub fn try_new(a: f64, b: f64, c: f64, d: f64) -> Result<Self, CoordinationError> {
        let delta0 = a - d;
        if delta0.is_nan() || delta0 <= 0.0 {
            return Err(CoordinationError::NonPositiveDelta0);
        }
        let delta1 = b - c;
        if delta1.is_nan() || delta1 <= 0.0 {
            return Err(CoordinationError::NonPositiveDelta1);
        }
        Ok(Self { a, b, c, d })
    }

    /// Convenience constructor directly from `(δ₀, δ₁)`, with the off-diagonal
    /// payoffs set to zero (`a = δ₀`, `b = δ₁`, `c = d = 0`).
    pub fn from_deltas(delta0: f64, delta1: f64) -> Self {
        Self::new(delta0, delta1, 0.0, 0.0)
    }

    /// The fallible form of [`from_deltas`](Self::from_deltas).
    pub fn try_from_deltas(delta0: f64, delta1: f64) -> Result<Self, CoordinationError> {
        Self::try_new(delta0, delta1, 0.0, 0.0)
    }

    /// The symmetric case with no risk-dominant equilibrium (`δ₀ = δ₁ = δ`),
    /// i.e. the Ising interaction.
    pub fn symmetric(delta: f64) -> Self {
        Self::from_deltas(delta, delta)
    }

    /// `δ₀ = a - d`.
    pub fn delta0(&self) -> f64 {
        self.a - self.d
    }

    /// `δ₁ = b - c`.
    pub fn delta1(&self) -> f64 {
        self.b - self.c
    }

    /// Which equilibrium (if any) is risk dominant.
    pub fn risk_dominance(&self) -> RiskDominance {
        let (d0, d1) = (self.delta0(), self.delta1());
        if d0 > d1 {
            RiskDominance::ZeroZero
        } else if d1 > d0 {
            RiskDominance::OneOne
        } else {
            RiskDominance::None
        }
    }

    /// Payoff of a player choosing `mine` against an opponent choosing `theirs`.
    pub fn payoff(&self, mine: usize, theirs: usize) -> f64 {
        match (mine, theirs) {
            (0, 0) => self.a,
            (0, 1) => self.c,
            (1, 0) => self.d,
            (1, 1) => self.b,
            _ => panic!("strategies of a 2x2 game are 0 and 1, got ({mine},{theirs})"),
        }
    }

    /// Edge potential `φ(x, y)` from eq. (11): `φ(0,0) = -δ₀`, `φ(1,1) = -δ₁`,
    /// `φ(0,1) = φ(1,0) = 0`.
    pub fn edge_potential(&self, x: usize, y: usize) -> f64 {
        match (x, y) {
            (0, 0) => -self.delta0(),
            (1, 1) => -self.delta1(),
            (0, 1) | (1, 0) => 0.0,
            _ => panic!("strategies of a 2x2 game are 0 and 1, got ({x},{y})"),
        }
    }
}

impl Game for CoordinationGame {
    fn num_players(&self) -> usize {
        2
    }

    fn num_strategies(&self, _player: usize) -> usize {
        2
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        let (mine, theirs) = match player {
            0 => (profile[0], profile[1]),
            1 => (profile[1], profile[0]),
            _ => panic!("coordination game has players 0 and 1"),
        };
        self.payoff(mine, theirs)
    }
}

impl PotentialGame for CoordinationGame {
    fn potential(&self, profile: &[usize]) -> f64 {
        self.edge_potential(profile[0], profile[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{find_pure_nash_equilibria, verify_exact_potential};

    #[test]
    fn deltas_and_risk_dominance() {
        let g = CoordinationGame::new(5.0, 3.0, 1.0, 2.0);
        assert_eq!(g.delta0(), 3.0);
        assert_eq!(g.delta1(), 2.0);
        assert_eq!(g.risk_dominance(), RiskDominance::ZeroZero);

        let h = CoordinationGame::from_deltas(1.0, 4.0);
        assert_eq!(h.risk_dominance(), RiskDominance::OneOne);

        let s = CoordinationGame::symmetric(2.0);
        assert_eq!(s.risk_dominance(), RiskDominance::None);
    }

    #[test]
    #[should_panic(expected = "delta0")]
    fn non_coordination_payoffs_rejected() {
        let _ = CoordinationGame::new(1.0, 1.0, 0.0, 2.0);
    }

    #[test]
    fn both_matching_profiles_are_nash() {
        let g = CoordinationGame::new(5.0, 3.0, 1.0, 2.0);
        let nash = find_pure_nash_equilibria(&g);
        assert_eq!(nash, vec![vec![0, 0], vec![1, 1]]);
    }

    #[test]
    fn edge_potential_is_exact_potential() {
        for (d0, d1) in [(1.0, 1.0), (3.0, 1.0), (0.5, 2.5)] {
            let g = CoordinationGame::from_deltas(d0, d1);
            assert!(verify_exact_potential(&g, 1e-12));
        }
        // Also with non-zero off-diagonal payoffs.
        let g = CoordinationGame::new(5.0, 4.0, 1.5, 2.0);
        assert!(verify_exact_potential(&g, 1e-12));
    }

    #[test]
    fn potential_extremes() {
        let g = CoordinationGame::from_deltas(3.0, 2.0);
        // Minimum potential at the risk-dominant equilibrium (0,0).
        assert_eq!(g.potential(&[0, 0]), -3.0);
        assert_eq!(g.potential(&[1, 1]), -2.0);
        assert_eq!(g.potential(&[0, 1]), 0.0);
        assert_eq!(g.max_global_variation(), 3.0);
        assert_eq!(g.max_local_variation(), 3.0);
    }

    #[test]
    fn payoff_matrix_matches_utilities() {
        let g = CoordinationGame::new(5.0, 3.0, 1.0, 2.0);
        assert_eq!(g.utility(0, &[0, 1]), 1.0); // row plays 0 vs 1 -> c
        assert_eq!(g.utility(1, &[0, 1]), 2.0); // column plays 1 vs 0 -> d
        assert_eq!(g.utility(0, &[1, 1]), 3.0);
        assert_eq!(g.utility(1, &[0, 0]), 5.0);
    }
}
