//! Strategy-profile space.
//!
//! A profile assigns one strategy to each player; the set of all profiles
//! `S = S₁ × ⋯ × Sₙ` is the state space of the logit-dynamics Markov chain. The
//! chain layer indexes states with a single `usize`, so this module provides the
//! mixed-radix encoding between profile vectors and flat indices, plus the
//! single-player-deviation neighbourhood structure (the Hamming graph on `S`)
//! used throughout the paper's proofs.

/// The space of strategy profiles of a game, with a mixed-radix flat indexing.
///
/// Player `i` has `sizes[i]` strategies labelled `0..sizes[i]`. The flat index of
/// a profile is `Σ_i x_i · stride_i` with strides growing from player 0 upward,
/// so player 0 is the fastest-varying coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSpace {
    sizes: Vec<usize>,
    strides: Vec<usize>,
    total: usize,
}

impl ProfileSpace {
    /// Creates a profile space from per-player strategy counts.
    ///
    /// # Panics
    /// Panics if any player has zero strategies or if the total number of
    /// profiles overflows `usize`.
    pub fn new(sizes: Vec<usize>) -> Self {
        assert!(
            sizes.iter().all(|&s| s >= 1),
            "every player needs at least one strategy"
        );
        let mut strides = Vec::with_capacity(sizes.len());
        let mut total: usize = 1;
        for &s in &sizes {
            strides.push(total);
            total = total
                .checked_mul(s)
                .expect("profile space size overflows usize");
        }
        Self {
            sizes,
            strides,
            total,
        }
    }

    /// Uniform space: `n` players with `m` strategies each.
    pub fn uniform(n: usize, m: usize) -> Self {
        Self::new(vec![m; n])
    }

    /// Number of players.
    #[inline]
    pub fn num_players(&self) -> usize {
        self.sizes.len()
    }

    /// Number of strategies of player `i`.
    #[inline]
    pub fn num_strategies(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// Largest strategy-set size `m` over all players.
    pub fn max_strategies(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Total number of profiles `|S|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.total
    }

    /// Flat index of a profile.
    ///
    /// # Panics
    /// Panics (in debug builds) when the profile has the wrong length or a
    /// strategy out of range.
    #[inline]
    pub fn index_of(&self, profile: &[usize]) -> usize {
        debug_assert_eq!(profile.len(), self.sizes.len(), "profile length mismatch");
        let mut idx = 0usize;
        for (i, (&x, &stride)) in profile.iter().zip(&self.strides).enumerate() {
            debug_assert!(
                x < self.sizes[i],
                "strategy {x} out of range for player {i}"
            );
            idx += x * stride;
        }
        idx
    }

    /// Profile corresponding to a flat index.
    pub fn profile_of(&self, index: usize) -> Vec<usize> {
        let mut buf = vec![0usize; self.sizes.len()];
        self.write_profile(index, &mut buf);
        buf
    }

    /// Writes the profile of `index` into `buf` without allocating.
    pub fn write_profile(&self, index: usize, buf: &mut [usize]) {
        debug_assert!(index < self.total, "index out of range");
        debug_assert_eq!(buf.len(), self.sizes.len());
        let mut rest = index;
        for (i, &s) in self.sizes.iter().enumerate() {
            buf[i] = rest % s;
            rest /= s;
        }
    }

    /// Strategy of player `i` in the profile with flat index `index`
    /// (no full decode needed).
    #[inline]
    pub fn strategy_of(&self, index: usize, i: usize) -> usize {
        (index / self.strides[i]) % self.sizes[i]
    }

    /// Flat index of the profile obtained from `index` by switching player `i`
    /// to strategy `s`.
    #[inline]
    pub fn with_strategy(&self, index: usize, i: usize, s: usize) -> usize {
        debug_assert!(s < self.sizes[i]);
        let current = self.strategy_of(index, i);
        // `index` always contains the `current * stride` contribution, so the
        // subtraction cannot underflow.
        index - current * self.strides[i] + s * self.strides[i]
    }

    /// Iterator over all flat indices.
    pub fn indices(&self) -> impl Iterator<Item = usize> {
        0..self.total
    }

    /// Iterator over all profiles (allocating one `Vec` per profile).
    pub fn profiles(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.total).map(move |i| self.profile_of(i))
    }

    /// All single-player deviations of the profile `index`, as
    /// `(player, new_strategy, neighbour_index)` with `new_strategy` different
    /// from the current one.
    pub fn deviations(&self, index: usize) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.num_players() {
            let current = self.strategy_of(index, i);
            for s in 0..self.sizes[i] {
                if s != current {
                    out.push((i, s, self.with_strategy(index, i, s)));
                }
            }
        }
        out
    }

    /// Hamming distance between two profiles given by flat indices.
    pub fn hamming_distance(&self, a: usize, b: usize) -> usize {
        (0..self.num_players())
            .filter(|&i| self.strategy_of(a, i) != self.strategy_of(b, i))
            .count()
    }

    /// The number of single-player deviations from any profile:
    /// `Σ_i (|S_i| - 1)`.
    pub fn deviations_per_profile(&self) -> usize {
        self.sizes.iter().map(|&s| s - 1).sum()
    }
}

/// Converts an index over binary profiles to its Hamming weight (number of ones).
///
/// Only meaningful for spaces where every player has exactly two strategies;
/// provided here because the paper's constructions on `{0,1}ⁿ` (Theorem 3.5,
/// Section 5) are all phrased in terms of the weight `w(x)`.
pub fn hamming_weight(space: &ProfileSpace, index: usize) -> usize {
    (0..space.num_players())
        .filter(|&i| space.strategy_of(index, i) == 1)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_strides() {
        let sp = ProfileSpace::new(vec![2, 3, 2]);
        assert_eq!(sp.size(), 12);
        assert_eq!(sp.num_players(), 3);
        assert_eq!(sp.num_strategies(1), 3);
        assert_eq!(sp.max_strategies(), 3);
        assert_eq!(sp.deviations_per_profile(), 1 + 2 + 1);
    }

    #[test]
    fn index_profile_round_trip() {
        let sp = ProfileSpace::new(vec![2, 3, 4]);
        for idx in sp.indices() {
            let p = sp.profile_of(idx);
            assert_eq!(sp.index_of(&p), idx);
            for (i, &x) in p.iter().enumerate() {
                assert_eq!(sp.strategy_of(idx, i), x);
            }
        }
    }

    #[test]
    fn uniform_binary_space_is_bitstrings() {
        let sp = ProfileSpace::uniform(4, 2);
        assert_eq!(sp.size(), 16);
        // index 0b1011 -> profile [1,1,0,1] (player 0 fastest varying)
        let p = sp.profile_of(0b1011);
        assert_eq!(p, vec![1, 1, 0, 1]);
        assert_eq!(hamming_weight(&sp, 0b1011), 3);
        assert_eq!(hamming_weight(&sp, 0), 0);
        assert_eq!(hamming_weight(&sp, 0b1111), 4);
    }

    #[test]
    fn with_strategy_moves_one_coordinate() {
        let sp = ProfileSpace::new(vec![3, 3]);
        let idx = sp.index_of(&[1, 2]);
        let moved = sp.with_strategy(idx, 0, 0);
        assert_eq!(sp.profile_of(moved), vec![0, 2]);
        let same = sp.with_strategy(idx, 1, 2);
        assert_eq!(same, idx);
    }

    #[test]
    fn deviations_enumerate_hamming_neighbours() {
        let sp = ProfileSpace::new(vec![2, 3]);
        let idx = sp.index_of(&[0, 1]);
        let devs = sp.deviations(idx);
        assert_eq!(devs.len(), sp.deviations_per_profile());
        for (player, new_s, nbr) in devs {
            assert_eq!(sp.hamming_distance(idx, nbr), 1);
            assert_eq!(sp.strategy_of(nbr, player), new_s);
        }
    }

    #[test]
    fn hamming_distance_examples() {
        let sp = ProfileSpace::uniform(3, 2);
        let a = sp.index_of(&[0, 0, 0]);
        let b = sp.index_of(&[1, 1, 1]);
        let c = sp.index_of(&[1, 0, 0]);
        assert_eq!(sp.hamming_distance(a, b), 3);
        assert_eq!(sp.hamming_distance(a, c), 1);
        assert_eq!(sp.hamming_distance(a, a), 0);
    }

    #[test]
    #[should_panic(expected = "at least one strategy")]
    fn zero_strategy_rejected() {
        let _ = ProfileSpace::new(vec![2, 0]);
    }

    #[test]
    fn profiles_iterator_covers_space() {
        let sp = ProfileSpace::new(vec![2, 2, 3]);
        let all: Vec<Vec<usize>> = sp.profiles().collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn write_profile_matches_profile_of() {
        let sp = ProfileSpace::new(vec![4, 2, 3]);
        let mut buf = vec![0; 3];
        for idx in sp.indices() {
            sp.write_profile(idx, &mut buf);
            assert_eq!(buf, sp.profile_of(idx));
        }
    }
}
