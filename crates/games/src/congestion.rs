//! Rosenthal congestion games.
//!
//! The paper's related work (Asadpour–Saberi) studies hitting times of Nash
//! equilibria in congestion games; the experiment harness uses congestion games
//! as an additional family of potential games with tunable structure.
//!
//! A congestion game has a set of resources, each with a non-decreasing delay
//! function `d_r(k)` of the number `k` of players using it; a strategy of a
//! player is a subset of resources and her cost is the sum of the delays of her
//! chosen resources. Utilities are negated costs and the Rosenthal potential
//! `Φ(x) = Σ_r Σ_{k=1}^{load_r(x)} d_r(k)` is an exact potential in the paper's
//! cost convention.

use crate::game::{Game, PotentialGame};

/// A congestion game in explicit form.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionGame {
    num_resources: usize,
    /// `delays[r][k-1]` is the delay of resource `r` when `k` players use it.
    delays: Vec<Vec<f64>>,
    /// `strategies[i][s]` is the set of resources (as indices) of strategy `s` of player `i`.
    strategies: Vec<Vec<Vec<usize>>>,
}

impl CongestionGame {
    /// Creates a congestion game.
    ///
    /// * `delays[r]` must have one entry per possible load (i.e. at least `n` entries).
    /// * Every player needs at least one strategy; resource indices must be in range.
    pub fn new(delays: Vec<Vec<f64>>, strategies: Vec<Vec<Vec<usize>>>) -> Self {
        let num_resources = delays.len();
        let n = strategies.len();
        assert!(n >= 1, "need at least one player");
        for (r, d) in delays.iter().enumerate() {
            assert!(
                d.len() >= n,
                "resource {r} needs a delay value for every load up to n={n}"
            );
        }
        for (i, strats) in strategies.iter().enumerate() {
            assert!(!strats.is_empty(), "player {i} needs at least one strategy");
            for strat in strats {
                for &r in strat {
                    assert!(r < num_resources, "player {i} references resource {r} out of range");
                }
            }
        }
        Self {
            num_resources,
            delays,
            strategies,
        }
    }

    /// A symmetric singleton congestion game ("load balancing"): `n` players each
    /// choose one of `m` identical machines with linear delay `d(k) = k·slope`.
    pub fn load_balancing(n: usize, m: usize, slope: f64) -> Self {
        let delays = (0..m)
            .map(|_| (1..=n).map(|k| slope * k as f64).collect())
            .collect();
        let strategies = (0..n)
            .map(|_| (0..m).map(|r| vec![r]).collect())
            .collect();
        Self::new(delays, strategies)
    }

    /// Number of resources.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Load (number of users) of every resource in `profile`.
    pub fn loads(&self, profile: &[usize]) -> Vec<usize> {
        let mut load = vec![0usize; self.num_resources];
        for (i, &s) in profile.iter().enumerate() {
            for &r in &self.strategies[i][s] {
                load[r] += 1;
            }
        }
        load
    }

    /// Cost (total delay) incurred by `player` in `profile`.
    pub fn cost(&self, player: usize, profile: &[usize]) -> f64 {
        let load = self.loads(profile);
        self.strategies[player][profile[player]]
            .iter()
            .map(|&r| self.delays[r][load[r] - 1])
            .sum()
    }
}

impl Game for CongestionGame {
    fn num_players(&self) -> usize {
        self.strategies.len()
    }

    fn num_strategies(&self, player: usize) -> usize {
        self.strategies[player].len()
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        -self.cost(player, profile)
    }
}

impl PotentialGame for CongestionGame {
    fn potential(&self, profile: &[usize]) -> f64 {
        let load = self.loads(profile);
        let mut phi = 0.0;
        for (r, &l) in load.iter().enumerate() {
            for k in 1..=l {
                phi += self.delays[r][k - 1];
            }
        }
        phi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{find_pure_nash_equilibria, verify_exact_potential};

    #[test]
    fn load_balancing_loads_and_costs() {
        let g = CongestionGame::load_balancing(3, 2, 1.0);
        // Players 0,1 on machine 0; player 2 on machine 1.
        let profile = [0, 0, 1];
        assert_eq!(g.loads(&profile), vec![2, 1]);
        assert_eq!(g.cost(0, &profile), 2.0);
        assert_eq!(g.cost(2, &profile), 1.0);
        assert_eq!(g.utility(0, &profile), -2.0);
    }

    #[test]
    fn rosenthal_potential_is_exact() {
        let g = CongestionGame::load_balancing(3, 3, 1.0);
        assert!(verify_exact_potential(&g, 1e-12));

        // An asymmetric game with multi-resource strategies.
        let delays = vec![vec![1.0, 3.0, 6.0], vec![2.0, 2.5, 3.0], vec![0.5, 4.0, 9.0]];
        let strategies = vec![
            vec![vec![0], vec![1, 2]],
            vec![vec![0, 1], vec![2]],
            vec![vec![1], vec![0, 2]],
        ];
        let g = CongestionGame::new(delays, strategies);
        assert!(verify_exact_potential(&g, 1e-12));
    }

    #[test]
    fn balanced_assignments_are_nash() {
        let g = CongestionGame::load_balancing(2, 2, 1.0);
        let nash = find_pure_nash_equilibria(&g);
        // The two perfectly balanced assignments are equilibria; the two
        // colliding assignments are not.
        assert!(nash.contains(&vec![0, 1]));
        assert!(nash.contains(&vec![1, 0]));
        assert!(!nash.contains(&vec![0, 0]));
        assert!(!nash.contains(&vec![1, 1]));
    }

    #[test]
    fn potential_by_enumeration_matches_formula() {
        let g = CongestionGame::load_balancing(4, 2, 2.0);
        // All on machine 0: Φ = 2+4+6+8 = 20.
        assert_eq!(g.potential(&[0, 0, 0, 0]), 20.0);
        // Balanced 2-2: Φ = (2+4)+(2+4) = 12.
        assert_eq!(g.potential(&[0, 0, 1, 1]), 12.0);
        assert_eq!(g.max_global_variation(), 8.0);
    }

    #[test]
    #[should_panic(expected = "delay value")]
    fn missing_delay_entries_rejected() {
        let _ = CongestionGame::new(vec![vec![1.0]], vec![vec![vec![0]], vec![vec![0]]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_resource_rejected() {
        let _ = CongestionGame::new(vec![vec![1.0, 2.0]], vec![vec![vec![1]], vec![vec![0]]]);
    }
}
