//! Rosenthal congestion games.
//!
//! The paper's related work (Asadpour–Saberi) studies hitting times of Nash
//! equilibria in congestion games; the experiment harness uses congestion games
//! as an additional family of potential games with tunable structure.
//!
//! A congestion game has a set of resources, each with a non-decreasing delay
//! function `d_r(k)` of the number `k` of players using it; a strategy of a
//! player is a subset of resources and her cost is the sum of the delays of her
//! chosen resources. Utilities are negated costs and the Rosenthal potential
//! `Φ(x) = Σ_r Σ_{k=1}^{load_r(x)} d_r(k)` is an exact potential in the paper's
//! cost convention.

use crate::game::{Game, PotentialGame};
use std::sync::OnceLock;

/// A congestion game in explicit form.
#[derive(Debug, Clone)]
pub struct CongestionGame {
    num_resources: usize,
    /// `delays[r][k-1]` is the delay of resource `r` when `k` players use it.
    delays: Vec<Vec<f64>>,
    /// `strategies[i][s]` is the set of resources (as indices) of strategy `s` of player `i`.
    strategies: Vec<Vec<Vec<usize>>>,
    /// Lazily computed `adjacency[i]`: the sorted players `j != i` that can
    /// share a resource with `i` under some strategy pair — the interaction
    /// neighbourhood backing the `LocalGame` impl. Derived from `strategies`;
    /// computed on first use because it is Θ(Σ_r |users(r)|²) and dense games
    /// (e.g. load balancing at large `n`) never need it to simulate.
    adjacency: OnceLock<Vec<Vec<usize>>>,
}

/// Equality is over the game data (`delays`, `strategies`); the lazily cached
/// adjacency is derived from them and deliberately excluded.
impl PartialEq for CongestionGame {
    fn eq(&self, other: &Self) -> bool {
        self.num_resources == other.num_resources
            && self.delays == other.delays
            && self.strategies == other.strategies
    }
}

impl CongestionGame {
    /// Creates a congestion game.
    ///
    /// * `delays[r]` must have one entry per possible load (i.e. at least `n` entries).
    /// * Every player needs at least one strategy; resource indices must be in
    ///   range, and a strategy is a *set* of resources — duplicates within one
    ///   strategy are rejected (the cost and potential formulas both count a
    ///   resource once).
    pub fn new(delays: Vec<Vec<f64>>, strategies: Vec<Vec<Vec<usize>>>) -> Self {
        let num_resources = delays.len();
        let n = strategies.len();
        assert!(n >= 1, "need at least one player");
        for (r, d) in delays.iter().enumerate() {
            assert!(
                d.len() >= n,
                "resource {r} needs a delay value for every load up to n={n}"
            );
        }
        // `seen[r]` holds the tag of the last strategy that listed `r`; a
        // repeat within one strategy means a duplicate resource.
        let mut seen = vec![usize::MAX; num_resources];
        let mut tag = 0usize;
        for (i, strats) in strategies.iter().enumerate() {
            assert!(!strats.is_empty(), "player {i} needs at least one strategy");
            for (s, strat) in strats.iter().enumerate() {
                for &r in strat {
                    assert!(
                        r < num_resources,
                        "player {i} references resource {r} out of range"
                    );
                    assert!(
                        seen[r] != tag,
                        "player {i} strategy {s} lists resource {r} twice (strategies are resource sets)"
                    );
                    seen[r] = tag;
                }
                tag += 1;
            }
        }
        Self {
            num_resources,
            delays,
            strategies,
            adjacency: OnceLock::new(),
        }
    }

    /// Builds the interaction adjacency: players are adjacent when some
    /// resource appears in a strategy of each.
    fn build_adjacency(&self) -> Vec<Vec<usize>> {
        let n = self.strategies.len();
        let mut users_of: Vec<Vec<usize>> = vec![Vec::new(); self.num_resources];
        for (i, strats) in self.strategies.iter().enumerate() {
            for strat in strats {
                for &r in strat {
                    if users_of[r].last() != Some(&i) {
                        users_of[r].push(i);
                    }
                }
            }
        }
        let mut adjacency: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); n];
        for users in &users_of {
            for &i in users {
                for &j in users {
                    if i != j {
                        adjacency[i].insert(j);
                    }
                }
            }
        }
        adjacency
            .into_iter()
            .map(|set| set.into_iter().collect())
            .collect()
    }

    /// A symmetric singleton congestion game ("load balancing"): `n` players each
    /// choose one of `m` identical machines with linear delay `d(k) = k·slope`.
    pub fn load_balancing(n: usize, m: usize, slope: f64) -> Self {
        let delays = (0..m)
            .map(|_| (1..=n).map(|k| slope * k as f64).collect())
            .collect();
        let strategies = (0..n).map(|_| (0..m).map(|r| vec![r]).collect()).collect();
        Self::new(delays, strategies)
    }

    /// Number of resources.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Load (number of users) of every resource in `profile`.
    pub fn loads(&self, profile: &[usize]) -> Vec<usize> {
        let mut load = vec![0usize; self.num_resources];
        for (i, &s) in profile.iter().enumerate() {
            for &r in &self.strategies[i][s] {
                load[r] += 1;
            }
        }
        load
    }

    /// The players that can share a resource with `player` (her interaction
    /// neighbourhood; see the `LocalGame` impl in [`crate::local`]).
    ///
    /// The full adjacency is computed on first call and cached; games that
    /// only simulate (which needs `utilities_for`, not neighbourhoods) never
    /// pay for it.
    pub fn interaction_neighbors(&self, player: usize) -> &[usize] {
        &self.adjacency.get_or_init(|| self.build_adjacency())[player]
    }

    /// Cost (total delay) incurred by `player` in `profile`.
    pub fn cost(&self, player: usize, profile: &[usize]) -> f64 {
        let load = self.loads(profile);
        self.strategies[player][profile[player]]
            .iter()
            .map(|&r| self.delays[r][load[r] - 1])
            .sum()
    }
}

impl Game for CongestionGame {
    fn num_players(&self) -> usize {
        self.strategies.len()
    }

    fn num_strategies(&self, player: usize) -> usize {
        self.strategies[player].len()
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        -self.cost(player, profile)
    }

    fn utilities_for(&self, player: usize, profile: &mut [usize], out: &mut [f64]) {
        self.utilities_readonly(player, profile, out);
    }
}

impl CongestionGame {
    /// The batch evaluation behind both `utilities_for` hooks: reads the
    /// profile immutably (loads are computed once with `player` removed,
    /// then every candidate strategy is priced against them:
    /// `O(n + Σ_s |strategy s|)` instead of the default's `O(m · n)`), so
    /// the parallel frozen-profile path can share it across workers.
    pub(crate) fn utilities_readonly(&self, player: usize, profile: &[usize], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.strategies[player].len());
        let mut load = self.loads(profile);
        for &r in &self.strategies[player][profile[player]] {
            load[r] -= 1;
        }
        for (slot, strat) in out.iter_mut().zip(&self.strategies[player]) {
            // Joining resource r raises its load to load[r] + 1, whose delay
            // lives at index load[r].
            *slot = -strat.iter().map(|&r| self.delays[r][load[r]]).sum::<f64>();
        }
    }
}

impl PotentialGame for CongestionGame {
    fn potential(&self, profile: &[usize]) -> f64 {
        let load = self.loads(profile);
        let mut phi = 0.0;
        for (r, &l) in load.iter().enumerate() {
            for k in 1..=l {
                phi += self.delays[r][k - 1];
            }
        }
        phi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{find_pure_nash_equilibria, verify_exact_potential};

    #[test]
    fn load_balancing_loads_and_costs() {
        let g = CongestionGame::load_balancing(3, 2, 1.0);
        // Players 0,1 on machine 0; player 2 on machine 1.
        let profile = [0, 0, 1];
        assert_eq!(g.loads(&profile), vec![2, 1]);
        assert_eq!(g.cost(0, &profile), 2.0);
        assert_eq!(g.cost(2, &profile), 1.0);
        assert_eq!(g.utility(0, &profile), -2.0);
    }

    #[test]
    fn rosenthal_potential_is_exact() {
        let g = CongestionGame::load_balancing(3, 3, 1.0);
        assert!(verify_exact_potential(&g, 1e-12));

        // An asymmetric game with multi-resource strategies.
        let delays = vec![
            vec![1.0, 3.0, 6.0],
            vec![2.0, 2.5, 3.0],
            vec![0.5, 4.0, 9.0],
        ];
        let strategies = vec![
            vec![vec![0], vec![1, 2]],
            vec![vec![0, 1], vec![2]],
            vec![vec![1], vec![0, 2]],
        ];
        let g = CongestionGame::new(delays, strategies);
        assert!(verify_exact_potential(&g, 1e-12));
    }

    #[test]
    fn balanced_assignments_are_nash() {
        let g = CongestionGame::load_balancing(2, 2, 1.0);
        let nash = find_pure_nash_equilibria(&g);
        // The two perfectly balanced assignments are equilibria; the two
        // colliding assignments are not.
        assert!(nash.contains(&vec![0, 1]));
        assert!(nash.contains(&vec![1, 0]));
        assert!(!nash.contains(&vec![0, 0]));
        assert!(!nash.contains(&vec![1, 1]));
    }

    #[test]
    fn potential_by_enumeration_matches_formula() {
        let g = CongestionGame::load_balancing(4, 2, 2.0);
        // All on machine 0: Φ = 2+4+6+8 = 20.
        assert_eq!(g.potential(&[0, 0, 0, 0]), 20.0);
        // Balanced 2-2: Φ = (2+4)+(2+4) = 12.
        assert_eq!(g.potential(&[0, 0, 1, 1]), 12.0);
        assert_eq!(g.max_global_variation(), 8.0);
    }

    #[test]
    #[should_panic(expected = "delay value")]
    fn missing_delay_entries_rejected() {
        let _ = CongestionGame::new(vec![vec![1.0]], vec![vec![vec![0]], vec![vec![0]]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_resource_rejected() {
        let _ = CongestionGame::new(vec![vec![1.0, 2.0]], vec![vec![vec![1]], vec![vec![0]]]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_resource_within_a_strategy_rejected() {
        // [0, 0] would make `utilities_for` and `utility` disagree on the
        // marginal load, so it is rejected up front.
        let _ = CongestionGame::new(
            vec![vec![1.0, 2.0], vec![1.0, 2.0]],
            vec![vec![vec![0, 0], vec![1]], vec![vec![1]]],
        );
    }

    #[test]
    fn same_resource_in_different_strategies_is_fine() {
        let g = CongestionGame::new(
            vec![vec![1.0, 2.0], vec![1.0, 2.0]],
            vec![vec![vec![0], vec![0, 1]], vec![vec![1]]],
        );
        assert_eq!(g.num_players(), 2);
        assert_eq!(g.interaction_neighbors(0), &[1]);
    }

    #[test]
    fn dense_game_construction_is_cheap_without_neighbourhood_queries() {
        // Every player shares machines with every other: the O(n^2) adjacency
        // must not be built unless asked for. 50k players construct instantly
        // and simulate through utilities_for; only neighbours would be dense.
        let n = 50_000;
        let g = CongestionGame::load_balancing(n, 2, 1.0);
        let mut profile = vec![0usize; n];
        let mut out = [0.0, 0.0];
        g.utilities_for(0, &mut profile, &mut out);
        assert_eq!(out[0], -(n as f64));
        assert_eq!(out[1], -1.0);
    }

    #[test]
    fn equality_ignores_the_adjacency_cache() {
        let a = CongestionGame::load_balancing(3, 2, 1.0);
        let b = CongestionGame::load_balancing(3, 2, 1.0);
        let _ = a.interaction_neighbors(0); // warm a's cache, not b's
        assert_eq!(a, b);
    }
}
