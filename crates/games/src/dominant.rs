//! Games with dominant strategies (Section 4).
//!
//! [`AllZeroDominantGame`] is the Theorem 4.3 construction: every player has `m`
//! strategies and utility `0` when **everybody** plays `0` and `-1` otherwise.
//! Strategy `0` is (weakly) dominant for every player, the dominant profile `0`
//! is the unique pure Nash equilibrium, and the game is also a potential game
//! with `Φ(x) = -u(x) ∈ {0, 1}` — which is what makes the `Ω(m^{n-1})`
//! bottleneck argument work.
//!
//! [`BonusDominantGame`] is a smoother dominant-strategy family used in tests and
//! experiments: player `i` receives a private bonus `bonus > 0` for playing `0`
//! on top of an arbitrary congestion-free base reward, making `0` strictly
//! dominant while keeping the game a potential game.

use crate::game::{Game, PotentialGame};

/// The Theorem 4.3 game: `u_i(x) = 0` if `x = (0,…,0)`, else `-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllZeroDominantGame {
    n: usize,
    m: usize,
}

impl AllZeroDominantGame {
    /// Creates the game with `n ≥ 2` players and `m ≥ 2` strategies per player.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n >= 2, "Theorem 4.3 needs n >= 2 players");
        assert!(m >= 2, "Theorem 4.3 needs m >= 2 strategies");
        Self { n, m }
    }

    /// Number of players.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Strategies per player.
    pub fn m(&self) -> usize {
        self.m
    }
}

impl Game for AllZeroDominantGame {
    fn num_players(&self) -> usize {
        self.n
    }

    fn num_strategies(&self, _player: usize) -> usize {
        self.m
    }

    fn utility(&self, _player: usize, profile: &[usize]) -> f64 {
        if profile.iter().all(|&x| x == 0) {
            0.0
        } else {
            -1.0
        }
    }
}

impl PotentialGame for AllZeroDominantGame {
    fn potential(&self, profile: &[usize]) -> f64 {
        if profile.iter().all(|&x| x == 0) {
            0.0
        } else {
            1.0
        }
    }

    fn max_global_variation(&self) -> f64 {
        1.0
    }
}

/// A strictly-dominant-strategy potential game: every player gets
/// `bonus · [x_i = 0]` and the (cost) potential is
/// `Φ(x) = bonus · #{i : x_i ≠ 0}`.
///
/// Unlike [`AllZeroDominantGame`], deviating players hurt only themselves, so the
/// chain mixes fast for every β — a useful contrast case for the Section 4
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BonusDominantGame {
    n: usize,
    m: usize,
    bonus: f64,
}

impl BonusDominantGame {
    /// Creates the game; `bonus` must be positive so strategy `0` is strictly dominant.
    pub fn new(n: usize, m: usize, bonus: f64) -> Self {
        assert!(
            n >= 1 && m >= 2,
            "need at least one player and two strategies"
        );
        assert!(bonus > 0.0, "the dominant-strategy bonus must be positive");
        Self { n, m, bonus }
    }

    /// The per-player bonus for playing the dominant strategy.
    pub fn bonus(&self) -> f64 {
        self.bonus
    }
}

impl Game for BonusDominantGame {
    fn num_players(&self) -> usize {
        self.n
    }

    fn num_strategies(&self, _player: usize) -> usize {
        self.m
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        if profile[player] == 0 {
            self.bonus
        } else {
            0.0
        }
    }
}

impl PotentialGame for BonusDominantGame {
    fn potential(&self, profile: &[usize]) -> f64 {
        self.bonus * profile.iter().filter(|&&x| x != 0).count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{
        find_dominant_profile, find_pure_nash_equilibria, is_dominant_strategy,
        verify_exact_potential,
    };

    #[test]
    fn all_zero_game_utilities() {
        let g = AllZeroDominantGame::new(3, 2);
        assert_eq!(g.utility(0, &[0, 0, 0]), 0.0);
        assert_eq!(g.utility(1, &[0, 1, 0]), -1.0);
        assert_eq!(g.utility(2, &[1, 1, 1]), -1.0);
        assert_eq!(g.num_profiles(), 8);
    }

    #[test]
    fn zero_is_weakly_dominant_for_everyone() {
        let g = AllZeroDominantGame::new(3, 3);
        for player in 0..3 {
            assert!(is_dominant_strategy(&g, player, 0));
            assert!(!is_dominant_strategy(&g, player, 1));
        }
        assert_eq!(find_dominant_profile(&g), Some(vec![0, 0, 0]));
    }

    #[test]
    fn all_zero_game_is_potential_game() {
        let g = AllZeroDominantGame::new(3, 3);
        assert!(verify_exact_potential(&g, 1e-12));
        assert_eq!(g.max_global_variation(), 1.0);
        assert_eq!(g.max_local_variation(), 1.0);
    }

    #[test]
    fn unique_nash_is_all_zero_profile() {
        let g = AllZeroDominantGame::new(2, 3);
        let nash = find_pure_nash_equilibria(&g);
        // All profiles except those reachable by improving to 0... in this game a
        // profile x != 0 with at least two non-zero entries is also a (weak) Nash
        // equilibrium because no single deviation restores the all-zero profile.
        assert!(nash.contains(&vec![0, 0]));
        // The dominant profile is the only profile with utility 0.
        assert_eq!(g.utility(0, &[0, 0]), 0.0);
    }

    #[test]
    fn bonus_game_is_strictly_dominant_potential() {
        let g = BonusDominantGame::new(4, 3, 1.5);
        assert!(verify_exact_potential(&g, 1e-12));
        for player in 0..4 {
            assert!(is_dominant_strategy(&g, player, 0));
        }
        assert_eq!(find_dominant_profile(&g), Some(vec![0, 0, 0, 0]));
        assert_eq!(g.potential(&[0, 0, 0, 0]), 0.0);
        assert_eq!(g.potential(&[1, 2, 0, 0]), 3.0);
        assert_eq!(g.max_global_variation(), 6.0);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn too_few_players_rejected() {
        let _ = AllZeroDominantGame::new(1, 2);
    }
}
