//! The Ising model as a strategic game.
//!
//! The paper's related-work discussion observes that the Ising model "can be seen
//! as a special graphical coordination game without risk dominant equilibria, and
//! the Glauber dynamics on the Ising model is equivalent to the logit dynamics".
//! [`IsingGame`] makes this concrete: players are vertices of a graph, strategies
//! `{0, 1}` map to spins `{-1, +1}`, and
//!
//! `u_i(x) = J · Σ_{j ∈ N(i)} σ_i σ_j + h · σ_i`
//!
//! with ferromagnetic coupling `J > 0` and external field `h`. The exact
//! potential (cost convention) is `Φ(x) = -J·Σ_{(u,v) ∈ E} σ_u σ_v - h·Σ_i σ_i`.
//!
//! With `h = 0` this is, up to a constant per-edge shift, the graphical
//! coordination game with `δ₀ = δ₁ = 2J` — the constant shift changes neither
//! the logit update probabilities nor the Gibbs measure.

use crate::game::{Game, PotentialGame};
use logit_graphs::{CsrGraph, Graph};

/// Ferromagnetic Ising model on a graph, viewed as a potential game.
#[derive(Debug, Clone)]
pub struct IsingGame {
    graph: Graph,
    /// Frozen CSR view of `graph`, iterated by the utility kernels.
    csr: CsrGraph,
    coupling: f64,
    field: f64,
}

/// Why an Ising description was rejected: the typed counterpart of the
/// constructor `assert!`s, for admission-time validation in service
/// contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsingError {
    /// The coupling `J` was not strictly positive (or not a number) — the
    /// paper's logit/Glauber correspondence is for the ferromagnetic case.
    NonPositiveCoupling,
    /// The graph had no vertices.
    NoSpins,
}

impl std::fmt::Display for IsingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsingError::NonPositiveCoupling => write!(f, "coupling J must be positive"),
            IsingError::NoSpins => write!(f, "need at least one spin"),
        }
    }
}

impl std::error::Error for IsingError {}

impl IsingGame {
    /// Creates an Ising game with coupling `J > 0` and external field `h`.
    ///
    /// # Panics
    /// Panics when `coupling <= 0` (the logit/Glauber correspondence in the paper
    /// is for the ferromagnetic case) or when the graph is empty. Use
    /// [`try_new`](Self::try_new) where the failure must be a value instead.
    pub fn new(graph: Graph, coupling: f64, field: f64) -> Self {
        match Self::try_new(graph, coupling, field) {
            Ok(game) => game,
            Err(e) => panic!("{e}"),
        }
    }

    /// The fallible form of [`new`](Self::new): `Err` with a typed
    /// [`IsingError`] instead of panicking on a malformed description.
    pub fn try_new(graph: Graph, coupling: f64, field: f64) -> Result<Self, IsingError> {
        if coupling.is_nan() || coupling <= 0.0 {
            return Err(IsingError::NonPositiveCoupling);
        }
        if graph.num_vertices() == 0 {
            return Err(IsingError::NoSpins);
        }
        let csr = CsrGraph::from_graph(&graph);
        Ok(Self {
            graph,
            csr,
            coupling,
            field,
        })
    }

    /// Zero-field Ising model.
    pub fn zero_field(graph: Graph, coupling: f64) -> Self {
        Self::new(graph, coupling, 0.0)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The frozen CSR view of the graph (built at construction).
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Coupling constant `J`.
    pub fn coupling(&self) -> f64 {
        self.coupling
    }

    /// External field `h`.
    pub fn field(&self) -> f64 {
        self.field
    }

    /// Spin value `σ ∈ {-1, +1}` of a strategy in `{0, 1}`.
    #[inline]
    pub fn spin(strategy: usize) -> f64 {
        match strategy {
            0 => -1.0,
            1 => 1.0,
            _ => panic!("Ising strategies are 0 and 1, got {strategy}"),
        }
    }

    /// Total magnetisation `Σ_i σ_i` of a profile.
    pub fn magnetization(&self, profile: &[usize]) -> f64 {
        profile.iter().map(|&x| Self::spin(x)).sum()
    }
}

impl Game for IsingGame {
    fn num_players(&self) -> usize {
        self.graph.num_vertices()
    }

    fn num_strategies(&self, _player: usize) -> usize {
        2
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        let si = Self::spin(profile[player]);
        let neighbour_sum: f64 = self
            .graph
            .neighbors(player)
            .iter()
            .map(|&j| Self::spin(profile[j]))
            .sum();
        self.coupling * si * neighbour_sum + self.field * si
    }

    fn utilities_for(&self, player: usize, profile: &mut [usize], out: &mut [f64]) {
        self.utilities_readonly(player, profile, out);
    }
}

impl IsingGame {
    /// The batch evaluation behind both `utilities_for` hooks: reads the
    /// profile immutably (the neighbour spin sum is shared by both candidate
    /// spins), so the parallel frozen-profile path can share it across
    /// workers. Iterates the CSR row and counts up-spins — the spin sum
    /// `2·ones − deg` is an exact integer in `f64`, so the counting kernel
    /// is bitwise equal to the former sequential `±1.0` accumulation.
    pub(crate) fn utilities_readonly(&self, player: usize, profile: &[usize], out: &mut [f64]) {
        let row = self.csr.neighbors(player);
        let ones: usize = row.iter().map(|&j| profile[j as usize]).sum();
        self.utilities_from_ones(row.len(), ones, out);
    }

    /// [`Self::utilities_readonly`] against a byte-packed strategy profile
    /// (the SoA buffer of the cache-blocked coloured sweeps), through the
    /// same counting kernel for bitwise agreement.
    pub(crate) fn utilities_readonly_bytes(&self, player: usize, profile: &[u8], out: &mut [f64]) {
        let row = self.csr.neighbors(player);
        let ones: usize = row.iter().map(|&j| profile[j as usize] as usize).sum();
        self.utilities_from_ones(row.len(), ones, out);
    }

    /// Shared kernel: neighbour spin sum from the up-spin count, then the
    /// two candidate utilities.
    #[inline]
    fn utilities_from_ones(&self, degree: usize, ones: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), 2);
        let neighbour_sum = (2 * ones as i64 - degree as i64) as f64;
        out[0] = -(self.coupling * neighbour_sum + self.field);
        out[1] = self.coupling * neighbour_sum + self.field;
    }
}

impl PotentialGame for IsingGame {
    fn potential(&self, profile: &[usize]) -> f64 {
        let edge_term: f64 = self
            .graph
            .edges()
            .map(|(u, v)| Self::spin(profile[u]) * Self::spin(profile[v]))
            .sum();
        -self.coupling * edge_term - self.field * self.magnetization(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::verify_exact_potential;
    use crate::coordination::CoordinationGame;
    use crate::graphical::GraphicalCoordinationGame;
    use logit_graphs::GraphBuilder;

    #[test]
    fn spins_and_magnetization() {
        assert_eq!(IsingGame::spin(0), -1.0);
        assert_eq!(IsingGame::spin(1), 1.0);
        let g = IsingGame::zero_field(GraphBuilder::ring(4), 1.0);
        assert_eq!(g.magnetization(&[1, 1, 0, 0]), 0.0);
        assert_eq!(g.magnetization(&[1, 1, 1, 1]), 4.0);
    }

    #[test]
    fn potential_is_exact() {
        let g = IsingGame::new(GraphBuilder::ring(4), 1.5, 0.3);
        assert!(verify_exact_potential(&g, 1e-9));
        let zf = IsingGame::zero_field(GraphBuilder::clique(4), 0.7);
        assert!(verify_exact_potential(&zf, 1e-9));
    }

    #[test]
    fn zero_field_ground_states_are_consensus() {
        let g = IsingGame::zero_field(GraphBuilder::ring(5), 1.0);
        let all_up = vec![1usize; 5];
        let all_down = vec![0usize; 5];
        let mixed = vec![1, 0, 1, 0, 1];
        assert_eq!(g.potential(&all_up), g.potential(&all_down));
        assert!(g.potential(&all_up) < g.potential(&mixed));
    }

    #[test]
    fn field_breaks_symmetry() {
        let g = IsingGame::new(GraphBuilder::ring(5), 1.0, 0.5);
        let all_up = vec![1usize; 5];
        let all_down = vec![0usize; 5];
        assert!(g.potential(&all_up) < g.potential(&all_down));
    }

    #[test]
    fn zero_field_matches_symmetric_graphical_coordination_up_to_constant() {
        // Ising with coupling J and the graphical coordination game with
        // δ0 = δ1 = 2J differ by the constant J per edge.
        let graph = GraphBuilder::ring(5);
        let j = 0.8;
        let ising = IsingGame::zero_field(graph.clone(), j);
        let coord =
            GraphicalCoordinationGame::new(graph.clone(), CoordinationGame::symmetric(2.0 * j));
        let shift = j * graph.num_edges() as f64;
        let space = ising.profile_space();
        let mut buf = vec![0usize; 5];
        for idx in space.indices() {
            space.write_profile(idx, &mut buf);
            let diff = ising.potential(&buf) - coord.potential(&buf);
            assert!(
                (diff - shift).abs() < 1e-12,
                "difference should be the constant per-edge shift"
            );
        }
        // In particular the global variation is identical.
        assert!((ising.max_global_variation() - coord.max_global_variation()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn antiferromagnetic_coupling_rejected() {
        let _ = IsingGame::zero_field(GraphBuilder::ring(3), -1.0);
    }
}
