//! Graphical coordination games (Section 5).
//!
//! `n` players sit on the vertices of a social graph `G`; every player picks a
//! single strategy in `{0, 1}` and plays the 2×2 basic coordination game with
//! each neighbour, collecting the sum of the payoffs. The potential is the sum
//! of the edge potentials, `Φ(x) = Σ_{(u,v) ∈ E} φ(x_u, x_v)`.
//!
//! The crate also exposes the closed-form clique potential used by Theorem 5.5:
//! on the clique the potential only depends on the number `k` of players playing
//! strategy 1, `Φ(k) = -( C(n-k,2)·δ₀ + C(k,2)·δ₁ )`, the maximum being attained
//! near `k* ≈ (n-1)·δ₀/(δ₀+δ₁) + ½`.

use crate::coordination::CoordinationGame;
use crate::game::{Game, PotentialGame};
use logit_graphs::{CsrGraph, Graph};

/// A graphical coordination game: one [`CoordinationGame`] per edge of a social graph.
#[derive(Debug, Clone)]
pub struct GraphicalCoordinationGame {
    graph: Graph,
    /// Frozen CSR view of `graph`: the utility kernels iterate this (two
    /// contiguous `u32` arrays) instead of the per-vertex `Vec`s, so a
    /// colour-class sweep reads one linear neighbour stream.
    csr: CsrGraph,
    base: CoordinationGame,
}

impl GraphicalCoordinationGame {
    /// Creates the game from a social graph and the basic 2×2 game.
    ///
    /// # Panics
    /// Panics when the graph has no vertices (a game needs at least one player).
    pub fn new(graph: Graph, base: CoordinationGame) -> Self {
        assert!(
            graph.num_vertices() > 0,
            "the social graph needs at least one player"
        );
        let csr = CsrGraph::from_graph(&graph);
        Self { graph, csr, base }
    }

    /// The underlying social graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The frozen CSR view of the social graph (built at construction).
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// The basic coordination game played on every edge.
    pub fn base(&self) -> &CoordinationGame {
        &self.base
    }

    /// `δ₀` of the basic game.
    pub fn delta0(&self) -> f64 {
        self.base.delta0()
    }

    /// `δ₁` of the basic game.
    pub fn delta1(&self) -> f64 {
        self.base.delta1()
    }

    /// Potential of the all-zeros profile: `-|E|·δ₀`.
    pub fn potential_all_zero(&self) -> f64 {
        -(self.graph.num_edges() as f64) * self.delta0()
    }

    /// Potential of the all-ones profile: `-|E|·δ₁`.
    pub fn potential_all_one(&self) -> f64 {
        -(self.graph.num_edges() as f64) * self.delta1()
    }
}

impl Game for GraphicalCoordinationGame {
    fn num_players(&self) -> usize {
        self.graph.num_vertices()
    }

    fn num_strategies(&self, _player: usize) -> usize {
        2
    }

    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        debug_assert_eq!(profile.len(), self.num_players());
        self.graph
            .neighbors(player)
            .iter()
            .map(|&j| self.base.payoff(profile[player], profile[j]))
            .sum()
    }

    fn utilities_for(&self, player: usize, profile: &mut [usize], out: &mut [f64]) {
        self.utilities_readonly(player, profile, out);
    }
}

impl GraphicalCoordinationGame {
    /// The batch evaluation behind both `utilities_for` hooks: reads the
    /// profile immutably (one pass over the neighbourhood serves both
    /// strategies — only the counts of neighbours on each side matter), so
    /// the parallel frozen-profile path can share it across workers.
    /// Iterates the CSR row — one contiguous `u32` stream per player.
    pub(crate) fn utilities_readonly(&self, player: usize, profile: &[usize], out: &mut [f64]) {
        let row = self.csr.neighbors(player);
        let ones: usize = row.iter().map(|&j| profile[j as usize]).sum();
        self.utilities_from_ones(row.len(), ones, out);
    }

    /// [`Self::utilities_readonly`] against a byte-packed strategy profile —
    /// the SoA buffer of the cache-blocked coloured sweeps. Identical
    /// arithmetic (same neighbour-count kernel), so the two hooks agree
    /// bitwise on corresponding profiles.
    pub(crate) fn utilities_readonly_bytes(&self, player: usize, profile: &[u8], out: &mut [f64]) {
        let row = self.csr.neighbors(player);
        let ones: usize = row.iter().map(|&j| profile[j as usize] as usize).sum();
        self.utilities_from_ones(row.len(), ones, out);
    }

    /// The shared counting kernel: only `(degree, #neighbours on 1)` enter
    /// the payoff sums, so every profile representation funnels through the
    /// same float expressions — the bitwise-agreement anchor of the
    /// relabelled byte engine.
    #[inline]
    fn utilities_from_ones(&self, degree: usize, ones: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), 2);
        let zeros = (degree - ones) as f64;
        let ones = ones as f64;
        out[0] = zeros * self.base.payoff(0, 0) + ones * self.base.payoff(0, 1);
        out[1] = zeros * self.base.payoff(1, 0) + ones * self.base.payoff(1, 1);
    }
}

impl PotentialGame for GraphicalCoordinationGame {
    fn potential(&self, profile: &[usize]) -> f64 {
        self.graph
            .edges()
            .map(|(u, v)| self.base.edge_potential(profile[u], profile[v]))
            .sum()
    }
}

/// Closed-form potential of the graphical coordination game on the **clique**
/// `K_n` as a function of the number `k` of players playing strategy 1
/// (Section 5.2).
pub fn clique_potential_by_count(n: usize, delta0: f64, delta1: f64, k: usize) -> f64 {
    assert!(k <= n, "count of 1-players cannot exceed n");
    let zeros = (n - k) as f64;
    let ones = k as f64;
    -(zeros * (zeros - 1.0) / 2.0 * delta0 + ones * (ones - 1.0) / 2.0 * delta1)
}

/// The count `k*` of 1-players at which the clique potential is maximised
/// (Section 5.2: the integer closest to `(n-1)·δ₀/(δ₀+δ₁) + ½`, clamped to `[0, n]`).
pub fn clique_argmax_count(n: usize, delta0: f64, delta1: f64) -> usize {
    let continuous = (n as f64 - 1.0) * delta0 / (delta0 + delta1) + 0.5;
    let mut best_k = continuous.round().clamp(0.0, n as f64) as usize;
    // Guard against rounding ties: check the two integer neighbours explicitly.
    let mut best_val = clique_potential_by_count(n, delta0, delta1, best_k);
    for cand in [best_k.saturating_sub(1), (best_k + 1).min(n)] {
        let v = clique_potential_by_count(n, delta0, delta1, cand);
        if v > best_val {
            best_val = v;
            best_k = cand;
        }
    }
    best_k
}

/// The barrier `Φ_max - Φ(1)` appearing in the Theorem 5.5 clique bound
/// (with the convention `δ₀ ≥ δ₁`, `1` is the *shallower* of the two equilibria).
pub fn clique_barrier(n: usize, delta0: f64, delta1: f64) -> f64 {
    let kstar = clique_argmax_count(n, delta0, delta1);
    let phimax = clique_potential_by_count(n, delta0, delta1, kstar);
    let phi_all_one = clique_potential_by_count(n, delta0, delta1, n);
    phimax - phi_all_one
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{find_pure_nash_equilibria, is_pure_nash, verify_exact_potential};
    use logit_graphs::GraphBuilder;

    fn ring_game(n: usize, d0: f64, d1: f64) -> GraphicalCoordinationGame {
        GraphicalCoordinationGame::new(GraphBuilder::ring(n), CoordinationGame::from_deltas(d0, d1))
    }

    #[test]
    fn utilities_sum_over_neighbours() {
        let g = ring_game(4, 3.0, 2.0);
        // Everyone plays 0: each player matches both neighbours at payoff a = 3.
        assert_eq!(g.utility(0, &[0, 0, 0, 0]), 6.0);
        // Player 0 deviates to 1: both its edges become mismatches with payoff d = 0.
        assert_eq!(g.utility(0, &[1, 0, 0, 0]), 0.0);
        // Its neighbour 1 still matches player 2 only.
        assert_eq!(g.utility(1, &[1, 0, 0, 0]), 3.0);
    }

    #[test]
    fn exact_potential_on_various_graphs() {
        for graph in [
            GraphBuilder::ring(4),
            GraphBuilder::path(4),
            GraphBuilder::clique(4),
            GraphBuilder::star(5),
        ] {
            let game =
                GraphicalCoordinationGame::new(graph, CoordinationGame::new(5.0, 4.0, 1.0, 2.0));
            assert!(verify_exact_potential(&game, 1e-9));
        }
    }

    #[test]
    fn consensus_profiles_are_nash() {
        let g = ring_game(5, 2.0, 2.0);
        assert!(is_pure_nash(&g, &[0, 0, 0, 0, 0]));
        assert!(is_pure_nash(&g, &[1, 1, 1, 1, 1]));
        assert!(!is_pure_nash(&g, &[1, 0, 0, 0, 0]));
    }

    #[test]
    fn ring_potential_extremes() {
        let g = ring_game(6, 3.0, 2.0);
        assert_eq!(g.potential(&[0; 6]), -18.0);
        assert_eq!(g.potential(&[1; 6]), -12.0);
        assert_eq!(g.potential_all_zero(), -18.0);
        assert_eq!(g.potential_all_one(), -12.0);
        // Mixed profile: only matching edges contribute.
        assert_eq!(g.potential(&[0, 0, 0, 1, 1, 1]), -3.0 * 2.0 - 2.0 * 2.0);
    }

    #[test]
    fn clique_closed_form_matches_enumeration() {
        let n = 5;
        let (d0, d1) = (3.0, 2.0);
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::clique(n),
            CoordinationGame::from_deltas(d0, d1),
        );
        let space = game.profile_space();
        let mut buf = vec![0usize; n];
        for idx in space.indices() {
            space.write_profile(idx, &mut buf);
            let k = buf.iter().filter(|&&x| x == 1).count();
            assert!(
                (game.potential(&buf) - clique_potential_by_count(n, d0, d1, k)).abs() < 1e-12,
                "closed form disagrees at k={k}"
            );
        }
    }

    #[test]
    fn clique_argmax_is_global_maximum() {
        for n in 2..9 {
            for (d0, d1) in [(1.0, 1.0), (3.0, 2.0), (5.0, 1.0)] {
                let kstar = clique_argmax_count(n, d0, d1);
                let vstar = clique_potential_by_count(n, d0, d1, kstar);
                for k in 0..=n {
                    assert!(
                        clique_potential_by_count(n, d0, d1, k) <= vstar + 1e-12,
                        "k={k} beats k*={kstar} for n={n}, d0={d0}, d1={d1}"
                    );
                }
            }
        }
    }

    #[test]
    fn clique_barrier_positive_and_grows_quadratically_without_risk_dominance() {
        // δ0 = δ1: barrier is Θ(n² δ) (Section 5.2 closing remark).
        let b4 = clique_barrier(4, 1.0, 1.0);
        let b8 = clique_barrier(8, 1.0, 1.0);
        assert!(b4 > 0.0);
        assert!(b8 / b4 > 3.0, "barrier should grow roughly quadratically");
    }

    #[test]
    fn nash_equilibria_on_small_clique() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::clique(3),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let nash = find_pure_nash_equilibria(&game);
        assert!(nash.contains(&vec![0, 0, 0]));
        assert!(nash.contains(&vec![1, 1, 1]));
        assert_eq!(nash.len(), 2);
    }
}
