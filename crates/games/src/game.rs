//! Core game traits.

use crate::profile::ProfileSpace;

/// A finite strategic game.
///
/// Players are `0..num_players()`, the strategies of player `i` are
/// `0..num_strategies(i)`, and `utility(i, x)` is player `i`'s payoff in profile
/// `x` (a slice of one strategy per player).
pub trait Game {
    /// Number of players `n`.
    fn num_players(&self) -> usize;

    /// Number of strategies of player `i`.
    fn num_strategies(&self, player: usize) -> usize;

    /// Utility (payoff) of `player` in `profile`.
    fn utility(&self, player: usize, profile: &[usize]) -> f64;

    /// Batch evaluation: writes `u_i(s, x_{-i})` for every strategy `s` of
    /// `player` into `out` (`out.len()` must equal `num_strategies(player)`).
    ///
    /// This is the hot hook of the simulation engine: the softmax logits of
    /// the logit update (eq. 2) need the utilities of *all* of a player's
    /// strategies with the opponents fixed, and computing them through
    /// repeated [`Game::utility`] calls forces either a cloned profile per
    /// call or `m` temporary mutations. The default implementation mutates
    /// `profile[player]` in place and restores it, so it allocates nothing;
    /// concrete games override it when they can share work across strategies
    /// (e.g. counting neighbour strategies once for all `s`).
    fn utilities_for(&self, player: usize, profile: &mut [usize], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.num_strategies(player));
        let saved = profile[player];
        for (s, slot) in out.iter_mut().enumerate() {
            profile[player] = s;
            *slot = self.utility(player, profile);
        }
        profile[player] = saved;
    }

    /// The profile space `S = S₁ × ⋯ × Sₙ` of the game.
    fn profile_space(&self) -> ProfileSpace {
        ProfileSpace::new(
            (0..self.num_players())
                .map(|i| self.num_strategies(i))
                .collect(),
        )
    }

    /// Largest strategy-set size `m = max_i |S_i|`.
    fn max_strategies(&self) -> usize {
        (0..self.num_players())
            .map(|i| self.num_strategies(i))
            .max()
            .unwrap_or(0)
    }

    /// Total number of profiles `|S|`.
    fn num_profiles(&self) -> usize {
        self.profile_space().size()
    }
}

/// An (exact) potential game.
///
/// The potential follows the paper's **cost convention** (eq. (1)):
/// `u_i(a, x_{-i}) - u_i(b, x_{-i}) = Φ(b, x_{-i}) - Φ(a, x_{-i})` — improving a
/// player's utility *decreases* the potential. Consequently the stationary
/// distribution of the logit dynamics is the Gibbs measure
/// `π(x) ∝ e^{-βΦ(x)}`, concentrated on potential *minimisers* as `β → ∞`.
pub trait PotentialGame: Game {
    /// Exact potential `Φ(x)` of the profile.
    fn potential(&self, profile: &[usize]) -> f64;

    /// Maximum global variation `ΔΦ = max Φ - min Φ` (Section 3.2).
    ///
    /// Default implementation enumerates the whole profile space; concrete games
    /// with closed forms may override it.
    fn max_global_variation(&self) -> f64 {
        let space = self.profile_space();
        let mut buf = vec![0usize; self.num_players()];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for idx in space.indices() {
            space.write_profile(idx, &mut buf);
            let phi = self.potential(&buf);
            lo = lo.min(phi);
            hi = hi.max(phi);
        }
        hi - lo
    }

    /// Maximum local variation
    /// `δΦ = max{Φ(x) - Φ(y) : d(x, y) = 1}` (Section 3.2).
    fn max_local_variation(&self) -> f64 {
        let space = self.profile_space();
        let mut buf = vec![0usize; self.num_players()];
        let mut nbr = vec![0usize; self.num_players()];
        let mut best: f64 = 0.0;
        for idx in space.indices() {
            space.write_profile(idx, &mut buf);
            let phi = self.potential(&buf);
            for (_, _, j) in space.deviations(idx) {
                space.write_profile(j, &mut nbr);
                let psi = self.potential(&nbr);
                best = best.max((phi - psi).abs());
            }
        }
        best
    }

    /// The minimum of the potential over all profiles.
    fn min_potential(&self) -> f64 {
        let space = self.profile_space();
        let mut buf = vec![0usize; self.num_players()];
        let mut lo = f64::INFINITY;
        for idx in space.indices() {
            space.write_profile(idx, &mut buf);
            lo = lo.min(self.potential(&buf));
        }
        lo
    }

    /// The maximum of the potential over all profiles.
    fn max_potential(&self) -> f64 {
        let space = self.profile_space();
        let mut buf = vec![0usize; self.num_players()];
        let mut hi = f64::NEG_INFINITY;
        for idx in space.indices() {
            space.write_profile(idx, &mut buf);
            hi = hi.max(self.potential(&buf));
        }
        hi
    }
}

/// Blanket helper: any `&G` where `G: Game` is a game (lets the analysis
/// functions take either owned games or references without extra generics).
impl<G: Game + ?Sized> Game for &G {
    fn num_players(&self) -> usize {
        (**self).num_players()
    }
    fn num_strategies(&self, player: usize) -> usize {
        (**self).num_strategies(player)
    }
    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        (**self).utility(player, profile)
    }
    fn utilities_for(&self, player: usize, profile: &mut [usize], out: &mut [f64]) {
        (**self).utilities_for(player, profile, out)
    }
}

impl<G: PotentialGame + ?Sized> PotentialGame for &G {
    fn potential(&self, profile: &[usize]) -> f64 {
        (**self).potential(profile)
    }
    fn max_global_variation(&self) -> f64 {
        (**self).max_global_variation()
    }
    fn max_local_variation(&self) -> f64 {
        (**self).max_local_variation()
    }
    fn min_potential(&self) -> f64 {
        (**self).min_potential()
    }
    fn max_potential(&self) -> f64 {
        (**self).max_potential()
    }
}

/// Shared-ownership games: a replica ensemble (e.g. parallel tempering) runs
/// many engines over *one* game; cloning an `Arc<G>` shares the payoff data
/// (for graphical games, the `O(n)` adjacency lists) instead of duplicating
/// it per replica. Every method is forwarded explicitly — like the `&G`
/// blanket impls above — so a game's batched `utilities_for` override and
/// its closed-form potential bounds survive the indirection instead of
/// falling back to the defaulted (enumerating) implementations.
impl<G: Game + ?Sized> Game for std::sync::Arc<G> {
    fn num_players(&self) -> usize {
        (**self).num_players()
    }
    fn num_strategies(&self, player: usize) -> usize {
        (**self).num_strategies(player)
    }
    fn utility(&self, player: usize, profile: &[usize]) -> f64 {
        (**self).utility(player, profile)
    }
    fn utilities_for(&self, player: usize, profile: &mut [usize], out: &mut [f64]) {
        (**self).utilities_for(player, profile, out)
    }
}

impl<G: PotentialGame + ?Sized> PotentialGame for std::sync::Arc<G> {
    fn potential(&self, profile: &[usize]) -> f64 {
        (**self).potential(profile)
    }
    fn max_global_variation(&self) -> f64 {
        (**self).max_global_variation()
    }
    fn max_local_variation(&self) -> f64 {
        (**self).max_local_variation()
    }
    fn min_potential(&self) -> f64 {
        (**self).min_potential()
    }
    fn max_potential(&self) -> f64 {
        (**self).max_potential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-rolled potential game used to exercise the default methods:
    /// two players, two strategies, Φ(x) = x₀ + 2·x₁, utilities u_i = -Φ.
    struct Toy;

    impl Game for Toy {
        fn num_players(&self) -> usize {
            2
        }
        fn num_strategies(&self, _player: usize) -> usize {
            2
        }
        fn utility(&self, _player: usize, profile: &[usize]) -> f64 {
            -(profile[0] as f64 + 2.0 * profile[1] as f64)
        }
    }

    impl PotentialGame for Toy {
        fn potential(&self, profile: &[usize]) -> f64 {
            profile[0] as f64 + 2.0 * profile[1] as f64
        }
    }

    #[test]
    fn default_space_and_counts() {
        let g = Toy;
        assert_eq!(g.num_profiles(), 4);
        assert_eq!(g.max_strategies(), 2);
        let sp = g.profile_space();
        assert_eq!(sp.size(), 4);
    }

    #[test]
    fn default_variations() {
        let g = Toy;
        assert_eq!(g.max_global_variation(), 3.0);
        assert_eq!(g.max_local_variation(), 2.0);
        assert_eq!(g.min_potential(), 0.0);
        assert_eq!(g.max_potential(), 3.0);
    }

    #[test]
    fn reference_impl_delegates() {
        let g = Toy;
        let r: &dyn PotentialGame = &g;
        assert_eq!(r.num_players(), 2);
        assert_eq!(r.potential(&[1, 1]), 3.0);
        // &G blanket impl
        let gref = &g;
        assert_eq!(gref.max_global_variation(), 3.0);
        assert_eq!(gref.max_local_variation(), 2.0);
        assert_eq!(gref.min_potential(), 0.0);
        assert_eq!(gref.max_potential(), 3.0);
    }

    #[test]
    fn arc_impl_forwards_overrides_not_defaults() {
        // n = 1000 binary players: the defaulted PotentialGame methods would
        // enumerate a 2^1000 profile space (the size computation alone
        // overflows), so this only returns if the Arc impl forwards the
        // game's closed-form override.
        let g = std::sync::Arc::new(crate::well::WellGame::new(1000, 2.0, 1.0));
        assert_eq!(g.max_global_variation(), 2.0);
        assert_eq!(g.num_players(), 1000);
        assert_eq!(g.num_strategies(0), 2);
        assert_eq!(g.potential(&vec![0usize; 1000]), -2.0);
        assert_eq!(g.utility(0, &vec![0usize; 1000]), 2.0);
        let mut profile = vec![0usize; 1000];
        let mut out = vec![0.0; 2];
        g.utilities_for(0, &mut profile, &mut out);
        assert_eq!(out[0], 2.0);
        // The small Toy game exercises the remaining forwarded methods.
        let toy = std::sync::Arc::new(Toy);
        assert_eq!(toy.max_local_variation(), 2.0);
        assert_eq!(toy.min_potential(), 0.0);
        assert_eq!(toy.max_potential(), 3.0);
    }
}
