//! Exact mixing-time computation.
//!
//! `t_mix(ε) = min{ t : max_x ‖Pᵗ(x,·) − π‖_TV ≤ ε }` (Section 2 of the paper).
//! The worst-case distance `d(t) = max_x ‖Pᵗ(x,·) − π‖_TV` is non-increasing in
//! `t`, so the mixing time can be found by exponential bracketing followed by
//! binary search, evaluating `d(t)` from the exact matrix power `Pᵗ` each time.
//! The cost is `O(|Ω|³ log t_mix)`, which is what makes exhaustive verification
//! of the paper's bounds feasible for the small games in the experiments.

use crate::chain::MarkovChain;
use crate::tv::total_variation_slices;
use logit_linalg::{Matrix, Vector};

/// Result of a mixing-time computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MixingTimeResult {
    /// The mixing time `t_mix(ε)` in steps.
    pub mixing_time: u64,
    /// The threshold `ε` used.
    pub epsilon: f64,
    /// Worst-case total variation distance at `t_mix` (≤ ε).
    pub distance_at_mixing: f64,
    /// Worst-case total variation distance at `t_mix - 1` (> ε), or `None`
    /// when the chain already mixes in a single step (or zero steps).
    pub distance_before: Option<f64>,
}

/// Worst-case (over starting states) total variation distance to stationarity
/// after exactly `t` steps: `d(t) = max_x ‖Pᵗ(x,·) − π‖_TV`.
pub fn distance_to_stationarity(chain: &MarkovChain, pi: &Vector, t: u64) -> f64 {
    let pt = chain.t_step_matrix(t);
    worst_row_distance(&pt, pi)
}

fn worst_row_distance(pt: &Matrix, pi: &Vector) -> f64 {
    (0..pt.nrows())
        .map(|x| total_variation_slices(pt.row(x), pi.as_slice()))
        .fold(0.0, f64::max)
}

/// Exact mixing time `t_mix(ε)`.
///
/// `max_time` caps the search (important for low-temperature chains whose mixing
/// time is astronomically large); when the cap is hit the function returns
/// `None` so callers can distinguish "didn't mix within the budget" from a real
/// value.
pub fn mixing_time(
    chain: &MarkovChain,
    pi: &Vector,
    epsilon: f64,
    max_time: u64,
) -> Option<MixingTimeResult> {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(max_time >= 1);

    // d(0) = max_x ||δ_x - π|| = 1 - min_x π(x) which is > ε in any non-trivial case,
    // but handle the trivial single-state chain gracefully.
    if chain.num_states() <= 1 {
        return Some(MixingTimeResult {
            mixing_time: 0,
            epsilon,
            distance_at_mixing: 0.0,
            distance_before: None,
        });
    }

    // Exponential bracketing: find the smallest power of two t with d(t) <= ε.
    let mut hi: u64 = 1;
    let mut d_hi = distance_to_stationarity(chain, pi, hi);
    if d_hi <= epsilon {
        return Some(MixingTimeResult {
            mixing_time: 1,
            epsilon,
            distance_at_mixing: d_hi,
            distance_before: None,
        });
    }
    let mut lo: u64 = 1; // d(lo) > ε invariant
    while d_hi > epsilon {
        lo = hi;
        if hi >= max_time {
            return None;
        }
        hi = (hi * 2).min(max_time);
        d_hi = distance_to_stationarity(chain, pi, hi);
        if hi == max_time && d_hi > epsilon {
            return None;
        }
    }

    // Binary search in (lo, hi]: d(lo) > ε ≥ d(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let d_mid = distance_to_stationarity(chain, pi, mid);
        if d_mid <= epsilon {
            hi = mid;
            d_hi = d_mid;
        } else {
            lo = mid;
        }
    }
    let distance_before = Some(distance_to_stationarity(chain, pi, lo));
    Some(MixingTimeResult {
        mixing_time: hi,
        epsilon,
        distance_at_mixing: d_hi,
        distance_before,
    })
}

/// Convenience wrapper with the standard `ε = 1/4`.
pub fn mixing_time_quarter(
    chain: &MarkovChain,
    pi: &Vector,
    max_time: u64,
) -> Option<MixingTimeResult> {
    mixing_time(chain, pi, crate::MIXING_EPSILON, max_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::stationary_distribution;

    fn two_state(p01: f64, p10: f64) -> MarkovChain {
        MarkovChain::new(Matrix::from_rows(&[
            vec![1.0 - p01, p01],
            vec![p10, 1.0 - p10],
        ]))
    }

    #[test]
    fn two_state_mixing_matches_closed_form() {
        // For the two-state chain, Pᵗ(x,·) - π decays as (1 - p01 - p10)ᵗ and
        // d(t) = max(π0, π1) ... more precisely d(t) = |1 - p01 - p10|ᵗ · max(π1, π0).
        let (p01, p10) = (0.2, 0.1);
        let chain = two_state(p01, p10);
        let pi = stationary_distribution(&chain);
        let lambda: f64 = 1.0 - p01 - p10;
        let d0 = pi[0].max(pi[1]);
        // Closed form: t_mix = min t with d0 * lambda^t <= 1/4.
        let expected = ((0.25f64 / d0).ln() / lambda.ln()).ceil() as u64;
        let result = mixing_time_quarter(&chain, &pi, 1 << 32).expect("must mix");
        assert_eq!(result.mixing_time, expected);
        assert!(result.distance_at_mixing <= 0.25);
        if let Some(before) = result.distance_before {
            assert!(before > 0.25);
        }
    }

    #[test]
    fn distance_is_monotone_non_increasing() {
        let chain = two_state(0.15, 0.25);
        let pi = stationary_distribution(&chain);
        let mut prev = f64::INFINITY;
        for t in 1..20 {
            let d = distance_to_stationarity(&chain, &pi, t);
            assert!(d <= prev + 1e-12, "d(t) must be non-increasing");
            prev = d;
        }
    }

    #[test]
    fn fast_chain_mixes_in_one_step() {
        // A chain that jumps straight to stationarity: all rows equal π.
        let pi_rows = vec![vec![0.3, 0.7], vec![0.3, 0.7]];
        let chain = MarkovChain::new(Matrix::from_rows(&pi_rows));
        let pi = stationary_distribution(&chain);
        let result = mixing_time_quarter(&chain, &pi, 100).unwrap();
        assert_eq!(result.mixing_time, 1);
        assert!(result.distance_before.is_none());
    }

    #[test]
    fn slow_chain_exceeds_budget() {
        // Nearly-absorbing chain with a tiny escape probability mixes very slowly.
        let chain = two_state(1e-9, 1e-9);
        let pi = stationary_distribution(&chain);
        assert_eq!(mixing_time_quarter(&chain, &pi, 1000), None);
    }

    #[test]
    fn single_state_chain_mixes_instantly() {
        let chain = MarkovChain::new(Matrix::from_rows(&[vec![1.0]]));
        let pi = stationary_distribution(&chain);
        let r = mixing_time_quarter(&chain, &pi, 10).unwrap();
        assert_eq!(r.mixing_time, 0);
    }

    #[test]
    fn smaller_epsilon_needs_more_time() {
        let chain = two_state(0.2, 0.15);
        let pi = stationary_distribution(&chain);
        let loose = mixing_time(&chain, &pi, 0.25, 1 << 20).unwrap().mixing_time;
        let tight = mixing_time(&chain, &pi, 0.01, 1 << 20).unwrap().mixing_time;
        assert!(tight >= loose);
        // And the standard log(1/ε) relation roughly holds: t(ε) ≤ t(1/4)·⌈log2(1/ε)⌉.
        assert!(tight <= loose * 7 + 7);
    }
}
