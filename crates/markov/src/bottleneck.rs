//! Bottleneck ratios and the Theorem 2.7 lower bound.
//!
//! For a set `R` of states with `π(R) ≤ ½`, the bottleneck ratio is
//! `B(R) = Q(R, R̄) / π(R)` where `Q(x, y) = π(x)P(x, y)`, and the mixing time
//! satisfies `t_mix(ε) ≥ (1 − 2ε) / (2 B(R))`.

use crate::chain::MarkovChain;
use logit_linalg::Vector;

/// Probability mass of a set of states.
pub fn set_mass(pi: &Vector, set: &[usize]) -> f64 {
    set.iter().map(|&x| pi[x]).sum()
}

/// Bottleneck ratio `B(R) = Q(R, R̄) / π(R)` of the set `R` (given as a list of
/// state indices).
///
/// # Panics
/// Panics when `R` is empty or has zero stationary mass.
pub fn bottleneck_ratio(chain: &MarkovChain, pi: &Vector, r: &[usize]) -> f64 {
    assert!(!r.is_empty(), "bottleneck set must be non-empty");
    let n = chain.num_states();
    let mut in_r = vec![false; n];
    for &x in r {
        assert!(x < n, "state {x} out of range");
        in_r[x] = true;
    }
    let mass = set_mass(pi, r);
    assert!(mass > 0.0, "bottleneck set has zero stationary mass");
    let mut flow = 0.0;
    for &x in r {
        for (y, &inside) in in_r.iter().enumerate() {
            if !inside {
                flow += chain.edge_measure(pi, x, y);
            }
        }
    }
    flow / mass
}

/// Theorem 2.7 lower bound: `t_mix(ε) ≥ (1 − 2ε)/(2·B(R))` for any `R` with
/// `π(R) ≤ ½`.
///
/// # Panics
/// Panics when `π(R) > ½ + 1e-9` since the theorem does not apply.
pub fn bottleneck_lower_bound(chain: &MarkovChain, pi: &Vector, r: &[usize], epsilon: f64) -> f64 {
    let mass = set_mass(pi, r);
    assert!(
        mass <= 0.5 + 1e-9,
        "bottleneck lower bound requires pi(R) <= 1/2, got {mass}"
    );
    let b = bottleneck_ratio(chain, pi, r);
    (1.0 - 2.0 * epsilon) / (2.0 * b)
}

/// Scans all "level sets below a threshold" of a scoring function and returns
/// the set with the smallest bottleneck ratio among those with mass ≤ ½.
///
/// `score` assigns a real value to every state (for potential games this is the
/// potential); the candidate sets are `{x : score(x) ≤ θ}` for every distinct
/// threshold θ. This matches how the paper's lower bounds pick their bottleneck
/// sets (sub-level sets of the potential around one equilibrium).
///
/// Returns `(set, ratio)`; `None` when no non-trivial candidate has mass ≤ ½.
pub fn best_level_set_bottleneck(
    chain: &MarkovChain,
    pi: &Vector,
    score: &[f64],
) -> Option<(Vec<usize>, f64)> {
    let n = chain.num_states();
    assert_eq!(score.len(), n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| score[a].partial_cmp(&score[b]).expect("finite scores"));

    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut current: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < n {
        // Add all states sharing the same threshold value at once.
        let theta = score[order[i]];
        while i < n && score[order[i]] == theta {
            current.push(order[i]);
            i += 1;
        }
        if current.len() == n {
            break; // the full space is never a valid bottleneck set
        }
        if set_mass(pi, &current) <= 0.5 + 1e-12 {
            let ratio = bottleneck_ratio(chain, pi, &current);
            if best.as_ref().map(|(_, r)| ratio < *r).unwrap_or(true) {
                best = Some((current.clone(), ratio));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixing::mixing_time_quarter;
    use crate::stationary::stationary_distribution;
    use logit_linalg::Matrix;

    fn two_state(p01: f64, p10: f64) -> MarkovChain {
        MarkovChain::new(Matrix::from_rows(&[
            vec![1.0 - p01, p01],
            vec![p10, 1.0 - p10],
        ]))
    }

    #[test]
    fn two_state_bottleneck_closed_form() {
        let chain = two_state(0.1, 0.3);
        let pi = stationary_distribution(&chain);
        // R = {0}: B(R) = π(0)P(0,1)/π(0) = P(0,1) = 0.1.
        let b = bottleneck_ratio(&chain, &pi, &[0]);
        assert!((b - 0.1).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_is_actually_below_mixing_time() {
        let chain = two_state(0.02, 0.05);
        let pi = stationary_distribution(&chain);
        let t_mix = mixing_time_quarter(&chain, &pi, 1 << 30)
            .unwrap()
            .mixing_time as f64;
        // π(0) = 5/7 > 1/2, so use R = {1}.
        let lb = bottleneck_lower_bound(&chain, &pi, &[1], 0.25);
        assert!(lb <= t_mix + 1.0, "lower bound {lb} vs mixing time {t_mix}");
        assert!(lb > 1.0, "bound should be non-trivial for a slow chain");
    }

    #[test]
    #[should_panic(expected = "pi(R) <= 1/2")]
    fn heavy_set_rejected_for_lower_bound() {
        let chain = two_state(0.02, 0.05);
        let pi = stationary_distribution(&chain);
        let _ = bottleneck_lower_bound(&chain, &pi, &[0], 0.25);
    }

    #[test]
    fn level_set_scan_finds_the_obvious_bottleneck() {
        // A 4-state chain shaped like two wells {0,1} and {2,3} with a weak link.
        let eps = 1e-3;
        let p = Matrix::from_rows(&[
            vec![0.5, 0.5, 0.0, 0.0],
            vec![0.5, 0.5 - eps, eps, 0.0],
            vec![0.0, eps, 0.5 - eps, 0.5],
            vec![0.0, 0.0, 0.5, 0.5],
        ]);
        let chain = MarkovChain::new(p);
        let pi = stationary_distribution(&chain);
        // Score states by which well they belong to.
        let score = vec![0.0, 0.0, 1.0, 1.0];
        let (set, ratio) = best_level_set_bottleneck(&chain, &pi, &score).unwrap();
        let mut sorted = set.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
        assert!(
            ratio < 0.01,
            "the weak link should yield a tiny ratio, got {ratio}"
        );
    }

    #[test]
    fn set_mass_sums_probabilities() {
        let pi = Vector::from_slice(&[0.1, 0.2, 0.3, 0.4]);
        assert!((set_mass(&pi, &[0, 3]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_set_rejected() {
        let chain = two_state(0.5, 0.5);
        let pi = stationary_distribution(&chain);
        let _ = bottleneck_ratio(&chain, &pi, &[]);
    }
}
