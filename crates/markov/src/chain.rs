//! Validated finite Markov chains.

use logit_linalg::{Matrix, Vector};

/// Tolerance used when validating stochasticity and detailed balance.
pub const STOCHASTIC_TOL: f64 = 1e-9;

/// A finite Markov chain given by a dense row-stochastic transition matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    p: Matrix,
}

impl MarkovChain {
    /// Wraps a transition matrix after validating that it is square and
    /// row-stochastic (within [`STOCHASTIC_TOL`]).
    ///
    /// # Panics
    /// Panics when the matrix is not a valid transition matrix.
    pub fn new(p: Matrix) -> Self {
        assert!(p.is_square(), "transition matrix must be square");
        assert!(
            p.is_row_stochastic(STOCHASTIC_TOL),
            "transition matrix must be row-stochastic"
        );
        Self { p }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.p.nrows()
    }

    /// The transition matrix.
    pub fn transition_matrix(&self) -> &Matrix {
        &self.p
    }

    /// Transition probability `P(x, y)`.
    pub fn prob(&self, x: usize, y: usize) -> f64 {
        self.p[(x, y)]
    }

    /// One distribution step: `μ ↦ μP`.
    pub fn step_distribution(&self, mu: &Vector) -> Vector {
        self.p.vecmat(mu)
    }

    /// The `t`-step transition matrix `Pᵗ`.
    pub fn t_step_matrix(&self, t: u64) -> Matrix {
        self.p.pow(t)
    }

    /// Returns `true` when every state can reach every other state
    /// (irreducibility), determined by BFS over the positive-probability edges.
    pub fn is_irreducible(&self) -> bool {
        let n = self.num_states();
        if n == 0 {
            return false;
        }
        // Strong connectivity of the directed graph with edges P(x,y) > 0.
        self.reachable_from(0).iter().all(|&r| r)
            && self.reachable_from_reverse(0).iter().all(|&r| r)
    }

    fn reachable_from(&self, start: usize) -> Vec<bool> {
        let n = self.num_states();
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(x) = stack.pop() {
            for (y, seen_y) in seen.iter_mut().enumerate() {
                if !*seen_y && self.p[(x, y)] > 0.0 {
                    *seen_y = true;
                    stack.push(y);
                }
            }
        }
        seen
    }

    fn reachable_from_reverse(&self, start: usize) -> Vec<bool> {
        let n = self.num_states();
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(x) = stack.pop() {
            for (y, seen_y) in seen.iter_mut().enumerate() {
                if !*seen_y && self.p[(y, x)] > 0.0 {
                    *seen_y = true;
                    stack.push(y);
                }
            }
        }
        seen
    }

    /// Returns `true` when the chain is aperiodic. For irreducible chains a
    /// single state with a self-loop suffices; otherwise the period is computed
    /// as the gcd of cycle-length differences found by BFS.
    pub fn is_aperiodic(&self) -> bool {
        let n = self.num_states();
        // Fast path: any self loop makes an irreducible chain aperiodic.
        if (0..n).any(|x| self.p[(x, x)] > 0.0) {
            return true;
        }
        self.period() == 1
    }

    /// Period of the chain: gcd over states of the possible return-time
    /// differences (1 means aperiodic). Only meaningful for irreducible chains.
    pub fn period(&self) -> u64 {
        let n = self.num_states();
        if n == 0 {
            return 0;
        }
        // BFS from state 0 assigning levels; every edge (x, y) contributes
        // |level[x] + 1 - level[y]| to the gcd.
        let mut level = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        level[0] = 0;
        queue.push_back(0);
        let mut g: u64 = 0;
        while let Some(x) = queue.pop_front() {
            for y in 0..n {
                if self.p[(x, y)] <= 0.0 {
                    continue;
                }
                if level[y] == usize::MAX {
                    level[y] = level[x] + 1;
                    queue.push_back(y);
                } else {
                    let diff = (level[x] as i64 + 1 - level[y] as i64).unsigned_abs();
                    if diff != 0 {
                        g = gcd(g, diff);
                    }
                }
            }
        }
        if g == 0 {
            // No cycles found from the BFS tree edges alone (e.g. a chain that is
            // not irreducible); report a period of 0 to signal "undefined".
            0
        } else {
            g
        }
    }

    /// Returns `true` when the chain is ergodic (irreducible and aperiodic).
    pub fn is_ergodic(&self) -> bool {
        self.is_irreducible() && self.is_aperiodic()
    }

    /// Checks the detailed-balance condition `π(x)P(x,y) = π(y)P(y,x)` for the
    /// given distribution, i.e. reversibility with respect to `π`.
    pub fn is_reversible(&self, pi: &Vector, tol: f64) -> bool {
        let n = self.num_states();
        assert_eq!(pi.len(), n);
        for x in 0..n {
            for y in (x + 1)..n {
                let forward = pi[x] * self.p[(x, y)];
                let backward = pi[y] * self.p[(y, x)];
                if (forward - backward).abs() > tol * forward.abs().max(backward.abs()).max(1e-300)
                    && (forward - backward).abs() > tol
                {
                    return false;
                }
            }
        }
        true
    }

    /// Edge stationary measure `Q(x, y) = π(x) P(x, y)` (Section 2).
    pub fn edge_measure(&self, pi: &Vector, x: usize, y: usize) -> f64 {
        pi[x] * self.p[(x, y)]
    }

    /// The lazy version of the chain: `(P + I) / 2`, always aperiodic.
    pub fn lazy(&self) -> MarkovChain {
        let n = self.num_states();
        let mut q = self.p.clone();
        q.scale(0.5);
        for i in 0..n {
            q[(i, i)] += 0.5;
        }
        MarkovChain::new(q)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if a == 0 {
        b
    } else if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(p01: f64, p10: f64) -> MarkovChain {
        MarkovChain::new(Matrix::from_rows(&[
            vec![1.0 - p01, p01],
            vec![p10, 1.0 - p10],
        ]))
    }

    #[test]
    fn validation_accepts_stochastic_rejects_other() {
        let _ = two_state(0.3, 0.6);
    }

    #[test]
    #[should_panic(expected = "row-stochastic")]
    fn validation_rejects_bad_rows() {
        let _ = MarkovChain::new(Matrix::from_rows(&[vec![0.5, 0.6], vec![0.5, 0.5]]));
    }

    #[test]
    fn irreducibility_and_aperiodicity() {
        let ergodic = two_state(0.3, 0.6);
        assert!(ergodic.is_irreducible());
        assert!(ergodic.is_aperiodic());
        assert!(ergodic.is_ergodic());

        // Absorbing chain: not irreducible.
        let absorbing = MarkovChain::new(Matrix::from_rows(&[vec![1.0, 0.0], vec![0.5, 0.5]]));
        assert!(!absorbing.is_irreducible());

        // Deterministic 2-cycle: irreducible but periodic with period 2.
        let cycle = MarkovChain::new(Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]));
        assert!(cycle.is_irreducible());
        assert!(!cycle.is_aperiodic());
        assert_eq!(cycle.period(), 2);
        // Its lazy version is aperiodic.
        assert!(cycle.lazy().is_ergodic());
    }

    #[test]
    fn period_of_3_cycle() {
        let p = MarkovChain::new(Matrix::from_rows(&[
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ]));
        assert_eq!(p.period(), 3);
        assert!(!p.is_aperiodic());
    }

    #[test]
    fn step_distribution_and_powers() {
        let c = two_state(0.5, 0.5);
        let mu = Vector::from_slice(&[1.0, 0.0]);
        let one = c.step_distribution(&mu);
        assert_eq!(one.as_slice(), &[0.5, 0.5]);
        let p2 = c.t_step_matrix(2);
        assert!(p2.is_row_stochastic(1e-12));
    }

    #[test]
    fn reversibility_of_birth_death_chain() {
        // Simple random walk with holding on 3 states is reversible w.r.t. uniform.
        let p = MarkovChain::new(Matrix::from_rows(&[
            vec![0.5, 0.5, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.0, 0.5, 0.5],
        ]));
        let uniform = Vector::filled(3, 1.0 / 3.0);
        assert!(p.is_reversible(&uniform, 1e-12));

        // A chain that is *not* reversible w.r.t. uniform.
        let q = MarkovChain::new(Matrix::from_rows(&[
            vec![0.0, 0.9, 0.1],
            vec![0.1, 0.0, 0.9],
            vec![0.9, 0.1, 0.0],
        ]));
        assert!(!q.is_reversible(&uniform, 1e-12));
    }

    #[test]
    fn edge_measure_symmetric_for_reversible() {
        let c = two_state(0.3, 0.6);
        // stationary: pi = (2/3, 1/3)
        let pi = Vector::from_slice(&[2.0 / 3.0, 1.0 / 3.0]);
        let q01 = c.edge_measure(&pi, 0, 1);
        let q10 = c.edge_measure(&pi, 1, 0);
        assert!((q01 - q10).abs() < 1e-12);
    }
}
