//! Spectral analysis of reversible chains.
//!
//! For a chain reversible w.r.t. `π`, the matrix
//! `A = D^{1/2} P D^{-1/2}` (`D = diag(π)`) is symmetric and has the same
//! eigenvalues as `P`; its spectrum gives the relaxation time
//! `t_rel = 1/(1 - λ*)` and, through Theorem 2.3, two-sided bounds on the mixing
//! time:
//!
//! `(t_rel − 1)·log(1/2ε) ≤ t_mix(ε) ≤ t_rel·log(1/(ε·π_min))`.

use crate::chain::MarkovChain;
use logit_linalg::{jacobi_eigen, JacobiOptions, Matrix, Vector};

/// Summary of the spectrum of a reversible chain.
#[derive(Debug, Clone)]
pub struct SpectralSummary {
    /// All eigenvalues in non-increasing order (λ₁ = 1 first).
    pub eigenvalues: Vec<f64>,
    /// Second-largest eigenvalue λ₂.
    pub lambda_2: f64,
    /// Smallest eigenvalue λ_|Ω|.
    pub lambda_min: f64,
    /// `λ* = max(|λ₂|, |λ_min|)` — the quantity controlling the relaxation time.
    pub lambda_star: f64,
    /// Relaxation time `1/(1 − λ*)`.
    pub relaxation_time: f64,
    /// Spectral gap `1 − λ₂`.
    pub spectral_gap: f64,
}

impl SpectralSummary {
    /// Theorem 2.3 lower bound on `t_mix(ε)`: `(t_rel − 1)·log(1/2ε)`.
    pub fn mixing_time_lower_bound(&self, epsilon: f64) -> f64 {
        (self.relaxation_time - 1.0) * (1.0 / (2.0 * epsilon)).ln()
    }

    /// Theorem 2.3 upper bound on `t_mix(ε)`: `t_rel·log(1/(ε·π_min))`.
    pub fn mixing_time_upper_bound(&self, epsilon: f64, pi_min: f64) -> f64 {
        self.relaxation_time * (1.0 / (epsilon * pi_min)).ln()
    }
}

/// Computes the full spectrum of a chain that is reversible with respect to `pi`.
///
/// # Panics
/// Panics when `pi` has non-positive entries (the symmetrisation needs
/// `√(π(x)/π(y))`) or when the chain fails the detailed-balance check by a wide
/// margin, since the symmetrisation would then silently analyse a different
/// matrix.
pub fn spectral_analysis(chain: &MarkovChain, pi: &Vector) -> SpectralSummary {
    let n = chain.num_states();
    assert_eq!(pi.len(), n);
    assert!(
        pi.as_slice().iter().all(|&p| p > 0.0),
        "stationary distribution must be strictly positive for spectral analysis"
    );
    assert!(
        chain.is_reversible(pi, 1e-6),
        "spectral_analysis requires a reversible chain"
    );

    let p = chain.transition_matrix();
    // A(x,y) = sqrt(pi_x / pi_y) * P(x,y); symmetric by detailed balance.
    let mut a = Matrix::zeros(n, n);
    for x in 0..n {
        for y in 0..n {
            a[(x, y)] = (pi[x] / pi[y]).sqrt() * p[(x, y)];
        }
    }
    // Average out any residual asymmetry from floating point noise.
    let a_sym = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));

    let eig = jacobi_eigen(&a_sym, JacobiOptions::default());
    let eigenvalues = eig.eigenvalues;
    let lambda_2 = if n >= 2 { eigenvalues[1] } else { 1.0 };
    let lambda_min = *eigenvalues.last().expect("non-empty spectrum");
    let lambda_star = if n >= 2 {
        eigenvalues[1..]
            .iter()
            .fold(0.0f64, |acc, &l| acc.max(l.abs()))
    } else {
        0.0
    };
    let spectral_gap = 1.0 - lambda_2;
    let relaxation_time = if lambda_star >= 1.0 {
        f64::INFINITY
    } else {
        1.0 / (1.0 - lambda_star)
    };
    SpectralSummary {
        eigenvalues,
        lambda_2,
        lambda_min,
        lambda_star,
        spectral_gap,
        relaxation_time,
    }
}

/// Relaxation time `t_rel = 1/(1 − λ*)` of a reversible chain.
pub fn relaxation_time(chain: &MarkovChain, pi: &Vector) -> f64 {
    spectral_analysis(chain, pi).relaxation_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixing::mixing_time_quarter;
    use crate::stationary::stationary_distribution;

    fn two_state(p01: f64, p10: f64) -> MarkovChain {
        MarkovChain::new(Matrix::from_rows(&[
            vec![1.0 - p01, p01],
            vec![p10, 1.0 - p10],
        ]))
    }

    #[test]
    fn two_state_spectrum_closed_form() {
        let (p01, p10) = (0.2, 0.3);
        let chain = two_state(p01, p10);
        let pi = stationary_distribution(&chain);
        let s = spectral_analysis(&chain, &pi);
        assert!((s.eigenvalues[0] - 1.0).abs() < 1e-9);
        assert!((s.lambda_2 - (1.0 - p01 - p10)).abs() < 1e-9);
        assert!((s.relaxation_time - 1.0 / (p01 + p10)).abs() < 1e-9);
        assert!((s.spectral_gap - (p01 + p10)).abs() < 1e-9);
    }

    #[test]
    fn lazy_random_walk_on_cycle_has_known_gap() {
        // Lazy random walk on the 4-cycle: eigenvalues (1 + cos(2πk/4)) / 2.
        let n = 4;
        let mut p = Matrix::zeros(n, n);
        for x in 0..n {
            p[(x, x)] = 0.5;
            p[(x, (x + 1) % n)] = 0.25;
            p[(x, (x + n - 1) % n)] = 0.25;
        }
        let chain = MarkovChain::new(p);
        let pi = Vector::filled(n, 0.25);
        let s = spectral_analysis(&chain, &pi);
        assert!((s.lambda_2 - 0.5).abs() < 1e-9);
        assert!((s.lambda_min - 0.0).abs() < 1e-9);
        assert!((s.relaxation_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_2_3_sandwiches_true_mixing_time() {
        let chain = two_state(0.1, 0.05);
        let pi = stationary_distribution(&chain);
        let s = spectral_analysis(&chain, &pi);
        let t_mix = mixing_time_quarter(&chain, &pi, 1 << 30)
            .unwrap()
            .mixing_time as f64;
        let lower = s.mixing_time_lower_bound(0.25);
        let upper = s.mixing_time_upper_bound(0.25, pi.min());
        assert!(
            lower <= t_mix + 1.0,
            "spectral lower bound {lower} exceeds measured mixing time {t_mix}"
        );
        assert!(
            t_mix <= upper + 1.0,
            "measured mixing time {t_mix} exceeds spectral upper bound {upper}"
        );
    }

    #[test]
    #[should_panic(expected = "reversible")]
    fn non_reversible_chain_rejected() {
        let chain = MarkovChain::new(Matrix::from_rows(&[
            vec![0.0, 0.9, 0.1],
            vec![0.1, 0.0, 0.9],
            vec![0.9, 0.1, 0.0],
        ]));
        let pi = Vector::filled(3, 1.0 / 3.0);
        let _ = spectral_analysis(&chain, &pi);
    }

    #[test]
    fn relaxation_time_helper_matches_summary() {
        let chain = two_state(0.25, 0.25);
        let pi = stationary_distribution(&chain);
        assert!((relaxation_time(&chain, &pi) - 2.0).abs() < 1e-9);
    }
}
