//! Stationary distributions of finite Markov chains.

use crate::chain::MarkovChain;
use crate::tv::total_variation;
use logit_linalg::{LuDecomposition, Matrix, Vector};

/// Computes the stationary distribution by solving the linear system
/// `πP = π`, `Σπ = 1` directly (replace one balance equation with the
/// normalisation constraint and solve with LU).
///
/// This works for any ergodic chain, reversible or not, at `O(|Ω|³)` cost.
///
/// # Panics
/// Panics when the resulting linear system is singular, which for a validated
/// transition matrix means the chain is not irreducible.
pub fn stationary_distribution(chain: &MarkovChain) -> Vector {
    let n = chain.num_states();
    assert!(n > 0, "empty chain has no stationary distribution");
    // Build Aᵀ where A = Pᵀ - I with the last row replaced by all ones.
    let p = chain.transition_matrix();
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            // (Pᵀ - I)[i][j] = P[j][i] - δ_ij
            a[(i, j)] = p[(j, i)] - if i == j { 1.0 } else { 0.0 };
        }
    }
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b = Vector::zeros(n);
    b[n - 1] = 1.0;
    let lu =
        LuDecomposition::new(&a).expect("stationary system is singular; is the chain irreducible?");
    let mut pi = lu.solve(&b);
    // Numerical cleanup: clamp tiny negatives and renormalise.
    for i in 0..n {
        if pi[i] < 0.0 {
            assert!(
                pi[i] > -1e-9,
                "stationary solve produced a significantly negative mass"
            );
            pi[i] = 0.0;
        }
    }
    pi.normalize_l1();
    pi
}

/// Computes the stationary distribution by iterating `μ ← μP` until the total
/// variation change drops below `tol` (or `max_iters` is hit).
///
/// Returns `(π, iterations, converged)`.
pub fn stationary_power_method(
    chain: &MarkovChain,
    max_iters: usize,
    tol: f64,
) -> (Vector, usize, bool) {
    let n = chain.num_states();
    let mut mu = Vector::filled(n, 1.0 / n as f64);
    for it in 0..max_iters {
        let next = chain.step_distribution(&mu);
        let delta = total_variation(&mu, &next);
        mu = next;
        if delta < tol {
            return (mu, it + 1, true);
        }
    }
    (mu, max_iters, false)
}

/// Verifies that `pi` is stationary for the chain: `‖πP − π‖_∞ ≤ tol`.
pub fn is_stationary(chain: &MarkovChain, pi: &Vector, tol: f64) -> bool {
    let next = chain.step_distribution(pi);
    (&next - pi).norm_inf() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(p01: f64, p10: f64) -> MarkovChain {
        MarkovChain::new(Matrix::from_rows(&[
            vec![1.0 - p01, p01],
            vec![p10, 1.0 - p10],
        ]))
    }

    #[test]
    fn two_state_closed_form() {
        let chain = two_state(0.2, 0.3);
        let pi = stationary_distribution(&chain);
        // π = (p10, p01) / (p01 + p10) = (0.6, 0.4)
        assert!((pi[0] - 0.6).abs() < 1e-10);
        assert!((pi[1] - 0.4).abs() < 1e-10);
        assert!(is_stationary(&chain, &pi, 1e-10));
    }

    #[test]
    fn power_method_agrees_with_direct_solve() {
        let chain = MarkovChain::new(Matrix::from_rows(&[
            vec![0.5, 0.3, 0.2],
            vec![0.1, 0.6, 0.3],
            vec![0.4, 0.1, 0.5],
        ]));
        let direct = stationary_distribution(&chain);
        let (iterative, _, converged) = stationary_power_method(&chain, 100_000, 1e-14);
        assert!(converged);
        assert!(total_variation(&direct, &iterative) < 1e-9);
        assert!(direct.is_distribution(1e-9));
    }

    #[test]
    fn uniform_is_stationary_for_doubly_stochastic() {
        let chain = MarkovChain::new(Matrix::from_rows(&[
            vec![0.0, 0.5, 0.5],
            vec![0.5, 0.0, 0.5],
            vec![0.5, 0.5, 0.0],
        ]));
        let pi = stationary_distribution(&chain);
        for i in 0..3 {
            assert!((pi[i] - 1.0 / 3.0).abs() < 1e-10);
        }
    }

    #[test]
    fn random_walk_on_path_weights_by_degree() {
        // Random walk on the path 0-1-2: stationary ∝ degree = (1, 2, 1).
        let chain = MarkovChain::new(Matrix::from_rows(&[
            vec![0.0, 1.0, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.0, 1.0, 0.0],
        ]));
        // Periodic, so the power method may not converge, but the direct solve works.
        let pi = stationary_distribution(&chain);
        assert!((pi[0] - 0.25).abs() < 1e-10);
        assert!((pi[1] - 0.5).abs() < 1e-10);
        assert!((pi[2] - 0.25).abs() < 1e-10);
    }

    #[test]
    fn power_method_reports_non_convergence() {
        // Deterministic 2-cycle never converges from the uniform start?  Actually
        // uniform is stationary, so use a biased chain with a tiny number of iterations.
        let chain = two_state(0.5, 0.1);
        let (_, iters, converged) = stationary_power_method(&chain, 2, 1e-16);
        assert_eq!(iters, 2);
        assert!(!converged);
    }
}
