//! Total variation distance.

use logit_linalg::Vector;

/// Total variation distance
/// `‖μ − ν‖_TV = ½ Σ_x |μ(x) − ν(x)|` between two distributions.
///
/// # Panics
/// Panics when the vectors have different lengths.
pub fn total_variation(mu: &Vector, nu: &Vector) -> f64 {
    assert_eq!(mu.len(), nu.len(), "total_variation: length mismatch");
    0.5 * mu
        .as_slice()
        .iter()
        .zip(nu.as_slice())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Total variation distance computed directly from slices (avoids constructing
/// `Vector`s when the caller already has rows of a matrix).
pub fn total_variation_slices(mu: &[f64], nu: &[f64]) -> f64 {
    assert_eq!(mu.len(), nu.len(), "total_variation: length mismatch");
    0.5 * mu.iter().zip(nu).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let mu = Vector::from_slice(&[0.25, 0.25, 0.5]);
        assert_eq!(total_variation(&mu, &mu), 0.0);
    }

    #[test]
    fn disjoint_supports_have_distance_one() {
        let mu = Vector::from_slice(&[1.0, 0.0]);
        let nu = Vector::from_slice(&[0.0, 1.0]);
        assert_eq!(total_variation(&mu, &nu), 1.0);
    }

    #[test]
    fn hand_computed_example() {
        let mu = Vector::from_slice(&[0.5, 0.3, 0.2]);
        let nu = Vector::from_slice(&[0.2, 0.5, 0.3]);
        // 0.5 * (0.3 + 0.2 + 0.1) = 0.3
        assert!((total_variation(&mu, &nu) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn symmetry_and_triangle_inequality() {
        let a = Vector::from_slice(&[0.7, 0.2, 0.1]);
        let b = Vector::from_slice(&[0.1, 0.6, 0.3]);
        let c = Vector::from_slice(&[0.3, 0.3, 0.4]);
        assert_eq!(total_variation(&a, &b), total_variation(&b, &a));
        assert!(
            total_variation(&a, &c) <= total_variation(&a, &b) + total_variation(&b, &c) + 1e-12
        );
    }

    #[test]
    fn slice_version_matches_vector_version() {
        let mu = [0.5, 0.25, 0.25];
        let nu = [0.1, 0.4, 0.5];
        assert_eq!(
            total_variation_slices(&mu, &nu),
            total_variation(&Vector::from_slice(&mu), &Vector::from_slice(&nu))
        );
    }

    #[test]
    fn bounded_by_one_for_distributions() {
        let mu = Vector::from_slice(&[0.9, 0.1, 0.0, 0.0]);
        let nu = Vector::from_slice(&[0.0, 0.0, 0.5, 0.5]);
        let d = total_variation(&mu, &nu);
        assert!(d <= 1.0 + 1e-12);
        assert!((d - 1.0).abs() < 1e-12);
    }
}
