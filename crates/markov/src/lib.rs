//! # logit-markov
//!
//! Finite Markov-chain machinery used to analyse the logit dynamics exactly.
//!
//! The crate mirrors the toolbox of Section 2 of the paper:
//!
//! * [`chain::MarkovChain`] — a validated row-stochastic transition matrix with
//!   irreducibility/aperiodicity/reversibility checks,
//! * [`stationary`] — stationary distributions (power method and direct linear
//!   solve),
//! * [`tv`] — total variation distance,
//! * [`mixing`] — the exact mixing time `t_mix(ε) = min{t : max_x ‖Pᵗ(x,·) − π‖_TV ≤ ε}`
//!   computed by matrix powers with bracketing + binary search,
//! * [`spectral`] — the spectrum of reversible chains via the symmetrised matrix
//!   `D^{1/2} P D^{-1/2}`, the relaxation time `t_rel = 1/(1-λ*)` and the
//!   Theorem 2.3 sandwich between relaxation and mixing time,
//! * [`bottleneck`] — bottleneck ratios `B(R) = Q(R, R̄)/π(R)` and the Theorem 2.7
//!   lower bound,
//! * [`hitting`] — expected hitting times of target sets (the quantity studied by
//!   the related work of Asadpour–Saberi and Montanari–Saberi),
//! * [`coupling`] — generic machinery for simulating coupled chains and turning
//!   coupling-time tail bounds into mixing-time upper estimates (Theorem 2.1),
//! * [`product`] — tensor-product chains, replica-swap kernels and product
//!   measures: the exact objects a parallel-tempering round composes, used to
//!   validate the swap kernel of `logit-core`'s `TemperingEnsemble`.

pub mod bottleneck;
pub mod chain;
pub mod coupling;
pub mod hitting;
pub mod mixing;
pub mod product;
pub mod spectral;
pub mod stationary;
pub mod tv;

pub use bottleneck::{bottleneck_lower_bound, bottleneck_ratio};
pub use chain::MarkovChain;
pub use coupling::{coupling_mixing_upper_bound, simulate_coupling, CouplingEstimate};
pub use hitting::expected_hitting_times;
pub use mixing::{distance_to_stationarity, mixing_time, MixingTimeResult};
pub use product::{
    compose, pair_index, pair_of, product_distribution, swap_chain, tensor_product_chain,
};
pub use spectral::{relaxation_time, spectral_analysis, SpectralSummary};
pub use stationary::{stationary_distribution, stationary_power_method};
pub use tv::total_variation;

/// The conventional mixing-time threshold `ε = 1/4` (Section 2).
pub const MIXING_EPSILON: f64 = 0.25;
