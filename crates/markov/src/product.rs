//! Product chains and replica-swap kernels — the exact machinery behind
//! parallel tempering.
//!
//! A replica-exchange (parallel-tempering) round on two replicas composes two
//! kernels on the *product* state space `S × S`:
//!
//! 1. the **tensor step** [`tensor_product_chain`]: both replicas take one
//!    independent step of their own chain, `P((x₁,y₁),(x₂,y₂)) =
//!    A(x₁,x₂)·B(y₁,y₂)`;
//! 2. the **swap move** [`swap_chain`]: the pair `(x, y)` exchanges its
//!    components with an acceptance probability `a(x, y)` (Metropolis on the
//!    potential difference in the tempering application) and holds otherwise.
//!
//! Both factor kernels preserve the product measure `π_A ⊗ π_B`
//! ([`product_distribution`]) whenever the ingredients do: the tensor step is
//! reversible w.r.t. the product when `A`, `B` are reversible w.r.t. their
//! own measures, and the swap kernel is reversible w.r.t. the product exactly
//! when the acceptance satisfies the Metropolis ratio
//! `a(x,y)/a(y,x) = π(y,x)/π(x,y)`. The *composition* ([`compose`]) is in
//! general not reversible — compositions of reversible kernels rarely are —
//! but it keeps the product measure stationary, which is what the tempering
//! engine needs. The test harness in `logit-core` builds these objects for
//! tiny games and pins the simulated swap kernel against them entrywise.
//!
//! Pair states are indexed as `x·|S_B| + y` (row-major); [`pair_index`] and
//! [`pair_of`] convert.

use crate::chain::MarkovChain;
use logit_linalg::{Matrix, Vector};

/// Flat index of the pair `(x, y)` when the second component ranges over
/// `size_b` states: `x·size_b + y`.
pub fn pair_index(x: usize, y: usize, size_b: usize) -> usize {
    x * size_b + y
}

/// Inverse of [`pair_index`]: the pair `(x, y)` of the flat index.
pub fn pair_of(index: usize, size_b: usize) -> (usize, usize) {
    (index / size_b, index % size_b)
}

/// The independent joint step of two chains on the product space:
/// `P((x₁,y₁),(x₂,y₂)) = A(x₁,x₂)·B(y₁,y₂)`.
///
/// If `A` is reversible w.r.t. `π_A` and `B` w.r.t. `π_B`, the tensor chain
/// is reversible w.r.t. `π_A ⊗ π_B`.
pub fn tensor_product_chain(a: &MarkovChain, b: &MarkovChain) -> MarkovChain {
    let (na, nb) = (a.num_states(), b.num_states());
    let size = na * nb;
    let mut p = Matrix::zeros(size, size);
    for x1 in 0..na {
        for y1 in 0..nb {
            let row = pair_index(x1, y1, nb);
            for x2 in 0..na {
                let pa = a.prob(x1, x2);
                if pa == 0.0 {
                    continue;
                }
                for y2 in 0..nb {
                    let pb = b.prob(y1, y2);
                    if pb == 0.0 {
                        continue;
                    }
                    p[(row, pair_index(x2, y2, nb))] = pa * pb;
                }
            }
        }
    }
    MarkovChain::new(p)
}

/// The replica-swap kernel on the product space `S × S` of a single component
/// space with `size` states: from the pair `(x, y)` move to `(y, x)` with
/// probability `accept(x, y) ∈ [0, 1]` and hold otherwise.
///
/// With the Metropolis acceptance on a pair of tempered Gibbs measures,
/// `accept(x, y) = min(1, e^{(β₁−β₂)(Φ(x)−Φ(y))})`, this kernel satisfies
/// detailed balance w.r.t. the product measure
/// `π(x, y) ∝ e^{−β₁Φ(x)−β₂Φ(y)}` — the property the tempering proptests
/// verify entrywise.
///
/// # Panics
/// Panics when `accept` returns a value outside `[0, 1]` or NaN.
pub fn swap_chain(size: usize, accept: impl Fn(usize, usize) -> f64) -> MarkovChain {
    let states = size * size;
    let mut p = Matrix::zeros(states, states);
    for x in 0..size {
        for y in 0..size {
            let row = pair_index(x, y, size);
            let a = accept(x, y);
            assert!(
                (0.0..=1.0).contains(&a),
                "swap acceptance must lie in [0, 1], got {a} at ({x}, {y})"
            );
            let swapped = pair_index(y, x, size);
            // x == y swaps to itself; fold the move into the holding mass.
            p[(row, swapped)] += a;
            p[(row, row)] += 1.0 - a;
        }
    }
    MarkovChain::new(p)
}

/// The composition "first `first`, then `then`" as a chain: `P = F·T`.
///
/// Stationarity is preserved (if `π F = π` and `π T = π` then `π FT = π`),
/// reversibility in general is not — a tempering round `(A ⊗ B)·S` keeps the
/// product Gibbs measure stationary even though the round kernel itself is
/// not reversible.
pub fn compose(first: &MarkovChain, then: &MarkovChain) -> MarkovChain {
    MarkovChain::new(first.transition_matrix().matmul(then.transition_matrix()))
}

/// The product measure `π(x, y) = π_A(x)·π_B(y)` on the product space,
/// indexed by [`pair_index`].
pub fn product_distribution(a: &Vector, b: &Vector) -> Vector {
    let (na, nb) = (a.len(), b.len());
    let mut out = Vector::zeros(na * nb);
    for x in 0..na {
        for y in 0..nb {
            out[pair_index(x, y, nb)] = a[x] * b[y];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stationary::stationary_distribution;
    use crate::tv::total_variation;

    fn two_state(p01: f64, p10: f64) -> MarkovChain {
        MarkovChain::new(Matrix::from_rows(&[
            vec![1.0 - p01, p01],
            vec![p10, 1.0 - p10],
        ]))
    }

    #[test]
    fn pair_indexing_round_trips() {
        for x in 0..3 {
            for y in 0..5 {
                assert_eq!(pair_of(pair_index(x, y, 5), 5), (x, y));
            }
        }
    }

    #[test]
    fn tensor_chain_multiplies_marginals() {
        let a = two_state(0.3, 0.6);
        let b = two_state(0.1, 0.2);
        let t = tensor_product_chain(&a, &b);
        assert_eq!(t.num_states(), 4);
        for x1 in 0..2 {
            for y1 in 0..2 {
                for x2 in 0..2 {
                    for y2 in 0..2 {
                        let expect = a.prob(x1, x2) * b.prob(y1, y2);
                        let got = t.prob(pair_index(x1, y1, 2), pair_index(x2, y2, 2));
                        assert!((got - expect).abs() < 1e-15);
                    }
                }
            }
        }
    }

    #[test]
    fn tensor_chain_is_reversible_wrt_the_product_measure() {
        let a = two_state(0.3, 0.6);
        let b = two_state(0.1, 0.4);
        let pa = stationary_distribution(&a);
        let pb = stationary_distribution(&b);
        assert!(a.is_reversible(&pa, 1e-12), "2-state chains are reversible");
        let t = tensor_product_chain(&a, &b);
        let pi = product_distribution(&pa, &pb);
        assert!(t.is_reversible(&pi, 1e-9));
        assert!(total_variation(&stationary_distribution(&t), &pi) < 1e-9);
    }

    #[test]
    fn swap_chain_moves_mass_between_mirrored_pairs() {
        let s = swap_chain(2, |x, y| if x != y { 0.25 } else { 1.0 });
        // (0, 1) -> (1, 0) with probability 0.25.
        assert!((s.prob(pair_index(0, 1, 2), pair_index(1, 0, 2)) - 0.25).abs() < 1e-15);
        assert!((s.prob(pair_index(0, 1, 2), pair_index(0, 1, 2)) - 0.75).abs() < 1e-15);
        // Diagonal pairs hold with probability one regardless of acceptance.
        assert!((s.prob(pair_index(1, 1, 2), pair_index(1, 1, 2)) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn metropolis_swap_is_reversible_wrt_the_tempered_product() {
        // Two tempered Gibbs measures over 3 states with potentials phi.
        let phi = [0.0, 1.5, -0.7];
        let (b1, b2) = (0.4, 2.1);
        let gibbs = |beta: f64| {
            let mut v: Vec<f64> = phi.iter().map(|&p| (-beta * p).exp()).collect();
            let z: f64 = v.iter().sum();
            v.iter_mut().for_each(|w| *w /= z);
            Vector::from_slice(&v)
        };
        let accept = |x: usize, y: usize| ((b1 - b2) * (phi[x] - phi[y])).exp().min(1.0);
        let s = swap_chain(3, accept);
        let pi = product_distribution(&gibbs(b1), &gibbs(b2));
        assert!(s.is_reversible(&pi, 1e-12));
    }

    #[test]
    fn composed_round_keeps_the_product_measure_stationary() {
        // Metropolis component chains sharing the tempered Gibbs measures.
        let phi = [0.0, 1.0];
        let metropolis = |beta: f64| {
            let a01 = (-beta * (phi[1] - phi[0])).exp().min(1.0) / 2.0;
            let a10 = (-beta * (phi[0] - phi[1])).exp().min(1.0) / 2.0;
            two_state(a01, a10)
        };
        let (b1, b2) = (0.3, 1.7);
        let tensor = tensor_product_chain(&metropolis(b1), &metropolis(b2));
        let swap = swap_chain(2, |x, y| ((b1 - b2) * (phi[x] - phi[y])).exp().min(1.0));
        let round = compose(&tensor, &swap);
        let gibbs = |beta: f64| {
            let w0 = (-beta * phi[0]).exp();
            let w1 = (-beta * phi[1]).exp();
            Vector::from_slice(&[w0 / (w0 + w1), w1 / (w0 + w1)])
        };
        let pi = product_distribution(&gibbs(b1), &gibbs(b2));
        let stepped = round.step_distribution(&pi);
        assert!(total_variation(&stepped, &pi) < 1e-12);
        // The round is a valid ergodic chain in its own right.
        assert!(round.is_ergodic());
    }
}
