//! Coupling-based mixing-time estimation (Theorem 2.1).
//!
//! A coupling of a chain with itself is a process `(X_t, Y_t)` whose marginals
//! both follow the chain and which sticks together after the first meeting time
//! `τ_couple`. Theorem 2.1 gives `‖Pᵗ(x,·) − Pᵗ(y,·)‖_TV ≤ P_{x,y}(τ_couple > t)`,
//! so an empirical tail estimate of the coupling time yields an upper estimate
//! of the mixing time that works far beyond the sizes exact computation can
//! reach.
//!
//! The coupling itself is supplied by the caller as a closure
//! `step(&mut rng, x, y) -> (x', y')`; the logit-specific couplings (the
//! Theorem 3.6 interval coupling, the Theorem 5.6 ring coupling) live in
//! `logit-core` and plug into this machinery.

use rand::Rng;

/// Outcome of a batch of coupling simulations from a fixed pair of states.
#[derive(Debug, Clone, PartialEq)]
pub struct CouplingEstimate {
    /// Number of simulated coupled trajectories.
    pub trials: usize,
    /// Empirical mean coupling time.
    pub mean_coupling_time: f64,
    /// Empirical quantile of the coupling time at the requested level.
    pub quantile_time: u64,
    /// The quantile level used (e.g. 0.75 to target `P(τ > t) ≤ 1/4`).
    pub quantile_level: f64,
    /// Number of trajectories that failed to couple within the step budget.
    pub censored: usize,
    /// The per-trajectory step budget.
    pub max_steps: u64,
}

/// Simulates `trials` coupled trajectories starting from `(x0, y0)` using the
/// caller-supplied coupled transition `step`, recording the meeting time of each
/// (censored at `max_steps`).
pub fn simulate_coupling<S, R>(
    rng: &mut R,
    x0: S,
    y0: S,
    trials: usize,
    max_steps: u64,
    mut step: impl FnMut(&mut R, &S, &S) -> (S, S),
) -> Vec<Option<u64>>
where
    S: Clone + PartialEq,
    R: Rng + ?Sized,
{
    assert!(trials > 0, "need at least one trial");
    let mut times = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut x = x0.clone();
        let mut y = y0.clone();
        let mut coupled_at = None;
        for t in 1..=max_steps {
            let (nx, ny) = step(rng, &x, &y);
            x = nx;
            y = ny;
            if x == y {
                coupled_at = Some(t);
                break;
            }
        }
        times.push(coupled_at);
    }
    times
}

/// Turns a set of (possibly censored) coupling times into a mixing-time upper
/// estimate: the empirical `quantile_level` quantile of `τ_couple` is the time
/// `t` at which `P(τ > t) ≲ 1 − quantile_level`; with `quantile_level = 3/4`
/// this estimates `t_mix(1/4)` from the worst starting pair supplied.
///
/// Censored trajectories are treated as having coupling time `max_steps + 1`,
/// so the estimate is conservative (never too small because of censoring).
pub fn coupling_mixing_upper_bound(
    times: &[Option<u64>],
    max_steps: u64,
    quantile_level: f64,
) -> CouplingEstimate {
    assert!(!times.is_empty());
    assert!((0.0..1.0).contains(&quantile_level) || quantile_level == 1.0);
    let censored = times.iter().filter(|t| t.is_none()).count();
    let mut values: Vec<u64> = times.iter().map(|t| t.unwrap_or(max_steps + 1)).collect();
    values.sort_unstable();
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
    let idx = ((values.len() as f64 - 1.0) * quantile_level).ceil() as usize;
    CouplingEstimate {
        trials: times.len(),
        mean_coupling_time: mean,
        quantile_time: values[idx.min(values.len() - 1)],
        quantile_level,
        censored,
        max_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A trivial coupling for the two-state chain with flip probability p: both
    /// chains use the same uniform random number, so they couple as soon as both
    /// land on the same state — here: the first step in which the shared
    /// uniform falls below p for state transitions from both.
    fn two_state_coupled_step(p: f64) -> impl FnMut(&mut StdRng, &u8, &u8) -> (u8, u8) {
        move |rng: &mut StdRng, &x: &u8, &y: &u8| {
            let u: f64 = rng.gen();
            let next = |s: u8| -> u8 {
                // Move to state 1 with probability p when at 0, and to 0 with
                // probability p when at 1 — driven by the same u (monotone coupling).
                match s {
                    0 => {
                        if u < p {
                            1
                        } else {
                            0
                        }
                    }
                    _ => {
                        if u < p {
                            1
                        } else {
                            0
                        }
                    }
                }
            };
            (next(x), next(y))
        }
    }

    #[test]
    fn identical_starts_couple_immediately() {
        let mut rng = StdRng::seed_from_u64(1);
        let times = simulate_coupling(&mut rng, 0u8, 0u8, 10, 100, two_state_coupled_step(0.3));
        assert!(times.iter().all(|t| *t == Some(1)));
    }

    #[test]
    fn monotone_coupling_couples_in_one_step_here() {
        // With the shared-uniform coupling above, both chains map to the same
        // state after a single step regardless of the starting pair.
        let mut rng = StdRng::seed_from_u64(2);
        let times = simulate_coupling(&mut rng, 0u8, 1u8, 50, 100, two_state_coupled_step(0.4));
        assert!(times.iter().all(|t| *t == Some(1)));
        let est = coupling_mixing_upper_bound(&times, 100, 0.75);
        assert_eq!(est.quantile_time, 1);
        assert_eq!(est.censored, 0);
    }

    #[test]
    fn censoring_is_reported_and_conservative() {
        // A "coupling" that never couples.
        let mut rng = StdRng::seed_from_u64(3);
        let times = simulate_coupling(&mut rng, 0u8, 1u8, 5, 10, |_rng, &x, &y| (x, y));
        assert!(times.iter().all(|t| t.is_none()));
        let est = coupling_mixing_upper_bound(&times, 10, 0.75);
        assert_eq!(est.censored, 5);
        assert_eq!(est.quantile_time, 11); // max_steps + 1 sentinel
    }

    #[test]
    fn lazy_walk_coupling_time_has_sane_scale() {
        // Independent coupling of two lazy walks on {0,...,4}: they meet in
        // expected O(n^2) time; just check the estimate is finite and positive.
        let n = 5i64;
        let mut rng = StdRng::seed_from_u64(4);
        let step = |rng: &mut StdRng, &x: &i64, &y: &i64| {
            let move_one = |rng: &mut StdRng, s: i64| -> i64 {
                let u: f64 = rng.gen();
                if u < 0.5 {
                    s
                } else if u < 0.75 {
                    (s - 1).max(0)
                } else {
                    (s + 1).min(n - 1)
                }
            };
            (move_one(rng, x), move_one(rng, y))
        };
        let times = simulate_coupling(&mut rng, 0i64, n - 1, 200, 100_000, step);
        let est = coupling_mixing_upper_bound(&times, 100_000, 0.75);
        assert_eq!(est.censored, 0);
        assert!(est.mean_coupling_time > 1.0);
        assert!(est.quantile_time < 10_000);
    }

    #[test]
    fn quantile_level_orders_estimates() {
        let times: Vec<Option<u64>> = (1..=100u64).map(Some).collect();
        let low = coupling_mixing_upper_bound(&times, 1000, 0.5);
        let high = coupling_mixing_upper_bound(&times, 1000, 0.9);
        assert!(high.quantile_time >= low.quantile_time);
        assert!((low.mean_coupling_time - 50.5).abs() < 1e-9);
    }
}
