//! Expected hitting times.
//!
//! The related work discussed in the paper (Asadpour–Saberi on congestion games,
//! Montanari–Saberi on local interaction games) studies the *hitting time* of
//! specific profiles — e.g. the highest-potential Nash equilibrium — rather than
//! the mixing time. For a finite chain the expected hitting times
//! `h(x) = E_x[min{t : X_t ∈ T}]` of a target set `T` solve the linear system
//!
//! `h(x) = 0` for `x ∈ T`, `h(x) = 1 + Σ_y P(x,y) h(y)` otherwise,
//!
//! which we solve exactly with the LU decomposition.

use crate::chain::MarkovChain;
use logit_linalg::{LuDecomposition, Matrix, Vector};

/// Expected hitting times of the target set `targets` from every state.
///
/// Returns a vector `h` with `h[x] = E_x[τ_T]`; entries of target states are 0.
///
/// # Panics
/// Panics when `targets` is empty, contains out-of-range states, or when some
/// state cannot reach the target set (the hitting time would be infinite and the
/// linear system singular).
pub fn expected_hitting_times(chain: &MarkovChain, targets: &[usize]) -> Vector {
    let n = chain.num_states();
    assert!(!targets.is_empty(), "target set must be non-empty");
    let mut is_target = vec![false; n];
    for &t in targets {
        assert!(t < n, "target state {t} out of range");
        is_target[t] = true;
    }
    // Index the non-target states.
    let free: Vec<usize> = (0..n).filter(|&x| !is_target[x]).collect();
    let k = free.len();
    if k == 0 {
        return Vector::zeros(n);
    }
    let index_of: Vec<Option<usize>> = {
        let mut v = vec![None; n];
        for (i, &x) in free.iter().enumerate() {
            v[x] = Some(i);
        }
        v
    };
    // (I - P_restricted) h = 1
    let p = chain.transition_matrix();
    let mut a = Matrix::zeros(k, k);
    for (i, &x) in free.iter().enumerate() {
        for (j, &y) in free.iter().enumerate() {
            a[(i, j)] = if i == j { 1.0 } else { 0.0 } - p[(x, y)];
        }
    }
    let b = Vector::filled(k, 1.0);
    let lu = LuDecomposition::new(&a)
        .expect("hitting-time system is singular: some state cannot reach the target set");
    let h_free = lu.solve(&b);
    let mut h = Vector::zeros(n);
    for x in 0..n {
        if let Some(i) = index_of[x] {
            h[x] = h_free[i];
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(p01: f64, p10: f64) -> MarkovChain {
        MarkovChain::new(Matrix::from_rows(&[
            vec![1.0 - p01, p01],
            vec![p10, 1.0 - p10],
        ]))
    }

    #[test]
    fn geometric_hitting_time() {
        // From state 0, hitting {1} is geometric with success probability p01.
        let chain = two_state(0.2, 0.7);
        let h = expected_hitting_times(&chain, &[1]);
        assert!((h[0] - 5.0).abs() < 1e-9);
        assert_eq!(h[1], 0.0);
    }

    #[test]
    fn symmetric_random_walk_on_path_gambler_ruin() {
        // Lazy-free symmetric walk on 0..4 with reflecting behaviour replaced by
        // absorption at 4; expected time from 0 to hit 4 with reflecting at 0:
        // classic answer n² = 16 for n = 4.
        let n = 5;
        let mut p = Matrix::zeros(n, n);
        p[(0, 1)] = 1.0; // reflect
        for x in 1..n - 1 {
            p[(x, x - 1)] = 0.5;
            p[(x, x + 1)] = 0.5;
        }
        p[(n - 1, n - 1)] = 1.0; // absorbing target
        let chain = MarkovChain::new(p);
        let h = expected_hitting_times(&chain, &[n - 1]);
        assert!((h[0] - 16.0).abs() < 1e-8);
        assert!((h[1] - 15.0).abs() < 1e-8);
    }

    #[test]
    fn multiple_targets_take_minimum() {
        let chain = MarkovChain::new(Matrix::from_rows(&[
            vec![0.0, 0.5, 0.5],
            vec![0.5, 0.0, 0.5],
            vec![0.5, 0.5, 0.0],
        ]));
        let h = expected_hitting_times(&chain, &[1, 2]);
        // From state 0 we hit {1,2} in exactly one step.
        assert!((h[0] - 1.0).abs() < 1e-12);
        assert_eq!(h[1], 0.0);
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn all_states_targets_gives_zero() {
        let chain = two_state(0.3, 0.3);
        let h = expected_hitting_times(&chain, &[0, 1]);
        assert_eq!(h.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_target_rejected() {
        let chain = two_state(0.3, 0.3);
        let _ = expected_hitting_times(&chain, &[]);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn unreachable_target_detected() {
        // State 0 is absorbing, so it can never reach state 1.
        let chain = MarkovChain::new(Matrix::from_rows(&[vec![1.0, 0.0], vec![0.5, 0.5]]));
        let _ = expected_hitting_times(&chain, &[1]);
    }
}
