//! Property-based tests for the product-chain / replica-swap machinery —
//! the exactness harness behind the parallel-tempering layer.
//!
//! These properties are stated purely in Markov-chain terms (random
//! potentials, Metropolis component chains), so they live here; the
//! game-level counterparts — the same identities checked on actual
//! `DynamicsEngine` chains — live in `crates/core/tests/proptest_core.rs`.

use logit_linalg::{Matrix, Vector};
use logit_markov::{
    compose, product_distribution, stationary_distribution, swap_chain, tensor_product_chain,
    total_variation, MarkovChain,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random potential vector over `size` states with entries in ±range.
fn random_potential(size: usize, range: f64, rng: &mut StdRng) -> Vec<f64> {
    (0..size).map(|_| rng.gen_range(-range..range)).collect()
}

/// The Gibbs measure `π(x) ∝ e^{−βΦ(x)}` of a potential vector.
fn gibbs(phi: &[f64], beta: f64) -> Vector {
    let max = phi.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut weights: Vec<f64> = phi.iter().map(|&p| (-beta * (p - max)).exp()).collect();
    let z: f64 = weights.iter().sum();
    weights.iter_mut().for_each(|w| *w /= z);
    Vector::from_slice(&weights)
}

/// The complete-graph Metropolis chain of a potential vector: propose a state
/// uniformly, accept with `min(1, e^{−βΔΦ})`. Reversible w.r.t. [`gibbs`] by
/// construction — a self-contained stand-in for a per-replica dynamics chain.
fn metropolis_chain(phi: &[f64], beta: f64) -> MarkovChain {
    let n = phi.len();
    let mut p = Matrix::zeros(n, n);
    for x in 0..n {
        let mut stay = 1.0;
        for y in 0..n {
            if y == x {
                continue;
            }
            let accept = (-beta * (phi[y] - phi[x])).exp().min(1.0) / n as f64;
            p[(x, y)] = accept;
            stay -= accept;
        }
        p[(x, x)] = stay;
    }
    MarkovChain::new(p)
}

/// The tempering swap acceptance `min(1, e^{(β₁−β₂)(Φ(x)−Φ(y))})`.
fn swap_accept(phi: &[f64], beta_1: f64, beta_2: f64) -> impl Fn(usize, usize) -> f64 + '_ {
    move |x, y| ((beta_1 - beta_2) * (phi[x] - phi[y])).exp().min(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Metropolis swap kernel satisfies detailed balance w.r.t. the
    /// tempered product measure — entrywise, for random potentials and any
    /// β-pair (ordered or not).
    #[test]
    fn swap_kernel_is_reversible_wrt_the_product_gibbs(
        seed in 0u64..10_000,
        beta_1 in 0.0f64..3.0,
        beta_2 in 0.0f64..3.0,
        size in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let phi = random_potential(size, 2.0, &mut rng);
        let swap = swap_chain(size, swap_accept(&phi, beta_1, beta_2));
        let pi = product_distribution(&gibbs(&phi, beta_1), &gibbs(&phi, beta_2));
        // Entrywise detailed balance: π(s) S(s, s') = π(s') S(s', s).
        let states = size * size;
        for s in 0..states {
            for t in 0..states {
                let forward = pi[s] * swap.prob(s, t);
                let backward = pi[t] * swap.prob(t, s);
                prop_assert!(
                    (forward - backward).abs() < 1e-12,
                    "detailed balance fails at ({s}, {t}): {forward} vs {backward}"
                );
            }
        }
        // Hence the product measure is a fixed point of the swap kernel.
        prop_assert!(total_variation(&swap.step_distribution(&pi), &pi) < 1e-12);
    }

    /// The tensor step of two reversible chains is reversible w.r.t. the
    /// product of their stationary measures.
    #[test]
    fn tensor_step_is_reversible_wrt_the_product_measure(
        seed in 0u64..10_000,
        beta_1 in 0.0f64..3.0,
        beta_2 in 0.0f64..3.0,
        size in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let phi = random_potential(size, 2.0, &mut rng);
        let a = metropolis_chain(&phi, beta_1);
        let b = metropolis_chain(&phi, beta_2);
        let pi = product_distribution(&gibbs(&phi, beta_1), &gibbs(&phi, beta_2));
        let tensor = tensor_product_chain(&a, &b);
        prop_assert!(tensor.is_reversible(&pi, 1e-9));
    }

    /// A full tempering round — tensor step then swap — keeps the tempered
    /// product measure stationary (though the composition is itself not
    /// reversible in general), and the round chain is ergodic.
    #[test]
    fn tempering_round_fixes_the_product_gibbs_measure(
        seed in 0u64..10_000,
        beta_hot in 0.0f64..1.0,
        beta_gap in 0.1f64..2.5,
        size in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let phi = random_potential(size, 2.0, &mut rng);
        let beta_cold = beta_hot + beta_gap;
        let tensor = tensor_product_chain(
            &metropolis_chain(&phi, beta_hot),
            &metropolis_chain(&phi, beta_cold),
        );
        let swap = swap_chain(size, swap_accept(&phi, beta_hot, beta_cold));
        let round = compose(&tensor, &swap);
        let pi = product_distribution(&gibbs(&phi, beta_hot), &gibbs(&phi, beta_cold));
        prop_assert!(total_variation(&round.step_distribution(&pi), &pi) < 1e-10);
        prop_assert!(round.is_ergodic());
        // The product measure really is *the* stationary law of the round.
        prop_assert!(total_variation(&stationary_distribution(&round), &pi) < 1e-8);
    }

    /// Swapping is an involution in distribution: applying the swap kernel's
    /// deterministic part twice returns to the start, so the kernel built
    /// with acceptance ≡ 1 is its own inverse (a permutation matrix).
    #[test]
    fn full_acceptance_swap_is_an_involution(size in 2usize..6) {
        let swap = swap_chain(size, |_, _| 1.0);
        let twice = compose(&swap, &swap);
        let states = size * size;
        for s in 0..states {
            for t in 0..states {
                let expect = if s == t { 1.0 } else { 0.0 };
                prop_assert!((twice.prob(s, t) - expect).abs() < 1e-12);
            }
        }
    }
}
