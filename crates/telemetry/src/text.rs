//! Prometheus-text-format parsing: the read half of the round-trip that
//! [`MetricsRegistry::render`](crate::MetricsRegistry::render) writes.
//!
//! The grammar accepted is exactly what `render` emits (and what any
//! Prometheus scraper produces): `# ...` comment lines, blank lines, and
//! `name[{labels}] value` sample lines. The `logit-serve` self-test and
//! the STATS-frame assertions parse snapshots through this, so a render
//! change that breaks scrapeability fails loudly in CI.

use std::collections::BTreeMap;

/// Parses Prometheus text exposition into `full-sample-name → value`
/// (label sets are part of the key, verbatim: `x_bucket{le="1"}`).
/// Comment (`#`) and blank lines are skipped; a malformed sample line or
/// a duplicate sample name is an error naming the line.
pub fn parse_prometheus(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut samples = BTreeMap::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in `{line}`", index + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: unparseable value `{value}`", index + 1))?;
        if samples.insert(name.trim().to_string(), value).is_some() {
            return Err(format!("line {}: duplicate sample `{name}`", index + 1));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_samples_and_skips_comments() {
        let text = "# logit-telemetry snapshot\n\
                    # TYPE server_jobs_accepted counter\n\
                    server_jobs_accepted 5\n\
                    \n\
                    server_job_exec_ns_bucket{le=\"1024\"} 3\n\
                    server_job_exec_ns_bucket{le=\"+Inf\"} 5\n\
                    pipeline_chunk_ticks 12.5\n";
        let samples = parse_prometheus(text).expect("well-formed text");
        assert_eq!(samples["server_jobs_accepted"], 5.0);
        assert_eq!(samples["server_job_exec_ns_bucket{le=\"1024\"}"], 3.0);
        assert_eq!(samples["server_job_exec_ns_bucket{le=\"+Inf\"}"], 5.0);
        assert_eq!(samples["pipeline_chunk_ticks"], 12.5);
        assert_eq!(samples.len(), 4);
    }

    #[test]
    fn malformed_lines_and_duplicates_are_named_errors() {
        assert!(parse_prometheus("just_a_name\n").is_err());
        assert!(parse_prometheus("a_metric one\n").is_err());
        let duplicate = parse_prometheus("a_metric 1\na_metric 2\n");
        assert!(duplicate.unwrap_err().contains("duplicate"));
    }
}
