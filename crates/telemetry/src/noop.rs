//! The feature-off build: every instrument is a zero-sized struct and
//! every method an empty inlineable body, so instrumented code compiles
//! to exactly what it was before instrumentation. The API mirrors
//! `metrics.rs` signature-for-signature — a call site that builds
//! against one mode builds against the other.

use crate::snapshot::HistogramSnapshot;

/// Always `false`: a build without the `telemetry` feature cannot record.
#[inline]
pub fn enabled() -> bool {
    false
}

/// Refuses (returns `false`): recording needs the `telemetry` feature
/// compiled in; the runtime switch alone cannot conjure instruments.
#[inline]
pub fn enable() -> bool {
    false
}

/// A zero-sized counter that ignores every update.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline]
    pub fn inc(&self) {}

    /// Does nothing.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Always zero.
    #[inline]
    pub fn value(&self) -> u64 {
        0
    }
}

/// A zero-sized gauge that ignores every update.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// Does nothing.
    #[inline]
    pub fn set(&self, _value: f64) {}

    /// Does nothing.
    #[inline]
    pub fn add(&self, _delta: f64) {}

    /// Always zero.
    #[inline]
    pub fn value(&self) -> f64 {
        0.0
    }
}

/// A zero-sized histogram that ignores every record.
#[derive(Clone, Copy, Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// Does nothing.
    #[inline]
    pub fn record(&self, _value: f64) {}

    /// A span that never reads the clock and records nothing on drop.
    #[inline]
    pub fn span(&self) -> Span {
        Span
    }

    /// Always empty.
    #[inline]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
}

/// A zero-sized span: dropping it is a no-op.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug, Default)]
pub struct Span;

/// A span over nothing.
#[inline]
pub fn span(_name: &str) -> Span {
    Span
}

/// A zero-sized registry: lookups hand back no-op instruments and no
/// name is ever stored.
#[derive(Debug, Default)]
pub struct MetricsRegistry;

/// The process-wide registry — here a reference to a zero-sized unit.
#[inline]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: MetricsRegistry = MetricsRegistry;
    &GLOBAL
}

impl MetricsRegistry {
    /// An empty registry.
    #[inline]
    pub fn new() -> Self {
        MetricsRegistry
    }

    /// A no-op counter.
    #[inline]
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }

    /// A no-op counter.
    #[inline]
    pub fn counter_labelled(&self, _name: &str, _label: (&str, &str)) -> Counter {
        Counter
    }

    /// A no-op gauge.
    #[inline]
    pub fn gauge(&self, _name: &str) -> Gauge {
        Gauge
    }

    /// A no-op gauge.
    #[inline]
    pub fn gauge_labelled(&self, _name: &str, _label: (&str, &str)) -> Gauge {
        Gauge
    }

    /// A no-op histogram.
    #[inline]
    pub fn histogram(&self, _name: &str) -> Histogram {
        Histogram
    }

    /// A no-op histogram.
    #[inline]
    pub fn histogram_labelled(&self, _name: &str, _label: (&str, &str)) -> Histogram {
        Histogram
    }

    /// Always zero: nothing registers.
    #[inline]
    pub fn instrument_count(&self) -> usize {
        0
    }

    /// A comment-only snapshot naming its state; parses to an empty map.
    pub fn render(&self) -> String {
        String::from("# logit-telemetry snapshot\n# telemetry disabled (built without the `telemetry` feature)\n")
    }
}
