//! The real instruments (compiled with the `telemetry` feature).
//!
//! Recording is atomics only — counters are `fetch_add`, gauges are
//! f64-bit CAS, histogram cells are `fetch_add` on a fixed array — and
//! every mutating method early-returns on one cached bool load while the
//! runtime gate ([`enabled`]) is off. The registry's mutex is touched
//! only to *look up or create* an instrument handle; call sites cache
//! handles (statics, struct fields) so steady state never sees the lock.

use crate::snapshot::{bucket_bound, bucket_index, HistogramSnapshot, BUCKET_CELLS};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static OVERRIDE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        crate::read_enabled_with(|key| std::env::var(key).ok(), crate::warn_invalid_env)
    })
}

/// Whether recording is live: the `LOGIT_TELEMETRY` switch (read once
/// per process; unparseable values warn once through
/// [`warn_invalid_env`](crate::warn_invalid_env) and mean "off"), or a
/// prior [`enable`] call.
pub fn enabled() -> bool {
    OVERRIDE.load(Ordering::Acquire) || env_enabled()
}

/// Forces recording on for this process (harnesses and benches that want
/// distributions without touching the environment). Returns the
/// effective state — always `true` in feature builds.
pub fn enable() -> bool {
    OVERRIDE.store(true, Ordering::Release);
    true
}

/// The monotonic event counter. Clones share one atomic cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if recording() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins f64 gauge with atomic add. Clones share one cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    fn new() -> Self {
        // 0u64 is the bit pattern of 0.0f64.
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if recording() {
            self.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) via a CAS loop.
    #[inline]
    pub fn add(&self, delta: f64) {
        if !recording() {
            return;
        }
        let mut bits = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(bits) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(bits, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => bits = current,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramCells {
    buckets: [AtomicU64; BUCKET_CELLS],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// The fixed-bucket log-scale histogram (see
/// [`BUCKET_CELLS`] for the bucket layout). Clones share cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snapshot.count)
            .field("sum", &snapshot.sum)
            .finish()
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: [const { AtomicU64::new(0) }; BUCKET_CELLS],
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }))
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: f64) {
        if !recording() {
            return;
        }
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut bits = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(bits) + value).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                bits,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(current) => bits = current,
            }
        }
    }

    /// An RAII timer: records the elapsed time in **nanoseconds** into
    /// this histogram when dropped. While recording is off the span
    /// holds nothing and never reads the clock.
    pub fn span(&self) -> Span {
        if recording() {
            Span {
                started: Some(Instant::now()),
                histogram: Some(self.clone()),
            }
        } else {
            Span {
                started: None,
                histogram: None,
            }
        }
    }

    /// Point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKET_CELLS];
        for (cell, bucket) in buckets.iter_mut().zip(&self.0.buckets) {
            *cell = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// The RAII stage timer handed out by [`Histogram::span`] and [`span`].
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    started: Option<Instant>,
    histogram: Option<Histogram>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(started), Some(histogram)) = (self.started, self.histogram.take()) {
            histogram.record(started.elapsed().as_nanos() as f64);
        }
    }
}

/// Times a stage against the named histogram of the [`global`] registry:
/// `let _span = span("farm.chunk_ns");`. Instrumentation that runs per
/// chunk should cache a [`Histogram`] handle and use
/// [`Histogram::span`] instead — this convenience takes the registry
/// lock to resolve the name.
pub fn span(name: &str) -> Span {
    global().histogram(name).span()
}

#[inline]
fn recording() -> bool {
    enabled()
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// Named instruments under one lock (taken at registration/lookup only;
/// recording through the returned handles is lock-free).
pub struct MetricsRegistry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide registry every engine layer instruments into and
/// every surface (`STATS` frame, bench dump) renders from.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

impl MetricsRegistry {
    /// An empty registry (tests; everything real uses [`global`]).
    pub fn new() -> Self {
        MetricsRegistry {
            instruments: Mutex::new(BTreeMap::new()),
        }
    }

    fn instrument(
        &self,
        name: &str,
        make: impl FnOnce() -> Instrument,
        want: &'static str,
    ) -> Instrument {
        let mut instruments = self.instruments.lock().expect("registry poisoned");
        let entry = instruments.entry(name.to_string()).or_insert_with(make);
        assert_eq!(
            entry.kind(),
            want,
            "instrument `{name}` is already registered as a {}",
            entry.kind()
        );
        match entry {
            Instrument::Counter(c) => Instrument::Counter(c.clone()),
            Instrument::Gauge(g) => Instrument::Gauge(g.clone()),
            Instrument::Histogram(h) => Instrument::Histogram(h.clone()),
        }
    }

    /// The named counter, created on first use. Panics if `name` is
    /// already a gauge or histogram (a programming error).
    pub fn counter(&self, name: &str) -> Counter {
        match self.instrument(name, || Instrument::Counter(Counter::new()), "counter") {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// [`counter`](Self::counter) with one `{key="value"}` label
    /// distinguishing an instance within a family.
    pub fn counter_labelled(&self, name: &str, label: (&str, &str)) -> Counter {
        self.counter(&labelled_key(name, label))
    }

    /// The named gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.instrument(name, || Instrument::Gauge(Gauge::new()), "gauge") {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// [`gauge`](Self::gauge) with one `{key="value"}` label.
    pub fn gauge_labelled(&self, name: &str, label: (&str, &str)) -> Gauge {
        self.gauge(&labelled_key(name, label))
    }

    /// The named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.instrument(
            name,
            || Instrument::Histogram(Histogram::new()),
            "histogram",
        ) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// [`histogram`](Self::histogram) with one `{key="value"}` label.
    pub fn histogram_labelled(&self, name: &str, label: (&str, &str)) -> Histogram {
        self.histogram(&labelled_key(name, label))
    }

    /// How many instruments have been registered.
    pub fn instrument_count(&self) -> usize {
        self.instruments.lock().expect("registry poisoned").len()
    }

    /// Renders every instrument in Prometheus text exposition format
    /// (dot-names sanitised to underscores, histograms as cumulative
    /// `_bucket`/`_sum`/`_count` plus `_p50`/`_p95`/`_p99` gauges —
    /// quantile gauges only once the histogram is non-empty). The
    /// output round-trips through
    /// [`parse_prometheus`](crate::parse_prometheus).
    pub fn render(&self) -> String {
        let instruments = self.instruments.lock().expect("registry poisoned");
        let mut out = String::from("# logit-telemetry snapshot\n");
        if !recording() {
            out.push_str("# recording disabled (set LOGIT_TELEMETRY=1)\n");
        }
        let mut typed: BTreeSet<String> = BTreeSet::new();
        for (key, instrument) in instruments.iter() {
            let (family, labels) = split_key(key);
            match instrument {
                Instrument::Counter(c) => {
                    type_line(&mut out, &mut typed, &family, "counter");
                    sample_line(&mut out, &family, labels, None, &c.value().to_string());
                }
                Instrument::Gauge(g) => {
                    type_line(&mut out, &mut typed, &family, "gauge");
                    sample_line(&mut out, &family, labels, None, &g.value().to_string());
                }
                Instrument::Histogram(h) => {
                    let snapshot = h.snapshot();
                    type_line(&mut out, &mut typed, &family, "histogram");
                    let mut cumulative = 0u64;
                    for (index, &cell) in snapshot.buckets.iter().enumerate() {
                        cumulative += cell;
                        let bound = bucket_bound(index);
                        let le = if bound.is_finite() {
                            format!("{}", bound as u64)
                        } else {
                            "+Inf".to_string()
                        };
                        sample_line(
                            &mut out,
                            &format!("{family}_bucket"),
                            labels,
                            Some(("le", &le)),
                            &cumulative.to_string(),
                        );
                    }
                    sample_line(
                        &mut out,
                        &format!("{family}_sum"),
                        labels,
                        None,
                        &snapshot.sum.to_string(),
                    );
                    sample_line(
                        &mut out,
                        &format!("{family}_count"),
                        labels,
                        None,
                        &snapshot.count.to_string(),
                    );
                    for (suffix, quantile) in [
                        ("p50", snapshot.p50()),
                        ("p95", snapshot.p95()),
                        ("p99", snapshot.p99()),
                    ] {
                        if let Some(value) = quantile {
                            let family = format!("{family}_{suffix}");
                            type_line(&mut out, &mut typed, &family, "gauge");
                            let value = if value.is_finite() {
                                value.to_string()
                            } else {
                                "+Inf".to_string()
                            };
                            sample_line(&mut out, &family, labels, None, &value);
                        }
                    }
                }
            }
        }
        out
    }
}

/// `name{key="value"}` — the registry key of one labelled instance.
fn labelled_key(name: &str, (key, value): (&str, &str)) -> String {
    format!("{name}{{{key}=\"{value}\"}}")
}

/// Splits a registry key into its sanitised family name and the raw
/// label block (without braces), if any.
fn split_key(key: &str) -> (String, Option<&str>) {
    let (name, labels) = match key.split_once('{') {
        Some((name, rest)) => (name, rest.strip_suffix('}')),
        None => (key, None),
    };
    let family: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    (family, labels)
}

fn type_line(out: &mut String, typed: &mut BTreeSet<String>, family: &str, kind: &str) {
    if typed.insert(family.to_string()) {
        out.push_str(&format!("# TYPE {family} {kind}\n"));
    }
}

fn sample_line(
    out: &mut String,
    family: &str,
    labels: Option<&str>,
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(family);
    match (labels, extra) {
        (None, None) => {}
        (Some(labels), None) => out.push_str(&format!("{{{labels}}}")),
        (None, Some((k, v))) => out.push_str(&format!("{{{k}=\"{v}\"}}")),
        (Some(labels), Some((k, v))) => out.push_str(&format!("{{{labels},{k}=\"{v}\"}}")),
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_prometheus;

    fn live() {
        assert!(enable(), "tests force recording on");
    }

    #[test]
    fn counters_and_gauges_record_through_shared_handles() {
        live();
        let registry = MetricsRegistry::new();
        let counter = registry.counter("test.counter");
        let same = registry.counter("test.counter");
        counter.inc();
        same.add(4);
        assert_eq!(counter.value(), 5, "clones share one cell");

        let gauge = registry.gauge("test.gauge");
        gauge.set(2.5);
        gauge.add(-1.0);
        assert_eq!(gauge.value(), 1.5);
        assert_eq!(registry.instrument_count(), 2);
    }

    #[test]
    fn labelled_instances_are_distinct_within_a_family() {
        live();
        let registry = MetricsRegistry::new();
        registry
            .counter_labelled("family.total", ("worker", "0"))
            .add(3);
        registry
            .counter_labelled("family.total", ("worker", "1"))
            .add(5);
        assert_eq!(
            registry
                .counter_labelled("family.total", ("worker", "0"))
                .value(),
            3
        );
        assert_eq!(registry.instrument_count(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn name_reuse_across_kinds_is_a_loud_error() {
        let registry = MetricsRegistry::new();
        let _counter = registry.counter("test.kind_clash");
        let _gauge = registry.gauge("test.kind_clash");
    }

    #[test]
    fn histogram_records_at_below_and_above_bucket_edges() {
        live();
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("test.edges");
        histogram.record(0.5); // below the first bound → bucket 0
        histogram.record(1.0); // at the first bound → bucket 0
        histogram.record(1024.0); // at an interior bound → bucket 10
        histogram.record(1024.5); // just above → bucket 11
        histogram.record(1e30); // far past the last bound → overflow
        histogram.record(f64::INFINITY); // saturates, never panics
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 6);
        assert_eq!(snapshot.buckets[0], 2);
        assert_eq!(snapshot.buckets[10], 1);
        assert_eq!(snapshot.buckets[11], 1);
        assert_eq!(snapshot.buckets[crate::BUCKET_CELLS - 1], 2);
        assert_eq!(snapshot.p50(), Some(1024.0));
    }

    #[test]
    fn concurrent_histogram_and_counter_updates_are_exact() {
        live();
        let registry = MetricsRegistry::new();
        let counter = registry.counter("test.contended_counter");
        let histogram = registry.histogram("test.contended_histogram");
        let threads = 8usize;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let counter = counter.clone();
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        counter.add(2);
                        // Spread across buckets so cells contend too.
                        histogram.record(((t as u64 * per_thread + i) % 4096) as f64);
                    }
                });
            }
        });
        let expected = threads as u64 * per_thread;
        assert_eq!(counter.value(), 2 * expected, "no lost counter updates");
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, expected, "no lost histogram records");
        assert_eq!(
            snapshot.buckets.iter().sum::<u64>(),
            expected,
            "every record landed in exactly one bucket"
        );
    }

    #[test]
    fn spans_feed_their_histogram_in_nanoseconds() {
        live();
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("test.span_ns");
        {
            let _span = histogram.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 1);
        assert!(
            snapshot.sum >= 2e6,
            "2 ms must record at least 2e6 ns, got {}",
            snapshot.sum
        );
    }

    #[test]
    fn render_round_trips_through_the_parser() {
        live();
        let registry = MetricsRegistry::new();
        registry.counter("demo.jobs").add(7);
        registry
            .gauge_labelled("demo.depth", ("queue", "main"))
            .set(3.0);
        let histogram = registry.histogram("demo.latency_ns");
        histogram.record(100.0);
        histogram.record(2000.0);
        let text = registry.render();
        let samples = parse_prometheus(&text).expect("render must parse");
        assert_eq!(samples["demo_jobs"], 7.0);
        assert_eq!(samples["demo_depth{queue=\"main\"}"], 3.0);
        assert_eq!(samples["demo_latency_ns_count"], 2.0);
        assert_eq!(samples["demo_latency_ns_sum"], 2100.0);
        assert_eq!(samples["demo_latency_ns_bucket{le=\"128\"}"], 1.0);
        assert_eq!(samples["demo_latency_ns_bucket{le=\"+Inf\"}"], 2.0);
        assert_eq!(samples["demo_latency_ns_p50"], 128.0);
        assert_eq!(samples["demo_latency_ns_p99"], 2048.0);
        // Sanity: no unsanitised dots leak into sample names.
        assert!(samples.keys().all(|k| !k.contains('.')), "{samples:?}");
    }

    #[test]
    fn the_global_registry_is_one_process_wide_instance() {
        live();
        global().counter("test.global_pin").inc();
        assert_eq!(global().counter("test.global_pin").value(), 1);
    }
}
