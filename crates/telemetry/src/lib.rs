//! # logit-telemetry
//!
//! Lock-light observability for the logit-dynamics workspace: a
//! [`MetricsRegistry`] of named instruments — monotonic [`Counter`]s,
//! [`Gauge`]s and fixed-bucket log-scale [`Histogram`]s with
//! p50/p95/p99 snapshots — plus an RAII span timer
//! ([`Histogram::span`] / [`span`]) that feeds a histogram on drop.
//! The hot path is atomics only: the registry's lock is taken at
//! instrument *registration* (once per name per process), never while
//! recording.
//!
//! ## Two gates, both default-off
//!
//! * **Compile time** — without the `telemetry` cargo feature every type
//!   in this crate is a zero-sized struct and every method an empty
//!   `#[inline]` body: no allocation, no atomics, no branches. The
//!   engines instrument themselves unconditionally and rely on this
//!   crate to vanish, so the bit-identity and idle-tax invariants of the
//!   default build are untouched by construction (pinned by the
//!   size-of/`#[cfg]` tests here and the telemetry-off guard in
//!   `logit-core`).
//! * **Run time** — with the feature compiled in, recording is gated by
//!   `LOGIT_TELEMETRY` (`1`/`true`/`yes`/`on`, read once per process);
//!   [`enable`] forces it on programmatically (harnesses, benches). A
//!   set-but-unparseable value warns once on stderr through the same
//!   [`warn_invalid_env`] path the `LOGIT_*` runtime knobs use, and
//!   falls back to disabled.
//!
//! ## Naming scheme
//!
//! Instrument names are dot-separated `layer.metric[_unit]` paths
//! (`runtime.dispatch_ns`, `server.job_exec_ns`); one `{key="value"}`
//! label picks an instance out of a family (`runtime.chunks_stolen{worker="3"}`).
//! [`MetricsRegistry::render`] emits the Prometheus text exposition
//! format (dots become underscores; histograms render cumulative
//! `_bucket{le="..."}` lines plus `_sum`/`_count` and `_p50`/`_p95`/`_p99`
//! gauges), and [`parse_prometheus`] reads that text back into a map —
//! the round-trip the `logit-serve` STATS frame and its self-test
//! assertions are built on.

mod snapshot;
mod text;

pub use snapshot::{bucket_bound, HistogramSnapshot, BUCKET_CELLS};
pub use text::parse_prometheus;

#[cfg(feature = "telemetry")]
mod metrics;
#[cfg(feature = "telemetry")]
pub use metrics::{
    enable, enabled, global, span, Counter, Gauge, Histogram, MetricsRegistry, Span,
};

#[cfg(not(feature = "telemetry"))]
mod noop;
#[cfg(not(feature = "telemetry"))]
pub use noop::{enable, enabled, global, span, Counter, Gauge, Histogram, MetricsRegistry, Span};

/// Records that a warning for `var` has been emitted; returns `true` the
/// first time a given variable name is seen in this process. Split from
/// [`warn_invalid_env`] so the once-per-variable bookkeeping is testable
/// without capturing stderr. This is the workspace-wide dedup set:
/// `logit-core`'s runtime knobs and this crate's `LOGIT_TELEMETRY` read
/// all warn through it, so a variable warns once per process no matter
/// which layer reads it first (or how often it is re-read).
pub fn first_warning(var: &str) -> bool {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("warning set poisoned")
        .insert(var.to_string())
}

/// Emits a one-time stderr warning that the environment variable `var`
/// carried the unparseable `value` and the built-in default is used
/// instead. A bad value never aborts a run — but a typo like
/// `LOGIT_TELEMETRY=o n` is no longer indistinguishable from the
/// variable being unset.
pub fn warn_invalid_env(var: &str, value: &str) {
    if first_warning(var) {
        eprintln!("warning: ignoring unparseable {var}={value:?}; using the built-in default");
    }
}

/// Parses a `LOGIT_TELEMETRY` value: the same truthy/falsy tokens the
/// runtime's boolean knobs accept. `None` means unparseable (warn and
/// treat as unset).
pub fn parse_enabled(value: &str) -> Option<bool> {
    match value {
        "1" | "true" | "TRUE" | "yes" | "on" => Some(true),
        "0" | "false" | "FALSE" | "no" | "off" | "" => Some(false),
        _ => None,
    }
}

/// Reads the `LOGIT_TELEMETRY` switch from an injectable variable source,
/// reporting a set-but-unparseable value through `warn` (no
/// once-per-process dedup at this layer — that lives in the real stderr
/// sink, [`warn_invalid_env`]). Unset and unparseable both mean
/// disabled: telemetry is strictly opt-in.
pub fn read_enabled_with(
    lookup: impl Fn(&str) -> Option<String>,
    mut warn: impl FnMut(&str, &str),
) -> bool {
    match lookup("LOGIT_TELEMETRY") {
        None => false,
        Some(value) => match parse_enabled(value.trim()) {
            Some(on) => on,
            None => {
                warn("LOGIT_TELEMETRY", &value);
                false
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_env_parses_the_boolean_tokens() {
        for on in ["1", "true", "yes", "on"] {
            assert_eq!(parse_enabled(on), Some(true), "{on} must enable");
        }
        for off in ["0", "false", "no", "off", ""] {
            assert_eq!(parse_enabled(off), Some(false), "{off:?} must disable");
        }
        assert_eq!(parse_enabled("maybe"), None);
    }

    #[test]
    fn unset_and_garbage_telemetry_env_both_disable() {
        let mut warned: Vec<(String, String)> = Vec::new();
        assert!(!read_enabled_with(
            |_| None,
            |v, x| warned.push((v.into(), x.into()))
        ));
        assert!(warned.is_empty(), "unset must not warn");

        assert!(read_enabled_with(
            |k| (k == "LOGIT_TELEMETRY").then(|| " 1 ".to_string()),
            |v, x| warned.push((v.into(), x.into())),
        ));
        assert!(warned.is_empty(), "parseable must not warn");

        assert!(!read_enabled_with(
            |k| (k == "LOGIT_TELEMETRY").then(|| "o n".to_string()),
            |v, x| warned.push((v.into(), x.into())),
        ));
        assert_eq!(
            warned,
            vec![("LOGIT_TELEMETRY".to_string(), "o n".to_string())],
            "a set-but-unparseable value warns, naming variable and value"
        );
    }

    #[test]
    fn repeated_invalid_reads_warn_once_per_variable() {
        // The parse layer reports every rejection (no dedup there)...
        let mut raw = 0usize;
        for _ in 0..3 {
            read_enabled_with(
                |k| (k == "LOGIT_TELEMETRY").then(|| "garbage".to_string()),
                |_, _| raw += 1,
            );
        }
        assert_eq!(raw, 3, "the injectable sink sees every invalid read");
        // ...and the process-global stderr sink dedups per variable, so
        // re-reading an invalid LOGIT_TELEMETRY forever emits one line.
        assert!(first_warning("LOGIT_TELEMETRY_DEDUP_PIN"));
        assert!(
            !first_warning("LOGIT_TELEMETRY_DEDUP_PIN"),
            "a second warning for the same variable must be suppressed"
        );
        assert!(first_warning("LOGIT_TELEMETRY_DEDUP_PIN_TWO"));
    }

    #[cfg(not(feature = "telemetry"))]
    mod noop_guarantees {
        use super::super::*;

        #[test]
        fn every_instrument_is_a_zero_sized_noop() {
            // The compile-time pin of the "telemetry off is genuinely
            // free" contract: handles occupy no memory, so instrumented
            // structs (FarmSender, LagController, caches) pay nothing.
            assert_eq!(std::mem::size_of::<Counter>(), 0);
            assert_eq!(std::mem::size_of::<Gauge>(), 0);
            assert_eq!(std::mem::size_of::<Histogram>(), 0);
            assert_eq!(std::mem::size_of::<Span>(), 0);
            assert_eq!(std::mem::size_of::<MetricsRegistry>(), 0);
        }

        #[test]
        fn the_noop_registry_never_registers_anything() {
            assert!(!enabled(), "feature-off builds can never enable");
            assert!(!enable(), "enable() must refuse without the feature");
            let registry = global();
            let counter = registry.counter("noop.counter");
            counter.inc();
            counter.add(7);
            let gauge = registry.gauge_labelled("noop.gauge", ("k", "v"));
            gauge.set(3.5);
            gauge.add(-1.0);
            let histogram = registry.histogram("noop.histogram");
            histogram.record(123.0);
            {
                let _span = histogram.span();
            }
            {
                let _span = span("noop.span_ns");
            }
            assert_eq!(counter.value(), 0);
            assert_eq!(gauge.value(), 0.0);
            assert_eq!(histogram.snapshot().count, 0);
            assert_eq!(registry.instrument_count(), 0, "nothing may allocate");
            assert!(
                registry.render().contains("telemetry disabled"),
                "the disabled snapshot names its state"
            );
            assert!(parse_prometheus(&registry.render())
                .expect("disabled snapshot still parses")
                .is_empty());
        }
    }
}
