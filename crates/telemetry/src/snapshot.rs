//! Point-in-time histogram state and its quantile arithmetic.
//!
//! The snapshot type is compiled in both modes (a no-op
//! [`Histogram`](crate::Histogram) returns an empty one), so the bucket
//! arithmetic has exactly one implementation and the quantile edge cases
//! are testable without the feature.

/// Total bucket cells per histogram: indices `0..=38` hold the finite
/// log-scale upper bounds `2^0, 2^1, …, 2^38` (bucket `i` counts values
/// in `(2^(i-1), 2^i]`; everything `≤ 1` lands in bucket 0), and index
/// 39 is the saturating overflow bucket (`+Inf`). In nanoseconds the
/// finite range spans 1 ns to ≈ 275 s — wider than any latency the
/// instruments measure.
pub const BUCKET_CELLS: usize = 40;

/// The upper bound of bucket `index`: `2^index` for the finite buckets,
/// `+Inf` for the overflow cell (and any out-of-range index).
pub fn bucket_bound(index: usize) -> f64 {
    if index + 1 >= BUCKET_CELLS {
        f64::INFINITY
    } else {
        (1u64 << index) as f64
    }
}

/// The bucket a recorded value falls into. Values `≤ 1` (and NaN and
/// negatives — nothing the span timers produce) land in bucket 0;
/// values above the last finite bound saturate into the overflow cell.
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
pub(crate) fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= 1.0 {
        return 0;
    }
    // Exact at the edges: powers of two have exact f64 log2, so a value
    // *at* a bound stays in that bound's bucket and the first value
    // above it moves to the next. Float→int casts saturate, so +Inf
    // clamps into the overflow cell.
    let index = value.log2().ceil() as usize;
    index.min(BUCKET_CELLS - 1)
}

/// A point-in-time copy of one histogram: per-bucket counts (not
/// cumulative), the total count and the running sum. Concurrent
/// recording during the copy can skew cells by in-flight updates; each
/// cell is individually exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Per-bucket counts, `buckets[i]` covering `(2^(i-1), 2^i]` (see
    /// [`BUCKET_CELLS`]).
    pub buckets: [u64; BUCKET_CELLS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0.0,
            buckets: [0; BUCKET_CELLS],
        }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile estimate (upper bound of the bucket holding the
    /// rank-`⌈q·count⌉` value), or `None` for an empty histogram —
    /// there is no honest number to report before the first record.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &cell) in self.buckets.iter().enumerate() {
            seen += cell;
            if seen >= rank {
                return Some(bucket_bound(index));
            }
        }
        // Cells summed short of `count`: a torn concurrent snapshot;
        // the overflow bound is the only safe answer.
        Some(f64::INFINITY)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact() {
        // Below, at and above the smallest bound.
        assert_eq!(bucket_index(0.5), 0);
        assert_eq!(bucket_index(1.0), 0);
        assert_eq!(bucket_index(1.0000001), 1);
        // At and around an interior power-of-two bound.
        assert_eq!(bucket_index(1024.0), 10);
        assert_eq!(bucket_index(1023.0), 10);
        assert_eq!(bucket_index(1025.0), 11);
        assert_eq!(bucket_index(513.0), 10, "(512, 1024] is bucket 10");
        assert_eq!(bucket_index(512.0), 9);
        // Degenerate values all land in the first bucket.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-7.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
    }

    #[test]
    fn values_above_the_last_finite_bound_saturate() {
        let last = BUCKET_CELLS - 1;
        assert_eq!(bucket_index((1u64 << 38) as f64), 38, "at the last bound");
        assert_eq!(bucket_index((1u64 << 38) as f64 * 2.0), last);
        assert_eq!(bucket_index(1e30), last);
        assert_eq!(bucket_index(f64::INFINITY), last);
        assert_eq!(bucket_bound(last), f64::INFINITY);
        assert_eq!(bucket_bound(last + 10), f64::INFINITY);
    }

    #[test]
    fn empty_histogram_quantiles_are_none() {
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.0), None);
        assert_eq!(empty.p50(), None);
        assert_eq!(empty.p95(), None);
        assert_eq!(empty.p99(), None);
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let mut snapshot = HistogramSnapshot::default();
        // 90 values in (1, 2], 9 in (2, 4], 1 in the overflow cell.
        snapshot.buckets[1] = 90;
        snapshot.buckets[2] = 9;
        snapshot.buckets[BUCKET_CELLS - 1] = 1;
        snapshot.count = 100;
        assert_eq!(snapshot.p50(), Some(2.0));
        assert_eq!(snapshot.quantile(0.90), Some(2.0));
        assert_eq!(snapshot.p95(), Some(4.0));
        assert_eq!(snapshot.p99(), Some(4.0));
        assert_eq!(snapshot.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(snapshot.quantile(0.0), Some(2.0), "rank clamps to 1");
    }
}
