//! Undirected simple graphs with adjacency-list storage.

use std::collections::BTreeSet;
use std::fmt;

/// An undirected simple graph on vertices `0..n`.
///
/// Self-loops and parallel edges are rejected: a graphical coordination game
/// pairs distinct players and plays each basic game once per edge.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// Sorted adjacency lists.
    adj: Vec<Vec<usize>>,
    /// Edge list with `u < v`, kept sorted for deterministic iteration.
    edges: BTreeSet<(usize, usize)>,
}

impl Graph {
    /// Creates an empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            adj: vec![Vec::new(); n],
            edges: BTreeSet::new(),
        }
    }

    /// Creates a graph on `n` vertices from an edge list.
    ///
    /// Bulk construction: adjacency lists are sorted once at the end rather
    /// than per insertion, so dense-degree graphs (the coloured-revision
    /// benchmarks use circulants with hundreds of neighbours per vertex)
    /// build in `O(m log m)` instead of `O(m·Δ log Δ)`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops. Duplicate edges are ignored.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range");
            assert_ne!(u, v, "self-loops are not allowed");
            let key = (u.min(v), u.max(v));
            if g.edges.insert(key) {
                g.adj[u].push(v);
                g.adj[v].push(u);
            }
        }
        for adj in &mut g.adj {
            adj.sort_unstable();
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` when the edge was new.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or on a self-loop.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        let key = (u.min(v), u.max(v));
        if self.edges.insert(key) {
            self.adj[u].push(v);
            self.adj[v].push(u);
            self.adj[u].sort_unstable();
            self.adj[v].sort_unstable();
            true
        } else {
            false
        }
    }

    /// Returns `true` when `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u == v || u >= self.n || v >= self.n {
            return false;
        }
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Neighbours of `u`, sorted ascending.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Iterator over edges as `(u, v)` with `u < v`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Vertex iterator `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = usize> {
        0..self.n
    }

    /// Returns the subgraph induced by `vertices`, together with the mapping from
    /// new indices to original vertex ids.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let keep: Vec<usize> = {
            let mut v: Vec<usize> = vertices.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        };
        let index_of = |x: usize| keep.binary_search(&x).ok();
        let mut g = Graph::new(keep.len());
        for &(u, v) in &self.edges {
            if let (Some(iu), Some(iv)) = (index_of(u), index_of(v)) {
                g.add_edge(iu, iv);
            }
        }
        (g, keep)
    }

    /// Number of edges with exactly one endpoint in `set`.
    pub fn cut_size(&self, set: &[bool]) -> usize {
        assert_eq!(set.len(), self.n, "cut_size: indicator length mismatch");
        self.edges
            .iter()
            .filter(|&&(u, v)| set[u] != set[v])
            .count()
    }

    /// Returns `true` when the graph is `k`-regular.
    pub fn is_regular(&self, k: usize) -> bool {
        (0..self.n).all(|u| self.degree(u) == k)
    }

    /// Density: `|E| / (n choose 2)`. Returns 0 for graphs with fewer than two vertices.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let max = self.n * (self.n - 1) / 2;
        self.num_edges() as f64 / max as f64
    }

    /// The degree histogram: `hist[d]` is the number of vertices of degree
    /// `d`, with `hist.len() == max_degree() + 1` (a single `[n]` entry for
    /// edgeless graphs, empty for the empty graph). Summarises how skewed
    /// the neighbourhood sizes are — the locality bench rows report it
    /// alongside pre/post-relabelling bandwidth.
    pub fn degree_histogram(&self) -> Vec<usize> {
        if self.n == 0 {
            return Vec::new();
        }
        let mut hist = vec![0usize; self.max_degree() + 1];
        for u in 0..self.n {
            hist[self.degree(u)] += 1;
        }
        hist
    }

    /// The isomorphic graph with vertex `v` renamed to
    /// `ordering.position_of(v)` — the permutation layer under the
    /// bandwidth-minimising relabelling (`crate::relabel`): relabel with an
    /// RCM ordering, freeze to CSR, and a sweep in new-label order touches
    /// near-contiguous neighbourhoods.
    ///
    /// Construction is `O(m log m)` via one sorted edge vector (bulk
    /// `BTreeSet` build), deliberately bypassing the per-insert cost of
    /// [`Graph::from_edges`] — relabelling a `10⁷`-vertex bench instance
    /// happens on the measurement path.
    ///
    /// # Panics
    /// Panics when the ordering covers a different vertex count.
    pub fn relabelled(&self, ordering: &crate::ordering::VertexOrdering) -> Graph {
        assert_eq!(
            ordering.len(),
            self.n,
            "ordering covers a different vertex count"
        );
        let mut mapped: Vec<(usize, usize)> = self
            .edges
            .iter()
            .map(|&(u, v)| {
                let (a, b) = (ordering.position_of(u), ordering.position_of(v));
                (a.min(b), a.max(b))
            })
            .collect();
        mapped.sort_unstable();
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &mapped {
            adj[u].push(v);
            adj[v].push(u);
        }
        for row in &mut adj {
            row.sort_unstable();
        }
        Graph {
            n: self.n,
            adj,
            // A permutation maps distinct edges to distinct edges, so the
            // sorted vector bulk-loads without dedup.
            edges: mapped.into_iter().collect(),
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.n,
            self.num_edges(),
            self.edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn add_edge_dedup_and_symmetry() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0)); // duplicate in the other direction
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2);
    }

    #[test]
    fn from_edges_and_degrees() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_regular(2));
        assert_eq!(g.max_degree(), 2);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2); // 0-1 and 1-2
        assert_eq!(map, vec![0, 1, 2]);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn cut_size_counts_crossing_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        // Split {0,1} vs {2,3}: crossing edges 1-2 and 3-0.
        let set = vec![true, true, false, false];
        assert_eq!(g.cut_size(&set), 2);
        // Whole graph on one side: no crossing edges.
        assert_eq!(g.cut_size(&[true; 4]), 0);
    }

    #[test]
    fn degree_histogram_counts_vertices_per_degree() {
        // Star on 4 vertices: one hub of degree 3, three leaves of degree 1.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree_histogram(), vec![0, 3, 0, 1]);
        assert_eq!(Graph::new(3).degree_histogram(), vec![3]);
        assert_eq!(Graph::new(0).degree_histogram(), Vec::<usize>::new());
        let ring = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(ring.degree_histogram(), vec![0, 0, 5]);
    }

    #[test]
    fn relabelled_is_isomorphic_under_the_permutation() {
        use crate::ordering::VertexOrdering;
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let ordering = VertexOrdering::new(vec![4, 2, 0, 3, 1]).unwrap();
        let r = g.relabelled(&ordering);
        assert_eq!(r.num_vertices(), 5);
        assert_eq!(r.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(
                r.has_edge(ordering.position_of(u), ordering.position_of(v)),
                "edge ({u},{v}) lost under relabelling"
            );
        }
        // Degrees are carried over vertexwise.
        for v in 0..5 {
            assert_eq!(r.degree(ordering.position_of(v)), g.degree(v));
        }
        // Identity is a no-op, and adjacency rows stay sorted.
        assert_eq!(g.relabelled(&VertexOrdering::identity(5)), g);
        for v in 0..5 {
            assert!(r.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "different vertex count")]
    fn relabelled_rejects_mismatched_ordering() {
        use crate::ordering::VertexOrdering;
        let g = Graph::from_edges(3, &[(0, 1)]);
        let _ = g.relabelled(&VertexOrdering::identity(2));
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!((g.density() - 1.0).abs() < 1e-12);
        assert_eq!(Graph::new(1).density(), 0.0);
    }
}
