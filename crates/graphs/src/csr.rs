//! Compressed sparse row (CSR) adjacency: the memory-locality substrate of
//! the large-`n` engine paths.
//!
//! [`Graph`] stores one heap allocation *per vertex* (`Vec<Vec<usize>>`),
//! which is convenient for construction and mutation but hostile to the
//! coloured sweep at `n = 10⁶`–`10⁷`: neighbour lists land wherever the
//! allocator put them, every hop is a pointer chase, and each neighbour id
//! costs 8 bytes. [`CsrGraph`] is the frozen, read-optimised view: **two
//! contiguous `u32` arrays** (`offsets`, `targets`), so a sweep over players
//! `p, p+1, …` walks `targets` strictly forward, the hardware prefetcher
//! sees one linear stream, and the whole adjacency of a degree-8 million-
//! vertex graph is 36 MB instead of ~160 MB of scattered `Vec` headers and
//! `usize` ids.
//!
//! The u32 index choice is a checked contract, not a hope:
//! [`CsrGraph::from_graph`] validates that both the vertex count and the
//! directed-edge count fit, and panics otherwise — beyond `u32` the working
//! set no longer fits any cache hierarchy this engine targets, and a graph
//! that large should be sharded, not silently truncated.

use crate::graph::Graph;
use std::fmt;

/// A frozen compressed-sparse-row view of an undirected graph: the
/// neighbours of vertex `u` are `targets[offsets[u]..offsets[u + 1]]`,
/// sorted ascending, with both arrays contiguous `u32`.
///
/// Built from a [`Graph`] with [`CsrGraph::from_graph`]; immutable by
/// design (relabel or rebuild the source graph and convert again — see
/// `Graph::relabelled`).
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    /// `offsets[u]..offsets[u + 1]` delimits the row of vertex `u`
    /// (length `n + 1`, monotone, `offsets[n] == targets.len()`).
    offsets: Vec<u32>,
    /// Concatenated neighbour rows, ascending within each row
    /// (length `2m` — each undirected edge appears in both rows).
    targets: Vec<u32>,
}

/// Why a [`Graph`] cannot be frozen into u32-indexed CSR form: one of the
/// two index-width contracts of [`CsrGraph::from_graph`] failed. The typed
/// form exists for admission-time validation in service contexts — a
/// malformed job description must come back as a rejection, not kill a
/// shared worker through the `assert!`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrIndexError {
    /// The vertex count exceeds `u32::MAX`.
    TooManyVertices(usize),
    /// The directed-edge count (`2m`) exceeds `u32::MAX`.
    TooManyEdges(usize),
}

impl fmt::Display for CsrIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrIndexError::TooManyVertices(n) => {
                write!(f, "CSR u32 indices cannot address {n} vertices")
            }
            CsrIndexError::TooManyEdges(directed) => {
                write!(
                    f,
                    "CSR u32 offsets cannot address {directed} directed edges"
                )
            }
        }
    }
}

impl std::error::Error for CsrIndexError {}

/// The u32-validity contract of [`CsrGraph`] on raw counts, factored out so
/// it is checkable (and unit-testable) without materialising a graph too
/// large to build.
pub(crate) fn check_u32_bounds(
    vertices: usize,
    directed_edges: usize,
) -> Result<(), CsrIndexError> {
    if vertices > u32::MAX as usize {
        return Err(CsrIndexError::TooManyVertices(vertices));
    }
    if directed_edges > u32::MAX as usize {
        return Err(CsrIndexError::TooManyEdges(directed_edges));
    }
    Ok(())
}

impl CsrGraph {
    /// Freezes `graph` into CSR form.
    ///
    /// # Panics
    /// Panics when the vertex count or the directed-edge count (`2m`)
    /// exceeds `u32::MAX` — the u32-index validity check. Use
    /// [`try_from_graph`](Self::try_from_graph) where the failure must be
    /// a value instead.
    pub fn from_graph(graph: &Graph) -> Self {
        match Self::try_from_graph(graph) {
            Ok(csr) => csr,
            Err(e) => panic!("{e}"),
        }
    }

    /// The fallible form of [`from_graph`](Self::from_graph): `Err` with a
    /// typed [`CsrIndexError`] instead of panicking when the graph exceeds
    /// the u32 index widths.
    pub fn try_from_graph(graph: &Graph) -> Result<Self, CsrIndexError> {
        let n = graph.num_vertices();
        let directed = 2 * graph.num_edges();
        check_u32_bounds(n, directed)?;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(directed);
        offsets.push(0u32);
        for u in 0..n {
            // Graph keeps rows sorted ascending; copy preserves that.
            targets.extend(graph.neighbors(u).iter().map(|&v| v as u32));
            offsets.push(targets.len() as u32);
        }
        debug_assert_eq!(targets.len(), directed);
        Ok(Self {
            n,
            offsets,
            targets,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbours of `u`, ascending, as a slice of the one contiguous
    /// target array.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Hints the cache that the row of `u` is about to be read.
    ///
    /// A colour-class sweep visits rows at a stride of roughly
    /// `num_classes` vertices, which is wide enough (hundreds of bytes at
    /// moderate degree) to defeat the hardware stride prefetcher once the
    /// target array spills out of L2 — exactly the `n ≥ 10⁶` regime this
    /// crate exists for. Issuing the row's first and last line a few
    /// players ahead of use hides that latency. No-op off x86_64.
    ///
    /// # Panics
    /// Panics when `u` is out of range.
    #[inline]
    pub fn prefetch_row(&self, u: usize) {
        let start = self.offsets[u] as usize;
        let end = self.offsets[u + 1] as usize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `offsets` is monotone with `offsets[n] == targets.len()`,
        // so `start..end` is in range; a prefetch has no other effect.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let ptr = self.targets.as_ptr();
            _mm_prefetch(ptr.add(start) as *const i8, _MM_HINT_T0);
            if end > start {
                _mm_prefetch(ptr.add(end - 1) as *const i8, _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (start, end);
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// The bandwidth of the graph *in its current labelling*: the maximum
    /// `|u - v|` over edges. The quantity the RCM relabelling minimises —
    /// after a good relabelling every neighbourhood row points at nearby
    /// ids, so a sweep's profile reads stay inside a small moving window.
    pub fn bandwidth(&self) -> usize {
        (0..self.n)
            .flat_map(|u| {
                self.neighbors(u)
                    .iter()
                    .map(move |&v| u.abs_diff(v as usize))
            })
            .max()
            .unwrap_or(0)
    }

    /// Heap footprint of the two index arrays in bytes — the number the
    /// memory-locality bench rows report against `Vec<Vec<usize>>`.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets.as_slice())
            + std::mem::size_of_val(self.targets.as_slice())
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrGraph(n={}, m={}, bytes={})",
            self.n,
            self.num_edges(),
            self.memory_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::GraphBuilder;

    #[test]
    fn csr_agrees_with_graph_on_every_builder_topology() {
        for graph in [
            GraphBuilder::path(7),
            GraphBuilder::ring(8),
            GraphBuilder::clique(6),
            GraphBuilder::star(9),
            GraphBuilder::grid(3, 5),
            GraphBuilder::torus(3, 4),
            GraphBuilder::hypercube(4),
            GraphBuilder::circulant(12, 3),
            GraphBuilder::binary_tree(12),
        ] {
            let csr = CsrGraph::from_graph(&graph);
            assert_eq!(csr.num_vertices(), graph.num_vertices());
            assert_eq!(csr.num_edges(), graph.num_edges());
            assert_eq!(csr.max_degree(), graph.max_degree());
            for u in 0..graph.num_vertices() {
                assert_eq!(csr.degree(u), graph.degree(u));
                let row: Vec<usize> = csr.neighbors(u).iter().map(|&v| v as usize).collect();
                assert_eq!(row, graph.neighbors(u), "row {u} differs");
                assert!(csr.neighbors(u).windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let csr = CsrGraph::from_graph(&Graph::new(0));
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(csr.bandwidth(), 0);
        let csr = CsrGraph::from_graph(&Graph::new(3));
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
    }

    #[test]
    fn bandwidth_in_current_labels() {
        // Ring of 6: the wrap edge {0, 5} dominates.
        assert_eq!(CsrGraph::from_graph(&GraphBuilder::ring(6)).bandwidth(), 5);
        // Path: every edge spans 1.
        assert_eq!(CsrGraph::from_graph(&GraphBuilder::path(6)).bandwidth(), 1);
    }

    #[test]
    fn memory_is_two_contiguous_u32_arrays() {
        let graph = GraphBuilder::circulant(100, 4);
        let csr = CsrGraph::from_graph(&graph);
        // (n + 1) offsets + 2m targets, 4 bytes each.
        assert_eq!(csr.memory_bytes(), 4 * (101 + 2 * graph.num_edges()));
    }

    #[test]
    fn try_from_graph_matches_the_panicking_constructor_on_valid_input() {
        let graph = GraphBuilder::torus(4, 5);
        let fallible = CsrGraph::try_from_graph(&graph).expect("fits u32 comfortably");
        assert_eq!(fallible, CsrGraph::from_graph(&graph));
    }

    #[test]
    fn u32_bounds_reject_oversized_counts_with_typed_errors() {
        // The raw-count seam: graphs beyond u32 cannot be materialised in a
        // test, so the contract is pinned on the counts themselves.
        assert_eq!(check_u32_bounds(100, 400), Ok(()));
        assert_eq!(
            check_u32_bounds(u32::MAX as usize, u32::MAX as usize),
            Ok(())
        );
        let n = u32::MAX as usize + 1;
        assert_eq!(
            check_u32_bounds(n, 0),
            Err(CsrIndexError::TooManyVertices(n))
        );
        assert_eq!(check_u32_bounds(10, n), Err(CsrIndexError::TooManyEdges(n)));
        // The messages are the exact strings the panicking path raises.
        assert_eq!(
            CsrIndexError::TooManyVertices(n).to_string(),
            format!("CSR u32 indices cannot address {n} vertices")
        );
        assert_eq!(
            CsrIndexError::TooManyEdges(n).to_string(),
            format!("CSR u32 offsets cannot address {n} directed edges")
        );
    }
}
