//! Proper vertex colourings: the schedule substrate of coloured parallel
//! revision.
//!
//! A proper colouring partitions the vertices into **independent sets**
//! (colour classes). For the revision dynamics of a `LocalGame` this is
//! exactly the structure that makes parallelism correct: players in one
//! class are pairwise non-adjacent, so their single-tick updates commute —
//! a whole class can revise simultaneously against the frozen pre-tick
//! profile and the result is identical to any sequential ordering of the
//! same updates. The `ColouredBlocks` schedule and the
//! `step_coloured_par` engine path in `logit-core` build on the [`Coloring`]
//! type here.
//!
//! Two constructions are provided:
//!
//! * [`greedy_coloring`] — first-fit in vertex order; never uses more than
//!   `Δ + 1` colours (each vertex has at most `Δ` coloured neighbours when
//!   its colour is chosen), the classical bound `χ(G) ≤ Δ + 1`.
//! * [`dsatur_coloring`] — Brélaz's DSATUR: always colour the vertex with
//!   the most distinctly-coloured neighbours (saturation), tie-broken by
//!   degree then index. Also bounded by `Δ + 1`, exact on bipartite graphs,
//!   and on typical graphs it uses no more classes than first-fit (an
//!   empirical tendency, not a theorem — only `Δ + 1` is contractual) —
//!   fewer classes mean larger independent sets, i.e. wider parallel
//!   blocks.

use crate::graph::Graph;

/// A proper vertex colouring with its colour classes materialised as
/// contiguous index slices.
///
/// Internally the vertices are stored as one permutation grouped by colour
/// (`order`), with `starts[c]..starts[c + 1]` delimiting class `c` — so
/// [`Coloring::class`] hands out a contiguous `&[usize]` that a parallel
/// block update can chunk across workers without any gather step. Within a
/// class, vertices are in ascending order (deterministic block order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Colour of every vertex.
    colors: Vec<usize>,
    /// Vertices grouped by colour, ascending within each class.
    order: Vec<usize>,
    /// Class `c` occupies `order[starts[c]..starts[c + 1]]`.
    starts: Vec<usize>,
}

impl Coloring {
    /// Builds the class structure from a per-vertex colour assignment.
    ///
    /// # Panics
    /// Panics when `colors` is empty or the colour values are not exactly
    /// `0..k` for some `k` (no gaps — every class must be non-empty).
    pub fn from_colors(colors: Vec<usize>) -> Self {
        assert!(!colors.is_empty(), "a colouring needs at least one vertex");
        let num_classes = colors.iter().max().expect("non-empty") + 1;
        let mut sizes = vec![0usize; num_classes];
        for &c in &colors {
            sizes[c] += 1;
        }
        assert!(
            sizes.iter().all(|&s| s > 0),
            "colour values must be contiguous 0..k (every class non-empty)"
        );
        let mut starts = Vec::with_capacity(num_classes + 1);
        let mut acc = 0;
        starts.push(0);
        for &s in &sizes {
            acc += s;
            starts.push(acc);
        }
        // Counting sort by colour keeps each class in ascending vertex order.
        let mut cursor = starts[..num_classes].to_vec();
        let mut order = vec![0usize; colors.len()];
        for (v, &c) in colors.iter().enumerate() {
            order[cursor[c]] = v;
            cursor[c] += 1;
        }
        Self {
            colors,
            order,
            starts,
        }
    }

    /// Number of coloured vertices.
    pub fn num_vertices(&self) -> usize {
        self.colors.len()
    }

    /// Number of colour classes.
    pub fn num_classes(&self) -> usize {
        self.starts.len() - 1
    }

    /// Colour of vertex `v`.
    pub fn color_of(&self, v: usize) -> usize {
        self.colors[v]
    }

    /// The vertices of class `c`, as a contiguous slice in ascending order.
    pub fn class(&self, c: usize) -> &[usize] {
        &self.order[self.starts[c]..self.starts[c + 1]]
    }

    /// The class revising at tick `t` when classes are cycled round-robin
    /// (the `ColouredBlocks` schedule convention): `t mod num_classes`.
    pub fn class_of_tick(&self, t: u64) -> usize {
        (t % self.num_classes() as u64) as usize
    }

    /// Iterator over the colour classes, in colour order.
    pub fn classes(&self) -> impl Iterator<Item = &[usize]> {
        (0..self.num_classes()).map(move |c| self.class(c))
    }

    /// Size of the largest class (the widest parallel block).
    pub fn max_class_size(&self) -> usize {
        self.classes().map(|c| c.len()).max().unwrap_or(0)
    }

    /// The same colouring transported along a vertex relabelling: the new
    /// vertex `ordering.position_of(v)` gets `v`'s colour. Colour *values*
    /// are preserved verbatim, so class `c` of the result is exactly class
    /// `c` of `self` mapped through the permutation (same sets, same
    /// `class_of_tick` cycle) — the property that lets a relabelled engine
    /// replay the unrelabelled schedule tick for tick. Pairs with
    /// `Graph::relabelled`: a colouring proper for `g` is proper for
    /// `g.relabelled(ordering)` after this transport.
    ///
    /// # Panics
    /// Panics when the ordering covers a different vertex count.
    pub fn relabelled(&self, ordering: &crate::ordering::VertexOrdering) -> Coloring {
        assert_eq!(
            ordering.len(),
            self.num_vertices(),
            "ordering covers a different vertex count"
        );
        let mut colors = vec![0usize; self.colors.len()];
        for (v, &c) in self.colors.iter().enumerate() {
            colors[ordering.position_of(v)] = c;
        }
        Coloring::from_colors(colors)
    }

    /// `true` when the colouring is proper for `graph`: every edge joins two
    /// distinct colours (equivalently, every class is an independent set).
    ///
    /// # Panics
    /// Panics when the vertex counts disagree.
    pub fn is_proper(&self, graph: &Graph) -> bool {
        assert_eq!(
            self.num_vertices(),
            graph.num_vertices(),
            "colouring and graph cover different vertex sets"
        );
        graph.edges().all(|(u, v)| self.colors[u] != self.colors[v])
    }
}

/// First-fit greedy colouring in vertex order: each vertex takes the
/// smallest colour unused by its already-coloured neighbours.
///
/// Uses at most `Δ + 1` colours (the classical `χ(G) ≤ Δ + 1` bound, which
/// [`Coloring`] consumers may rely on to size buffers); the result is
/// always a proper colouring.
pub fn greedy_coloring(graph: &Graph) -> Coloring {
    let n = graph.num_vertices();
    assert!(n > 0, "cannot colour the empty graph");
    let mut colors = vec![usize::MAX; n];
    // `forbidden[c] == v` means colour c is used by a neighbour of v.
    let mut forbidden = vec![usize::MAX; graph.max_degree() + 1];
    for v in 0..n {
        for &u in graph.neighbors(v) {
            if colors[u] != usize::MAX {
                forbidden[colors[u]] = v;
            }
        }
        colors[v] = (0..forbidden.len())
            .find(|&c| forbidden[c] != v)
            .expect("Delta + 1 colours always suffice for first-fit");
    }
    normalise(colors)
}

/// Brélaz's DSATUR colouring: repeatedly colour the uncoloured vertex with
/// the highest *saturation* (number of distinct neighbour colours),
/// tie-broken by degree and then by index, assigning the smallest feasible
/// colour.
///
/// Like first-fit it never exceeds `Δ + 1` colours; it is exact on
/// bipartite graphs and *usually* produces no more classes than first-fit
/// (an empirical tendency, not a theorem: rare tie-break patterns exist
/// where it loses by a class, so callers may rely only on `Δ + 1` and on
/// propriety).
pub fn dsatur_coloring(graph: &Graph) -> Coloring {
    let n = graph.num_vertices();
    assert!(n > 0, "cannot colour the empty graph");
    let max_colors = graph.max_degree() + 1;
    let mut colors = vec![usize::MAX; n];
    // neighbour_colors[v][c]: does v have a neighbour coloured c?
    let mut neighbour_colors = vec![vec![false; max_colors]; n];
    let mut saturation = vec![0usize; n];
    // Selection scans only the still-uncoloured vertices (swap_remove keeps
    // the list compact); the `(saturation, degree, lowest index)` key is a
    // total order, so the winner is independent of the scan order.
    let mut uncoloured: Vec<usize> = (0..n).collect();
    while !uncoloured.is_empty() {
        // Highest saturation, then highest degree, then lowest index.
        let slot = (0..uncoloured.len())
            .max_by(|&i, &j| {
                let (a, b) = (uncoloured[i], uncoloured[j]);
                saturation[a]
                    .cmp(&saturation[b])
                    .then(graph.degree(a).cmp(&graph.degree(b)))
                    .then(b.cmp(&a))
            })
            .expect("an uncoloured vertex remains");
        let v = uncoloured.swap_remove(slot);
        let c = (0..max_colors)
            .find(|&c| !neighbour_colors[v][c])
            .expect("Delta + 1 colours always suffice for DSATUR");
        colors[v] = c;
        for &u in graph.neighbors(v) {
            if colors[u] == usize::MAX && !neighbour_colors[u][c] {
                neighbour_colors[u][c] = true;
                saturation[u] += 1;
            }
        }
    }
    normalise(colors)
}

/// Compacts colour values to `0..k` in first-appearance order (DSATUR can
/// skip a value when a tie-break order never needs it) and builds the class
/// structure.
fn normalise(colors: Vec<usize>) -> Coloring {
    let mut remap: Vec<Option<usize>> = vec![None; colors.iter().max().map_or(0, |&m| m + 1)];
    let mut next = 0usize;
    let compact: Vec<usize> = colors
        .iter()
        .map(|&c| {
            *remap[c].get_or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect();
    Coloring::from_colors(compact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_structure(coloring: &Coloring, graph: &Graph) {
        assert!(coloring.is_proper(graph), "colouring must be proper");
        assert!(
            coloring.num_classes() <= graph.max_degree() + 1,
            "chi <= Delta + 1 must hold: {} classes, Delta = {}",
            coloring.num_classes(),
            graph.max_degree()
        );
        // Classes partition the vertex set, ascending within each class.
        let mut seen = vec![false; graph.num_vertices()];
        for class in coloring.classes() {
            assert!(class.windows(2).all(|w| w[0] < w[1]), "class sorted");
            for &v in class {
                assert!(!seen[v], "vertex {v} appears in two classes");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "classes must cover every vertex");
        // color_of agrees with class membership.
        for c in 0..coloring.num_classes() {
            for &v in coloring.class(c) {
                assert_eq!(coloring.color_of(v), c);
            }
        }
    }

    #[test]
    fn greedy_and_dsatur_are_proper_on_every_builder_topology() {
        let mut rng = StdRng::seed_from_u64(7);
        let graphs = vec![
            GraphBuilder::path(7),
            GraphBuilder::ring(8),
            GraphBuilder::ring(9),
            GraphBuilder::clique(6),
            GraphBuilder::star(9),
            GraphBuilder::grid(3, 5),
            GraphBuilder::torus(3, 4),
            GraphBuilder::hypercube(4),
            GraphBuilder::complete_bipartite(3, 5),
            GraphBuilder::binary_tree(12),
            GraphBuilder::circulant(12, 3),
            GraphBuilder::connected_erdos_renyi(14, 0.3, &mut rng, 20),
        ];
        for graph in &graphs {
            check_structure(&greedy_coloring(graph), graph);
            check_structure(&dsatur_coloring(graph), graph);
        }
    }

    #[test]
    fn exact_chromatic_numbers_on_known_topologies() {
        // Even ring: chi = 2; odd ring: chi = 3. Both algorithms achieve it.
        assert_eq!(greedy_coloring(&GraphBuilder::ring(8)).num_classes(), 2);
        assert_eq!(dsatur_coloring(&GraphBuilder::ring(8)).num_classes(), 2);
        assert_eq!(greedy_coloring(&GraphBuilder::ring(9)).num_classes(), 3);
        assert_eq!(dsatur_coloring(&GraphBuilder::ring(9)).num_classes(), 3);
        // Clique: chi = n.
        assert_eq!(greedy_coloring(&GraphBuilder::clique(5)).num_classes(), 5);
        assert_eq!(dsatur_coloring(&GraphBuilder::clique(5)).num_classes(), 5);
        // Bipartite graphs: chi = 2 (DSATUR is exact on bipartite graphs;
        // first-fit in index order also achieves 2 on these).
        for bip in [
            GraphBuilder::complete_bipartite(3, 4),
            GraphBuilder::path(6),
            GraphBuilder::star(7),
            GraphBuilder::grid(4, 4),
            GraphBuilder::hypercube(3),
            GraphBuilder::binary_tree(10),
        ] {
            assert_eq!(dsatur_coloring(&bip).num_classes(), 2, "{bip:?}");
            assert_eq!(greedy_coloring(&bip).num_classes(), 2, "{bip:?}");
        }
    }

    #[test]
    fn classes_are_contiguous_slices_of_one_permutation() {
        let coloring = greedy_coloring(&GraphBuilder::ring(8));
        // Even ring, first-fit: alternating colours.
        assert_eq!(coloring.class(0), &[0, 2, 4, 6]);
        assert_eq!(coloring.class(1), &[1, 3, 5, 7]);
        assert_eq!(coloring.max_class_size(), 4);
        assert_eq!(coloring.class_of_tick(0), 0);
        assert_eq!(coloring.class_of_tick(1), 1);
        assert_eq!(coloring.class_of_tick(2), 0);
        // The two classes are adjacent slices of the same backing array.
        let base = coloring.class(0).as_ptr();
        assert_eq!(unsafe { base.add(4) }, coloring.class(1).as_ptr());
    }

    #[test]
    fn relabelled_colouring_transports_classes_through_the_permutation() {
        use crate::ordering::VertexOrdering;
        let graph = GraphBuilder::circulant(10, 2);
        let coloring = greedy_coloring(&graph);
        let ordering = VertexOrdering::new(vec![7, 3, 9, 0, 5, 1, 8, 2, 6, 4]).unwrap();
        let relabelled = coloring.relabelled(&ordering);
        assert_eq!(relabelled.num_classes(), coloring.num_classes());
        // Vertexwise transport and exact class-set correspondence.
        for v in 0..10 {
            assert_eq!(
                relabelled.color_of(ordering.position_of(v)),
                coloring.color_of(v)
            );
        }
        for c in 0..coloring.num_classes() {
            let mut mapped: Vec<usize> = coloring
                .class(c)
                .iter()
                .map(|&v| ordering.position_of(v))
                .collect();
            mapped.sort_unstable();
            assert_eq!(relabelled.class(c), mapped.as_slice());
        }
        // Propriety survives alongside Graph::relabelled.
        assert!(relabelled.is_proper(&graph.relabelled(&ordering)));
    }

    #[test]
    fn from_colors_roundtrips_and_validates() {
        let coloring = Coloring::from_colors(vec![1, 0, 1, 2, 0]);
        assert_eq!(coloring.num_classes(), 3);
        assert_eq!(coloring.class(0), &[1, 4]);
        assert_eq!(coloring.class(1), &[0, 2]);
        assert_eq!(coloring.class(2), &[3]);
        assert_eq!(coloring.color_of(3), 2);
        assert_eq!(coloring.num_vertices(), 5);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gapped_colors_rejected() {
        let _ = Coloring::from_colors(vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_coloring_rejected() {
        let _ = Coloring::from_colors(Vec::new());
    }

    #[test]
    fn improper_colouring_detected() {
        let graph = GraphBuilder::path(3);
        let proper = Coloring::from_colors(vec![0, 1, 0]);
        let improper = Coloring::from_colors(vec![0, 0, 1]);
        assert!(proper.is_proper(&graph));
        assert!(!improper.is_proper(&graph));
    }

    #[test]
    fn dsatur_rarely_beaten_by_greedy_on_small_random_graphs() {
        // "DSATUR <= first-fit" is an empirical tendency, NOT a theorem:
        // adversarial tie-break patterns exist where DSATUR loses by a
        // class (e.g. an 8-vertex graph with greedy = 3, DSATUR = 4). This
        // pins the tendency on a frozen fixture — every graph within one
        // class of first-fit, and the strict majority at or below it —
        // without codifying the false universal claim.
        let mut rng = StdRng::seed_from_u64(99);
        let mut at_most_greedy = 0usize;
        let mut graphs = 0usize;
        for _ in 0..30 {
            let g = GraphBuilder::erdos_renyi(12, 0.35, &mut rng);
            if g.num_edges() == 0 {
                continue;
            }
            graphs += 1;
            let greedy = greedy_coloring(&g).num_classes();
            let dsatur = dsatur_coloring(&g).num_classes();
            assert!(
                dsatur <= greedy + 1,
                "DSATUR used {dsatur} classes where first-fit used {greedy} on {g:?}"
            );
            if dsatur <= greedy {
                at_most_greedy += 1;
            }
        }
        assert!(
            at_most_greedy * 10 >= graphs * 9,
            "DSATUR should match or beat first-fit on ~all of the fixture: {at_most_greedy}/{graphs}"
        );
    }

    #[test]
    fn circulant_colouring_has_clique_lower_bound() {
        // circulant(n, k) contains cliques of size k + 1 (any k + 1
        // consecutive vertices), so chi >= k + 1; greedy stays within
        // Delta + 1 = 2k + 1.
        let g = GraphBuilder::circulant(30, 4);
        let coloring = greedy_coloring(&g);
        assert!(coloring.num_classes() >= 5);
        assert!(coloring.num_classes() <= 9);
        check_structure(&coloring, &g);
    }
}
