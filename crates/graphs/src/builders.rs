//! Standard graph topologies.
//!
//! The paper's Section 5 studies graphical coordination games on a general graph
//! (Theorem 5.1, parameterised by cutwidth), on the clique (Theorem 5.5) and on
//! the ring (Theorems 5.6–5.7). The experiment harness sweeps over these plus a
//! handful of other classic topologies with known or easily-computed cutwidths.

use crate::graph::Graph;
use rand::Rng;

/// Factory for the standard topologies used in the experiments.
///
/// All constructors return simple undirected graphs on vertices `0..n`.
pub struct GraphBuilder;

impl GraphBuilder {
    /// Path `0 - 1 - ... - (n-1)`.
    pub fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    /// Ring (cycle) on `n ≥ 3` vertices.
    ///
    /// # Panics
    /// Panics for `n < 3` (a cycle needs at least three vertices to be simple).
    pub fn ring(n: usize) -> Graph {
        assert!(n >= 3, "a ring needs at least 3 vertices, got {n}");
        let mut g = Self::path(n);
        g.add_edge(n - 1, 0);
        g
    }

    /// Complete graph (clique) on `n` vertices.
    pub fn clique(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Star with centre `0` and `n - 1` leaves.
    pub fn star(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge(0, v);
        }
        g
    }

    /// `rows × cols` grid graph (4-neighbour lattice).
    pub fn grid(rows: usize, cols: usize) -> Graph {
        let n = rows * cols;
        let mut g = Graph::new(n);
        let idx = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    g.add_edge(idx(r, c), idx(r, c + 1));
                }
                if r + 1 < rows {
                    g.add_edge(idx(r, c), idx(r + 1, c));
                }
            }
        }
        g
    }

    /// `rows × cols` torus (grid with wrap-around), requires `rows, cols ≥ 3`
    /// so that wrap-around edges are neither self-loops nor duplicates.
    pub fn torus(rows: usize, cols: usize) -> Graph {
        assert!(
            rows >= 3 && cols >= 3,
            "torus requires both dimensions >= 3, got {rows}x{cols}"
        );
        let mut g = Self::grid(rows, cols);
        let idx = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            g.add_edge(idx(r, cols - 1), idx(r, 0));
        }
        for c in 0..cols {
            g.add_edge(idx(rows - 1, c), idx(0, c));
        }
        g
    }

    /// Hypercube on `2^d` vertices; vertices are adjacent when their indices
    /// differ in exactly one bit.
    pub fn hypercube(d: usize) -> Graph {
        let n = 1usize << d;
        let mut g = Graph::new(n);
        for u in 0..n {
            for b in 0..d {
                let v = u ^ (1 << b);
                if u < v {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Complete bipartite graph `K_{a,b}`; the first `a` vertices form one side.
    pub fn complete_bipartite(a: usize, b: usize) -> Graph {
        let mut g = Graph::new(a + b);
        for u in 0..a {
            for v in 0..b {
                g.add_edge(u, a + v);
            }
        }
        g
    }

    /// Complete binary tree with `n` vertices in heap order
    /// (vertex `i` has children `2i+1` and `2i+2`).
    pub fn binary_tree(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i, (i - 1) / 2);
        }
        g
    }

    /// Circulant graph: a ring where every vertex is also joined to its `k`
    /// nearest neighbours on each side (degree `2k`, so `min(2k, n - 1)`
    /// when the windows wrap into each other).
    ///
    /// The dense-degree regular topology of the coloured-revision
    /// benchmarks: any `k + 1` consecutive vertices form a clique, so
    /// `χ ≥ k + 1`, while greedy colouring stays within `Δ + 1 = 2k + 1` —
    /// colour classes of size `≈ n / (k + 1)`.
    ///
    /// # Panics
    /// Panics for `k < 1` or `n < 2k + 1` (the windows must not cover the
    /// whole ring).
    pub fn circulant(n: usize, k: usize) -> Graph {
        assert!(k >= 1, "circulant needs at least one neighbour per side");
        assert!(
            n > 2 * k,
            "circulant needs n >= 2k + 1, got n = {n}, k = {k}"
        );
        let mut edges = Vec::with_capacity(n * k);
        for u in 0..n {
            for d in 1..=k {
                edges.push((u, (u + d) % n));
            }
        }
        Graph::from_edges(n, &edges)
    }

    /// Erdős–Rényi random graph `G(n, p)`.
    pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// A connected Erdős–Rényi sample: draws `G(n, p)` repeatedly (up to
    /// `max_attempts`) until a connected graph is found, otherwise connects the
    /// components with a spanning path and returns the result.
    pub fn connected_erdos_renyi<R: Rng + ?Sized>(
        n: usize,
        p: f64,
        rng: &mut R,
        max_attempts: usize,
    ) -> Graph {
        for _ in 0..max_attempts {
            let g = Self::erdos_renyi(n, p, rng);
            if crate::traversal::is_connected(&g) {
                return g;
            }
        }
        let mut g = Self::erdos_renyi(n, p, rng);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_properties() {
        let g = GraphBuilder::path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn ring_is_2_regular() {
        let g = GraphBuilder::ring(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_regular(2));
        assert!(g.has_edge(5, 0));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small_panics() {
        let _ = GraphBuilder::ring(2);
    }

    #[test]
    fn clique_edge_count() {
        for n in 1..8 {
            let g = GraphBuilder::clique(n);
            assert_eq!(g.num_edges(), n * (n - 1) / 2);
            if n > 1 {
                assert!(g.is_regular(n - 1));
            }
        }
    }

    #[test]
    fn star_degrees() {
        let g = GraphBuilder::star(7);
        assert_eq!(g.degree(0), 6);
        for v in 1..7 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn grid_and_torus_edge_counts() {
        let g = GraphBuilder::grid(3, 4);
        // 3*3 horizontal + 2*4 vertical = 9 + 8 = 17
        assert_eq!(g.num_edges(), 17);
        let t = GraphBuilder::torus(3, 4);
        // torus on r x c has 2*r*c edges
        assert_eq!(t.num_edges(), 24);
        assert!(t.is_regular(4));
    }

    #[test]
    fn hypercube_is_d_regular() {
        for d in 1..5 {
            let g = GraphBuilder::hypercube(d);
            assert_eq!(g.num_vertices(), 1 << d);
            assert!(g.is_regular(d));
            assert_eq!(g.num_edges(), d * (1 << d) / 2);
        }
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = GraphBuilder::complete_bipartite(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn binary_tree_is_tree() {
        let g = GraphBuilder::binary_tree(10);
        assert_eq!(g.num_edges(), 9);
        assert!(is_connected(&g));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(4, 9));
    }

    #[test]
    fn circulant_is_2k_regular_with_clique_windows() {
        let g = GraphBuilder::circulant(12, 3);
        assert!(g.is_regular(6));
        assert_eq!(g.num_edges(), 12 * 3);
        assert!(is_connected(&g));
        // Any k + 1 consecutive vertices form a clique.
        for base in 0..12 {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    assert!(g.has_edge((base + a) % 12, (base + b) % 12));
                }
            }
        }
        // k = 1 degenerates to the plain ring.
        let ring = GraphBuilder::circulant(7, 1);
        assert_eq!(ring.num_edges(), 7);
        assert!(ring.is_regular(2));
    }

    #[test]
    #[should_panic(expected = "n >= 2k + 1")]
    fn circulant_window_overlap_rejected() {
        let _ = GraphBuilder::circulant(6, 3);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = GraphBuilder::erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = GraphBuilder::erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn connected_erdos_renyi_is_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let g = GraphBuilder::connected_erdos_renyi(12, 0.15, &mut rng, 50);
            assert!(is_connected(&g));
        }
    }
}
