//! Vertex orderings (linear arrangements).
//!
//! The cutwidth of a graph (Section 5.1 of the paper, eq. (12)–(13)) is defined
//! as a minimum over *orderings* of the vertices; this module provides the
//! ordering type shared by the exact and heuristic cutwidth computations.

use rand::seq::SliceRandom;
use rand::Rng;

/// A permutation of the vertices `0..n` interpreted as a left-to-right linear
/// arrangement: `order[k]` is the vertex placed at position `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexOrdering {
    order: Vec<usize>,
    /// Inverse permutation: `position[v]` is the position of vertex `v`.
    position: Vec<usize>,
}

impl VertexOrdering {
    /// Identity ordering `0, 1, …, n-1`.
    pub fn identity(n: usize) -> Self {
        Self::new((0..n).collect()).expect("identity is a permutation")
    }

    /// Creates an ordering from an explicit permutation.
    ///
    /// Returns `None` when `order` is not a permutation of `0..order.len()`.
    pub fn new(order: Vec<usize>) -> Option<Self> {
        let n = order.len();
        let mut position = vec![usize::MAX; n];
        for (k, &v) in order.iter().enumerate() {
            if v >= n || position[v] != usize::MAX {
                return None;
            }
            position[v] = k;
        }
        Some(Self { order, position })
    }

    /// Uniformly random ordering.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        Self::new(order).expect("shuffle preserves the permutation property")
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Vertex at position `k`.
    pub fn vertex_at(&self, k: usize) -> usize {
        self.order[k]
    }

    /// Position of vertex `v`.
    pub fn position_of(&self, v: usize) -> usize {
        self.position[v]
    }

    /// The underlying order as a slice (`order[k]` = vertex at position `k`).
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }

    /// Returns `true` when vertex `u` precedes (or equals) vertex `v`.
    pub fn precedes_or_equal(&self, u: usize, v: usize) -> bool {
        self.position[u] <= self.position[v]
    }

    /// Swaps the vertices at positions `a` and `b` (local-search move).
    pub fn swap_positions(&mut self, a: usize, b: usize) {
        let (va, vb) = (self.order[a], self.order[b]);
        self.order.swap(a, b);
        self.position[va] = b;
        self.position[vb] = a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_ordering() {
        let o = VertexOrdering::identity(4);
        assert_eq!(o.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(o.position_of(2), 2);
        assert!(o.precedes_or_equal(1, 3));
        assert!(o.precedes_or_equal(2, 2));
        assert!(!o.precedes_or_equal(3, 1));
    }

    #[test]
    fn new_rejects_non_permutations() {
        assert!(VertexOrdering::new(vec![0, 0, 1]).is_none());
        assert!(VertexOrdering::new(vec![0, 3]).is_none());
        assert!(VertexOrdering::new(vec![2, 0, 1]).is_some());
    }

    #[test]
    fn positions_are_inverse_of_order() {
        let o = VertexOrdering::new(vec![3, 1, 0, 2]).unwrap();
        for k in 0..4 {
            assert_eq!(o.position_of(o.vertex_at(k)), k);
        }
    }

    #[test]
    fn random_is_valid_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let o = VertexOrdering::random(8, &mut rng);
            let mut sorted = o.as_slice().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn swap_positions_updates_inverse() {
        let mut o = VertexOrdering::identity(5);
        o.swap_positions(0, 4);
        assert_eq!(o.vertex_at(0), 4);
        assert_eq!(o.vertex_at(4), 0);
        assert_eq!(o.position_of(4), 0);
        assert_eq!(o.position_of(0), 4);
    }

    #[test]
    fn empty_ordering() {
        let o = VertexOrdering::identity(0);
        assert!(o.is_empty());
        assert_eq!(o.len(), 0);
    }
}
