//! # logit-graphs
//!
//! Interaction-graph substrate for graphical coordination games (Section 5 of the
//! paper). A *social graph* `G = (V, E)` connects players; each edge carries an
//! instance of a 2×2 basic coordination game.
//!
//! The crate provides:
//!
//! * a simple undirected [`Graph`] with adjacency lists ([`graph`]),
//! * the topologies the paper reasons about — ring, clique, path — plus the usual
//!   suspects needed for the cutwidth experiments: star, grid, torus, hypercube,
//!   complete bipartite graphs, binary trees and Erdős–Rényi random graphs
//!   ([`builders`]),
//! * traversal utilities: BFS distances, connected components, diameter
//!   ([`traversal`]),
//! * a frozen **CSR adjacency** view ([`csr`]): two contiguous `u32`
//!   arrays with a validity check, the memory-locality substrate of the
//!   large-`n` engine paths in `logit-core`,
//! * **bandwidth-minimising relabelling** ([`relabel`]): reverse
//!   Cuthill–McKee orderings plus `bandwidth_of_ordering`, sharing the
//!   [`VertexOrdering`] machinery with the cutwidth computations,
//! * proper vertex **colourings** ([`coloring`]): greedy first-fit and
//!   DSATUR constructions with colour classes exposed as contiguous slices —
//!   the independent-set schedule substrate of the coloured parallel-revision
//!   engine in `logit-core` (`χ ≤ Δ + 1` by construction),
//! * **cutwidth** computation ([`cutwidth`]): the quantity `χ(G)` that drives the
//!   Theorem 5.1 upper bound `t_mix ≤ 2n³ e^{χ(G)(δ₀+δ₁)β}(nδ₀β+1)`. Exact values
//!   are computed with a `O(2ⁿ·n)` subset dynamic program; a greedy/local-search
//!   heuristic and closed forms for standard topologies are provided as
//!   cross-checks and for larger graphs.

pub mod builders;
pub mod coloring;
pub mod csr;
pub mod cutwidth;
pub mod graph;
pub mod ordering;
pub mod relabel;
pub mod traversal;

pub use builders::GraphBuilder;
pub use coloring::{dsatur_coloring, greedy_coloring, Coloring};
pub use csr::{CsrGraph, CsrIndexError};
pub use cutwidth::{cutwidth_exact, cutwidth_heuristic, cutwidth_of_ordering, CutwidthResult};
pub use graph::Graph;
pub use ordering::VertexOrdering;
pub use relabel::{bandwidth_of_ordering, rcm_ordering};
