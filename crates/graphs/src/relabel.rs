//! Bandwidth-minimising vertex relabelling (reverse Cuthill–McKee).
//!
//! The *bandwidth* of a graph under a linear arrangement is the longest
//! edge, `max_{(u,v) ∈ E} |pos(u) − pos(v)|` — the ordering-quality measure
//! for memory locality, exactly as the cutwidth of `cutwidth.rs` is the
//! ordering-quality measure for the Theorem 5.1 mixing bound. Both are
//! minima over [`VertexOrdering`]s and share that machinery; they differ in
//! what a sweep pays for a bad ordering: cutwidth counts edges *crossing* a
//! position, bandwidth bounds how far a neighbourhood read can stray from
//! the sweep cursor. A colour-class sweep over a profile array touches
//! `profile[pos(v) ± bandwidth]` at worst, so small bandwidth keeps the
//! working set inside a cache-sized moving window regardless of `n`.
//!
//! [`rcm_ordering`] is the classical reverse Cuthill–McKee heuristic:
//! per connected component, a breadth-first search from a pseudo-peripheral
//! low-degree root, neighbours visited in increasing-degree order, and the
//! final order reversed (George's observation that reversal never hurts the
//! profile and usually helps). `O(n + m log Δ)`, deterministic, and exact on
//! paths; on a label-shuffled circulant it recovers the natural bandwidth
//! up to a small constant.

use crate::graph::Graph;
use crate::ordering::VertexOrdering;

/// The bandwidth of `g` under `ordering`: `max |pos(u) − pos(v)|` over
/// edges, 0 for edgeless graphs. The companion of
/// [`cutwidth_of_ordering`](crate::cutwidth::cutwidth_of_ordering) for
/// locality rather than mixing.
///
/// # Panics
/// Panics when the ordering covers a different vertex count.
pub fn bandwidth_of_ordering(g: &Graph, ordering: &VertexOrdering) -> usize {
    assert_eq!(
        ordering.len(),
        g.num_vertices(),
        "ordering covers a different vertex count"
    );
    g.edges()
        .map(|(u, v)| ordering.position_of(u).abs_diff(ordering.position_of(v)))
        .max()
        .unwrap_or(0)
}

/// Reverse Cuthill–McKee ordering of `g`: a bandwidth-minimising heuristic
/// relabelling. `order[k]` is the *original* vertex placed at new position
/// `k`; the new label of original vertex `v` is `position_of(v)`.
///
/// Components are processed in increasing order of their minimum-degree
/// vertex; within a component the BFS root is refined to a
/// pseudo-peripheral vertex (two level-structure sweeps), neighbours are
/// enqueued by `(degree, id)`, and the concatenated order is reversed at
/// the end. Deterministic: depends only on the graph.
pub fn rcm_ordering(g: &Graph) -> VertexOrdering {
    let n = g.num_vertices();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Component roots in (degree, id) order: low-degree seeds first, and a
    // deterministic tie-break.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_unstable_by_key(|&v| (g.degree(v), v));

    // BFS level-structure scratch for the pseudo-peripheral refinement,
    // allocated once: `mark[v] == stamp` means v was reached by the current
    // sweep.
    let mut mark = vec![0u32; n];
    let mut stamp = 0u32;
    let mut queue: Vec<usize> = Vec::new();
    let mut frontier: Vec<usize> = Vec::new();

    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        // Pseudo-peripheral root: start at the component's min-degree
        // vertex and hop to a min-degree vertex of the last BFS level while
        // the eccentricity keeps growing (classical GPS refinement, capped).
        let mut root = seed;
        let mut ecc = 0usize;
        for _ in 0..4 {
            stamp += 1;
            let (far, far_ecc) = farthest_low_degree(g, root, &mut mark, stamp, &mut queue);
            if far_ecc > ecc {
                ecc = far_ecc;
                root = far;
            } else {
                break;
            }
        }

        // Cuthill–McKee BFS from the refined root, neighbours by
        // (degree, id).
        visited[root] = true;
        let mut head = order.len();
        order.push(root);
        while head < order.len() {
            let u = order[head];
            head += 1;
            frontier.clear();
            frontier.extend(g.neighbors(u).iter().copied().filter(|&v| !visited[v]));
            frontier.sort_unstable_by_key(|&v| (g.degree(v), v));
            for &v in &frontier {
                visited[v] = true;
                order.push(v);
            }
        }
    }

    order.reverse();
    VertexOrdering::new(order).expect("RCM visits every vertex exactly once")
}

/// One BFS level structure from `root`: returns the minimum-degree vertex
/// of the deepest level and the eccentricity of `root` within its
/// component. `mark`/`stamp` make the scratch reusable across sweeps
/// without an `O(n)` reset.
fn farthest_low_degree(
    g: &Graph,
    root: usize,
    mark: &mut [u32],
    stamp: u32,
    queue: &mut Vec<usize>,
) -> (usize, usize) {
    queue.clear();
    queue.push(root);
    mark[root] = stamp;
    let mut level = 0usize;
    let mut level_start = 0usize;
    loop {
        let level_end = queue.len();
        for i in level_start..level_end {
            let u = queue[i];
            for &v in g.neighbors(u) {
                if mark[v] != stamp {
                    mark[v] = stamp;
                    queue.push(v);
                }
            }
        }
        if queue.len() == level_end {
            // The last non-empty level is queue[level_start..level_end].
            let best = queue[level_start..level_end]
                .iter()
                .copied()
                .min_by_key(|&v| (g.degree(v), v))
                .expect("a BFS level is non-empty");
            return (best, level);
        }
        level_start = level_end;
        level += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::GraphBuilder;
    use crate::cutwidth::cutwidth_of_ordering;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn is_permutation(ordering: &VertexOrdering, n: usize) -> bool {
        let mut sorted = ordering.as_slice().to_vec();
        sorted.sort_unstable();
        sorted == (0..n).collect::<Vec<_>>()
    }

    #[test]
    fn rcm_is_a_permutation_on_every_topology() {
        let mut rng = StdRng::seed_from_u64(3);
        for graph in [
            GraphBuilder::path(9),
            GraphBuilder::ring(10),
            GraphBuilder::clique(6),
            GraphBuilder::star(8),
            GraphBuilder::grid(4, 5),
            GraphBuilder::torus(3, 4),
            GraphBuilder::hypercube(4),
            GraphBuilder::circulant(14, 3),
            GraphBuilder::binary_tree(11),
            GraphBuilder::erdos_renyi(20, 0.15, &mut rng), // may be disconnected
            Graph::new(5),                                 // edgeless: 5 components
        ] {
            let ordering = rcm_ordering(&graph);
            assert!(
                is_permutation(&ordering, graph.num_vertices()),
                "not a permutation on {graph:?}"
            );
        }
    }

    #[test]
    fn rcm_is_exact_on_paths_and_near_exact_on_rings() {
        // Path: optimal bandwidth is 1 and RCM finds it from any labelling.
        let path = GraphBuilder::path(20);
        assert_eq!(bandwidth_of_ordering(&path, &rcm_ordering(&path)), 1);
        // Ring: optimal is 2 (fold the cycle); RCM's chain layout gives 2.
        let ring = GraphBuilder::ring(20);
        assert!(bandwidth_of_ordering(&ring, &rcm_ordering(&ring)) <= 2);
    }

    #[test]
    fn rcm_recovers_locality_on_a_shuffled_circulant() {
        // circulant(n, k) in natural labels has bandwidth k; shuffling the
        // labels destroys it (typically Θ(n)); RCM must recover O(k).
        let k = 3;
        let natural = GraphBuilder::circulant(60, k);
        let mut rng = StdRng::seed_from_u64(11);
        let shuffle = VertexOrdering::random(60, &mut rng);
        let shuffled = natural.relabelled(&shuffle);
        let before = bandwidth_of_ordering(&shuffled, &VertexOrdering::identity(60));
        let after = bandwidth_of_ordering(&shuffled, &rcm_ordering(&shuffled));
        assert!(before > 20, "shuffle should destroy locality, got {before}");
        assert!(after <= 2 * k + 1, "RCM should recover O(k), got {after}");
    }

    #[test]
    fn rcm_orderings_also_score_well_under_cutwidth() {
        // The shared ordering machinery: the same VertexOrdering plugs into
        // cutwidth_of_ordering, and the two measures are linked — an edge
        // crossing a gap starts within the last `b` positions, each of
        // degree <= Δ, so cutwidth <= bandwidth · Δ for any ordering.
        let ring = GraphBuilder::ring(16);
        let ordering = rcm_ordering(&ring);
        let bw = bandwidth_of_ordering(&ring, &ordering);
        let cw = cutwidth_of_ordering(&ring, &ordering);
        assert!(
            cw <= bw * ring.max_degree(),
            "cutwidth {cw} vs bandwidth {bw}"
        );
        assert!(cw <= 4, "RCM ring layout should keep cutwidth small");
    }

    #[test]
    fn bandwidth_of_ordering_matches_hand_computation() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(bandwidth_of_ordering(&g, &VertexOrdering::identity(4)), 3);
        let folded = VertexOrdering::new(vec![0, 1, 3, 2]).unwrap();
        assert_eq!(bandwidth_of_ordering(&g, &folded), 2);
        assert_eq!(
            bandwidth_of_ordering(&Graph::new(3), &VertexOrdering::identity(3)),
            0
        );
    }

    #[test]
    #[should_panic(expected = "different vertex count")]
    fn mismatched_ordering_rejected() {
        let _ = bandwidth_of_ordering(&GraphBuilder::ring(5), &VertexOrdering::identity(4));
    }
}
