//! Cutwidth of a graph.
//!
//! For an ordering `ℓ` of the vertices, the paper (eq. (12)) defines
//! `E^ℓ_i = {(j,h) ∈ E : j ≤_ℓ i <_ℓ h}` — the edges crossing the gap just after
//! vertex `i` — and the cutwidth of the ordering as `χ(ℓ) = max_i |E^ℓ_i|`. The
//! cutwidth of the graph, `χ(G) = min_ℓ χ(ℓ)`, appears in the exponent of the
//! Theorem 5.1 mixing-time bound for graphical coordination games.
//!
//! Computing `χ(G)` is NP-hard in general, so three routes are provided:
//!
//! * [`cutwidth_of_ordering`] — evaluate a given linear arrangement,
//! * [`cutwidth_exact`] — the classic `O(2ⁿ·n)` dynamic program over vertex
//!   subsets (the cut induced by a prefix depends only on the *set* of placed
//!   vertices), practical for `n ≲ 22`, which also reconstructs an optimal
//!   ordering,
//! * [`cutwidth_heuristic`] — greedy prefix growth plus adjacent-swap local
//!   search, used as an upper bound for larger graphs and as a cross-check.

use crate::graph::Graph;
use crate::ordering::VertexOrdering;
use rand::Rng;

/// Result of a cutwidth computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutwidthResult {
    /// The cutwidth value achieved.
    pub cutwidth: usize,
    /// An ordering achieving it.
    pub ordering: VertexOrdering,
}

/// Cutwidth `χ(ℓ)` of a specific ordering.
pub fn cutwidth_of_ordering(g: &Graph, ordering: &VertexOrdering) -> usize {
    assert_eq!(
        ordering.len(),
        g.num_vertices(),
        "ordering length must match vertex count"
    );
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    // Sweep positions left to right maintaining the number of edges crossing the
    // current gap: an edge {u,v} with positions p_u < p_v crosses gaps p_u .. p_v-1.
    let mut crossing = vec![0isize; n + 1];
    for (u, v) in g.edges() {
        let (a, b) = {
            let pu = ordering.position_of(u);
            let pv = ordering.position_of(v);
            (pu.min(pv), pu.max(pv))
        };
        crossing[a + 1] += 1;
        crossing[b + 1] -= 1;
    }
    let mut max = 0isize;
    let mut cur = 0isize;
    for &delta in crossing.iter().take(n).skip(1) {
        cur += delta;
        max = max.max(cur);
    }
    max as usize
}

/// Exact cutwidth via dynamic programming over subsets.
///
/// `f(S)` = the minimum over orderings that place exactly the vertices of `S`
/// first (in some order) of the maximum cut seen while placing them; the cut
/// after placing `S` is `|E(S, V∖S)|`, which depends only on `S`. Hence
/// `f(S) = min_{v ∈ S} max(f(S∖{v}), cut(S))`.
///
/// # Panics
/// Panics when `n > 25` — the `2ⁿ` table would be too large; use
/// [`cutwidth_heuristic`] instead.
pub fn cutwidth_exact(g: &Graph) -> CutwidthResult {
    let n = g.num_vertices();
    assert!(
        n <= 25,
        "exact cutwidth DP limited to 25 vertices, got {n}; use cutwidth_heuristic"
    );
    if n == 0 {
        return CutwidthResult {
            cutwidth: 0,
            ordering: VertexOrdering::identity(0),
        };
    }

    let full: usize = if n == usize::BITS as usize {
        usize::MAX
    } else {
        (1usize << n) - 1
    };
    let size = 1usize << n;

    // cut[s] = number of edges with exactly one endpoint in s.
    // Computed incrementally: adding vertex v to s changes the cut by
    // deg(v) - 2 * |neighbors of v already in s|.
    let mut cut = vec![0u32; size];
    let mut f = vec![u32::MAX; size];
    let mut choice = vec![usize::MAX; size];
    f[0] = 0;

    for s in 1..size {
        // Lowest set bit gives an incremental parent for the cut computation.
        let v = s.trailing_zeros() as usize;
        let prev = s & !(1 << v);
        let mut inside = 0u32;
        for &w in g.neighbors(v) {
            if prev & (1 << w) != 0 {
                inside += 1;
            }
        }
        cut[s] = cut[prev] + g.degree(v) as u32 - 2 * inside;

        // DP transition.
        let mut best = u32::MAX;
        let mut best_v = usize::MAX;
        let mut rem = s;
        while rem != 0 {
            let v = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let without = s & !(1 << v);
            let candidate = f[without].max(cut[s]);
            if candidate < best {
                best = candidate;
                best_v = v;
            }
        }
        f[s] = best;
        choice[s] = best_v;
    }

    // Reconstruct an optimal ordering by unwinding the choices.
    let mut order_rev = Vec::with_capacity(n);
    let mut s = full;
    while s != 0 {
        let v = choice[s];
        order_rev.push(v);
        s &= !(1 << v);
    }
    order_rev.reverse();
    let ordering = VertexOrdering::new(order_rev).expect("DP reconstruction yields a permutation");
    let cutwidth = f[full] as usize;
    debug_assert_eq!(cutwidth_of_ordering(g, &ordering), cutwidth);
    CutwidthResult { cutwidth, ordering }
}

/// Greedy + local-search heuristic upper bound on the cutwidth.
///
/// Builds an ordering greedily (always appending the unplaced vertex that
/// minimises the resulting running cut, breaking ties towards vertices with more
/// already-placed neighbours) from several random starts, then improves it with
/// adjacent-position swaps until no swap helps.
pub fn cutwidth_heuristic<R: Rng + ?Sized>(
    g: &Graph,
    rng: &mut R,
    restarts: usize,
) -> CutwidthResult {
    let n = g.num_vertices();
    if n == 0 {
        return CutwidthResult {
            cutwidth: 0,
            ordering: VertexOrdering::identity(0),
        };
    }
    let mut best: Option<CutwidthResult> = None;
    for _ in 0..restarts.max(1) {
        let start = rng.gen_range(0..n);
        let ordering = greedy_from(g, start);
        let improved = local_search(g, ordering);
        let value = cutwidth_of_ordering(g, &improved);
        if best.as_ref().map(|b| value < b.cutwidth).unwrap_or(true) {
            best = Some(CutwidthResult {
                cutwidth: value,
                ordering: improved,
            });
        }
    }
    best.expect("at least one restart")
}

fn greedy_from(g: &Graph, start: usize) -> VertexOrdering {
    let n = g.num_vertices();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur_cut: isize = 0;
    placed[start] = true;
    order.push(start);
    cur_cut += g.degree(start) as isize;

    while order.len() < n {
        let mut best_v = usize::MAX;
        let mut best_cut = isize::MAX;
        let mut best_inside = 0usize;
        for v in 0..n {
            if placed[v] {
                continue;
            }
            let inside = g.neighbors(v).iter().filter(|&&w| placed[w]).count();
            let new_cut = cur_cut + g.degree(v) as isize - 2 * inside as isize;
            if new_cut < best_cut || (new_cut == best_cut && inside > best_inside) {
                best_cut = new_cut;
                best_v = v;
                best_inside = inside;
            }
        }
        placed[best_v] = true;
        order.push(best_v);
        cur_cut = best_cut;
    }
    VertexOrdering::new(order).expect("greedy places every vertex once")
}

fn local_search(g: &Graph, mut ordering: VertexOrdering) -> VertexOrdering {
    let n = ordering.len();
    if n < 2 {
        return ordering;
    }
    let mut current = cutwidth_of_ordering(g, &ordering);
    loop {
        let mut improved = false;
        for k in 0..(n - 1) {
            ordering.swap_positions(k, k + 1);
            let candidate = cutwidth_of_ordering(g, &ordering);
            if candidate < current {
                current = candidate;
                improved = true;
            } else {
                ordering.swap_positions(k, k + 1); // undo
            }
        }
        if !improved {
            return ordering;
        }
    }
}

/// Closed-form cutwidths for the standard topologies (used as cross-checks).
///
/// * path `P_n` (n ≥ 2): 1
/// * ring `C_n` (n ≥ 3): 2
/// * clique `K_n`: `⌊n/2⌋·⌈n/2⌉ = ⌊n²/4⌋`
/// * star `K_{1,L}`: `⌈L/2⌉`
pub mod closed_forms {
    /// Cutwidth of the path on `n ≥ 2` vertices.
    pub fn path(n: usize) -> usize {
        if n >= 2 {
            1
        } else {
            0
        }
    }

    /// Cutwidth of the ring on `n ≥ 3` vertices.
    pub fn ring(_n: usize) -> usize {
        2
    }

    /// Cutwidth of the clique on `n` vertices.
    pub fn clique(n: usize) -> usize {
        (n / 2) * n.div_ceil(2)
    }

    /// Cutwidth of the star with `leaves` leaves.
    pub fn star(leaves: usize) -> usize {
        leaves.div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ordering_cutwidth_on_path() {
        let g = GraphBuilder::path(6);
        let id = VertexOrdering::identity(6);
        assert_eq!(cutwidth_of_ordering(&g, &id), 1);
        // A bad ordering of a path has larger cutwidth.
        let bad = VertexOrdering::new(vec![0, 2, 4, 1, 3, 5]).unwrap();
        assert!(cutwidth_of_ordering(&g, &bad) > 1);
    }

    #[test]
    fn exact_matches_closed_forms() {
        assert_eq!(
            cutwidth_exact(&GraphBuilder::path(7)).cutwidth,
            closed_forms::path(7)
        );
        assert_eq!(
            cutwidth_exact(&GraphBuilder::ring(7)).cutwidth,
            closed_forms::ring(7)
        );
        for n in 2..8 {
            assert_eq!(
                cutwidth_exact(&GraphBuilder::clique(n)).cutwidth,
                closed_forms::clique(n),
                "clique K_{n}"
            );
        }
        for leaves in 1..8 {
            assert_eq!(
                cutwidth_exact(&GraphBuilder::star(leaves + 1)).cutwidth,
                closed_forms::star(leaves),
                "star with {leaves} leaves"
            );
        }
    }

    #[test]
    fn exact_on_empty_and_trivial_graphs() {
        assert_eq!(cutwidth_exact(&Graph::new(0)).cutwidth, 0);
        assert_eq!(cutwidth_exact(&Graph::new(5)).cutwidth, 0);
        assert_eq!(cutwidth_exact(&Graph::from_edges(2, &[(0, 1)])).cutwidth, 1);
    }

    #[test]
    fn exact_ordering_achieves_reported_value() {
        let g = GraphBuilder::grid(3, 3);
        let result = cutwidth_exact(&g);
        assert_eq!(cutwidth_of_ordering(&g, &result.ordering), result.cutwidth);
        // Cutwidth of the 3x3 grid is 4 (verified by brute force over all orderings).
        assert_eq!(result.cutwidth, 4);
    }

    #[test]
    fn heuristic_never_beats_exact_and_is_close_on_small_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        let graphs = vec![
            GraphBuilder::path(8),
            GraphBuilder::ring(8),
            GraphBuilder::star(8),
            GraphBuilder::grid(3, 3),
            GraphBuilder::clique(6),
            GraphBuilder::hypercube(3),
            GraphBuilder::binary_tree(9),
        ];
        for g in graphs {
            let exact = cutwidth_exact(&g);
            let heur = cutwidth_heuristic(&g, &mut rng, 5);
            assert!(
                heur.cutwidth >= exact.cutwidth,
                "heuristic reported a value below the optimum"
            );
            assert_eq!(cutwidth_of_ordering(&g, &heur.ordering), heur.cutwidth);
            // The heuristic should be exact on these small structured graphs.
            assert!(
                heur.cutwidth <= exact.cutwidth + 1,
                "heuristic too far from optimal on {g:?}: {} vs {}",
                heur.cutwidth,
                exact.cutwidth
            );
        }
    }

    #[test]
    fn random_graph_heuristic_upper_bounds_exact() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            let g = GraphBuilder::erdos_renyi(9, 0.3, &mut rng);
            let exact = cutwidth_exact(&g);
            let heur = cutwidth_heuristic(&g, &mut rng, 8);
            assert!(heur.cutwidth >= exact.cutwidth);
        }
    }

    #[test]
    fn hypercube_cutwidth_known_small_values() {
        // Cutwidths verified by brute force over all orderings: Q_1 = 1, Q_2 = 2, Q_3 = 5.
        assert_eq!(cutwidth_exact(&GraphBuilder::hypercube(1)).cutwidth, 1);
        assert_eq!(cutwidth_exact(&GraphBuilder::hypercube(2)).cutwidth, 2);
        assert_eq!(cutwidth_exact(&GraphBuilder::hypercube(3)).cutwidth, 5);
    }

    #[test]
    #[should_panic(expected = "limited to 25 vertices")]
    fn exact_rejects_large_graphs() {
        let _ = cutwidth_exact(&Graph::new(26));
    }
}
