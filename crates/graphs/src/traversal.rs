//! Breadth-first traversal, connectivity and distance utilities.

use crate::graph::Graph;
use std::collections::VecDeque;

/// BFS distances from `source`; unreachable vertices get `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    assert!(source < g.num_vertices(), "source out of range");
    let mut dist = vec![usize::MAX; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components as a label per vertex (labels are `0..k` in order of
/// discovery) together with the number of components.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.num_vertices();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        label[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Returns `true` when the graph is connected. The empty graph and the
/// single-vertex graph count as connected.
pub fn is_connected(g: &Graph) -> bool {
    if g.num_vertices() <= 1 {
        return true;
    }
    connected_components(g).1 == 1
}

/// Graph diameter (largest finite BFS distance). Returns `None` when the graph
/// is disconnected or has no vertices.
pub fn diameter(g: &Graph) -> Option<usize> {
    let n = g.num_vertices();
    if n == 0 || !is_connected(g) {
        return None;
    }
    let mut best = 0usize;
    for s in 0..n {
        let d = bfs_distances(g, s);
        for &x in &d {
            if x != usize::MAX {
                best = best.max(x);
            }
        }
    }
    Some(best)
}

/// Shortest path between `source` and `target` as a vertex sequence (inclusive),
/// or `None` if unreachable.
pub fn shortest_path(g: &Graph, source: usize, target: usize) -> Option<Vec<usize>> {
    assert!(source < g.num_vertices() && target < g.num_vertices());
    if source == target {
        return Some(vec![source]);
    }
    let mut parent = vec![usize::MAX; g.num_vertices()];
    let mut queue = VecDeque::new();
    parent[source] = source;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if parent[v] == usize::MAX {
                parent[v] = u;
                if v == target {
                    let mut path = vec![target];
                    let mut cur = target;
                    while cur != source {
                        cur = parent[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::GraphBuilder;

    #[test]
    fn bfs_distances_on_path() {
        let g = GraphBuilder::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn components_counting() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[5], labels[0]);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&GraphBuilder::ring(5)));
        assert!(is_connected(&Graph::new(1)));
        assert!(is_connected(&Graph::new(0)));
        assert!(!is_connected(&Graph::new(2)));
    }

    #[test]
    fn diameters_of_standard_graphs() {
        assert_eq!(diameter(&GraphBuilder::path(5)), Some(4));
        assert_eq!(diameter(&GraphBuilder::ring(6)), Some(3));
        assert_eq!(diameter(&GraphBuilder::clique(7)), Some(1));
        assert_eq!(diameter(&GraphBuilder::star(9)), Some(2));
        assert_eq!(diameter(&GraphBuilder::hypercube(4)), Some(4));
        assert_eq!(diameter(&Graph::new(2)), None);
    }

    #[test]
    fn shortest_path_on_ring() {
        let g = GraphBuilder::ring(6);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.len(), 4); // distance 3 either way
        assert_eq!(p[0], 0);
        assert_eq!(*p.last().unwrap(), 3);
        // consecutive vertices are adjacent
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert_eq!(shortest_path(&g, 2, 2), Some(vec![2]));
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(shortest_path(&g, 0, 3), None);
    }
}
