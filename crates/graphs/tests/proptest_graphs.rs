//! Property-based tests for the graph substrate.

use logit_graphs::traversal::{bfs_distances, connected_components, is_connected};
use logit_graphs::{
    cutwidth_exact, cutwidth_heuristic, cutwidth_of_ordering, dsatur_coloring, greedy_coloring,
    Graph, GraphBuilder, VertexOrdering,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing a random small graph as (n, edge list).
fn small_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..9).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..(n * (n - 1) / 2));
        (Just(n), edges)
    })
}

fn build(n: usize, raw: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new(n);
    for &(u, v) in raw {
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The handshake lemma: sum of degrees equals twice the edge count.
    #[test]
    fn handshake_lemma((n, raw) in small_graph()) {
        let g = build(n, &raw);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// BFS distances satisfy the triangle-ish property along edges:
    /// adjacent vertices' distances from any source differ by at most one.
    #[test]
    fn bfs_distance_lipschitz((n, raw) in small_graph()) {
        let g = build(n, &raw);
        let d = bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            if d[u] != usize::MAX && d[v] != usize::MAX {
                let hi = d[u].max(d[v]);
                let lo = d[u].min(d[v]);
                prop_assert!(hi - lo <= 1);
            } else {
                // If one endpoint is reachable the other must be too.
                prop_assert_eq!(d[u] == usize::MAX, d[v] == usize::MAX);
            }
        }
    }

    /// Components partition the vertex set and edges never cross components.
    #[test]
    fn components_are_consistent((n, raw) in small_graph()) {
        let g = build(n, &raw);
        let (labels, k) = connected_components(&g);
        prop_assert!(labels.iter().all(|&l| l < k));
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u], labels[v]);
        }
        prop_assert_eq!(is_connected(&g), k <= 1);
    }

    /// Any ordering's cutwidth upper-bounds the exact cutwidth, and the exact
    /// cutwidth's certificate ordering achieves it.
    #[test]
    fn exact_cutwidth_is_a_lower_bound((n, raw) in small_graph(), seed in 0u64..1000) {
        let g = build(n, &raw);
        let exact = cutwidth_exact(&g);
        prop_assert_eq!(cutwidth_of_ordering(&g, &exact.ordering), exact.cutwidth);

        let mut rng = StdRng::seed_from_u64(seed);
        let random_ordering = VertexOrdering::random(n, &mut rng);
        prop_assert!(cutwidth_of_ordering(&g, &random_ordering) >= exact.cutwidth);

        let heur = cutwidth_heuristic(&g, &mut rng, 3);
        prop_assert!(heur.cutwidth >= exact.cutwidth);
    }

    /// Cutwidth is at least max_degree / 2 (every vertex's edges must cross the
    /// cut on one of its two sides) and at most |E|.
    #[test]
    fn cutwidth_degree_bounds((n, raw) in small_graph()) {
        let g = build(n, &raw);
        let exact = cutwidth_exact(&g).cutwidth;
        prop_assert!(exact <= g.num_edges());
        prop_assert!(exact >= g.max_degree().div_ceil(2));
    }

    /// Colouring satellite: on arbitrary random graphs both constructions are
    /// proper (every colour class is an independent set), stay within the
    /// `Δ + 1` bound, and their classes partition the vertex set. (That
    /// DSATUR uses no more classes than first-fit is deliberately *not*
    /// asserted here: it is an empirical tendency with counterexamples
    /// inside this very distribution, pinned as a majority claim on a
    /// frozen fixture in the coloring module's unit tests instead.)
    #[test]
    fn colourings_are_proper_partitions_within_delta_plus_one((n, raw) in small_graph()) {
        let g = build(n, &raw);
        for coloring in [greedy_coloring(&g), dsatur_coloring(&g)] {
            prop_assert!(coloring.is_proper(&g));
            prop_assert!(coloring.num_classes() <= g.max_degree() + 1);
            // Classes partition 0..n; every edge crosses classes.
            let mut seen = vec![false; n];
            for class in coloring.classes() {
                prop_assert!(!class.is_empty());
                prop_assert!(class.windows(2).all(|w| w[0] < w[1]));
                for &v in class {
                    prop_assert!(!seen[v]);
                    seen[v] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
            for (u, v) in g.edges() {
                prop_assert_ne!(coloring.color_of(u), coloring.color_of(v));
            }
        }
    }
}

#[test]
fn ring_and_clique_cutwidths_scale_as_documented() {
    // The contrast the paper draws in Section 5: χ(ring) = 2 stays constant while
    // χ(clique) = ⌊n²/4⌋ grows quadratically.
    for n in 4..10 {
        let ring = cutwidth_exact(&GraphBuilder::ring(n)).cutwidth;
        let clique = cutwidth_exact(&GraphBuilder::clique(n)).cutwidth;
        assert_eq!(ring, 2);
        assert_eq!(clique, (n / 2) * n.div_ceil(2));
        assert!(clique > ring);
    }
}
