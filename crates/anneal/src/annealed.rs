//! The time-inhomogeneous (annealed) revision dynamics.
//!
//! [`AnnealedDynamics`] is a time-varying-β wrapper over *any*
//! [`UpdateRule`]: identical to the fixed-β engine except that the inverse
//! noise used at step `t` is `schedule.beta_at(t)` instead of a constant.
//! With a constant schedule and the [`Logit`] rule this reduces exactly to
//! `logit_core::LogitDynamics` (and the tests check that);
//! [`AnnealedLogitDynamics`] is the backward-compatible logit alias.

use crate::schedule::BetaSchedule;
use logit_core::rules::{Logit, UpdateRule};
use logit_games::{Game, ProfileSpace};
use rand::Rng;

/// The annealed revision dynamics for a game `G` under a β schedule `S` and
/// an update rule `U`.
#[derive(Debug, Clone)]
pub struct AnnealedDynamics<G: Game, S: BetaSchedule, U: UpdateRule = Logit> {
    game: G,
    schedule: S,
    rule: U,
    space: ProfileSpace,
}

/// The paper-adjacent special case: annealed **logit** dynamics.
pub type AnnealedLogitDynamics<G, S> = AnnealedDynamics<G, S, Logit>;

impl<G: Game, S: BetaSchedule, U: UpdateRule + Default> AnnealedDynamics<G, S, U> {
    /// Creates the annealed dynamics with the rule's default parameters.
    pub fn new(game: G, schedule: S) -> Self {
        Self::with_rule(game, schedule, U::default())
    }
}

impl<G: Game, S: BetaSchedule, U: UpdateRule> AnnealedDynamics<G, S, U> {
    /// Creates the annealed dynamics with an explicit update rule.
    pub fn with_rule(game: G, schedule: S, rule: U) -> Self {
        let space = game.profile_space();
        Self {
            game,
            schedule,
            rule,
            space,
        }
    }

    /// The underlying game.
    pub fn game(&self) -> &G {
        &self.game
    }

    /// The β schedule.
    pub fn schedule(&self) -> &S {
        &self.schedule
    }

    /// The update rule.
    pub fn rule(&self) -> &U {
        &self.rule
    }

    /// The profile space.
    pub fn space(&self) -> &ProfileSpace {
        &self.space
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.space.size()
    }

    /// The update distribution `σ_i(· | x)` of `player` at step `t` (i.e. with
    /// inverse noise `β_t`), computed through the game's `utilities_for`
    /// batch hook and the update rule.
    pub fn update_distribution(&self, t: u64, player: usize, profile: &[usize]) -> Vec<f64> {
        let beta = self.schedule.beta_at(t);
        let m = self.game.num_strategies(player);
        let mut work = profile.to_vec();
        let mut utils = vec![0.0; m];
        self.game.utilities_for(player, &mut work, &mut utils);
        let mut probs = Vec::with_capacity(m);
        self.rule
            .fill_probs(beta, profile[player], &utils, &mut probs);
        probs
    }

    /// One step of the dynamics at time `t` from the flat state `state`.
    pub fn step<R: Rng + ?Sized>(&self, t: u64, state: usize, rng: &mut R) -> usize {
        let n = self.game.num_players();
        let player = rng.gen_range(0..n);
        let mut profile = vec![0usize; n];
        self.space.write_profile(state, &mut profile);
        let probs = self.update_distribution(t, player, &profile);
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = probs.len() - 1;
        for (s, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = s;
                break;
            }
        }
        self.space.with_strategy(state, player, chosen)
    }

    /// Simulates `steps` steps from `start`, returning every visited state
    /// (length `steps + 1`).
    pub fn simulate<R: Rng + ?Sized>(&self, start: usize, steps: u64, rng: &mut R) -> Vec<usize> {
        assert!(start < self.num_states(), "start state out of range");
        let mut out = Vec::with_capacity(steps as usize + 1);
        let mut state = start;
        out.push(state);
        for t in 0..steps {
            state = self.step(t, state, rng);
            out.push(state);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{ConstantSchedule, LinearRamp};
    use logit_core::rules::MetropolisLogit;
    use logit_core::{DynamicsEngine, LogitDynamics};
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, WellGame};
    use logit_graphs::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_schedule_matches_fixed_beta_dynamics() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(4),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let beta = 1.3;
        let fixed = LogitDynamics::new(game.clone(), beta);
        let annealed = AnnealedLogitDynamics::new(game.clone(), ConstantSchedule::new(beta));
        let space = fixed.space();
        for idx in [0usize, 3, 7, 12] {
            let profile = space.profile_of(idx);
            for player in 0..4 {
                let a = fixed.update_distribution(player, &profile);
                let b = annealed.update_distribution(999, player, &profile);
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn constant_schedule_matches_fixed_beta_metropolis() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(4),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let beta = 0.9;
        let fixed = DynamicsEngine::with_rule(game.clone(), MetropolisLogit, beta);
        let annealed =
            AnnealedDynamics::with_rule(game, ConstantSchedule::new(beta), MetropolisLogit);
        let space = fixed.space();
        for idx in [0usize, 5, 9, 15] {
            let profile = space.profile_of(idx);
            for player in 0..4 {
                let a = fixed.update_distribution(player, &profile);
                let b = annealed.update_distribution(7, player, &profile);
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-12);
                }
            }
        }
        assert_eq!(annealed.rule(), &MetropolisLogit);
    }

    #[test]
    fn ramp_changes_the_update_distribution_over_time() {
        let game = WellGame::plateau(4, 2.0);
        let annealed = AnnealedLogitDynamics::new(game, LinearRamp::new(0.0, 5.0, 100));
        let profile = vec![1, 0, 0, 0]; // the ridge: strategy 0 is strictly better for player 0
        let early = annealed.update_distribution(0, 0, &profile);
        let late = annealed.update_distribution(100, 0, &profile);
        // At beta = 0 the update is uniform; at beta = 5 it strongly prefers
        // dropping back into the well (strategy 0).
        assert!((early[0] - 0.5).abs() < 1e-12);
        assert!(late[0] > 0.99);
    }

    #[test]
    fn simulation_moves_single_coordinates_and_stays_in_range() {
        let game = WellGame::plateau(5, 1.0);
        let annealed = AnnealedLogitDynamics::new(game, LinearRamp::new(0.1, 2.0, 50));
        let mut rng = StdRng::seed_from_u64(5);
        let traj = annealed.simulate(0, 300, &mut rng);
        assert_eq!(traj.len(), 301);
        for w in traj.windows(2) {
            assert!(annealed.space().hamming_distance(w[0], w[1]) <= 1);
            assert!(w[1] < annealed.num_states());
        }
    }

    #[test]
    fn annealed_metropolis_simulates_and_stays_local() {
        let game = WellGame::plateau(4, 1.5);
        let annealed =
            AnnealedDynamics::with_rule(game, LinearRamp::new(0.0, 3.0, 80), MetropolisLogit);
        let mut rng = StdRng::seed_from_u64(9);
        let traj = annealed.simulate(0, 200, &mut rng);
        assert_eq!(traj.len(), 201);
        for w in traj.windows(2) {
            assert!(annealed.space().hamming_distance(w[0], w[1]) <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_start_rejected() {
        let game = WellGame::plateau(3, 1.0);
        let annealed = AnnealedLogitDynamics::new(game, ConstantSchedule::new(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let _ = annealed.simulate(100, 10, &mut rng);
    }
}
