//! Annealing as a potential minimiser.
//!
//! For a potential game, the profiles the Gibbs measure concentrates on as
//! `β → ∞` are exactly the potential minimisers (the "stochastically stable"
//! states). Running the logit dynamics with an *increasing* β schedule is
//! simulated annealing on the potential; this module runs independent annealed
//! replicas in parallel and reports how often they end in a global minimiser —
//! the quantity one would use to compare schedules, and the natural "learning
//! process" experiment suggested in the paper's conclusions.

use crate::annealed::AnnealedDynamics;
use crate::schedule::BetaSchedule;
use logit_core::rules::{Logit, UpdateRule};
use logit_games::PotentialGame;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Result of an annealing run over many replicas.
#[derive(Debug, Clone)]
pub struct AnnealingOutcome {
    /// Number of replicas.
    pub replicas: usize,
    /// Steps per replica.
    pub steps: u64,
    /// The best (lowest-potential) profile found across all replicas.
    pub best_profile: Vec<usize>,
    /// The potential of the best profile.
    pub best_potential: f64,
    /// The global minimum of the potential (found by enumeration).
    pub global_minimum: f64,
    /// Fraction of replicas whose *final* state is a global minimiser.
    pub success_rate: f64,
    /// Mean final potential across replicas.
    pub mean_final_potential: f64,
}

impl AnnealingOutcome {
    /// Whether the best profile found is a global minimiser (up to `tol`).
    pub fn found_global_minimum(&self, tol: f64) -> bool {
        (self.best_potential - self.global_minimum).abs() <= tol
    }
}

/// Runs `replicas` independent annealed trajectories of `steps` steps from
/// `start` and summarises how well they minimise the potential.
///
/// Replicas run in parallel (rayon) with independent, reproducible RNG streams
/// derived from `seed`.
pub fn anneal_minimize<G, S>(
    game: &G,
    schedule: S,
    start: usize,
    steps: u64,
    replicas: usize,
    seed: u64,
) -> AnnealingOutcome
where
    G: PotentialGame + Sync + Clone,
    S: BetaSchedule + Sync + Clone,
{
    anneal_minimize_with_rule(game, Logit, schedule, start, steps, replicas, seed)
}

/// [`anneal_minimize`] under an arbitrary [`UpdateRule`]: simulated annealing
/// on the potential through any revision rule (e.g. Metropolis — classical
/// simulated annealing — or noisy best response).
pub fn anneal_minimize_with_rule<G, S, U>(
    game: &G,
    rule: U,
    schedule: S,
    start: usize,
    steps: u64,
    replicas: usize,
    seed: u64,
) -> AnnealingOutcome
where
    G: PotentialGame + Sync + Clone,
    S: BetaSchedule + Sync + Clone,
    U: UpdateRule,
{
    assert!(replicas > 0, "need at least one replica");
    let space = game.profile_space();
    assert!(start < space.size(), "start state out of range");

    // Global minimum via the game's hook (closed form where it has one,
    // enumeration otherwise — these are the exactly-analysable games).
    let mut buf = vec![0usize; game.num_players()];
    let global_minimum = game.min_potential();

    let finals: Vec<usize> = (0..replicas)
        .into_par_iter()
        .map(|replica| {
            let dynamics =
                AnnealedDynamics::with_rule(game.clone(), schedule.clone(), rule.clone());
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed ^ (replica as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            );
            let mut state = start;
            for t in 0..steps {
                state = dynamics.step(t, state, &mut rng);
            }
            state
        })
        .collect();

    let tol = 1e-9;
    let mut best_idx = finals[0];
    let mut best_potential = f64::INFINITY;
    let mut successes = 0usize;
    let mut total_potential = 0.0;
    for &idx in &finals {
        space.write_profile(idx, &mut buf);
        let phi = game.potential(&buf);
        total_potential += phi;
        if phi < best_potential {
            best_potential = phi;
            best_idx = idx;
        }
        if (phi - global_minimum).abs() <= tol {
            successes += 1;
        }
    }

    AnnealingOutcome {
        replicas,
        steps,
        best_profile: space.profile_of(best_idx),
        best_potential,
        global_minimum,
        success_rate: successes as f64 / replicas as f64,
        mean_final_potential: total_potential / replicas as f64,
    }
}

/// Replica-exchange as a potential minimiser — the tempering counterpart of
/// [`anneal_minimize`], sharing its [`AnnealingOutcome`] report so the two
/// strategies compare row for row.
///
/// Runs `ensembles` independent `logit_core::TemperingEnsemble`s over the
/// given [`BetaLadder`](crate::schedule::BetaLadder) for `rounds` rounds of
/// `sweep_ticks` ticks each (uniform single-player selection), and scores the
/// **cold** replica's final profile of every ensemble. Where annealing visits
/// the temperature ladder *in time* (and can freeze in a local minimum once β
/// has grown), tempering keeps every temperature alive and lets barrier
/// crossings made by the hot rungs propagate to the cold one through swaps —
/// on well-style potentials this is the difference between `e^{βΔΦ}` and
/// polynomial escape (experiment E13).
///
/// `AnnealingOutcome::steps` reports total engine ticks per ensemble
/// (`rounds · sweep_ticks · K`), so step budgets are comparable with
/// [`anneal_minimize`]'s single-chain `steps`.
#[allow(clippy::too_many_arguments)]
pub fn tempering_minimize<G, U>(
    game: &G,
    rule: U,
    ladder: &crate::schedule::BetaLadder,
    start: usize,
    rounds: u64,
    sweep_ticks: u64,
    ensembles: usize,
    seed: u64,
) -> AnnealingOutcome
where
    G: PotentialGame + Send + Sync + Clone,
    U: logit_core::rules::UpdateRule,
{
    use logit_core::schedules::UniformSingle;
    use logit_core::TemperingEnsemble;
    use rayon::prelude::*;

    assert!(ensembles > 0, "need at least one ensemble");
    let space = game.profile_space();
    assert!(start < space.size(), "start state out of range");
    let start_profile = space.profile_of(start);
    let global_minimum = game.min_potential();

    let ensemble = TemperingEnsemble::new(game.clone(), rule, ladder.betas());
    let finals: Vec<Vec<usize>> = (0..ensembles)
        .into_par_iter()
        .map(|e| {
            let mut state = ensemble.init_state(
                &start_profile,
                seed ^ (e as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            );
            for _ in 0..rounds {
                ensemble.round(&UniformSingle, &mut state, sweep_ticks);
            }
            state.cold_profile().to_vec()
        })
        .collect();

    let tol = 1e-9;
    let mut best_profile = finals[0].clone();
    let mut best_potential = f64::INFINITY;
    let mut successes = 0usize;
    let mut total_potential = 0.0;
    for profile in &finals {
        let phi = game.potential(profile);
        total_potential += phi;
        if phi < best_potential {
            best_potential = phi;
            best_profile = profile.clone();
        }
        if (phi - global_minimum).abs() <= tol {
            successes += 1;
        }
    }

    AnnealingOutcome {
        replicas: ensembles,
        steps: rounds * sweep_ticks * ladder.len() as u64,
        best_profile,
        best_potential,
        global_minimum,
        success_rate: successes as f64 / ensembles as f64,
        mean_final_potential: total_potential / ensembles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{BetaLadder, ConstantSchedule, GeometricSchedule, LinearRamp};
    use logit_games::{CoordinationGame, Game, GraphicalCoordinationGame, WellGame};
    use logit_graphs::GraphBuilder;

    #[test]
    fn annealing_finds_the_risk_dominant_consensus() {
        // Ring coordination with delta0 > delta1: the unique potential minimiser
        // is the all-zero consensus. Start from the competing equilibrium.
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(5),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let space = game.profile_space();
        let start = space.index_of(&[1, 1, 1, 1, 1]);
        let outcome = anneal_minimize(&game, LinearRamp::new(0.1, 4.0, 400), start, 800, 64, 7);
        assert!(outcome.found_global_minimum(1e-9));
        assert_eq!(outcome.best_profile, vec![0, 0, 0, 0, 0]);
        assert!(
            outcome.success_rate > 0.7,
            "most replicas should land in the minimiser"
        );
    }

    #[test]
    fn slow_heating_beats_quenching_on_the_well_game() {
        // Quenching (immediately large beta) freezes replicas in whichever well
        // they start in; a ramp lets them cross the ridge first. Start at the
        // ridge-adjacent profile inside the *shallow* basin w >= 2c... for the
        // plateau well both basins are equally deep, so instead compare success
        // of reaching *some* minimiser: both should succeed; the interesting
        // comparison is mean final potential from the ridge.
        let game = WellGame::new(6, 4.0, 2.0);
        let space = game.profile_space();
        // Start on the ridge (weight = c = 2).
        let start = space.index_of(&[1, 1, 0, 0, 0, 0]);
        let ramp = anneal_minimize(&game, LinearRamp::new(0.0, 3.0, 300), start, 600, 48, 11);
        let quench = anneal_minimize(&game, ConstantSchedule::new(3.0), start, 600, 48, 11);
        // Both reach a minimiser eventually from the ridge (it is downhill both
        // ways), so check the outcome structure rather than a strict ordering.
        assert!(ramp.found_global_minimum(1e-9));
        assert!(quench.found_global_minimum(1e-9));
        assert!(ramp.mean_final_potential <= 0.0);
        assert_eq!(ramp.global_minimum, -4.0);
    }

    #[test]
    fn geometric_schedule_with_high_cap_freezes_in_a_minimiser() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::path(4),
            CoordinationGame::from_deltas(1.5, 1.0),
        );
        let outcome = anneal_minimize(
            &game,
            GeometricSchedule::new(0.2, 1.3, 20, 6.0),
            0,
            600,
            32,
            3,
        );
        // Start is already the all-zero minimiser; everything should stay there.
        assert!(outcome.success_rate > 0.9);
        assert_eq!(outcome.best_profile, vec![0, 0, 0, 0]);
    }

    #[test]
    fn metropolis_annealing_is_classical_simulated_annealing() {
        use logit_core::rules::MetropolisLogit;
        // The Metropolis rule with a rising beta schedule is textbook
        // simulated annealing on the potential; it should find the
        // risk-dominant consensus just like the logit rule does.
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(5),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let space = game.profile_space();
        let start = space.index_of(&[1, 1, 1, 1, 1]);
        let outcome = anneal_minimize_with_rule(
            &game,
            MetropolisLogit,
            LinearRamp::new(0.1, 4.0, 400),
            start,
            1200,
            64,
            7,
        );
        assert!(outcome.found_global_minimum(1e-9));
        assert_eq!(outcome.best_profile, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn outcome_reports_are_consistent() {
        let game = WellGame::plateau(4, 1.0);
        let outcome = anneal_minimize(&game, ConstantSchedule::new(1.0), 0, 100, 16, 1);
        assert_eq!(outcome.replicas, 16);
        assert_eq!(outcome.steps, 100);
        assert!(outcome.best_potential >= outcome.global_minimum - 1e-12);
        assert!(outcome.mean_final_potential >= outcome.best_potential - 1e-12);
        assert!((0.0..=1.0).contains(&outcome.success_rate));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let game = WellGame::plateau(3, 1.0);
        let _ = anneal_minimize(&game, ConstantSchedule::new(1.0), 0, 10, 0, 1);
    }

    #[test]
    fn tempering_minimize_finds_the_risk_dominant_consensus() {
        use logit_core::rules::Logit;
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(5),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let space = game.profile_space();
        let start = space.index_of(&[1, 1, 1, 1, 1]);
        let ladder = BetaLadder::geometric(0.3, 4.0, 4);
        let outcome = tempering_minimize(&game, Logit, &ladder, start, 60, 5, 32, 9);
        assert!(outcome.found_global_minimum(1e-9));
        assert_eq!(outcome.best_profile, vec![0, 0, 0, 0, 0]);
        assert_eq!(outcome.replicas, 32);
        assert_eq!(outcome.steps, 60 * 5 * 4);
        assert!(
            outcome.success_rate > 0.7,
            "most cold replicas should land in the minimiser (got {})",
            outcome.success_rate
        );
    }

    #[test]
    fn tempering_report_is_comparable_with_annealing() {
        // Same game, same start (on the ridge), comparable step budgets: both
        // minimisers fill the shared AnnealingOutcome report.
        use logit_core::rules::MetropolisLogit;
        let game = WellGame::new(6, 4.0, 2.0);
        let space = game.profile_space();
        let start = space.index_of(&[1, 1, 0, 0, 0, 0]);
        let ladder = BetaLadder::geometric(0.2, 3.0, 4);
        let tempered = tempering_minimize(&game, MetropolisLogit, &ladder, start, 40, 4, 24, 11);
        let annealed = anneal_minimize_with_rule(
            &game,
            MetropolisLogit,
            LinearRamp::new(0.0, 3.0, 300),
            start,
            tempered.steps,
            24,
            11,
        );
        assert!(tempered.found_global_minimum(1e-9));
        assert!(annealed.found_global_minimum(1e-9));
        assert_eq!(tempered.global_minimum, annealed.global_minimum);
        assert!(tempered.mean_final_potential <= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one ensemble")]
    fn zero_tempering_ensembles_rejected() {
        use logit_core::rules::Logit;
        let game = WellGame::plateau(3, 1.0);
        let ladder = BetaLadder::geometric(0.5, 1.0, 2);
        let _ = tempering_minimize(&game, Logit, &ladder, 0, 5, 2, 0, 1);
    }
}
