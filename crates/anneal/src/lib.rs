//! # logit-anneal
//!
//! Extensions of the logit dynamics beyond the fixed-β setting of the paper.
//!
//! The paper's conclusions single out two follow-up directions:
//!
//! 1. *"Another interesting variant of the logit dynamics is the one in which
//!    the value of β is not fixed, but varies according to some learning
//!    process."* — the [`schedule`] and [`annealed`] modules implement exactly
//!    this: β schedules (constant, linear ramp, geometric, logarithmic) and
//!    the time-inhomogeneous dynamics driven by them. The annealed engine is
//!    a time-varying-β wrapper over *any* `logit_core` update rule (logit,
//!    Metropolis — i.e. classical simulated annealing — or noisy best
//!    response), together with an annealing-based potential minimiser
//!    ([`optimize`]) that can be compared across rules and schedules.
//! 2. The companion line of work (reference [4] of the paper) studies the
//!    *stationary expected social welfare* of the logit dynamics — [`welfare`]
//!    computes it exactly from the Gibbs measure and by simulation, along with
//!    the welfare ratio against the optimum.
//!
//! Everything here builds strictly on top of `logit-core`; nothing in the
//! reproduction of the paper's theorems depends on this crate.

pub mod annealed;
pub mod optimize;
pub mod schedule;
pub mod welfare;

pub use annealed::{AnnealedDynamics, AnnealedLogitDynamics};
pub use optimize::{
    anneal_minimize, anneal_minimize_with_rule, tempering_minimize, AnnealingOutcome,
};
pub use schedule::{
    BetaLadder, BetaSchedule, ConstantSchedule, GeometricSchedule, LadderError, LinearRamp,
    LogarithmicSchedule,
};
pub use welfare::{expected_social_welfare, optimal_social_welfare, welfare_ratio};
