//! Stationary expected social welfare.
//!
//! Reference [4] of the paper ("Mixing time and stationary expected social
//! welfare of logit dynamics", SAGT 2010) studies the expected social welfare
//! `E_π[Σ_i u_i(X)]` of the stationary distribution as a performance measure of
//! the dynamics. This module computes it exactly from the Gibbs measure of a
//! potential game, compares it against the optimal welfare, and provides the
//! welfare ratio (the stationary analogue of the price of anarchy).

use logit_core::gibbs_distribution;
use logit_games::{analysis::social_welfare, Game, PotentialGame};

/// Expected social welfare under the stationary (Gibbs) distribution at
/// inverse noise `β`: `E_{π_β}[Σ_i u_i(X)]`.
pub fn expected_social_welfare<G: PotentialGame>(game: &G, beta: f64) -> f64 {
    let space = game.profile_space();
    let pi = gibbs_distribution(game, beta);
    let mut buf = vec![0usize; game.num_players()];
    space
        .indices()
        .map(|idx| {
            space.write_profile(idx, &mut buf);
            pi[idx] * social_welfare(game, &buf)
        })
        .sum()
}

/// The optimal (maximum) social welfare over all profiles, with a witnessing
/// profile.
pub fn optimal_social_welfare<G: Game>(game: &G) -> (f64, Vec<usize>) {
    let space = game.profile_space();
    let mut buf = vec![0usize; game.num_players()];
    let mut best = f64::NEG_INFINITY;
    let mut best_profile = vec![0usize; game.num_players()];
    for idx in space.indices() {
        space.write_profile(idx, &mut buf);
        let w = social_welfare(game, &buf);
        if w > best {
            best = w;
            best_profile.copy_from_slice(&buf);
        }
    }
    (best, best_profile)
}

/// The ratio `E_π[welfare] / optimal welfare` at inverse noise `β`.
///
/// For games whose welfare can be negative or zero this ratio is not meaningful;
/// the function returns `None` when the optimal welfare is not strictly positive.
pub fn welfare_ratio<G: PotentialGame>(game: &G, beta: f64) -> Option<f64> {
    let (opt, _) = optimal_social_welfare(game);
    if opt <= 0.0 {
        return None;
    }
    Some(expected_social_welfare(game, beta) / opt)
}

/// Expected social welfare at β = ∞ restricted to the potential minimisers
/// (the stochastically stable states), i.e. the average welfare over the set of
/// global potential minimisers. This is the limit of
/// [`expected_social_welfare`] as `β → ∞` when all minimisers are tied.
pub fn limit_welfare_at_infinite_beta<G: PotentialGame>(game: &G) -> f64 {
    let space = game.profile_space();
    let mut buf = vec![0usize; game.num_players()];
    let mut min_phi = f64::INFINITY;
    for idx in space.indices() {
        space.write_profile(idx, &mut buf);
        min_phi = min_phi.min(game.potential(&buf));
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for idx in space.indices() {
        space.write_profile(idx, &mut buf);
        if (game.potential(&buf) - min_phi).abs() <= 1e-9 {
            total += social_welfare(game, &buf);
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, WellGame};
    use logit_graphs::GraphBuilder;

    fn ring_game() -> GraphicalCoordinationGame {
        GraphicalCoordinationGame::new(
            GraphBuilder::ring(4),
            CoordinationGame::new(2.0, 1.0, 0.0, 0.0),
        )
    }

    #[test]
    fn optimal_welfare_is_the_risk_dominant_consensus() {
        let game = ring_game();
        let (opt, profile) = optimal_social_welfare(&game);
        // Everyone matching on 0: each of 4 players earns a=2 from both neighbours.
        assert_eq!(profile, vec![0, 0, 0, 0]);
        assert_eq!(opt, 16.0);
    }

    #[test]
    fn welfare_increases_with_beta_for_coordination_games() {
        let game = ring_game();
        let w0 = expected_social_welfare(&game, 0.0);
        let w1 = expected_social_welfare(&game, 1.0);
        let w3 = expected_social_welfare(&game, 3.0);
        assert!(
            w1 > w0,
            "more rationality should raise welfare: {w0} -> {w1}"
        );
        assert!(w3 > w1);
        // And it converges to the optimum because the risk-dominant consensus is
        // also the welfare-optimal profile here.
        assert!((limit_welfare_at_infinite_beta(&game) - 16.0).abs() < 1e-9);
        assert!(w3 <= 16.0 + 1e-9);
    }

    #[test]
    fn welfare_ratio_in_unit_interval_and_monotone() {
        let game = ring_game();
        let r_low = welfare_ratio(&game, 0.2).unwrap();
        let r_high = welfare_ratio(&game, 2.0).unwrap();
        assert!(r_low > 0.0 && r_low <= 1.0);
        assert!(r_high > r_low);
        assert!(r_high <= 1.0 + 1e-12);
    }

    #[test]
    fn welfare_ratio_none_for_nonpositive_optimum() {
        // The well game is an identical-interest game with utilities -Phi <= ... its
        // maximum welfare is n * (-Phi_min) = positive; construct a game with zero
        // optimum instead: a well game where the best utility is 0.
        let game = WellGame::plateau(3, 1.0);
        // Optimal welfare: profiles at the ridge have potential 0 => utility 0 each,
        // wells have potential -1 => utility +1 each... wait utilities are -Phi, so
        // the wells give +1 per player: the optimum is positive here.
        assert!(welfare_ratio(&game, 1.0).is_some());

        // A genuinely non-positive-welfare game: the Theorem 4.3 game (utilities 0 or -1).
        let dominant = logit_games::AllZeroDominantGame::new(2, 2);
        assert!(welfare_ratio(&dominant, 1.0).is_none());
    }

    #[test]
    fn limit_welfare_averages_tied_minimisers() {
        // Symmetric coordination game: both consensus profiles are potential
        // minimisers with equal welfare, so the limit is that common value.
        let game =
            GraphicalCoordinationGame::new(GraphBuilder::ring(4), CoordinationGame::symmetric(1.0));
        let limit = limit_welfare_at_infinite_beta(&game);
        assert!((limit - 8.0).abs() < 1e-9); // 4 players x 2 neighbours x payoff 1
    }
}
