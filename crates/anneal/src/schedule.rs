//! Inverse-noise (β) schedules and β-ladders.
//!
//! A schedule maps the step counter `t` to the inverse noise `β_t ≥ 0` used by
//! the time-inhomogeneous logit dynamics at that step. The classic simulated-
//! annealing result (Hajek) says a logarithmic schedule `β_t = ln(t + 2)/c`
//! finds the global potential minimiser with probability → 1 when `c` is at
//! least the largest barrier — which in the language of the paper is exactly the
//! quantity `ζ` of Section 3.4. The geometric and linear schedules are the
//! practical choices.
//!
//! A [`BetaLadder`] is the *spatial* counterpart of a schedule: instead of one
//! chain visiting many temperatures over time, a replica-exchange ensemble
//! (`logit_core::TemperingEnsemble`) runs `K` chains at a fixed increasing
//! ladder `β_0 < ⋯ < β_{K−1}` simultaneously and swaps their states. The
//! geometric ladder (constant ratio between rungs) is the textbook default —
//! the swap acceptance between adjacent rungs depends on `β_{i+1}/β_i`, so a
//! constant ratio equalises exchange rates; the linear ladder is the standard
//! alternative when the potential's scale varies little across temperatures.

/// A (deterministic) inverse-noise schedule.
pub trait BetaSchedule {
    /// The inverse noise to use at step `t` (starting from `t = 0`).
    fn beta_at(&self, t: u64) -> f64;

    /// A short human-readable description used in reports.
    fn describe(&self) -> String;
}

/// Constant β (recovers the paper's fixed-β dynamics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantSchedule {
    /// The constant inverse noise.
    pub beta: f64,
}

impl ConstantSchedule {
    /// Creates a constant schedule.
    ///
    /// # Panics
    /// Panics when `beta` is negative or non-finite.
    pub fn new(beta: f64) -> Self {
        assert!(
            beta >= 0.0 && beta.is_finite(),
            "beta must be finite and non-negative"
        );
        Self { beta }
    }
}

impl BetaSchedule for ConstantSchedule {
    fn beta_at(&self, _t: u64) -> f64 {
        self.beta
    }
    fn describe(&self) -> String {
        format!("constant(beta = {})", self.beta)
    }
}

/// Linear ramp from `start` to `end` over `duration` steps, constant afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRamp {
    /// β at step 0.
    pub start: f64,
    /// β from step `duration` on.
    pub end: f64,
    /// Number of steps over which β ramps.
    pub duration: u64,
}

impl LinearRamp {
    /// Creates a linear ramp.
    ///
    /// # Panics
    /// Panics on negative/non-finite endpoints or zero duration.
    pub fn new(start: f64, end: f64, duration: u64) -> Self {
        assert!(start >= 0.0 && end >= 0.0, "beta must stay non-negative");
        assert!(
            start.is_finite() && end.is_finite(),
            "beta must stay finite"
        );
        assert!(duration > 0, "ramp duration must be positive");
        Self {
            start,
            end,
            duration,
        }
    }
}

impl BetaSchedule for LinearRamp {
    fn beta_at(&self, t: u64) -> f64 {
        if t >= self.duration {
            self.end
        } else {
            let frac = t as f64 / self.duration as f64;
            self.start + (self.end - self.start) * frac
        }
    }
    fn describe(&self) -> String {
        format!(
            "linear({} -> {} over {} steps)",
            self.start, self.end, self.duration
        )
    }
}

/// Geometric (exponential) growth: `β_t = start · factor^{⌊t/period⌋}`, capped at `max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricSchedule {
    /// β at step 0 (must be positive so the geometric growth is meaningful).
    pub start: f64,
    /// Multiplicative factor applied every `period` steps (must be ≥ 1).
    pub factor: f64,
    /// Steps between successive multiplications.
    pub period: u64,
    /// Cap on β.
    pub max: f64,
}

impl GeometricSchedule {
    /// Creates a geometric schedule.
    ///
    /// # Panics
    /// Panics on non-positive `start`, `factor < 1`, zero period, or `max < start`.
    pub fn new(start: f64, factor: f64, period: u64, max: f64) -> Self {
        assert!(
            start > 0.0,
            "geometric schedules need a positive starting beta"
        );
        assert!(
            factor >= 1.0,
            "the factor must be at least 1 (cooling means raising beta)"
        );
        assert!(period > 0, "period must be positive");
        assert!(max >= start, "the cap must be at least the starting beta");
        Self {
            start,
            factor,
            period,
            max,
        }
    }
}

impl BetaSchedule for GeometricSchedule {
    fn beta_at(&self, t: u64) -> f64 {
        let k = (t / self.period) as i32;
        (self.start * self.factor.powi(k)).min(self.max)
    }
    fn describe(&self) -> String {
        format!(
            "geometric(start = {}, x{} every {} steps, cap {})",
            self.start, self.factor, self.period, self.max
        )
    }
}

/// Logarithmic (Hajek) schedule `β_t = ln(t + 2) / c`.
///
/// With `c ≥ ζ` (the paper's Section 3.4 barrier) the annealed dynamics
/// converges to the set of potential minimisers with probability one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogarithmicSchedule {
    /// The barrier constant `c > 0`.
    pub c: f64,
}

impl LogarithmicSchedule {
    /// Creates a logarithmic schedule with barrier constant `c > 0`.
    ///
    /// # Panics
    /// Panics when `c ≤ 0`.
    pub fn new(c: f64) -> Self {
        assert!(c > 0.0, "the barrier constant must be positive");
        Self { c }
    }

    /// The schedule tuned to a specific game: `c = max(ζ, ε)` for its barrier ζ.
    pub fn for_game<G: logit_games::PotentialGame>(game: &G) -> Self {
        let barrier = logit_core::zeta(game).zeta;
        Self::new(barrier.max(1e-6))
    }
}

impl BetaSchedule for LogarithmicSchedule {
    fn beta_at(&self, t: u64) -> f64 {
        ((t + 2) as f64).ln() / self.c
    }
    fn describe(&self) -> String {
        format!("logarithmic(ln(t+2)/{})", self.c)
    }
}

/// A strictly increasing β-ladder for replica exchange, hot (`β_min`) to cold
/// (`β_max`).
///
/// Feed [`Self::betas`] to `logit_core::TemperingEnsemble::new`. A ladder of
/// `k = 1` collapses to the single cold temperature (the degenerate ladder a
/// tempering ensemble treats as a plain chain).
#[derive(Debug, Clone, PartialEq)]
pub struct BetaLadder {
    betas: Vec<f64>,
}

/// Why a [`BetaLadder`] description was rejected: the typed counterpart of
/// the constructors' `assert!`s, for admission-time validation in service
/// contexts where a malformed ladder must surface as an error value rather
/// than a panic on a shared worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderError {
    /// `k` was zero.
    NoRungs,
    /// An endpoint was NaN or infinite.
    NonFiniteEndpoint,
    /// An endpoint was negative.
    NegativeBeta,
    /// A geometric ladder with `k ≥ 2` needs `β_min > 0`.
    NonPositiveHotEndpoint,
    /// `β_min ≥ β_max` with `k ≥ 2`: the ladder cannot strictly increase.
    NotIncreasing,
}

impl std::fmt::Display for LadderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LadderError::NoRungs => write!(f, "a ladder needs at least one rung"),
            LadderError::NonFiniteEndpoint => write!(f, "ladder endpoints must be finite"),
            LadderError::NegativeBeta => write!(f, "beta must stay non-negative"),
            LadderError::NonPositiveHotEndpoint => {
                write!(f, "geometric ladders need a positive hot endpoint")
            }
            LadderError::NotIncreasing => write!(f, "the ladder must have room to increase"),
        }
    }
}

impl std::error::Error for LadderError {}

impl BetaLadder {
    /// Geometric ladder: `k` rungs with a constant ratio between adjacent
    /// rungs, `β_i = β_min · (β_max/β_min)^{i/(k−1)}`. The default choice —
    /// constant rung ratios roughly equalise adjacent swap acceptance.
    ///
    /// # Panics
    /// Panics unless `0 < β_min < β_max` (strict — the ensemble needs a
    /// strictly increasing ladder), both finite, and `k ≥ 1` (with `k = 1`
    /// requiring nothing of `β_min`; the ladder is just `[β_max]`). Use
    /// [`try_geometric`](Self::try_geometric) where the failure must be a
    /// value instead.
    pub fn geometric(beta_min: f64, beta_max: f64, k: usize) -> Self {
        match Self::try_geometric(beta_min, beta_max, k) {
            Ok(ladder) => ladder,
            Err(e) => panic!("{e}"),
        }
    }

    /// The fallible form of [`geometric`](Self::geometric): `Err` with a
    /// typed [`LadderError`] instead of panicking on a malformed ladder.
    pub fn try_geometric(beta_min: f64, beta_max: f64, k: usize) -> Result<Self, LadderError> {
        if k < 1 {
            return Err(LadderError::NoRungs);
        }
        if !(beta_min.is_finite() && beta_max.is_finite()) {
            return Err(LadderError::NonFiniteEndpoint);
        }
        if k == 1 {
            if beta_max < 0.0 {
                return Err(LadderError::NegativeBeta);
            }
            return Ok(Self {
                betas: vec![beta_max],
            });
        }
        if beta_min <= 0.0 {
            return Err(LadderError::NonPositiveHotEndpoint);
        }
        if beta_min >= beta_max {
            return Err(LadderError::NotIncreasing);
        }
        let ratio = (beta_max / beta_min).powf(1.0 / (k - 1) as f64);
        let mut betas: Vec<f64> = (0..k).map(|i| beta_min * ratio.powi(i as i32)).collect();
        // Pin the endpoints exactly despite floating-point drift.
        betas[0] = beta_min;
        betas[k - 1] = beta_max;
        Ok(Self { betas })
    }

    /// Linear ladder: `k` evenly spaced rungs from `β_min` to `β_max`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ β_min < β_max` (strict for `k ≥ 2` — the ensemble
    /// needs a strictly increasing ladder), both finite, and `k ≥ 1`
    /// (`k = 1` gives `[β_max]`). Use [`try_linear`](Self::try_linear)
    /// where the failure must be a value instead.
    pub fn linear(beta_min: f64, beta_max: f64, k: usize) -> Self {
        match Self::try_linear(beta_min, beta_max, k) {
            Ok(ladder) => ladder,
            Err(e) => panic!("{e}"),
        }
    }

    /// The fallible form of [`linear`](Self::linear): `Err` with a typed
    /// [`LadderError`] instead of panicking on a malformed ladder.
    pub fn try_linear(beta_min: f64, beta_max: f64, k: usize) -> Result<Self, LadderError> {
        if k < 1 {
            return Err(LadderError::NoRungs);
        }
        if !(beta_min.is_finite() && beta_max.is_finite()) {
            return Err(LadderError::NonFiniteEndpoint);
        }
        if beta_min < 0.0 {
            return Err(LadderError::NegativeBeta);
        }
        if k == 1 {
            if beta_max < 0.0 {
                return Err(LadderError::NegativeBeta);
            }
            return Ok(Self {
                betas: vec![beta_max],
            });
        }
        if beta_min >= beta_max {
            return Err(LadderError::NotIncreasing);
        }
        let step = (beta_max - beta_min) / (k - 1) as f64;
        let mut betas: Vec<f64> = (0..k).map(|i| beta_min + step * i as f64).collect();
        betas[0] = beta_min;
        betas[k - 1] = beta_max;
        Ok(Self { betas })
    }

    /// The rungs, hot to cold (strictly increasing).
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// Number of rungs `K`.
    pub fn len(&self) -> usize {
        self.betas.len()
    }

    /// A ladder is never empty; this mirrors the standard container API.
    pub fn is_empty(&self) -> bool {
        self.betas.is_empty()
    }

    /// The hottest (smallest) β.
    pub fn hot(&self) -> f64 {
        self.betas[0]
    }

    /// The coldest (largest) β — the temperature whose Gibbs measure the cold
    /// replica samples.
    pub fn cold(&self) -> f64 {
        *self.betas.last().expect("a ladder is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logit_games::WellGame;

    #[test]
    fn constant_is_constant() {
        let s = ConstantSchedule::new(1.5);
        assert_eq!(s.beta_at(0), 1.5);
        assert_eq!(s.beta_at(1_000_000), 1.5);
        assert!(s.describe().contains("1.5"));
    }

    #[test]
    fn linear_ramp_interpolates_and_saturates() {
        let s = LinearRamp::new(0.0, 2.0, 100);
        assert_eq!(s.beta_at(0), 0.0);
        assert!((s.beta_at(50) - 1.0).abs() < 1e-12);
        assert_eq!(s.beta_at(100), 2.0);
        assert_eq!(s.beta_at(10_000), 2.0);
    }

    #[test]
    fn geometric_grows_and_caps() {
        let s = GeometricSchedule::new(0.1, 2.0, 10, 1.0);
        assert!((s.beta_at(0) - 0.1).abs() < 1e-12);
        assert!((s.beta_at(10) - 0.2).abs() < 1e-12);
        assert!((s.beta_at(35) - 0.8).abs() < 1e-12);
        assert_eq!(s.beta_at(1_000), 1.0); // capped
    }

    #[test]
    fn logarithmic_is_slowly_increasing() {
        let s = LogarithmicSchedule::new(2.0);
        assert!(s.beta_at(0) > 0.0);
        assert!(s.beta_at(100) > s.beta_at(10));
        assert!(s.beta_at(1_000_000) < 10.0, "log growth is slow");
    }

    #[test]
    fn logarithmic_for_game_uses_barrier() {
        let game = WellGame::plateau(4, 2.0);
        let s = LogarithmicSchedule::for_game(&game);
        assert!(
            (s.c - 2.0).abs() < 1e-9,
            "the well game's barrier is its depth"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_constant_rejected() {
        let _ = ConstantSchedule::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn shrinking_geometric_rejected() {
        let _ = GeometricSchedule::new(1.0, 0.5, 10, 2.0);
    }

    #[test]
    fn geometric_ladder_has_constant_rung_ratio_and_exact_endpoints() {
        let ladder = BetaLadder::geometric(0.25, 4.0, 5);
        assert_eq!(ladder.len(), 5);
        assert!(!ladder.is_empty());
        assert_eq!(ladder.hot(), 0.25);
        assert_eq!(ladder.cold(), 4.0);
        let betas = ladder.betas();
        assert!(betas.windows(2).all(|w| w[0] < w[1]));
        let ratios: Vec<f64> = betas.windows(2).map(|w| w[1] / w[0]).collect();
        for r in &ratios {
            assert!((r - 2.0).abs() < 1e-9, "4 doublings from 0.25 to 4.0");
        }
    }

    #[test]
    fn linear_ladder_is_evenly_spaced() {
        let ladder = BetaLadder::linear(0.0, 2.0, 5);
        assert_eq!(ladder.betas(), &[0.0, 0.5, 1.0, 1.5, 2.0]);
        assert_eq!(ladder.hot(), 0.0);
        assert_eq!(ladder.cold(), 2.0);
    }

    #[test]
    fn single_rung_ladders_collapse_to_the_cold_beta() {
        assert_eq!(BetaLadder::geometric(0.1, 3.0, 1).betas(), &[3.0]);
        assert_eq!(BetaLadder::linear(0.1, 3.0, 1).betas(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "positive hot endpoint")]
    fn geometric_ladder_rejects_zero_hot_endpoint() {
        let _ = BetaLadder::geometric(0.0, 2.0, 3);
    }

    #[test]
    #[should_panic(expected = "room to increase")]
    fn ladders_must_increase() {
        let _ = BetaLadder::linear(2.0, 2.0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one rung")]
    fn empty_ladder_rejected() {
        let _ = BetaLadder::geometric(0.1, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn single_rung_linear_ladder_rejects_negative_cold_beta() {
        let _ = BetaLadder::linear(0.0, -5.0, 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn single_rung_geometric_ladder_rejects_negative_cold_beta() {
        let _ = BetaLadder::geometric(0.1, -5.0, 1);
    }

    #[test]
    fn try_ladders_match_the_panicking_constructors_on_valid_input() {
        assert_eq!(
            BetaLadder::try_geometric(0.25, 4.0, 5).expect("valid ladder"),
            BetaLadder::geometric(0.25, 4.0, 5)
        );
        assert_eq!(
            BetaLadder::try_linear(0.0, 3.0, 4).expect("valid ladder"),
            BetaLadder::linear(0.0, 3.0, 4)
        );
        assert_eq!(
            BetaLadder::try_geometric(0.1, 3.0, 1).expect("single rung"),
            BetaLadder::geometric(0.1, 3.0, 1)
        );
    }

    #[test]
    fn try_ladders_reject_malformed_descriptions_with_typed_errors() {
        use LadderError::*;
        assert_eq!(BetaLadder::try_geometric(0.1, 1.0, 0), Err(NoRungs));
        assert_eq!(BetaLadder::try_linear(0.1, 1.0, 0), Err(NoRungs));
        assert_eq!(
            BetaLadder::try_geometric(f64::NAN, 1.0, 3),
            Err(NonFiniteEndpoint)
        );
        assert_eq!(
            BetaLadder::try_linear(0.0, f64::INFINITY, 3),
            Err(NonFiniteEndpoint)
        );
        assert_eq!(
            BetaLadder::try_geometric(0.0, 2.0, 3),
            Err(NonPositiveHotEndpoint)
        );
        // The non-increasing case the ISSUE singles out: β_min ≥ β_max.
        assert_eq!(BetaLadder::try_geometric(2.0, 1.0, 3), Err(NotIncreasing));
        assert_eq!(BetaLadder::try_linear(2.0, 2.0, 3), Err(NotIncreasing));
        assert_eq!(BetaLadder::try_linear(-0.5, 2.0, 3), Err(NegativeBeta));
        assert_eq!(BetaLadder::try_linear(0.0, -5.0, 1), Err(NegativeBeta));
        assert_eq!(BetaLadder::try_geometric(0.1, -5.0, 1), Err(NegativeBeta));
        // Typed errors render the strings the panic pins expect.
        assert_eq!(
            NotIncreasing.to_string(),
            "the ladder must have room to increase"
        );
        assert_eq!(NoRungs.to_string(), "a ladder needs at least one rung");
    }

    #[test]
    fn schedules_are_monotone_where_expected() {
        let ramp = LinearRamp::new(0.1, 3.0, 50);
        let geo = GeometricSchedule::new(0.1, 1.5, 5, 3.0);
        let log = LogarithmicSchedule::new(1.0);
        for t in 0..200u64 {
            assert!(ramp.beta_at(t + 1) >= ramp.beta_at(t) - 1e-12);
            assert!(geo.beta_at(t + 1) >= geo.beta_at(t) - 1e-12);
            assert!(log.beta_at(t + 1) >= log.beta_at(t) - 1e-12);
        }
    }
}
