//! The STATS surface: one Prometheus-text snapshot combining the
//! server's ground-truth counters with the live telemetry registry.
//!
//! The ground-truth block comes from [`StatsSnapshot`] — plain atomics
//! the server maintains in every build, so the `logit-serve` self-test
//! can assert job accounting with or without the `telemetry` feature.
//! The registry render appended below it carries the per-stage latency
//! histograms, queue gauges and reject-code counters when the feature is
//! compiled in (and a named "disabled" comment when it is not). The two
//! blocks use disjoint sample families, so the combined text stays
//! parseable by [`parse_prometheus`](logit_telemetry::parse_prometheus).

use crate::server::StatsSnapshot;

/// Renders `snapshot` plus the global telemetry registry as Prometheus
/// text — the payload of a [`STATS`](crate::protocol::STATS) frame.
pub fn render_stats(snapshot: &StatsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in [
        ("server_jobs_accepted", snapshot.accepted),
        ("server_jobs_rejected", snapshot.rejected),
        ("server_jobs_completed", snapshot.completed),
        ("server_jobs_cancelled", snapshot.cancelled),
        ("server_internal_errors", snapshot.internal_errors),
        ("server_artifact_hits", snapshot.artifact_cache.hits),
        ("server_artifact_misses", snapshot.artifact_cache.misses),
        (
            "server_artifact_evictions",
            snapshot.artifact_cache.evictions,
        ),
    ] {
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    out.push_str(&logit_telemetry::global().render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use logit_telemetry::parse_prometheus;

    fn snapshot() -> StatsSnapshot {
        StatsSnapshot {
            accepted: 11,
            rejected: 3,
            completed: 9,
            cancelled: 2,
            internal_errors: 0,
            artifact_cache: CacheStats {
                hits: 7,
                misses: 4,
                evictions: 1,
            },
        }
    }

    #[test]
    fn the_ground_truth_block_parses_and_carries_the_counters() {
        let text = render_stats(&snapshot());
        let samples = parse_prometheus(&text).expect("STATS payload must parse");
        assert_eq!(samples["server_jobs_accepted"], 11.0);
        assert_eq!(samples["server_jobs_rejected"], 3.0);
        assert_eq!(samples["server_jobs_completed"], 9.0);
        assert_eq!(samples["server_jobs_cancelled"], 2.0);
        assert_eq!(samples["server_internal_errors"], 0.0);
        assert_eq!(samples["server_artifact_hits"], 7.0);
        assert_eq!(samples["server_artifact_misses"], 4.0);
        assert_eq!(samples["server_artifact_evictions"], 1.0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn registry_families_never_collide_with_the_ground_truth_block() {
        logit_telemetry::enable();
        // Register one instrument per live family the server layers use;
        // a name that rendered into the ground-truth block would turn up
        // as a duplicate-sample parse error here.
        let registry = logit_telemetry::global();
        registry.gauge("server.queue_depth").set(1.0);
        registry
            .counter_labelled("server.admission_rejects", ("code", "queue-full"))
            .inc();
        registry.histogram("server.job_wall_ns").record(5.0);
        registry
            .counter_labelled("server.cache.hits", ("cache", "games"))
            .inc();
        let text = render_stats(&snapshot());
        let samples = parse_prometheus(&text).expect("combined snapshot must stay parseable");
        assert_eq!(samples["server_queue_depth"], 1.0);
        assert_eq!(
            samples["server_admission_rejects{code=\"queue-full\"}"],
            1.0
        );
        assert!(samples.contains_key("server_job_wall_ns_count"));
        assert_eq!(samples["server_cache_hits{cache=\"games\"}"], 1.0);
    }
}
