//! `logit-serve` — the simulation-as-a-service daemon.
//!
//! ```text
//! logit-serve [--port N]      # serve on 127.0.0.1:N (default 4517) until killed
//! logit-serve --self-test     # end-to-end smoke: ephemeral server, mixed
//!                             # concurrent tenants, bit-identity asserts
//! ```
//!
//! `--self-test` is the CI smoke step: it launches a server on an
//! ephemeral port, fires a concurrent batch of jobs — well-formed
//! pipelined and tempered jobs, one malformed job, one job cancelled
//! mid-stream, one raw-garbage client — asserts every completed stream is
//! byte-identical to the offline [`run_direct`] replay, asserts the
//! malformed/cancelled jobs produced typed rejections/clean stream ends
//! (and no pool-worker casualties: a final job still completes), then
//! shuts down cleanly. Exit code 0 means the contract held.

use logit_server::{
    prepare, request_stats, run_direct, submit_job, submit_raw, ArtifactCache, ClientOutcome,
    JobSpec, RunningServer, ServerConfig,
};
use std::net::SocketAddr;
use std::thread;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--self-test") => self_test(),
        Some("--port") => {
            let port: u16 = args
                .get(1)
                .and_then(|p| p.parse().ok())
                .unwrap_or_else(|| die("--port needs a number"));
            serve(port)
        }
        None => serve(4517),
        Some(other) => die(&format!("unknown argument `{other}`")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("logit-serve: {msg}");
    eprintln!("usage: logit-serve [--port N] | logit-serve --self-test");
    std::process::exit(2)
}

fn serve(port: u16) {
    let server = RunningServer::start(port, ServerConfig::default())
        .unwrap_or_else(|e| die(&format!("cannot bind 127.0.0.1:{port}: {e}")));
    println!("logit-serve listening on {}", server.addr());
    // Serve until killed; the process exit tears the threads down.
    loop {
        thread::park();
    }
}

fn job_text(seed: u64, kind: &str) -> String {
    match kind {
        "graphical-uniform" => format!(
            "game=graphical\ntopology=ring\nn=24\ndelta0=2.0\ndelta1=1.0\n\
             rule=logit\nschedule=uniform\nmode=pipelined\nbeta=1.2\nsteps=6000\n\
             sample_every=500\nobservable=fraction1\nreplicas=8\nseed={seed}\nchunk_ticks=256"
        ),
        "ising-sweep" => format!(
            "game=ising\ntopology=torus\nrows=5\ncols=5\ncoupling=0.7\n\
             rule=metropolis\nschedule=sweep\nmode=pipelined\nbeta=0.9\nsteps=4000\n\
             sample_every=400\nobservable=potential\nreplicas=6\nseed={seed}"
        ),
        "coloured" => format!(
            "game=ising\ntopology=circulant\nn=30\nk=3\ncoupling=1.0\n\
             rule=logit\nschedule=coloured\nmode=pipelined\nbeta=1.5\nsteps=2000\n\
             sample_every=200\nobservable=fraction0\nreplicas=4\nseed={seed}"
        ),
        "tempered" => format!(
            "game=graphical\ntopology=ring\nn=16\ndelta0=3.0\ndelta1=1.0\n\
             rule=logit\nschedule=uniform\nmode=tempered\nladder=geometric\n\
             beta_min=0.2\nbeta_max=2.0\nrungs=4\nrounds=40\nsweep_ticks=32\n\
             sample_every=8\nobservable=potential\nreplicas=3\nseed={seed}"
        ),
        other => panic!("unknown self-test job kind {other}"),
    }
}

/// Replays `text` offline and asserts byte-identity with the streamed
/// result.
fn assert_offline_identical(text: &str, streamed: &logit_server::StreamedResult, label: &str) {
    let spec = JobSpec::parse(text).expect("self-test jobs are well-formed");
    let cache = ArtifactCache::new(4);
    let job = prepare(spec, &cache).expect("self-test jobs pass admission");
    let direct = run_direct(&job);
    assert_eq!(
        streamed.wire_text(),
        direct.wire_text(),
        "{label}: streamed series diverged from the offline replay"
    );
}

fn self_test() {
    println!("logit-serve self-test: starting ephemeral server");
    let server = RunningServer::start(0, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.addr();

    // A concurrent mixed batch: four reproducible jobs (two sharing one
    // game description to exercise the artifact cache), one mid-stream
    // cancel, one malformed job, one raw-garbage client.
    let kinds = [
        ("graphical-uniform", 11u64),
        ("graphical-uniform", 12),
        ("ising-sweep", 13),
        ("coloured", 14),
        ("tempered", 15),
    ];
    let mut clients = Vec::new();
    for (kind, seed) in kinds {
        let text = job_text(seed, kind);
        clients.push((
            kind,
            text.clone(),
            thread::spawn(move || submit_job(addr, &text, None).expect("client io")),
        ));
    }
    let cancel_client = {
        // Deliberately long (3M steps, small chunks) so the cancel lands
        // mid-run and the farm's chunk-granular token check is exercised.
        let text = "game=graphical\ntopology=ring\nn=64\ndelta0=2.0\ndelta1=1.0\n\
                    rule=logit\nschedule=uniform\nmode=pipelined\nbeta=1.2\nsteps=3000000\n\
                    sample_every=100000\nobservable=fraction1\nreplicas=8\nseed=99\n\
                    chunk_ticks=64"
            .to_string();
        thread::spawn(move || submit_job(addr, &text, Some(0)).expect("cancel client io"))
    };
    let malformed_client = thread::spawn(move || {
        let text = "game=graphical\ntopology=ring\nn=24\ndelta0=-1.0\ndelta1=1.0\n\
                    rule=logit\nschedule=uniform\nmode=pipelined\nbeta=1.0\nsteps=100\n\
                    sample_every=10\nobservable=fraction1\nreplicas=2\nseed=1";
        submit_job(addr, text, None).expect("malformed client io")
    });
    let garbage_client = thread::spawn(move || garbage_probe(addr));

    // A live STATS probe *mid-chaos*: the snapshot must come back and
    // parse while jobs are in flight — probes bypass the queue.
    let mid_chaos = request_stats(addr).expect("mid-chaos STATS probe io");
    let mid_samples =
        logit_telemetry::parse_prometheus(&mid_chaos).expect("mid-chaos snapshot must parse");
    assert!(
        mid_samples.contains_key("server_jobs_accepted"),
        "the snapshot carries the job counters"
    );
    println!(
        "  stats: mid-chaos snapshot parsed ({} samples)",
        mid_samples.len()
    );

    for (kind, text, handle) in clients {
        let (outcome, timing) = handle.join().expect("client thread");
        match outcome {
            ClientOutcome::Done(streamed) => {
                assert_offline_identical(&text, &streamed, kind);
                println!(
                    "  {kind}: {} points, bit-identical offline, {:.1} ms",
                    streamed.points.len(),
                    timing.total_secs * 1e3
                );
            }
            other => panic!("{kind}: expected Done, got {other:?}"),
        }
    }

    let (outcome, _) = cancel_client.join().expect("cancel client thread");
    match outcome {
        ClientOutcome::Cancelled(points) => {
            println!("  cancel: clean CANCELLED after {} points", points.len());
        }
        // The farm may finish the job before the cancel lands; a complete
        // stream is also a clean end.
        ClientOutcome::Done(_) => println!("  cancel: job outran the cancel (clean DONE)"),
        other => panic!("cancel: expected Cancelled or Done, got {other:?}"),
    }

    let (outcome, _) = malformed_client.join().expect("malformed client thread");
    match outcome {
        ClientOutcome::Rejected(msg) => {
            assert!(
                msg.starts_with("coordination:"),
                "malformed job should be a typed coordination rejection, got `{msg}`"
            );
            println!("  malformed: typed rejection `{msg}`");
        }
        other => panic!("malformed: expected Rejected, got {other:?}"),
    }
    garbage_client.join().expect("garbage client thread");

    // The pool must have survived all of the above: one more job,
    // checked offline again.
    let text = job_text(77, "ising-sweep");
    let (outcome, _) = submit_job(addr, &text, None).expect("post-chaos client io");
    match outcome {
        ClientOutcome::Done(streamed) => assert_offline_identical(&text, &streamed, "post-chaos"),
        other => panic!("post-chaos: expected Done, got {other:?}"),
    }
    println!("  post-chaos: pool workers survived, job still bit-identical");

    // The quiescent STATS frame: every client has joined, so the parsed
    // snapshot must agree exactly with the server's ground-truth
    // counters. This is the registry-backed replacement for the old
    // bespoke `stats: ...` printout.
    let final_stats = request_stats(addr).expect("final STATS probe io");
    let samples =
        logit_telemetry::parse_prometheus(&final_stats).expect("final snapshot must parse");
    let stats = server.shutdown();
    for (name, truth) in [
        ("server_jobs_accepted", stats.accepted),
        ("server_jobs_rejected", stats.rejected),
        ("server_jobs_completed", stats.completed),
        ("server_jobs_cancelled", stats.cancelled),
        ("server_internal_errors", stats.internal_errors),
        ("server_artifact_hits", stats.artifact_cache.hits),
        ("server_artifact_misses", stats.artifact_cache.misses),
    ] {
        assert_eq!(
            samples.get(name).copied(),
            Some(truth as f64),
            "STATS sample `{name}` must match the chaos-batch ground truth"
        );
    }
    if logit_telemetry::enabled() {
        // Feature builds running with LOGIT_TELEMETRY=1 must also carry
        // non-empty per-job latency histograms in the same snapshot.
        for family in ["server_job_wall_ns", "server_job_exec_ns"] {
            let count = samples.get(&format!("{family}_count")).copied();
            assert!(
                count.unwrap_or(0.0) >= 1.0,
                "live histogram `{family}` must have recorded jobs, got {count:?}"
            );
        }
        println!("  stats: live latency histograms populated");
    }
    print!("{final_stats}");
    assert_eq!(stats.internal_errors, 0, "no job may panic a pool worker");
    assert!(stats.rejected >= 2, "malformed + garbage clients rejected");
    assert!(
        stats.artifact_cache.hits >= 1,
        "two jobs shared one game description, so the cache must have hit"
    );
    println!("logit-serve self-test: OK");
}

/// A client that violates the framing protocol outright; the server must
/// answer with a typed `protocol:` rejection (or just close), never crash.
fn garbage_probe(addr: SocketAddr) {
    let reply = submit_raw(addr, b"\x00\x00\x00\x09Xnonsense").expect("garbage io");
    if let Some((kind, payload)) = reply {
        assert_eq!(kind, b'R', "garbage gets REJECTED, got kind {kind:#04x}");
        assert!(
            payload.starts_with("protocol:"),
            "garbage rejection is typed, got `{payload}`"
        );
    }
}
