//! Content-addressed, LRU-bounded cache of derived artifacts.
//!
//! Building a job's environment is dominated by work that is a pure
//! function of the *game description* — the interaction graph, its greedy
//! colouring (for the parallel-revision schedule), and the
//! [`LocalityLayout`] reordering diagnostics. A multi-tenant server sees
//! the same handful of descriptions over and over, so these are computed
//! once per content hash ([`JobSpec::content_key`](crate::JobSpec::content_key)),
//! shared as `Arc`s across concurrent jobs, and evicted least-recently-used
//! once the cache is full. β-ladders get the same treatment in a second,
//! smaller cache.

use logit_core::LocalityLayout;
use logit_graphs::{Coloring, Graph};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters of one cache, snapshotted for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

struct LruInner<K, V> {
    /// value + last-touch tick per key.
    map: HashMap<K, (V, u64)>,
    tick: u64,
    stats: CacheStats,
}

/// A small mutex-guarded LRU map. Throughput is bounded by job admission,
/// not by this lock: the expensive builder runs *outside* the critical
/// section, so concurrent admissions never serialise on artifact
/// construction (at worst two tenants build the same artifact once).
pub struct LruCache<K: Eq + Hash + Clone, V: Clone> {
    inner: Mutex<LruInner<K, V>>,
    capacity: usize,
    /// Live registry counters mirroring [`CacheStats`]
    /// (`server.cache.{hits,misses,evictions}{cache="<name>"}`), present
    /// only on caches built with [`named`](Self::named). The mutex-held
    /// `stats` stay the ground truth — they exist in every build; these
    /// feed the STATS surface.
    telemetry: Option<CacheTelemetry>,
}

/// The registered per-cache instruments (zero-sized without the
/// `telemetry` feature).
struct CacheTelemetry {
    hits: logit_telemetry::Counter,
    misses: logit_telemetry::Counter,
    evictions: logit_telemetry::Counter,
}

impl CacheTelemetry {
    fn register(name: &str) -> Self {
        let registry = logit_telemetry::global();
        CacheTelemetry {
            hits: registry.counter_labelled("server.cache.hits", ("cache", name)),
            misses: registry.counter_labelled("server.cache.misses", ("cache", name)),
            evictions: registry.counter_labelled("server.cache.evictions", ("cache", name)),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an LRU cache needs room for one entry");
        Self {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            capacity,
            telemetry: None,
        }
    }

    /// [`new`](Self::new), additionally mirroring the hit/miss/eviction
    /// counters into the telemetry registry under `{cache="<name>"}`.
    pub fn named(capacity: usize, name: &str) -> Self {
        Self {
            telemetry: Some(CacheTelemetry::register(name)),
            ..Self::new(capacity)
        }
    }

    /// Looks up `key`, building the value with `build` on a miss. Returns
    /// the value and whether it was a hit. `build` runs without the lock
    /// held; on a racing double-build the first inserted value wins so
    /// every holder shares one `Arc`.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((value, touched)) = inner.map.get_mut(&key) {
                *touched = tick;
                let value = value.clone();
                inner.stats.hits += 1;
                if let Some(t) = &self.telemetry {
                    t.hits.inc();
                }
                return Ok((value, true));
            }
            inner.stats.misses += 1;
            if let Some(t) = &self.telemetry {
                t.misses.inc();
            }
        }
        let built = build()?;
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((value, touched)) = inner.map.get_mut(&key) {
            // Another tenant built it while we did: share theirs.
            *touched = tick;
            return Ok((value.clone(), false));
        }
        if inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
                if let Some(t) = &self.telemetry {
                    t.evictions.inc();
                }
            }
        }
        inner.map.insert(key, (built.clone(), tick));
        Ok((built, false))
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }
}

/// Everything derived from one game description that jobs can share:
/// the interaction graph, its greedy colouring, and the RCM locality
/// ordering with its bandwidth diagnostics.
#[derive(Debug)]
pub struct GameArtifacts {
    /// The interaction graph the topology describes.
    pub graph: Graph,
    /// Greedy colouring of `graph` — the `schedule=coloured` revision
    /// classes.
    pub coloring: Coloring,
    /// RCM relabelling of the game's interaction structure.
    pub layout: LocalityLayout,
    /// Adjacency bandwidth before/after the RCM relabelling.
    pub bandwidth: (usize, usize),
}

/// The server's artifact store: game artifacts keyed by content hash,
/// β-ladders keyed by the hash of their spec.
pub struct ArtifactCache {
    /// Game-description artifacts ([`GameArtifacts`]).
    pub games: LruCache<u64, Arc<GameArtifacts>>,
    /// Realised β-ladders (`betas` vectors) of tempered jobs.
    pub ladders: LruCache<u64, Arc<Vec<f64>>>,
}

impl ArtifactCache {
    /// Creates the store with `games_capacity` game entries and a
    /// proportionally small ladder cache.
    pub fn new(games_capacity: usize) -> Self {
        Self {
            games: LruCache::named(games_capacity, "games"),
            ladders: LruCache::named(games_capacity.max(4), "ladders"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    #[test]
    fn lru_shares_hits_and_evicts_the_coldest() {
        let cache: LruCache<u64, Arc<u64>> = LruCache::new(2);
        let build = |v: u64| move || Ok::<_, Infallible>(Arc::new(v));

        let (a1, hit) = cache.get_or_try_insert_with(1, build(10)).unwrap();
        assert!(!hit);
        let (a2, hit) = cache.get_or_try_insert_with(1, build(99)).unwrap();
        assert!(hit, "second lookup of the same key is a hit");
        assert!(Arc::ptr_eq(&a1, &a2), "hits share one Arc");
        assert_eq!(*a2, 10, "the first build wins");

        cache.get_or_try_insert_with(2, build(20)).unwrap();
        // Touch 1 so 2 is now the coldest, then insert 3 → 2 evicted.
        cache.get_or_try_insert_with(1, build(0)).unwrap();
        cache.get_or_try_insert_with(3, build(30)).unwrap();
        assert_eq!(cache.len(), 2);
        let (_, hit) = cache.get_or_try_insert_with(1, build(0)).unwrap();
        assert!(hit, "recently touched entry survived");
        let (v, hit) = cache.get_or_try_insert_with(2, build(21)).unwrap();
        assert!(!hit, "coldest entry was evicted");
        assert_eq!(*v, 21);

        let stats = cache.stats();
        assert_eq!(stats.evictions, 2, "3 evicted 2, then 2 evicted a victim");
        assert!(stats.hits >= 3 && stats.misses >= 3);
    }

    #[test]
    fn build_errors_do_not_poison_the_cache() {
        let cache: LruCache<u64, Arc<u64>> = LruCache::new(2);
        let err: Result<(Arc<u64>, bool), &str> = cache.get_or_try_insert_with(7, || Err("nope"));
        assert_eq!(err.unwrap_err(), "nope");
        assert!(cache.is_empty());
        let (v, hit) = cache
            .get_or_try_insert_with(7, || Ok::<_, &str>(Arc::new(70)))
            .unwrap();
        assert!(!hit);
        assert_eq!(*v, 70);
    }
}
