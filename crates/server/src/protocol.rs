//! The length-prefixed wire protocol and the bit-exact series encoding.
//!
//! Every message on a connection is one *frame*: a `u32` big-endian length
//! (kind byte plus payload), one kind byte, then a UTF-8 payload. The
//! client speaks [`SUBMIT`] and [`CANCEL`]; the server answers with
//! [`ACCEPTED`] or [`REJECTED`], streams zero or more [`SERIES`] frames,
//! and terminates the stream with exactly one of [`FINAL`]+[`DONE`],
//! [`CANCELLED`], or [`ERROR`].
//!
//! All floating-point values cross the wire as the 16-hex-digit IEEE-754
//! bit pattern ([`encode_f64`]), never as decimal text — the service's
//! reproducibility contract is *bit*-identity with an offline
//! [`Simulator`](logit_core::Simulator) run, so the encoding must be a
//! bijection on `f64`.

use std::io::{self, Read, Write};

/// Client → server: the payload is a job description (`key=value` lines).
pub const SUBMIT: u8 = b'S';
/// Client → server: cancel the in-flight job on this connection.
pub const CANCEL: u8 = b'C';
/// Server → client: job admitted; payload carries id, content key and
/// artifact-cache provenance.
pub const ACCEPTED: u8 = b'A';
/// Server → client: job rejected at admission; payload is
/// `<code>: <message>` from a typed [`AdmissionError`](crate::AdmissionError).
pub const REJECTED: u8 = b'R';
/// Server → client: one recorded time step of the observable series.
pub const SERIES: u8 = b'V';
/// Server → client: per-replica observable values at the final step.
pub const FINAL: u8 = b'F';
/// Server → client: the series is complete.
pub const DONE: u8 = b'D';
/// Server → client: the job was cancelled; the stream ends cleanly here.
pub const CANCELLED: u8 = b'X';
/// Server → client: the job died inside the executor backstop.
pub const ERROR: u8 = b'!';
/// Bidirectional: as a client's *first* frame, requests a live metrics
/// snapshot instead of submitting a job; the server answers with one
/// STATS frame whose payload is the Prometheus-text snapshot
/// ([`render_stats`](crate::stats::render_stats)) and closes.
pub const STATS: u8 = b'T';

/// Upper bound on a frame body (kind + payload); a peer announcing more is
/// a protocol violation, not an allocation request.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &str) -> io::Result<()> {
    let body_len = 1 + payload.len();
    assert!(body_len <= MAX_FRAME_LEN, "frame payload too large to send");
    w.write_all(&(body_len as u32).to_be_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame boundary;
/// any other malformation (truncated frame, oversized length, non-UTF-8
/// payload) is an `io::Error`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, String)>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let body_len = u32::from_be_bytes(len_buf) as usize;
    if body_len == 0 || body_len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {body_len} outside 1..={MAX_FRAME_LEN}"),
        ));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    let kind = body[0];
    let payload = String::from_utf8(body.split_off(1))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))?;
    Ok(Some((kind, payload)))
}

/// `f64` → 16 hex digits of its IEEE-754 bit pattern (a bijection, unlike
/// any decimal formatting).
pub fn encode_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`encode_f64`].
pub fn decode_f64(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("expected 16 hex digits, got `{s}`"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("expected 16 hex digits, got `{s}`"))
}

/// One recorded time step of a streamed observable series: the across-
/// replica statistics the engines accumulate.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Recorded time (engine ticks).
    pub t: u64,
    /// Observations folded into the statistics.
    pub count: u64,
    /// Across-replica mean.
    pub mean: f64,
    /// Across-replica sample variance.
    pub variance: f64,
    /// Across-replica minimum.
    pub min: f64,
    /// Across-replica maximum.
    pub max: f64,
}

impl SeriesPoint {
    /// Encodes the point as one [`SERIES`] frame payload.
    pub fn encode(&self) -> String {
        format!(
            "t={} count={} mean={} var={} min={} max={}",
            self.t,
            self.count,
            encode_f64(self.mean),
            encode_f64(self.variance),
            encode_f64(self.min),
            encode_f64(self.max),
        )
    }

    /// Parses a [`SERIES`] frame payload.
    pub fn decode(payload: &str) -> Result<SeriesPoint, String> {
        let mut t = None;
        let mut count = None;
        let mut mean = None;
        let mut variance = None;
        let mut min = None;
        let mut max = None;
        for token in payload.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("series token `{token}` is not key=value"))?;
            match key {
                "t" => t = Some(value.parse::<u64>().map_err(|e| e.to_string())?),
                "count" => count = Some(value.parse::<u64>().map_err(|e| e.to_string())?),
                "mean" => mean = Some(decode_f64(value)?),
                "var" => variance = Some(decode_f64(value)?),
                "min" => min = Some(decode_f64(value)?),
                "max" => max = Some(decode_f64(value)?),
                other => return Err(format!("unknown series key `{other}`")),
            }
        }
        Ok(SeriesPoint {
            t: t.ok_or("series frame lacks t")?,
            count: count.ok_or("series frame lacks count")?,
            mean: mean.ok_or("series frame lacks mean")?,
            variance: variance.ok_or("series frame lacks var")?,
            min: min.ok_or("series frame lacks min")?,
            max: max.ok_or("series frame lacks max")?,
        })
    }
}

/// A complete streamed series: what a client reassembles from the
/// [`SERIES`]/[`FINAL`] frames, and what [`run_direct`](crate::run_direct)
/// produces offline. Equality of the two — `PartialEq` compares every `f64`
/// through its bit pattern via the encoded frames — is the service's
/// reproducibility gate.
#[derive(Debug, Clone)]
pub struct StreamedResult {
    /// Observable name.
    pub name: String,
    /// One point per recorded time.
    pub points: Vec<SeriesPoint>,
    /// Observable value of every replica (or tempering ensemble) at the
    /// final recorded time.
    pub finals: Vec<f64>,
}

impl StreamedResult {
    /// Encodes the [`FINAL`] frame payload: the observable name, then the
    /// per-replica finals as hex bit patterns.
    pub fn encode_final(&self) -> String {
        let mut payload = format!("name={}", self.name);
        for v in &self.finals {
            payload.push(' ');
            payload.push_str(&encode_f64(*v));
        }
        payload
    }

    /// Parses a [`FINAL`] frame payload produced by [`encode_final`](Self::encode_final).
    pub fn decode_final(payload: &str) -> Result<(String, Vec<f64>), String> {
        let mut tokens = payload.split_whitespace();
        let name = tokens
            .next()
            .and_then(|t| t.strip_prefix("name="))
            .ok_or("final frame lacks name=")?
            .to_string();
        let finals = tokens.map(decode_f64).collect::<Result<Vec<_>, _>>()?;
        Ok((name, finals))
    }

    /// The full wire rendering of the series (every frame payload, in
    /// order). Two results are bit-identical iff these strings are equal;
    /// this is the string the bench gate and the tests compare.
    pub fn wire_text(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&p.encode());
            out.push('\n');
        }
        out.push_str(&self.encode_final());
        out.push('\n');
        out
    }
}

impl PartialEq for StreamedResult {
    fn eq(&self, other: &Self) -> bool {
        self.wire_text() == other.wire_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_hex_is_a_bijection_on_awkward_values() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            6.02214076e23,
        ] {
            let decoded = decode_f64(&encode_f64(v)).unwrap();
            assert_eq!(decoded.to_bits(), v.to_bits());
        }
        let nan = decode_f64(&encode_f64(f64::NAN)).unwrap();
        assert_eq!(nan.to_bits(), f64::NAN.to_bits());
        assert!(decode_f64("xyz").is_err());
        assert!(decode_f64("00000000000000000").is_err());
    }

    #[test]
    fn frames_round_trip_and_reject_malformation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, SUBMIT, "game=ising\nn=4").unwrap();
        write_frame(&mut buf, DONE, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((SUBMIT, "game=ising\nn=4".to_string()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), Some((DONE, String::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // A zero-length frame and an oversized announcement are both
        // protocol violations, not allocations.
        let mut zero = &[0u8, 0, 0, 0][..];
        assert!(read_frame(&mut zero).is_err());
        let mut huge = &[0xffu8, 0xff, 0xff, 0xff][..];
        assert!(read_frame(&mut huge).is_err());
        // Truncated body.
        let mut cut = &[0u8, 0, 0, 5, b'V'][..];
        assert!(read_frame(&mut cut).is_err());
    }

    #[test]
    fn series_points_and_finals_round_trip() {
        let p = SeriesPoint {
            t: 12,
            count: 32,
            mean: 0.1 + 0.2, // deliberately not exactly 0.3
            variance: 1e-17,
            min: -0.0,
            max: f64::MAX,
        };
        let decoded = SeriesPoint::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert!(SeriesPoint::decode("t=1 count=2").is_err());

        let r = StreamedResult {
            name: "fraction_1".into(),
            points: vec![p],
            finals: vec![0.5, 0.25, 1.0 / 3.0],
        };
        let (name, finals) = StreamedResult::decode_final(&r.encode_final()).unwrap();
        assert_eq!(name, "fraction_1");
        assert_eq!(finals.len(), 3);
        assert_eq!(finals[2].to_bits(), (1.0f64 / 3.0).to_bits());
    }
}
