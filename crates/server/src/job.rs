//! The job description grammar: `key=value` lines → a validated
//! [`JobSpec`], plus the canonical content hash that keys the derived-
//! artifact cache.
//!
//! Parsing is the first admission stage: it rejects unknown fields,
//! duplicates, unparsable numbers and out-of-limit sizes with typed
//! [`AdmissionError`]s, so a malformed job never reaches the worker pool.
//! The *semantic* validation (does the payoff matrix describe a
//! coordination game, does the ladder increase, do the CSR indices fit in
//! `u32`) happens in [`prepare`](crate::prepare), which funnels the
//! fallible `try_*` constructors of the library crates into the same error
//! type.

use crate::error::AdmissionError;
use std::collections::BTreeMap;

/// Hard admission limits: a multi-tenant server refuses jobs that would
/// monopolise the shared pool, with a typed error instead of an OOM.
pub mod limits {
    /// Largest interaction graph a job may request.
    pub const MAX_PLAYERS: usize = 1 << 20;
    /// Largest replica ensemble per job.
    pub const MAX_REPLICAS: usize = 4096;
    /// Longest run (steps for pipelined jobs, `rounds * sweep_ticks` for
    /// tempered jobs).
    pub const MAX_STEPS: u64 = 1_000_000_000;
    /// Most recorded times a series may have (`steps / sample_every`).
    pub const MAX_SAMPLES: u64 = 100_000;
    /// Most rungs a β-ladder may have.
    pub const MAX_RUNGS: usize = 64;
    /// Largest interaction graph by edge count (a 2^20-vertex clique
    /// would be half a trillion edges — refuse before building it).
    pub const MAX_EDGES: u64 = 1 << 23;
}

/// Which game family the job simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GameFamily {
    /// Graphical coordination game (paper Section 5) with payoff gaps
    /// `δ₀ = a − d` and `δ₁ = b − c` played on every edge.
    Graphical { delta0: f64, delta1: f64 },
    /// Ferromagnetic Ising model with coupling `J` and external field `h`.
    Ising { coupling: f64, field: f64 },
}

/// The interaction topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    Ring { n: usize },
    Clique { n: usize },
    Torus { rows: usize, cols: usize },
    Grid { rows: usize, cols: usize },
    Hypercube { dim: usize },
    Circulant { n: usize, k: usize },
}

impl Topology {
    /// Number of players the topology induces.
    pub fn num_players(&self) -> usize {
        match *self {
            Topology::Ring { n } | Topology::Clique { n } | Topology::Circulant { n, .. } => n,
            Topology::Torus { rows, cols } | Topology::Grid { rows, cols } => rows * cols,
            Topology::Hypercube { dim } => 1usize << dim,
        }
    }
}

/// The revision rule applied at each selected player.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleKind {
    /// Logit choice (the paper's dynamics).
    Logit,
    /// Metropolis acceptance with logit proposals.
    Metropolis,
    /// Noisy best response with mutation probability `noise`.
    Nbr { noise: f64 },
}

/// Which players revise at each tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// One uniformly random player per tick (the paper's dynamics).
    Uniform,
    /// Systematic sweep in player order.
    Sweep,
    /// All players simultaneously.
    All,
    /// Colour classes in round-robin (parallel-revision model); uses the
    /// cached greedy colouring of the interaction graph.
    Coloured,
}

/// How the β-ladder of a tempered job is spaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderSpec {
    /// `true` → geometric spacing, `false` → linear.
    pub geometric: bool,
    pub beta_min: f64,
    pub beta_max: f64,
    pub rungs: usize,
}

/// Single-β pipelined run vs. replica-exchange tempered run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModeKind {
    /// Farm the replicas through the pipelined engine at one β.
    Pipelined { beta: f64, steps: u64 },
    /// Parallel tempering across a β-ladder.
    Tempered {
        ladder: LadderSpec,
        rounds: u64,
        sweep_ticks: u64,
    },
}

/// The streamed observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservableKind {
    /// Fraction of players on strategy 0.
    Fraction0,
    /// Fraction of players on strategy 1.
    Fraction1,
    /// The exact potential Φ.
    Potential,
}

/// The deterministic start profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    Zeros,
    Ones,
}

/// A fully parsed, limit-checked job description.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub game: GameFamily,
    pub topology: Topology,
    pub rule: RuleKind,
    pub schedule: ScheduleKind,
    pub mode: ModeKind,
    pub observable: ObservableKind,
    pub start: StartKind,
    pub replicas: usize,
    pub seed: u64,
    pub sample_every: u64,
    /// Optional pipeline-farm chunk override (ticks per worker chunk).
    pub chunk_ticks: Option<u64>,
    /// Optional pipeline-farm channel-capacity override.
    pub channel_capacity: Option<usize>,
}

fn bad(field: &'static str, reason: impl Into<String>) -> AdmissionError {
    AdmissionError::BadValue {
        field,
        reason: reason.into(),
    }
}

/// The raw `key=value` map with take-and-complain-about-leftovers access.
struct Fields(BTreeMap<String, String>);

impl Fields {
    fn parse(text: &str) -> Result<Fields, AdmissionError> {
        let mut map = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                AdmissionError::Protocol(format!("job line `{line}` is not key=value"))
            })?;
            let key = key.trim().to_string();
            if map.insert(key.clone(), value.trim().to_string()).is_some() {
                return Err(AdmissionError::Protocol(format!(
                    "field `{key}` given more than once"
                )));
            }
        }
        Ok(Fields(map))
    }

    fn take(&mut self, key: &'static str) -> Result<String, AdmissionError> {
        self.0.remove(key).ok_or(AdmissionError::MissingField(key))
    }

    fn take_opt(&mut self, key: &str) -> Option<String> {
        self.0.remove(key)
    }

    fn take_u64(&mut self, key: &'static str) -> Result<u64, AdmissionError> {
        let raw = self.take(key)?;
        raw.parse::<u64>()
            .map_err(|_| bad(key, format!("`{raw}` is not an unsigned integer")))
    }

    fn take_usize(&mut self, key: &'static str) -> Result<usize, AdmissionError> {
        Ok(self.take_u64(key)? as usize)
    }

    fn take_f64(&mut self, key: &'static str) -> Result<f64, AdmissionError> {
        let raw = self.take(key)?;
        let v = raw
            .parse::<f64>()
            .map_err(|_| bad(key, format!("`{raw}` is not a number")))?;
        if !v.is_finite() {
            return Err(bad(key, "must be finite"));
        }
        Ok(v)
    }

    fn finish(self) -> Result<(), AdmissionError> {
        match self.0.into_keys().next() {
            None => Ok(()),
            Some(key) => Err(AdmissionError::UnknownField(key)),
        }
    }
}

impl JobSpec {
    /// Parses and limit-checks a job description.
    pub fn parse(text: &str) -> Result<JobSpec, AdmissionError> {
        let mut f = Fields::parse(text)?;

        let topology = match f.take("topology")?.as_str() {
            "ring" => Topology::Ring {
                n: f.take_usize("n")?,
            },
            "clique" => Topology::Clique {
                n: f.take_usize("n")?,
            },
            "torus" => Topology::Torus {
                rows: f.take_usize("rows")?,
                cols: f.take_usize("cols")?,
            },
            "grid" => Topology::Grid {
                rows: f.take_usize("rows")?,
                cols: f.take_usize("cols")?,
            },
            "hypercube" => Topology::Hypercube {
                dim: f.take_usize("dim")?,
            },
            "circulant" => Topology::Circulant {
                n: f.take_usize("n")?,
                k: f.take_usize("k")?,
            },
            other => return Err(bad("topology", format!("unknown topology `{other}`"))),
        };
        // Pre-check the builder preconditions so malformed topologies are
        // typed rejections, never a panic in a handler thread.
        match topology {
            Topology::Ring { n } if n < 3 => {
                return Err(bad("n", "a ring needs at least 3 vertices"));
            }
            Topology::Torus { rows, cols } if rows < 3 || cols < 3 => {
                return Err(bad("rows", "a torus needs both dimensions at least 3"));
            }
            Topology::Circulant { n, k } if k < 1 || n <= 2 * k => {
                return Err(bad("k", "a circulant needs 1 <= k and n >= 2k + 1"));
            }
            Topology::Hypercube { dim } if dim >= 21 => {
                return Err(bad("dim", "hypercube dimension must be at most 20"));
            }
            _ => {}
        }
        let edges: u64 = match topology {
            Topology::Ring { n } => n as u64,
            Topology::Clique { n } => (n as u64) * (n as u64).saturating_sub(1) / 2,
            Topology::Torus { rows, cols } | Topology::Grid { rows, cols } => {
                2 * (rows as u64) * (cols as u64)
            }
            Topology::Hypercube { dim } => (dim as u64) << (dim.saturating_sub(1)),
            Topology::Circulant { n, k } => (n as u64) * (k as u64),
        };
        if edges > limits::MAX_EDGES {
            return Err(bad(
                "topology",
                format!(
                    "induces about {edges} edges, above the limit of {}",
                    limits::MAX_EDGES
                ),
            ));
        }
        let players = topology.num_players();
        if players == 0 {
            return Err(bad("topology", "induces zero players"));
        }
        if players > limits::MAX_PLAYERS {
            return Err(bad(
                "topology",
                format!(
                    "induces {players} players, above the limit of {}",
                    limits::MAX_PLAYERS
                ),
            ));
        }

        let game = match f.take("game")?.as_str() {
            "graphical" => GameFamily::Graphical {
                delta0: f.take_f64("delta0")?,
                delta1: f.take_f64("delta1")?,
            },
            "ising" => {
                let coupling = f.take_f64("coupling")?;
                let field = match f.take_opt("field") {
                    None => 0.0,
                    Some(raw) => {
                        let v = raw
                            .parse::<f64>()
                            .map_err(|_| bad("field", format!("`{raw}` is not a number")))?;
                        if !v.is_finite() {
                            return Err(bad("field", "must be finite"));
                        }
                        v
                    }
                };
                GameFamily::Ising { coupling, field }
            }
            other => return Err(bad("game", format!("unknown game family `{other}`"))),
        };

        let rule = match f.take("rule")?.as_str() {
            "logit" => RuleKind::Logit,
            "metropolis" => RuleKind::Metropolis,
            "nbr" => {
                let noise = f.take_f64("noise")?;
                if !(0.0..=1.0).contains(&noise) {
                    return Err(bad("noise", "must lie in [0, 1]"));
                }
                RuleKind::Nbr { noise }
            }
            other => return Err(bad("rule", format!("unknown rule `{other}`"))),
        };

        let schedule = match f.take("schedule")?.as_str() {
            "uniform" => ScheduleKind::Uniform,
            "sweep" => ScheduleKind::Sweep,
            "all" => ScheduleKind::All,
            "coloured" => ScheduleKind::Coloured,
            other => return Err(bad("schedule", format!("unknown schedule `{other}`"))),
        };

        let sample_every = f.take_u64("sample_every")?;
        if sample_every == 0 {
            return Err(bad("sample_every", "must be at least 1"));
        }

        let mode = match f.take("mode")?.as_str() {
            "pipelined" => {
                let beta = f.take_f64("beta")?;
                if beta < 0.0 {
                    return Err(bad("beta", "must be non-negative"));
                }
                let steps = f.take_u64("steps")?;
                if steps == 0 || steps > limits::MAX_STEPS {
                    return Err(bad(
                        "steps",
                        format!("must lie in 1..={}", limits::MAX_STEPS),
                    ));
                }
                if steps / sample_every > limits::MAX_SAMPLES {
                    return Err(bad(
                        "sample_every",
                        format!("would record more than {} samples", limits::MAX_SAMPLES),
                    ));
                }
                ModeKind::Pipelined { beta, steps }
            }
            "tempered" => {
                let geometric = match f.take("ladder")?.as_str() {
                    "geometric" => true,
                    "linear" => false,
                    other => return Err(bad("ladder", format!("unknown ladder `{other}`"))),
                };
                // Endpoint/monotonicity validation is deferred to
                // `BetaLadder::try_*` in `prepare`, so the ladder
                // crate stays the single source of truth.
                let ladder = LadderSpec {
                    geometric,
                    beta_min: f.take_f64("beta_min")?,
                    beta_max: f.take_f64("beta_max")?,
                    rungs: f.take_usize("rungs")?,
                };
                if ladder.rungs > limits::MAX_RUNGS {
                    return Err(bad(
                        "rungs",
                        format!("must be at most {}", limits::MAX_RUNGS),
                    ));
                }
                let rounds = f.take_u64("rounds")?;
                let sweep_ticks = f.take_u64("sweep_ticks")?;
                if rounds == 0 || sweep_ticks == 0 {
                    return Err(bad("rounds", "rounds and sweep_ticks must be at least 1"));
                }
                let total = rounds.saturating_mul(sweep_ticks);
                if total > limits::MAX_STEPS {
                    return Err(bad(
                        "rounds",
                        format!("rounds * sweep_ticks must be at most {}", limits::MAX_STEPS),
                    ));
                }
                if rounds / sample_every > limits::MAX_SAMPLES {
                    return Err(bad(
                        "sample_every",
                        format!("would record more than {} samples", limits::MAX_SAMPLES),
                    ));
                }
                ModeKind::Tempered {
                    ladder,
                    rounds,
                    sweep_ticks,
                }
            }
            other => return Err(bad("mode", format!("unknown mode `{other}`"))),
        };

        let observable = match f.take("observable")?.as_str() {
            "fraction0" => ObservableKind::Fraction0,
            "fraction1" => ObservableKind::Fraction1,
            "potential" => ObservableKind::Potential,
            other => return Err(bad("observable", format!("unknown observable `{other}`"))),
        };

        let start = match f.take_opt("start").as_deref().unwrap_or("zeros") {
            "zeros" => StartKind::Zeros,
            "ones" => StartKind::Ones,
            other => return Err(bad("start", format!("unknown start profile `{other}`"))),
        };

        let replicas = f.take_usize("replicas")?;
        if replicas == 0 || replicas > limits::MAX_REPLICAS {
            return Err(bad(
                "replicas",
                format!("must lie in 1..={}", limits::MAX_REPLICAS),
            ));
        }
        let seed = f.take_u64("seed")?;

        // Pipeline-farm overrides are passed through *unchecked* here:
        // `PipelineConfig::try_validate` in `prepare` owns the boundary, so
        // a zero lands there as a typed `pipeline:` admission error rather
        // than tripping the farm's `assert!`.
        let chunk_ticks = f
            .take_opt("chunk_ticks")
            .map(|raw| {
                raw.parse::<u64>()
                    .map_err(|_| bad("chunk_ticks", format!("`{raw}` is not an unsigned integer")))
            })
            .transpose()?;
        let channel_capacity = f
            .take_opt("channel_capacity")
            .map(|raw| {
                raw.parse::<usize>().map_err(|_| {
                    bad(
                        "channel_capacity",
                        format!("`{raw}` is not an unsigned integer"),
                    )
                })
            })
            .transpose()?;

        f.finish()?;
        Ok(JobSpec {
            game,
            topology,
            rule,
            schedule,
            mode,
            observable,
            start,
            replicas,
            seed,
            sample_every,
            chunk_ticks,
            channel_capacity,
        })
    }

    /// Canonical text of the *game description* — family, payoffs and
    /// topology, the inputs every cached derived artifact (interaction
    /// graph, colouring, locality ordering) is a pure function of. Floats
    /// are rendered as bit patterns so the key is injective.
    pub fn canonical_game_text(&self) -> String {
        use crate::protocol::encode_f64;
        let game = match self.game {
            GameFamily::Graphical { delta0, delta1 } => format!(
                "graphical delta0={} delta1={}",
                encode_f64(delta0),
                encode_f64(delta1)
            ),
            GameFamily::Ising { coupling, field } => format!(
                "ising coupling={} field={}",
                encode_f64(coupling),
                encode_f64(field)
            ),
        };
        let topology = match self.topology {
            Topology::Ring { n } => format!("ring n={n}"),
            Topology::Clique { n } => format!("clique n={n}"),
            Topology::Torus { rows, cols } => format!("torus rows={rows} cols={cols}"),
            Topology::Grid { rows, cols } => format!("grid rows={rows} cols={cols}"),
            Topology::Hypercube { dim } => format!("hypercube dim={dim}"),
            Topology::Circulant { n, k } => format!("circulant n={n} k={k}"),
        };
        format!("{game} | {topology}")
    }

    /// FNV-1a 64-bit content hash of [`canonical_game_text`](Self::canonical_game_text):
    /// the artifact-cache key.
    pub fn content_key(&self) -> u64 {
        fnv1a(self.canonical_game_text().as_bytes())
    }
}

/// FNV-1a 64-bit hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_job() -> String {
        [
            "game=graphical",
            "topology=ring",
            "n=16",
            "delta0=2.0",
            "delta1=1.0",
            "rule=logit",
            "schedule=uniform",
            "mode=pipelined",
            "beta=1.25",
            "steps=400",
            "sample_every=100",
            "observable=fraction1",
            "replicas=8",
            "seed=7",
        ]
        .join("\n")
    }

    #[test]
    fn a_wellformed_job_parses() {
        let spec = JobSpec::parse(&base_job()).unwrap();
        assert_eq!(spec.topology, Topology::Ring { n: 16 });
        assert_eq!(spec.replicas, 8);
        assert_eq!(
            spec.mode,
            ModeKind::Pipelined {
                beta: 1.25,
                steps: 400
            }
        );
        assert_eq!(spec.start, StartKind::Zeros);
        assert!(spec.chunk_ticks.is_none());
    }

    #[test]
    fn malformed_jobs_get_typed_errors() {
        let missing = JobSpec::parse("game=ising\n");
        assert_eq!(missing.unwrap_err().code(), "missing-field");

        let unknown = JobSpec::parse(&format!("{}\nwat=1", base_job()));
        assert_eq!(unknown.unwrap_err().code(), "unknown-field");

        let dup = JobSpec::parse(&format!("{}\ngame=ising", base_job()));
        assert_eq!(dup.unwrap_err().code(), "protocol");

        let oversized = JobSpec::parse(&base_job().replace("n=16", "n=9999999"));
        assert_eq!(oversized.unwrap_err().code(), "bad-value");

        let zero_steps = JobSpec::parse(&base_job().replace("steps=400", "steps=0"));
        assert_eq!(zero_steps.unwrap_err().code(), "bad-value");

        let nan_beta = JobSpec::parse(&base_job().replace("beta=1.25", "beta=nan"));
        assert_eq!(nan_beta.unwrap_err().code(), "bad-value");
    }

    #[test]
    fn the_content_key_tracks_the_game_not_the_run() {
        let a = JobSpec::parse(&base_job()).unwrap();
        // Same game, different run parameters → same artifacts.
        let b = JobSpec::parse(&base_job().replace("seed=7", "seed=99")).unwrap();
        assert_eq!(a.content_key(), b.content_key());
        // Different payoffs → different artifacts.
        let c = JobSpec::parse(&base_job().replace("delta0=2.0", "delta0=3.0")).unwrap();
        assert_ne!(a.content_key(), c.content_key());
        // Different topology → different artifacts.
        let d = JobSpec::parse(&base_job().replace("n=16", "n=18")).unwrap();
        assert_ne!(a.content_key(), d.content_key());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
