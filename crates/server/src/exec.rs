//! Admission (prepare) and execution (dispatch) of validated jobs.
//!
//! [`prepare`] is the second admission stage: it materialises the game
//! description through the library crates' fallible `try_*` constructors —
//! [`CsrGraph::try_from_graph`], [`CoordinationGame::try_new`],
//! [`IsingGame::try_new`], [`BetaLadder::try_*`],
//! [`PipelineConfig::try_validate`] — sharing the expensive derived
//! artifacts through the content-addressed [`ArtifactCache`]. Anything that
//! survives `prepare` can run on the shared pool without tripping a
//! boundary `assert!`.
//!
//! [`run_prepared`] drives the job on a given [`Simulator`] (the server's
//! pool-sharing one), honouring a [`CancelToken`]; [`run_direct`] replays
//! the same job on a *fresh* simulator the way an offline user would. The
//! two produce bit-identical [`StreamedResult`]s — the service's
//! reproducibility contract, enforced by the tests and the bench gate.

use crate::cache::{ArtifactCache, GameArtifacts};
use crate::error::AdmissionError;
use crate::job::{
    fnv1a, GameFamily, JobSpec, ModeKind, ObservableKind, RuleKind, ScheduleKind, StartKind,
    Topology,
};
use crate::protocol::{SeriesPoint, StreamedResult};
use logit_anneal::BetaLadder;
use logit_core::{
    coloring_for_graph, AllLogit, CancelToken, ColouredBlocks, DynamicsEngine, LocalityLayout,
    Logit, MetropolisLogit, NoisyBestResponse, PipelineConfig, PotentialObservable,
    ProfileEnsembleResult, ProfileObservable, SelectionSchedule, Simulator, StrategyFraction,
    SystematicSweep, TemperedEnsembleResult, TemperingEnsemble, UpdateRule,
};
use logit_games::{CoordinationGame, GraphicalCoordinationGame, IsingGame, PotentialGame};
use logit_graphs::{CsrGraph, GraphBuilder};
use std::sync::Arc;

/// A job that has passed both admission stages and holds its shared
/// artifacts.
pub struct PreparedJob {
    /// The validated description.
    pub spec: JobSpec,
    /// Cached derived artifacts of the game description.
    pub artifacts: Arc<GameArtifacts>,
    /// Realised β-ladder of a tempered job.
    pub betas: Option<Arc<Vec<f64>>>,
    /// Whether the artifacts came out of the cache.
    pub cache_hit: bool,
    /// The validated pipeline-farm configuration.
    pub config: PipelineConfig,
}

/// Builds every derived object the job needs, funnelling each library
/// boundary's typed error into [`AdmissionError`].
pub fn prepare(spec: JobSpec, cache: &ArtifactCache) -> Result<PreparedJob, AdmissionError> {
    // Game-level payoff validation first: it is independent of the
    // (possibly expensive) graph build.
    match spec.game {
        GameFamily::Graphical { delta0, delta1 } => {
            CoordinationGame::try_from_deltas(delta0, delta1)?;
        }
        GameFamily::Ising { coupling, field } => {
            // A three-vertex probe graph exercises the payoff checks
            // without building the real topology.
            IsingGame::try_new(GraphBuilder::path(3), coupling, field)?;
        }
    }

    let (artifacts, cache_hit) = cache
        .games
        .get_or_try_insert_with(spec.content_key(), || build_artifacts(&spec))?;

    let betas = match spec.mode {
        ModeKind::Pipelined { .. } => None,
        ModeKind::Tempered { ladder, .. } => {
            let key = fnv1a(
                format!(
                    "{} {} {} {}",
                    ladder.geometric,
                    crate::protocol::encode_f64(ladder.beta_min),
                    crate::protocol::encode_f64(ladder.beta_max),
                    ladder.rungs
                )
                .as_bytes(),
            );
            let (betas, _) = cache.ladders.get_or_try_insert_with(key, || {
                let ladder = if ladder.geometric {
                    BetaLadder::try_geometric(ladder.beta_min, ladder.beta_max, ladder.rungs)?
                } else {
                    BetaLadder::try_linear(ladder.beta_min, ladder.beta_max, ladder.rungs)?
                };
                Ok::<_, AdmissionError>(Arc::new(ladder.betas().to_vec()))
            })?;
            Some(betas)
        }
    };

    let mut config = PipelineConfig::default();
    if let Some(chunk_ticks) = spec.chunk_ticks {
        config.chunk_ticks = chunk_ticks;
    }
    if let Some(channel_capacity) = spec.channel_capacity {
        config.channel_capacity = channel_capacity;
    }
    // The boundary that used to be an `assert!` in the farm: a zero knob
    // is now a typed `pipeline:` rejection.
    config.try_validate()?;

    Ok(PreparedJob {
        spec,
        artifacts,
        betas,
        cache_hit,
        config,
    })
}

/// Builds the derived artifacts of one game description (cache miss path).
fn build_artifacts(spec: &JobSpec) -> Result<Arc<GameArtifacts>, AdmissionError> {
    let graph = match spec.topology {
        Topology::Ring { n } => GraphBuilder::ring(n),
        Topology::Clique { n } => GraphBuilder::clique(n),
        Topology::Torus { rows, cols } => GraphBuilder::torus(rows, cols),
        Topology::Grid { rows, cols } => GraphBuilder::grid(rows, cols),
        Topology::Hypercube { dim } => GraphBuilder::hypercube(dim),
        Topology::Circulant { n, k } => GraphBuilder::circulant(n, k),
    };
    // The CSR u32-width boundary, as a typed error (unreachable under the
    // admission limits, but the farm must never see an unchecked graph).
    CsrGraph::try_from_graph(&graph)?;
    let coloring = coloring_for_graph(&graph);
    let (layout, _) = match spec.game {
        GameFamily::Graphical { delta0, delta1 } => {
            let base = CoordinationGame::try_from_deltas(delta0, delta1)?;
            LocalityLayout::for_game(&GraphicalCoordinationGame::new(graph.clone(), base))
        }
        GameFamily::Ising { coupling, field } => {
            LocalityLayout::for_game(&IsingGame::try_new(graph.clone(), coupling, field)?)
        }
    };
    let bandwidth = (layout.bandwidth_before(), layout.bandwidth_after());
    Ok(Arc::new(GameArtifacts {
        graph,
        coloring,
        layout,
        bandwidth,
    }))
}

/// Observable dispatch: a concrete `ProfileObservable` per
/// [`ObservableKind`], generic in the game so the potential observable can
/// hold it.
enum JobObservable<G: PotentialGame> {
    Fraction(StrategyFraction),
    Potential(PotentialObservable<G>),
}

impl<G: PotentialGame> JobObservable<G> {
    fn new(kind: ObservableKind, game: &G) -> Self
    where
        G: Clone,
    {
        match kind {
            ObservableKind::Fraction0 => {
                JobObservable::Fraction(StrategyFraction::new(0, "fraction_0"))
            }
            ObservableKind::Fraction1 => {
                JobObservable::Fraction(StrategyFraction::new(1, "fraction_1"))
            }
            ObservableKind::Potential => {
                JobObservable::Potential(PotentialObservable::new(game.clone()))
            }
        }
    }
}

impl<G: PotentialGame> ProfileObservable for JobObservable<G> {
    fn evaluate_profile(&self, profile: &[usize]) -> f64 {
        match self {
            JobObservable::Fraction(o) => o.evaluate_profile(profile),
            JobObservable::Potential(o) => o.evaluate_profile(profile),
        }
    }
    fn name(&self) -> &str {
        match self {
            JobObservable::Fraction(o) => o.name(),
            JobObservable::Potential(o) => o.name(),
        }
    }
}

fn start_profile(spec: &JobSpec) -> Vec<usize> {
    let n = spec.topology.num_players();
    match spec.start {
        StartKind::Zeros => vec![0; n],
        StartKind::Ones => vec![1; n],
    }
}

fn profile_result_to_stream(r: ProfileEnsembleResult) -> StreamedResult {
    let points = r
        .times
        .iter()
        .zip(r.series.iter())
        .map(|(&t, s)| SeriesPoint {
            t,
            count: s.count(),
            mean: s.mean(),
            variance: s.variance(),
            min: s.min(),
            max: s.max(),
        })
        .collect();
    StreamedResult {
        name: r.name,
        points,
        finals: r.final_values,
    }
}

fn tempered_result_to_stream(r: TemperedEnsembleResult) -> StreamedResult {
    let points = r
        .times
        .iter()
        .zip(r.series.iter())
        .map(|(&t, s)| SeriesPoint {
            t,
            count: s.count(),
            mean: s.mean(),
            variance: s.variance(),
            min: s.min(),
            max: s.max(),
        })
        .collect();
    StreamedResult {
        name: r.name,
        points,
        finals: r.final_values,
    }
}

/// Runs a prepared job on `sim` — the server's pool-sharing simulator —
/// honouring `cancel`. Returns `None` when the job was cancelled before
/// completing.
///
/// Pipelined jobs check the token at every worker chunk boundary (the
/// farm's cooperative granularity). Tempered jobs check it only before the
/// run starts — the tempering loop has no cancellation seam — so a
/// mid-run cancel of a tempered job takes effect when the result is
/// streamed, not during the sweep.
pub fn run_prepared(
    sim: &Simulator,
    job: &PreparedJob,
    cancel: &CancelToken,
) -> Option<StreamedResult> {
    if cancel.is_cancelled() {
        return None;
    }
    dispatch_game(job, &mut |runner| runner.run(sim, job, Some(cancel)))
}

/// Replays a prepared job the way an offline user would: a fresh
/// [`Simulator`] with the job's seed and replicas, no farm cancellation.
/// Bit-identical to the streamed result of [`run_prepared`] by the
/// pipelined ≡ sequential contract of the engines.
pub fn run_direct(job: &PreparedJob) -> StreamedResult {
    let sim = Simulator::new(job.spec.seed, job.spec.replicas);
    dispatch_game(job, &mut |runner| runner.run(&sim, job, None))
        .expect("uncancelled direct runs always complete")
}

/// A fully monomorphised runnable job: game, rule and engine chosen.
trait RunnableJob {
    fn run(
        &self,
        sim: &Simulator,
        job: &PreparedJob,
        cancel: Option<&CancelToken>,
    ) -> Option<StreamedResult>;
}

struct Runner<G: PotentialGame + Clone, U: UpdateRule + Clone> {
    game: G,
    rule: U,
}

fn dispatch_game(
    job: &PreparedJob,
    f: &mut dyn FnMut(&dyn RunnableJob) -> Option<StreamedResult>,
) -> Option<StreamedResult> {
    let graph = job.artifacts.graph.clone();
    match job.spec.game {
        GameFamily::Graphical { delta0, delta1 } => {
            let base = CoordinationGame::try_from_deltas(delta0, delta1)
                .expect("payoffs were validated at admission");
            let game = GraphicalCoordinationGame::new(graph, base);
            dispatch_rule(job, game, f)
        }
        GameFamily::Ising { coupling, field } => {
            let game = IsingGame::try_new(graph, coupling, field)
                .expect("payoffs were validated at admission");
            dispatch_rule(job, game, f)
        }
    }
}

fn dispatch_rule<G>(
    job: &PreparedJob,
    game: G,
    f: &mut dyn FnMut(&dyn RunnableJob) -> Option<StreamedResult>,
) -> Option<StreamedResult>
where
    G: PotentialGame + Clone + Send + Sync + 'static,
{
    match job.spec.rule {
        RuleKind::Logit => f(&Runner { game, rule: Logit }),
        RuleKind::Metropolis => f(&Runner {
            game,
            rule: MetropolisLogit,
        }),
        RuleKind::Nbr { noise } => f(&Runner {
            game,
            rule: NoisyBestResponse::new(noise),
        }),
    }
}

impl<G, U> RunnableJob for Runner<G, U>
where
    G: PotentialGame + Clone + Send + Sync + 'static,
    U: UpdateRule + Clone,
{
    fn run(
        &self,
        sim: &Simulator,
        job: &PreparedJob,
        cancel: Option<&CancelToken>,
    ) -> Option<StreamedResult> {
        let spec = &job.spec;
        let observable = JobObservable::new(spec.observable, &self.game);
        let start = start_profile(spec);
        match spec.mode {
            ModeKind::Pipelined { beta, steps } => {
                let dynamics =
                    DynamicsEngine::with_rule(self.game.clone(), self.rule.clone(), beta);
                let result = match spec.schedule {
                    ScheduleKind::Uniform => run_pipelined_uniform(
                        sim,
                        &dynamics,
                        &start,
                        steps,
                        spec.sample_every,
                        &observable,
                        job,
                        cancel,
                    ),
                    ScheduleKind::Sweep => run_pipelined_scheduled(
                        sim,
                        &dynamics,
                        &SystematicSweep,
                        &start,
                        steps,
                        spec.sample_every,
                        &observable,
                        job,
                        cancel,
                    ),
                    ScheduleKind::All => run_pipelined_scheduled(
                        sim,
                        &dynamics,
                        &AllLogit,
                        &start,
                        steps,
                        spec.sample_every,
                        &observable,
                        job,
                        cancel,
                    ),
                    ScheduleKind::Coloured => run_pipelined_scheduled(
                        sim,
                        &dynamics,
                        &ColouredBlocks::new(job.artifacts.coloring.clone()),
                        &start,
                        steps,
                        spec.sample_every,
                        &observable,
                        job,
                        cancel,
                    ),
                };
                result.map(profile_result_to_stream)
            }
            ModeKind::Tempered {
                rounds,
                sweep_ticks,
                ..
            } => {
                let betas = job
                    .betas
                    .as_ref()
                    .expect("tempered jobs carry their ladder");
                let ensemble =
                    TemperingEnsemble::new(self.game.clone(), self.rule.clone(), betas.as_slice());
                let result = match spec.schedule {
                    ScheduleKind::Uniform => run_tempered_scheduled(
                        sim,
                        &ensemble,
                        &logit_core::UniformSingle,
                        &start,
                        rounds,
                        sweep_ticks,
                        spec.sample_every,
                        &observable,
                    ),
                    ScheduleKind::Sweep => run_tempered_scheduled(
                        sim,
                        &ensemble,
                        &SystematicSweep,
                        &start,
                        rounds,
                        sweep_ticks,
                        spec.sample_every,
                        &observable,
                    ),
                    ScheduleKind::All => run_tempered_scheduled(
                        sim,
                        &ensemble,
                        &AllLogit,
                        &start,
                        rounds,
                        sweep_ticks,
                        spec.sample_every,
                        &observable,
                    ),
                    ScheduleKind::Coloured => run_tempered_scheduled(
                        sim,
                        &ensemble,
                        &ColouredBlocks::new(job.artifacts.coloring.clone()),
                        &start,
                        rounds,
                        sweep_ticks,
                        spec.sample_every,
                        &observable,
                    ),
                };
                Some(tempered_result_to_stream(result))
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_pipelined_uniform<G, U, O>(
    sim: &Simulator,
    dynamics: &DynamicsEngine<G, U>,
    start: &[usize],
    steps: u64,
    sample_every: u64,
    observable: &O,
    job: &PreparedJob,
    cancel: Option<&CancelToken>,
) -> Option<ProfileEnsembleResult>
where
    G: logit_games::Game + Sync,
    U: UpdateRule,
    O: ProfileObservable + Sync,
{
    match cancel {
        Some(token) => sim.run_profiles_pipelined_cancellable_with(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            &job.config,
            token,
        ),
        // The direct path is the *sequential* engine: the service's
        // reproducibility gate leans on the pipelined ≡ sequential
        // bit-identity contract rather than re-running the farm.
        None => Some(sim.run_profiles(dynamics, start, steps, sample_every, observable)),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_pipelined_scheduled<G, U, S, O>(
    sim: &Simulator,
    dynamics: &DynamicsEngine<G, U>,
    schedule: &S,
    start: &[usize],
    steps: u64,
    sample_every: u64,
    observable: &O,
    job: &PreparedJob,
    cancel: Option<&CancelToken>,
) -> Option<ProfileEnsembleResult>
where
    G: logit_games::Game + Sync,
    U: UpdateRule,
    S: SelectionSchedule,
    O: ProfileObservable + Sync,
{
    match cancel {
        Some(token) => sim.run_profiles_scheduled_pipelined_cancellable_with(
            dynamics,
            start,
            steps,
            sample_every,
            observable,
            schedule,
            &job.config,
            token,
        ),
        None => Some(sim.run_profiles_scheduled(
            dynamics,
            schedule,
            start,
            steps,
            sample_every,
            observable,
        )),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_tempered_scheduled<G, U, S, O>(
    sim: &Simulator,
    ensemble: &TemperingEnsemble<G, U>,
    schedule: &S,
    start: &[usize],
    rounds: u64,
    sweep_ticks: u64,
    sample_every: u64,
    observable: &O,
) -> TemperedEnsembleResult
where
    G: PotentialGame + Send + Sync,
    U: UpdateRule,
    S: SelectionSchedule,
    O: ProfileObservable + Sync,
{
    sim.run_tempered(
        ensemble,
        schedule,
        start,
        rounds,
        sweep_ticks,
        sample_every,
        observable,
    )
}
