//! The long-running job server and its blocking client helpers.
//!
//! ## Architecture
//!
//! One listener thread accepts TCP connections and spawns a handler thread
//! per connection. Handlers run *admission* ([`JobSpec::parse`] +
//! [`prepare`]) and push accepted jobs onto a bounded queue; a single
//! **executor** thread drains the queue and drives each job on the shared
//! [`Simulator`] — the [`WorkerPool`](logit_core::WorkerPool) enforces
//! one-dispatch-at-a-time (`install` asserts against concurrent dispatch),
//! so serialising execution is a correctness requirement, not a
//! simplification. Batching therefore happens at the queue: many tenants
//! admit and enqueue concurrently, the pool crunches jobs back-to-back
//! without respawning threads.
//!
//! ## Reproducibility
//!
//! Each job runs on `simulator.reseeded(spec.seed, spec.replicas)` — a
//! fork sharing the pool but carrying the *job's* seed, so any stream can
//! be replayed offline by `Simulator::new(seed, replicas)` plus the same
//! description ([`run_direct`]); the streamed frames are bit-identical.
//!
//! ## Cancellation
//!
//! A per-job [`CancelToken`] is created at admission. A watcher thread per
//! connection turns a [`CANCEL`](crate::protocol::CANCEL) frame — or the client
//! vanishing — into `token.cancel()`; the farm observes it at chunk
//! granularity and the handler finishes the stream with a `CANCELLED`
//! frame instead of `FINAL`/`DONE`. A panic anywhere in a job is caught by
//! the executor's `catch_unwind` backstop and surfaces as an `ERROR` frame
//! on that connection only.

use crate::cache::{ArtifactCache, CacheStats};
use crate::error::AdmissionError;
use crate::exec::{prepare, run_prepared, PreparedJob};
use crate::job::JobSpec;
use crate::protocol::{
    read_frame, write_frame, SeriesPoint, StreamedResult, ACCEPTED, CANCEL, CANCELLED, DONE, ERROR,
    FINAL, REJECTED, SERIES, STATS, SUBMIT,
};
use logit_core::{CancelToken, Simulator};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Pending-job queue depth; a full queue rejects with `queue-full`.
    pub queue_capacity: usize,
    /// Artifact-cache capacity (game descriptions).
    pub cache_capacity: usize,
    /// Seed of the server's base simulator (forked per job, so this only
    /// matters for pool identity, never for results).
    pub base_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            cache_capacity: 32,
            base_seed: 0,
        }
    }
}

/// Monotonic counters of one server instance.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub cancelled: AtomicU64,
    pub internal_errors: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`] plus the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub accepted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub cancelled: u64,
    pub internal_errors: u64,
    pub artifact_cache: CacheStats,
}

/// The server's registered instruments, resolved once per process
/// (zero-sized no-ops without the `telemetry` feature).
struct ServerTelemetry {
    /// `server.queue_depth` — jobs admitted but not yet picked up by the
    /// executor.
    queue_depth: logit_telemetry::Gauge,
    /// `server.job_wall_ns` — ACCEPTED frame to terminal frame: queue
    /// wait + execution + streaming, as the client experiences it.
    job_wall_ns: logit_telemetry::Histogram,
    /// `server.job_exec_ns` — the executor's `run_prepared` alone.
    job_exec_ns: logit_telemetry::Histogram,
    /// `server.job_stream_ns` — writing the result frames back out.
    job_stream_ns: logit_telemetry::Histogram,
}

fn telemetry() -> &'static ServerTelemetry {
    use std::sync::OnceLock;
    static TELEMETRY: OnceLock<ServerTelemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| {
        let registry = logit_telemetry::global();
        ServerTelemetry {
            queue_depth: registry.gauge("server.queue_depth"),
            job_wall_ns: registry.histogram("server.job_wall_ns"),
            job_exec_ns: registry.histogram("server.job_exec_ns"),
            job_stream_ns: registry.histogram("server.job_stream_ns"),
        }
    })
}

/// Bumps the ground-truth reject counter and mirrors the rejection into
/// the registry under its stable admission code
/// (`server.admission_rejects{code="..."}`).
fn count_rejected(stats: &ServerStats, code: &'static str) {
    stats.rejected.fetch_add(1, Ordering::Relaxed);
    if logit_telemetry::enabled() {
        logit_telemetry::global()
            .counter_labelled("server.admission_rejects", ("code", code))
            .inc();
    }
}

/// Builds the counter snapshot from the live parts — shared between
/// [`RunningServer::stats`] and the in-handler STATS frame.
fn snapshot(stats: &ServerStats, cache: &ArtifactCache) -> StatsSnapshot {
    StatsSnapshot {
        accepted: stats.accepted.load(Ordering::Relaxed),
        rejected: stats.rejected.load(Ordering::Relaxed),
        completed: stats.completed.load(Ordering::Relaxed),
        cancelled: stats.cancelled.load(Ordering::Relaxed),
        internal_errors: stats.internal_errors.load(Ordering::Relaxed),
        artifact_cache: cache.games.stats(),
    }
}

/// One queued unit of work: everything the executor needs plus the
/// channel the handler waits on.
struct ExecRequest {
    job: PreparedJob,
    cancel: CancelToken,
    outcome_tx: SyncSender<ExecOutcome>,
}

/// What the executor reports back to the waiting handler.
enum ExecOutcome {
    /// The job ran to completion.
    Finished(Box<StreamedResult>),
    /// The farm observed the cancel token and drained cleanly.
    Cancelled,
    /// The `catch_unwind` backstop caught a panic; the pool survived
    /// (worker panics are contained per job).
    Panicked(String),
}

/// A running server bound to a local port. Dropping it without calling
/// [`shutdown`](Self::shutdown) leaks the listener thread; tests and the
/// binary always shut down explicitly.
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    cache: Arc<ArtifactCache>,
    listener_thread: Option<thread::JoinHandle<()>>,
    executor_thread: Option<thread::JoinHandle<()>>,
    /// Kept so the executor's receiver stays open until shutdown.
    queue_tx: Option<SyncSender<ExecRequest>>,
}

impl RunningServer {
    /// Binds `127.0.0.1:port` (`port = 0` for an ephemeral port), spawns
    /// the executor and listener threads, and returns immediately.
    pub fn start(port: u16, config: ServerConfig) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let cache = Arc::new(ArtifactCache::new(config.cache_capacity));
        let (queue_tx, queue_rx) = sync_channel::<ExecRequest>(config.queue_capacity);

        let executor_thread = {
            let stats = Arc::clone(&stats);
            let base = Simulator::new(config.base_seed, 1);
            thread::Builder::new()
                .name("logit-serve-executor".into())
                .spawn(move || executor_loop(queue_rx, base, &stats))?
        };

        let listener_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let cache = Arc::clone(&cache);
            let queue_tx = queue_tx.clone();
            thread::Builder::new()
                .name("logit-serve-listener".into())
                .spawn(move || listener_loop(listener, stop, stats, cache, queue_tx))?
        };

        Ok(RunningServer {
            addr,
            stop,
            stats,
            cache,
            listener_thread: Some(listener_thread),
            executor_thread: Some(executor_thread),
            queue_tx: Some(queue_tx),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the monotonic counters.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.stats, &self.cache)
    }

    /// Stops accepting connections, waits for in-flight handlers and the
    /// executor to drain, and returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        // All handler threads are joined by the listener; dropping the last
        // sender ends the executor's `recv` loop.
        self.queue_tx.take();
        if let Some(t) = self.executor_thread.take() {
            let _ = t.join();
        }
        self.stats()
    }
}

fn executor_loop(queue_rx: Receiver<ExecRequest>, base: Simulator, stats: &ServerStats) {
    while let Ok(req) = queue_rx.recv() {
        telemetry().queue_depth.add(-1.0);
        let sim = base.reseeded(req.job.spec.seed, req.job.spec.replicas);
        let exec_span = telemetry().job_exec_ns.span();
        let run = catch_unwind(AssertUnwindSafe(|| {
            run_prepared(&sim, &req.job, &req.cancel)
        }));
        drop(exec_span);
        let outcome = match run {
            Ok(Some(result)) => {
                stats.completed.fetch_add(1, Ordering::Relaxed);
                ExecOutcome::Finished(Box::new(result))
            }
            Ok(None) => {
                stats.cancelled.fetch_add(1, Ordering::Relaxed);
                ExecOutcome::Cancelled
            }
            Err(panic) => {
                stats.internal_errors.fetch_add(1, Ordering::Relaxed);
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                ExecOutcome::Panicked(msg)
            }
        };
        // The handler may have vanished (client dropped mid-run); that is
        // its problem, not the executor's.
        let _ = req.outcome_tx.send(outcome);
    }
}

fn listener_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    cache: Arc<ArtifactCache>,
    queue_tx: SyncSender<ExecRequest>,
) {
    let mut handlers = Vec::new();
    let job_ids = Arc::new(AtomicU64::new(1));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let stats = Arc::clone(&stats);
        let cache = Arc::clone(&cache);
        let queue_tx = queue_tx.clone();
        let job_ids = Arc::clone(&job_ids);
        if let Ok(handle) = thread::Builder::new()
            .name("logit-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &stats, &cache, &queue_tx, &job_ids);
            })
        {
            handlers.push(handle);
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Serves one connection: admission, streaming, cancellation.
fn handle_connection(
    mut stream: TcpStream,
    stats: &ServerStats,
    cache: &ArtifactCache,
    queue_tx: &SyncSender<ExecRequest>,
    job_ids: &AtomicU64,
) -> io::Result<()> {
    let submit = match read_frame(&mut stream) {
        Ok(Some((SUBMIT, payload))) => payload,
        Ok(Some((STATS, _))) => {
            // A metrics probe, not a job: answer with one snapshot frame
            // and close. Probes never touch the queue or the counters.
            let payload = crate::stats::render_stats(&snapshot(stats, cache));
            write_frame(&mut stream, STATS, &payload)?;
            return stream.shutdown(Shutdown::Both);
        }
        Ok(Some((kind, _))) => {
            let err =
                AdmissionError::Protocol(format!("expected a SUBMIT frame, got kind {kind:#04x}"));
            count_rejected(stats, err.code());
            write_frame(&mut stream, REJECTED, &err.to_string())?;
            return stream.shutdown(Shutdown::Both);
        }
        Ok(None) => return Ok(()),
        Err(e) => {
            let err = AdmissionError::Protocol(e.to_string());
            count_rejected(stats, err.code());
            let _ = write_frame(&mut stream, REJECTED, &err.to_string());
            return stream.shutdown(Shutdown::Both);
        }
    };

    // Admission: parse, then build/fetch artifacts through the typed
    // `try_*` boundaries. Rejection is a frame, never a panic.
    let job = match JobSpec::parse(&submit).and_then(|spec| prepare(spec, cache)) {
        Ok(job) => job,
        Err(e) => {
            count_rejected(stats, e.code());
            write_frame(&mut stream, REJECTED, &e.to_string())?;
            return stream.shutdown(Shutdown::Both);
        }
    };

    // Admission metadata for the ACCEPTED frame, copied out before the
    // job moves into the queue.
    let id = job_ids.fetch_add(1, Ordering::Relaxed);
    let accepted_meta = format!(
        "job={id} key={:016x} artifacts={} colors={} bandwidth={}->{}",
        job.spec.content_key(),
        if job.cache_hit { "hit" } else { "miss" },
        job.artifacts.coloring.num_classes(),
        job.artifacts.bandwidth.0,
        job.artifacts.bandwidth.1,
    );

    let cancel = CancelToken::new();
    let (outcome_tx, outcome_rx) = sync_channel::<ExecOutcome>(1);
    let request = ExecRequest {
        job,
        cancel: cancel.clone(),
        outcome_tx,
    };
    // Reserve the queue slot *before* ACCEPTED goes out.
    match queue_tx.try_send(request) {
        Ok(()) => telemetry().queue_depth.add(1.0),
        Err(TrySendError::Full(req)) => {
            count_rejected(stats, AdmissionError::QueueFull.code());
            write_frame(
                &mut stream,
                REJECTED,
                &AdmissionError::QueueFull.to_string(),
            )?;
            // Drop the request (and its outcome channel) without running.
            drop(req);
            return stream.shutdown(Shutdown::Both);
        }
        Err(TrySendError::Disconnected(_)) => {
            let err = AdmissionError::Protocol("the server is shutting down".into());
            count_rejected(stats, err.code());
            write_frame(&mut stream, REJECTED, &err.to_string())?;
            return stream.shutdown(Shutdown::Both);
        }
    }

    stats.accepted.fetch_add(1, Ordering::Relaxed);
    // Wall clock as the client experiences it: from the moment the job is
    // accepted to its terminal frame (queue wait + execution + stream).
    let wall_span = telemetry().job_wall_ns.span();
    write_frame(&mut stream, ACCEPTED, &accepted_meta)?;

    // Watcher: turns a CANCEL frame — or the client vanishing — into a
    // token cancel. Reads on a cloned handle so the main handler can
    // write frames concurrently.
    let watcher = {
        let mut read_half = stream.try_clone()?;
        let cancel = cancel.clone();
        thread::Builder::new()
            .name("logit-serve-watch".into())
            .spawn(move || loop {
                match read_frame(&mut read_half) {
                    Ok(Some((CANCEL, _))) => {
                        cancel.cancel();
                        break;
                    }
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => {
                        // EOF or error: the client is gone; stop wasting
                        // pool time on them.
                        cancel.cancel();
                        break;
                    }
                }
            })?
    };

    // Wait for the executor, then stream.
    let outcome = outcome_rx
        .recv()
        .unwrap_or_else(|_| ExecOutcome::Panicked("executor hung up".into()));
    let write_result = match outcome {
        ExecOutcome::Finished(result) => stream_result(&mut stream, &result, &cancel, stats),
        ExecOutcome::Cancelled => write_frame(&mut stream, CANCELLED, ""),
        ExecOutcome::Panicked(msg) => write_frame(&mut stream, ERROR, &format!("internal: {msg}")),
    };
    drop(wall_span);
    // Closing both halves unblocks the watcher's read.
    let _ = stream.shutdown(Shutdown::Both);
    let _ = watcher.join();
    write_result
}

/// Streams a finished series, checking the cancel token between frames —
/// the cancellation seam for results (tempered runs) that the farm itself
/// could not interrupt.
fn stream_result(
    stream: &mut TcpStream,
    result: &StreamedResult,
    cancel: &CancelToken,
    stats: &ServerStats,
) -> io::Result<()> {
    let _stream_span = telemetry().job_stream_ns.span();
    for point in &result.points {
        if cancel.is_cancelled() {
            stats.cancelled.fetch_add(1, Ordering::Relaxed);
            return write_frame(stream, CANCELLED, "");
        }
        write_frame(stream, SERIES, &point.encode())?;
    }
    write_frame(stream, FINAL, &result.encode_final())?;
    write_frame(stream, DONE, "")
}

/// What a blocking client observed for one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOutcome {
    /// Admission rejected the job; payload is `<code>: <message>`.
    Rejected(String),
    /// The stream completed; the reassembled series.
    Done(StreamedResult),
    /// The stream ended with CANCELLED after `Vec` points.
    Cancelled(Vec<SeriesPoint>),
    /// The stream ended with an ERROR frame.
    Error(String),
}

/// Client-side latency measurement of one submission.
#[derive(Debug, Clone, Copy)]
pub struct ClientTiming {
    /// Submission → terminal frame, in seconds.
    pub total_secs: f64,
}

/// Submits one job and blocks until the stream terminates. When
/// `cancel_after_frames` is `Some(k)`, a CANCEL frame is sent as soon as
/// `k` series frames have arrived (0 cancels immediately after ACCEPTED).
pub fn submit_job(
    addr: SocketAddr,
    job_text: &str,
    cancel_after_frames: Option<usize>,
) -> io::Result<(ClientOutcome, ClientTiming)> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, SUBMIT, job_text)?;

    let mut points = Vec::new();
    let mut cancelled_sent = false;
    let mut maybe_cancel = |stream: &mut TcpStream, seen: usize| -> io::Result<()> {
        if !cancelled_sent {
            if let Some(k) = cancel_after_frames {
                if seen >= k {
                    match write_frame(stream, CANCEL, "") {
                        Ok(()) => {}
                        // The job may have completed and the server closed
                        // its end before our cancel landed; the remaining
                        // frames are still in the receive buffer.
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::BrokenPipe | io::ErrorKind::ConnectionReset
                            ) => {}
                        Err(e) => return Err(e),
                    }
                    cancelled_sent = true;
                }
            }
        }
        Ok(())
    };

    loop {
        let frame = read_frame(&mut stream)?;
        let timing = ClientTiming {
            total_secs: started.elapsed().as_secs_f64(),
        };
        match frame {
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended without a terminal frame",
                ))
            }
            Some((REJECTED, payload)) => return Ok((ClientOutcome::Rejected(payload), timing)),
            Some((ACCEPTED, _)) => {
                maybe_cancel(&mut stream, 0)?;
            }
            Some((SERIES, payload)) => {
                let point = SeriesPoint::decode(&payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                points.push(point);
                maybe_cancel(&mut stream, points.len())?;
            }
            Some((FINAL, payload)) => {
                let (name, finals) = StreamedResult::decode_final(&payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                // DONE must follow.
                match read_frame(&mut stream)? {
                    Some((DONE, _)) => {}
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("expected DONE after FINAL, got {other:?}"),
                        ))
                    }
                }
                let timing = ClientTiming {
                    total_secs: started.elapsed().as_secs_f64(),
                };
                return Ok((
                    ClientOutcome::Done(StreamedResult {
                        name,
                        points,
                        finals,
                    }),
                    timing,
                ));
            }
            Some((CANCELLED, _)) => return Ok((ClientOutcome::Cancelled(points), timing)),
            Some((ERROR, payload)) => return Ok((ClientOutcome::Error(payload), timing)),
            Some((kind, _)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected frame kind {kind:#04x}"),
                ))
            }
        }
    }
}

/// Requests a live metrics snapshot: sends one STATS frame and returns
/// the server's Prometheus-text payload. Works mid-chaos — probes bypass
/// the job queue entirely.
pub fn request_stats(addr: SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, STATS, "")?;
    match read_frame(&mut stream)? {
        Some((STATS, payload)) => Ok(payload),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a STATS frame, got {other:?}"),
        )),
    }
}

/// Writes raw bytes to the server — the malformed-client path of the smoke
/// tests. Returns whatever single frame the server answers with.
pub fn submit_raw(addr: SocketAddr, bytes: &[u8]) -> io::Result<Option<(u8, String)>> {
    use std::io::Write;
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(bytes)?;
    stream.flush()?;
    stream.shutdown(Shutdown::Write)?;
    read_frame(&mut stream)
}

// Re-exported so the module docs' [`run_direct`] link resolves in place.
pub use crate::exec::run_direct;
