//! Typed admission errors: every way a job description can be rejected
//! *before* it touches the shared worker pool.
//!
//! The library crates downstack already grew fallible `try_*` constructors
//! ([`CsrGraph::try_from_graph`](logit_graphs::CsrGraph::try_from_graph),
//! [`BetaLadder::try_geometric`](logit_anneal::BetaLadder::try_geometric),
//! [`CoordinationGame::try_new`](logit_games::CoordinationGame::try_new),
//! [`IsingGame::try_new`](logit_games::IsingGame::try_new),
//! [`PipelineConfig::try_validate`](logit_core::PipelineConfig::try_validate));
//! this enum is where their typed errors — plus the server's own field and
//! limit checks — converge into one value a client can read off a
//! `REJECTED` frame. A malformed job must never panic a pool worker: the
//! admission path is fully fallible, and the executor keeps a
//! `catch_unwind` backstop for anything that slips through.

use logit_anneal::LadderError;
use logit_core::PipelineConfigError;
use logit_games::{CoordinationError, IsingError};
use logit_graphs::CsrIndexError;
use std::fmt;

/// Why a submitted job was rejected at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// A required field was absent from the job description.
    MissingField(&'static str),
    /// A field the grammar does not know.
    UnknownField(String),
    /// A field failed to parse or violated a server limit.
    BadValue { field: &'static str, reason: String },
    /// The payoffs do not describe a coordination game.
    Coordination(CoordinationError),
    /// The Ising description is malformed.
    Ising(IsingError),
    /// The interaction graph exceeds the CSR u32 index widths.
    Csr(CsrIndexError),
    /// The β-ladder description is malformed (zero rungs, non-increasing,
    /// non-finite endpoints, …).
    Ladder(LadderError),
    /// The client-supplied pipeline knobs are invalid (zero
    /// `chunk_ticks`/`channel_capacity`).
    Pipeline(PipelineConfigError),
    /// The job queue is at capacity; retry later.
    QueueFull,
    /// The connection violated the framing protocol.
    Protocol(String),
}

impl AdmissionError {
    /// Stable machine-readable code, the first token of the `REJECTED`
    /// frame payload.
    pub fn code(&self) -> &'static str {
        match self {
            AdmissionError::MissingField(_) => "missing-field",
            AdmissionError::UnknownField(_) => "unknown-field",
            AdmissionError::BadValue { .. } => "bad-value",
            AdmissionError::Coordination(_) => "coordination",
            AdmissionError::Ising(_) => "ising",
            AdmissionError::Csr(_) => "csr",
            AdmissionError::Ladder(_) => "ladder",
            AdmissionError::Pipeline(_) => "pipeline",
            AdmissionError::QueueFull => "queue-full",
            AdmissionError::Protocol(_) => "protocol",
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::MissingField(field) => {
                write!(f, "{}: job description lacks `{field}`", self.code())
            }
            AdmissionError::UnknownField(field) => {
                write!(f, "{}: unknown field `{field}`", self.code())
            }
            AdmissionError::BadValue { field, reason } => {
                write!(f, "{}: `{field}` {reason}", self.code())
            }
            AdmissionError::Coordination(e) => write!(f, "{}: {e}", self.code()),
            AdmissionError::Ising(e) => write!(f, "{}: {e}", self.code()),
            AdmissionError::Csr(e) => write!(f, "{}: {e}", self.code()),
            AdmissionError::Ladder(e) => write!(f, "{}: {e}", self.code()),
            AdmissionError::Pipeline(e) => write!(f, "{}: {e}", self.code()),
            AdmissionError::QueueFull => {
                write!(
                    f,
                    "{}: the job queue is at capacity, retry later",
                    self.code()
                )
            }
            AdmissionError::Protocol(reason) => write!(f, "{}: {reason}", self.code()),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl From<CoordinationError> for AdmissionError {
    fn from(e: CoordinationError) -> Self {
        AdmissionError::Coordination(e)
    }
}

impl From<IsingError> for AdmissionError {
    fn from(e: IsingError) -> Self {
        AdmissionError::Ising(e)
    }
}

impl From<CsrIndexError> for AdmissionError {
    fn from(e: CsrIndexError) -> Self {
        AdmissionError::Csr(e)
    }
}

impl From<LadderError> for AdmissionError {
    fn from(e: LadderError) -> Self {
        AdmissionError::Ladder(e)
    }
}

impl From<PipelineConfigError> for AdmissionError {
    fn from(e: PipelineConfigError) -> Self {
        AdmissionError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_messages_are_stable() {
        let e = AdmissionError::BadValue {
            field: "steps",
            reason: "must be at most 1000000000".into(),
        };
        assert_eq!(e.code(), "bad-value");
        assert_eq!(
            e.to_string(),
            "bad-value: `steps` must be at most 1000000000"
        );
        let e = AdmissionError::Ladder(LadderError::NotIncreasing);
        assert_eq!(
            e.to_string(),
            "ladder: the ladder must have room to increase"
        );
        assert_eq!(AdmissionError::QueueFull.code(), "queue-full");
    }
}
