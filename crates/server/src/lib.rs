//! # logit-server
//!
//! Simulation as a service: a long-running, multi-tenant job server over
//! the logit-dynamics engines.
//!
//! A *job* is a plain-text description — game family × topology ×
//! revision rule × selection schedule × (β or β-ladder) × observable ×
//! sample grid — submitted over a length-prefixed TCP protocol
//! ([`protocol`]). Admission validates the description into typed
//! [`AdmissionError`]s ([`job`], [`exec::prepare`]); accepted jobs are
//! queued onto the single shared [`WorkerPool`](logit_core::WorkerPool)
//! behind the pipeline farm ([`server`]), with derived artifacts
//! (interaction graphs, colourings, locality orderings, β-ladders) shared
//! across tenants through a content-hash-keyed LRU cache ([`cache`]).
//!
//! The contract that makes the service more than a remote-procedure
//! wrapper: every streamed series is **bit-reproducible offline**. The
//! stream carries `f64`s as IEEE-754 bit patterns, each job runs under its
//! own seed on a forked simulator, and [`run_direct`] — a fresh
//! [`Simulator`](logit_core::Simulator) plus the same description —
//! reproduces the streamed frames byte for byte, cancellations and
//! concurrent tenants notwithstanding. The integration tests and the
//! `service` benchmark rows gate on exactly this equality.

pub mod cache;
pub mod error;
pub mod exec;
pub mod job;
pub mod protocol;
pub mod server;
pub mod stats;

pub use cache::{ArtifactCache, CacheStats, GameArtifacts, LruCache};
pub use error::AdmissionError;
pub use exec::{prepare, run_direct, run_prepared, PreparedJob};
pub use job::{
    fnv1a, GameFamily, JobSpec, LadderSpec, ModeKind, ObservableKind, RuleKind, ScheduleKind,
    StartKind, Topology,
};
pub use protocol::{SeriesPoint, StreamedResult};
pub use server::{
    request_stats, submit_job, submit_raw, ClientOutcome, ClientTiming, RunningServer,
    ServerConfig, ServerStats, StatsSnapshot,
};
pub use stats::render_stats;
