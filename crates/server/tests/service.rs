//! End-to-end service tests: admission, cancellation, multi-tenant
//! reproducibility.
//!
//! The load-bearing test is `a_loaded_server_streams_bit_identical_series`:
//! a server under concurrent mixed load — pipelined and tempered jobs,
//! different games, schedules and rules, cancellations in flight — must
//! stream every completed series **byte-identical** to an offline
//! [`run_direct`] replay of the same description. That is the service's
//! whole contract: the farm, the shared pool, the artifact cache and the
//! queue must leave no fingerprints on results.

use logit_server::{
    prepare, run_direct, submit_job, submit_raw, ArtifactCache, ClientOutcome, JobSpec,
    RunningServer, ServerConfig,
};
use std::thread;

fn base_job(seed: u64) -> String {
    format!(
        "game=graphical\ntopology=ring\nn=20\ndelta0=2.0\ndelta1=1.0\n\
         rule=logit\nschedule=uniform\nmode=pipelined\nbeta=1.1\nsteps=3000\n\
         sample_every=300\nobservable=fraction1\nreplicas=6\nseed={seed}\nchunk_ticks=128"
    )
}

fn offline(text: &str) -> logit_server::StreamedResult {
    let spec = JobSpec::parse(text).expect("test job parses");
    let cache = ArtifactCache::new(4);
    let job = prepare(spec, &cache).expect("test job passes admission");
    run_direct(&job)
}

#[test]
fn a_loaded_server_streams_bit_identical_series() {
    let server = RunningServer::start(0, ServerConfig::default()).expect("bind");
    let addr = server.addr();

    // Mixed concurrent tenants: two jobs sharing one game description
    // (cache hit), an Ising sweep, a coloured-schedule circulant, a
    // noisy-best-response job and a tempered ladder — plus two cancels in
    // flight (one immediate, one mid-stream) and one malformed tenant.
    let jobs: Vec<String> = vec![
        base_job(1),
        base_job(2),
        "game=ising\ntopology=grid\nrows=4\ncols=5\ncoupling=0.8\nfield=0.1\n\
         rule=metropolis\nschedule=sweep\nmode=pipelined\nbeta=0.7\nsteps=2000\n\
         sample_every=250\nobservable=potential\nreplicas=5\nseed=3"
            .into(),
        "game=ising\ntopology=circulant\nn=24\nk=2\ncoupling=1.2\n\
         rule=logit\nschedule=coloured\nmode=pipelined\nbeta=1.4\nsteps=1500\n\
         sample_every=150\nobservable=fraction0\nreplicas=4\nseed=4"
            .into(),
        "game=graphical\ntopology=hypercube\ndim=4\ndelta0=1.5\ndelta1=0.5\n\
         rule=nbr\nnoise=0.1\nschedule=all\nmode=pipelined\nbeta=2.0\nsteps=1000\n\
         sample_every=100\nobservable=fraction1\nreplicas=4\nseed=5"
            .into(),
        "game=graphical\ntopology=ring\nn=12\ndelta0=3.0\ndelta1=1.0\n\
         rule=logit\nschedule=uniform\nmode=tempered\nladder=linear\n\
         beta_min=0.1\nbeta_max=1.6\nrungs=4\nrounds=30\nsweep_ticks=24\n\
         sample_every=6\nobservable=potential\nreplicas=3\nseed=6"
            .into(),
    ];

    let handles: Vec<_> = jobs
        .iter()
        .map(|text| {
            let text = text.clone();
            thread::spawn(move || {
                let (outcome, _) = submit_job(addr, &text, None).expect("client io");
                (text, outcome)
            })
        })
        .collect();
    let cancel_now = {
        let text = base_job(91);
        thread::spawn(move || submit_job(addr, &text, Some(0)).expect("client io"))
    };
    let cancel_mid = {
        let text = base_job(92);
        thread::spawn(move || submit_job(addr, &text, Some(3)).expect("client io"))
    };
    let malformed = thread::spawn(move || {
        let text = base_job(93).replace("chunk_ticks=128", "chunk_ticks=0");
        submit_job(addr, &text, None).expect("client io")
    });

    for handle in handles {
        let (text, outcome) = handle.join().expect("client thread");
        match outcome {
            ClientOutcome::Done(streamed) => {
                let direct = offline(&text);
                assert_eq!(
                    streamed.wire_text(),
                    direct.wire_text(),
                    "a streamed series diverged from its offline replay"
                );
                assert!(!streamed.points.is_empty());
            }
            other => panic!("expected a completed stream, got {other:?}"),
        }
    }

    // Cancels end cleanly — either CANCELLED or, if the farm outran the
    // token, a complete (and then reproducible) stream.
    for (label, handle) in [("immediate", cancel_now), ("mid-stream", cancel_mid)] {
        let (outcome, _) = handle.join().expect("cancel client thread");
        match outcome {
            ClientOutcome::Cancelled(_) => {}
            ClientOutcome::Done(streamed) => {
                let direct = offline(&base_job(if label == "immediate" { 91 } else { 92 }));
                assert_eq!(streamed.wire_text(), direct.wire_text());
            }
            other => panic!("{label} cancel: expected a clean stream end, got {other:?}"),
        }
    }

    // The malformed tenant got a typed pipeline rejection.
    let (outcome, _) = malformed.join().expect("malformed client thread");
    match outcome {
        ClientOutcome::Rejected(msg) => {
            assert!(
                msg.starts_with("pipeline:"),
                "zero chunk_ticks is a typed pipeline rejection, got `{msg}`"
            );
            assert!(msg.contains("chunk_ticks must be at least 1"));
        }
        other => panic!("expected a rejection, got {other:?}"),
    }

    // Nothing above may have hurt the shared pool: a fresh job on the
    // same server still completes and replays bit-identically.
    let text = base_job(123);
    let (outcome, _) = submit_job(addr, &text, None).expect("client io");
    match outcome {
        ClientOutcome::Done(streamed) => {
            assert_eq!(streamed.wire_text(), offline(&text).wire_text());
        }
        other => panic!("post-chaos job should complete, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.internal_errors, 0, "no panics reached the backstop");
    assert_eq!(stats.rejected, 1);
    assert!(stats.completed >= 7);
    assert!(
        stats.artifact_cache.hits >= 1,
        "tenants sharing a game description must share its artifacts"
    );
}

#[test]
fn admission_rejects_each_malformed_layer_with_its_typed_code() {
    let server = RunningServer::start(0, ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let reject = |text: String| -> String {
        match submit_job(addr, &text, None).expect("client io").0 {
            ClientOutcome::Rejected(msg) => msg,
            other => panic!("expected a rejection for `{text}`, got {other:?}"),
        }
    };

    // Grammar layer.
    assert!(reject("game=ising".into()).starts_with("missing-field:"));
    assert!(reject(format!("{}\nwat=1", base_job(1))).starts_with("unknown-field:"));
    // Payoff layer (delta0 <= 0 is not a coordination game).
    assert!(reject(base_job(1).replace("delta0=2.0", "delta0=-1.0")).starts_with("coordination:"));
    // Ising layer (antiferromagnetic coupling).
    let ising = "game=ising\ntopology=ring\nn=8\ncoupling=-1.0\nrule=logit\n\
                 schedule=uniform\nmode=pipelined\nbeta=1.0\nsteps=100\n\
                 sample_every=10\nobservable=potential\nreplicas=2\nseed=1";
    assert!(reject(ising.into()).starts_with("ising:"));
    // Ladder layer (non-increasing β-ladder).
    let ladder = "game=graphical\ntopology=ring\nn=8\ndelta0=1.0\ndelta1=1.0\n\
                  rule=logit\nschedule=uniform\nmode=tempered\nladder=geometric\n\
                  beta_min=2.0\nbeta_max=0.5\nrungs=4\nrounds=10\nsweep_ticks=8\n\
                  sample_every=2\nobservable=potential\nreplicas=2\nseed=1";
    let msg = reject(ladder.into());
    assert!(msg.starts_with("ladder:"), "got `{msg}`");
    assert!(msg.contains("increase"));
    // Pipeline layer (zero channel capacity).
    assert!(reject(
        format!("{}\nchannel_capacity=0", base_job(1)).replace("chunk_ticks=128\n", "")
    )
    .starts_with("pipeline:"));
    // Protocol layer (raw garbage framing).
    let reply = submit_raw(addr, b"\x00\x00\x00\x02Qq").expect("garbage io");
    let (kind, payload) = reply.expect("server answers garbage with a frame");
    assert_eq!(kind, b'R');
    assert!(payload.starts_with("protocol:"));

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.rejected, 7);
    assert_eq!(stats.internal_errors, 0);
}

#[test]
fn rejected_and_cancelled_jobs_leave_the_pool_able_to_reproduce() {
    // Tight interleaving: reject, cancel, complete, repeatedly on one
    // server — then the final completed job must still match offline.
    let server = RunningServer::start(0, ServerConfig::default()).expect("bind");
    let addr = server.addr();

    for round in 0..3u64 {
        let bad = base_job(round).replace("steps=3000", "steps=0");
        match submit_job(addr, &bad, None).expect("client io").0 {
            ClientOutcome::Rejected(msg) => assert!(msg.starts_with("bad-value:")),
            other => panic!("expected rejection, got {other:?}"),
        }
        let cancel_text = base_job(100 + round);
        let (outcome, _) = submit_job(addr, &cancel_text, Some(0)).expect("client io");
        assert!(
            matches!(
                outcome,
                ClientOutcome::Cancelled(_) | ClientOutcome::Done(_)
            ),
            "cancel must end the stream cleanly"
        );
        let good = base_job(200 + round);
        match submit_job(addr, &good, None).expect("client io").0 {
            ClientOutcome::Done(streamed) => {
                assert_eq!(streamed.wire_text(), offline(&good).wire_text());
            }
            other => panic!("round {round}: expected completion, got {other:?}"),
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.internal_errors, 0);
    assert_eq!(stats.rejected, 3);
}

#[test]
fn tempered_jobs_stream_and_replay_bit_identically() {
    let server = RunningServer::start(0, ServerConfig::default()).expect("bind");
    let addr = server.addr();
    let text = "game=ising\ntopology=ring\nn=10\ncoupling=1.0\n\
                rule=logit\nschedule=uniform\nmode=tempered\nladder=geometric\n\
                beta_min=0.25\nbeta_max=2.0\nrungs=3\nrounds=20\nsweep_ticks=16\n\
                sample_every=4\nobservable=potential\nreplicas=2\nseed=42";
    let (outcome, _) = submit_job(addr, text, None).expect("client io");
    match outcome {
        ClientOutcome::Done(streamed) => {
            let direct = offline(text);
            assert_eq!(streamed.wire_text(), direct.wire_text());
            assert_eq!(streamed.name, direct.name);
        }
        other => panic!("expected completion, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn the_artifact_cache_is_shared_and_lru_bounded() {
    let server = RunningServer::start(
        0,
        ServerConfig {
            cache_capacity: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let quick = |n: usize, seed: u64| {
        format!(
            "game=graphical\ntopology=ring\nn={n}\ndelta0=2.0\ndelta1=1.0\n\
             rule=logit\nschedule=uniform\nmode=pipelined\nbeta=1.0\nsteps=200\n\
             sample_every=50\nobservable=fraction1\nreplicas=2\nseed={seed}"
        )
    };
    // Same description twice → second admission hits.
    submit_job(addr, &quick(10, 1), None).expect("io");
    submit_job(addr, &quick(10, 2), None).expect("io");
    // Two more distinct descriptions overflow capacity 2 → eviction.
    submit_job(addr, &quick(12, 3), None).expect("io");
    submit_job(addr, &quick(14, 4), None).expect("io");

    let stats = server.shutdown();
    assert!(stats.artifact_cache.hits >= 1);
    assert!(stats.artifact_cache.misses >= 3);
    assert!(stats.artifact_cache.evictions >= 1);
    assert_eq!(stats.internal_errors, 0);
}
