//! Trajectory observables: the transient phase of the dynamics.
//!
//! The paper's conclusions point out that when the mixing time is exponential
//! the system spends its life in a *transient* (metastable) phase, and ask what
//! can be predicted about it. This module provides the measurement side of that
//! question: scalar observables evaluated along trajectories (potential,
//! Hamming distance to a reference profile, fraction of players on a given
//! strategy), time series averaged over ensembles of replicas, and CSV export
//! for plotting.

use crate::dynamics::DynamicsEngine;
use crate::rules::UpdateRule;
use logit_games::{Game, PotentialGame, ProfileSpace};
use logit_linalg::stats::RunningStats;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// A scalar observable of a strategy profile (given by flat index).
pub trait Observable {
    /// Evaluates the observable at the profile with flat index `state`.
    fn evaluate(&self, space: &ProfileSpace, state: usize) -> f64;

    /// Name used as a column header.
    fn name(&self) -> &str;
}

/// A scalar observable evaluated directly on a strategy profile.
///
/// This is the large-`n` counterpart of [`Observable`]: the in-place profile
/// engine never materialises flat indices (for `n ≳ 60` binary players they
/// do not fit in a `usize`), so its streaming measurements go through this
/// trait instead.
pub trait ProfileObservable {
    /// Evaluates the observable at `profile`.
    fn evaluate_profile(&self, profile: &[usize]) -> f64;

    /// Name used as a column header.
    fn name(&self) -> &str;
}

/// An ad-hoc profile observable from a closure, for experiment binaries and
/// tests: `NamedObservable::new("magnetisation", |x| ...)`.
pub struct NamedObservable<F> {
    label: String,
    f: F,
}

impl<F: Fn(&[usize]) -> f64> NamedObservable<F> {
    /// Wraps `f` under `label`.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        Self {
            label: label.into(),
            f,
        }
    }
}

impl<F: Fn(&[usize]) -> f64> ProfileObservable for NamedObservable<F> {
    fn evaluate_profile(&self, profile: &[usize]) -> f64 {
        (self.f)(profile)
    }
    fn name(&self) -> &str {
        &self.label
    }
}

/// Hamming distance to a reference profile given explicitly (the profile-space
/// analogue of [`DistanceToProfile`], usable when `|S|` has no flat index).
pub struct HammingToProfile {
    reference: Vec<usize>,
    label: String,
}

impl HammingToProfile {
    /// Creates the observable for the given reference profile.
    pub fn new(reference: Vec<usize>, label: impl Into<String>) -> Self {
        Self {
            reference,
            label: label.into(),
        }
    }
}

impl ProfileObservable for HammingToProfile {
    fn evaluate_profile(&self, profile: &[usize]) -> f64 {
        debug_assert_eq!(profile.len(), self.reference.len());
        profile
            .iter()
            .zip(&self.reference)
            .filter(|(a, b)| a != b)
            .count() as f64
    }
    fn name(&self) -> &str {
        &self.label
    }
}

/// The potential `Φ(x)` of a potential game.
pub struct PotentialObservable<G: PotentialGame> {
    game: G,
}

impl<G: PotentialGame> PotentialObservable<G> {
    /// Creates the observable.
    pub fn new(game: G) -> Self {
        Self { game }
    }
}

impl<G: PotentialGame> Observable for PotentialObservable<G> {
    fn evaluate(&self, space: &ProfileSpace, state: usize) -> f64 {
        self.game.potential(&space.profile_of(state))
    }
    fn name(&self) -> &str {
        "potential"
    }
}

impl<G: PotentialGame> ProfileObservable for PotentialObservable<G> {
    fn evaluate_profile(&self, profile: &[usize]) -> f64 {
        self.game.potential(profile)
    }
    fn name(&self) -> &str {
        "potential"
    }
}

/// Hamming distance to a reference profile (e.g. a Nash equilibrium).
pub struct DistanceToProfile {
    reference: usize,
    label: String,
}

impl DistanceToProfile {
    /// Creates the observable for the profile with flat index `reference`.
    pub fn new(reference: usize, label: impl Into<String>) -> Self {
        Self {
            reference,
            label: label.into(),
        }
    }
}

impl Observable for DistanceToProfile {
    fn evaluate(&self, space: &ProfileSpace, state: usize) -> f64 {
        space.hamming_distance(state, self.reference) as f64
    }
    fn name(&self) -> &str {
        &self.label
    }
}

/// Fraction of players currently playing a given strategy.
pub struct StrategyFraction {
    strategy: usize,
    label: String,
}

impl StrategyFraction {
    /// Creates the observable for `strategy`.
    pub fn new(strategy: usize, label: impl Into<String>) -> Self {
        Self {
            strategy,
            label: label.into(),
        }
    }
}

impl Observable for StrategyFraction {
    fn evaluate(&self, space: &ProfileSpace, state: usize) -> f64 {
        let n = space.num_players();
        (0..n)
            .filter(|&i| space.strategy_of(state, i) == self.strategy)
            .count() as f64
            / n as f64
    }
    fn name(&self) -> &str {
        &self.label
    }
}

impl ProfileObservable for StrategyFraction {
    fn evaluate_profile(&self, profile: &[usize]) -> f64 {
        profile.iter().filter(|&&s| s == self.strategy).count() as f64 / profile.len() as f64
    }
    fn name(&self) -> &str {
        &self.label
    }
}

/// A mergeable reduction target for streamed ensemble observables: one
/// [`RunningStats`] per recorded time plus the final-time value of every
/// replica (keyed by replica index, so the final-value law is exact no
/// matter how the stream was partitioned).
///
/// This is the accumulator the pipelined ensemble runner
/// ([`crate::pipeline`]) folds observable sample batches into, off the hot
/// stepping threads. Two ways to fill it:
///
/// * [`record`](Self::record) sample-by-sample — the order of `record` calls
///   *within one time index* determines the floating-point association of the
///   Welford moments, which is why the bit-identical pipelined path feeds it
///   through an order-restoring frontier
///   ([`OrderedSeriesReducer`](crate::pipeline::OrderedSeriesReducer));
/// * [`merge`](Self::merge) whole partial accumulators (disjoint replica
///   sets) — partition-invariant up to floating-point rounding in the
///   moments: counts, min/max, final values and hence the sorted
///   [`EmpiricalLaw`] are *exact* under any partition, while mean/variance
///   agree to rounding (the proptest harness pins both claims).
#[derive(Debug, Clone)]
pub struct SeriesAccumulator {
    series: Vec<RunningStats>,
    finals: std::collections::BTreeMap<usize, f64>,
}

impl SeriesAccumulator {
    /// An empty accumulator over `num_times` recorded times.
    ///
    /// # Panics
    /// Panics when `num_times` is zero — an ensemble run always records at
    /// least its final time.
    pub fn new(num_times: usize) -> Self {
        assert!(num_times >= 1, "need at least one recorded time");
        Self {
            series: vec![RunningStats::new(); num_times],
            finals: std::collections::BTreeMap::new(),
        }
    }

    /// Number of recorded times.
    pub fn num_times(&self) -> usize {
        self.series.len()
    }

    /// Folds one observable sample into the stats of recorded time `sample`;
    /// a sample at the *last* recorded time is also stored as `replica`'s
    /// final value.
    ///
    /// # Panics
    /// Panics when `sample` is out of range or when `replica` already
    /// recorded a final value (each replica passes the final time once).
    pub fn record(&mut self, sample: usize, replica: usize, value: f64) {
        assert!(sample < self.series.len(), "sample index out of range");
        self.series[sample].push(value);
        if sample + 1 == self.series.len() {
            let prev = self.finals.insert(replica, value);
            assert!(
                prev.is_none(),
                "replica {replica} already recorded a final value"
            );
        }
    }

    /// Folds another accumulator (built from a *disjoint* replica set) into
    /// this one: per-time [`RunningStats::merge`] plus a union of the final
    /// values.
    ///
    /// # Panics
    /// Panics when the time grids differ or the replica sets overlap.
    pub fn merge(&mut self, other: SeriesAccumulator) {
        assert_eq!(
            self.series.len(),
            other.series.len(),
            "accumulators cover different time grids"
        );
        for (mine, theirs) in self.series.iter_mut().zip(&other.series) {
            mine.merge(theirs);
        }
        for (replica, value) in other.finals {
            let prev = self.finals.insert(replica, value);
            assert!(
                prev.is_none(),
                "replica {replica} recorded a final value in both accumulators"
            );
        }
    }

    /// Statistics across replicas at each recorded time.
    pub fn series(&self) -> &[RunningStats] {
        &self.series
    }

    /// Final-time values in ascending replica order.
    pub fn final_values(&self) -> Vec<f64> {
        self.finals.values().copied().collect()
    }

    /// The final-time empirical law across replicas.
    ///
    /// # Panics
    /// Panics when no final values have been recorded yet.
    pub fn law(&self) -> crate::simulate::EmpiricalLaw {
        crate::simulate::EmpiricalLaw::from_samples(self.final_values())
    }

    /// Consumes the accumulator into `(series, final_values)` — the two
    /// fields a `ProfileEnsembleResult` is assembled from.
    pub fn into_series_and_finals(self) -> (Vec<RunningStats>, Vec<f64>) {
        let finals = self.finals.values().copied().collect();
        (self.series, finals)
    }
}

/// A time series of ensemble statistics: one entry per recorded time step.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Name of the observable.
    pub name: String,
    /// Recorded time steps.
    pub times: Vec<u64>,
    /// Statistics across replicas at each recorded step.
    pub stats: Vec<RunningStats>,
}

impl TimeSeries {
    /// Means at each recorded step.
    pub fn means(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.mean()).collect()
    }

    /// Standard errors at each recorded step.
    pub fn std_errs(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.std_err()).collect()
    }

    /// Renders the series as CSV (`t,mean,std_err,min,max`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,mean,std_err,min,max\n");
        for (t, s) in self.times.iter().zip(&self.stats) {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6}\n",
                t,
                s.mean(),
                s.std_err(),
                s.min(),
                s.max()
            ));
        }
        out
    }
}

/// Records an observable along an ensemble of independent replicas of the logit
/// dynamics, sampling it at the given `record_times` (which must be increasing).
///
/// Replicas run in parallel with reproducible per-replica RNG streams.
pub fn ensemble_time_series<G, U, O>(
    dynamics: &DynamicsEngine<G, U>,
    observable: &O,
    start: usize,
    record_times: &[u64],
    replicas: usize,
    seed: u64,
) -> TimeSeries
where
    G: Game + Sync,
    U: UpdateRule,
    O: Observable + Sync,
{
    assert!(!record_times.is_empty(), "need at least one recording time");
    assert!(
        record_times.windows(2).all(|w| w[0] < w[1]),
        "recording times must be strictly increasing"
    );
    assert!(replicas > 0, "need at least one replica");
    assert!(start < dynamics.num_states(), "start state out of range");

    let space = dynamics.space();
    let per_replica: Vec<Vec<f64>> = (0..replicas)
        .into_par_iter()
        .map(|replica| {
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed ^ (replica as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
            );
            let mut scratch = crate::dynamics::Scratch::for_game(dynamics.game());
            let mut state = start;
            let mut t = 0u64;
            let mut values = Vec::with_capacity(record_times.len());
            for &target in record_times {
                while t < target {
                    state = dynamics.step_indexed(state, &mut scratch, &mut rng);
                    t += 1;
                }
                values.push(observable.evaluate(space, state));
            }
            values
        })
        .collect();

    let mut stats = vec![RunningStats::new(); record_times.len()];
    for values in &per_replica {
        for (k, &v) in values.iter().enumerate() {
            stats[k].push(v);
        }
    }
    TimeSeries {
        name: observable.name().to_string(),
        times: record_times.to_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LogitDynamics;
    use crate::gibbs::expected_potential;
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, WellGame};
    use logit_graphs::GraphBuilder;

    #[test]
    fn observables_evaluate_as_expected() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(4),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let space = game.profile_space();
        let all0 = space.index_of(&[0, 0, 0, 0]);
        let mixed = space.index_of(&[1, 0, 1, 0]);

        let phi = PotentialObservable::new(game.clone());
        assert_eq!(phi.evaluate(&space, all0), -8.0);
        assert_eq!(Observable::name(&phi), "potential");
        // The same observable also serves the profile engine.
        assert_eq!(phi.evaluate_profile(&[0, 0, 0, 0]), -8.0);

        let dist = DistanceToProfile::new(all0, "d(all0)");
        assert_eq!(dist.evaluate(&space, all0), 0.0);
        assert_eq!(dist.evaluate(&space, mixed), 2.0);

        let frac = StrategyFraction::new(1, "adopters");
        assert_eq!(frac.evaluate(&space, all0), 0.0);
        assert_eq!(frac.evaluate(&space, mixed), 0.5);
    }

    #[test]
    fn time_series_has_one_entry_per_recording_time() {
        let game = WellGame::plateau(4, 1.0);
        let dynamics = LogitDynamics::new(game.clone(), 0.5);
        let obs = PotentialObservable::new(game);
        let times = [1u64, 5, 20, 80];
        let series = ensemble_time_series(&dynamics, &obs, 0, &times, 200, 7);
        assert_eq!(series.times, times);
        assert_eq!(series.stats.len(), 4);
        assert!(series.stats.iter().all(|s| s.count() == 200));
        let csv = series.to_csv();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("t,mean"));
    }

    #[test]
    fn mean_potential_relaxes_towards_the_gibbs_value() {
        let game =
            GraphicalCoordinationGame::new(GraphBuilder::ring(4), CoordinationGame::symmetric(1.0));
        let beta = 1.0;
        let dynamics = LogitDynamics::new(game.clone(), beta);
        let obs = PotentialObservable::new(game.clone());
        let space = game.profile_space();
        // Start from a worst-case (alternating) profile with potential 0.
        let start = space.index_of(&[0, 1, 0, 1]);
        let series = ensemble_time_series(&dynamics, &obs, start, &[1, 8, 64, 512], 3000, 3);
        let means = series.means();
        // Monotone-ish relaxation towards E_pi[Phi].
        let target = expected_potential(&game, beta);
        assert!(
            means[0] > means[3],
            "mean potential should decrease over time"
        );
        assert!(
            (means[3] - target).abs() < 0.15,
            "long-time mean {} should approach the Gibbs expectation {target}",
            means[3]
        );
    }

    #[test]
    fn adoption_fraction_rises_in_a_risk_dominant_game() {
        // Strategy 1 is risk dominant; starting from nobody adopting, the
        // expected adopter fraction increases with time.
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(5),
            CoordinationGame::from_deltas(1.0, 2.0),
        );
        let dynamics = LogitDynamics::new(game.clone(), 1.5);
        let obs = StrategyFraction::new(1, "adopters");
        let series = ensemble_time_series(&dynamics, &obs, 0, &[2, 30, 300], 1500, 9);
        let means = series.means();
        assert!(means[2] > means[0]);
        assert!(
            means[2] > 0.7,
            "most players should have adopted by t = 300"
        );
    }

    #[test]
    fn series_accumulator_records_and_merges() {
        // Two disjoint replica sets folded separately, merged, compared with
        // the one-shot fold: counts/min/max/finals exact, moments to rounding.
        let values = [[1.0, -2.0], [4.0, 0.5], [2.5, 3.0], [-1.0, 7.0]];
        let mut one_shot = SeriesAccumulator::new(2);
        for (replica, row) in values.iter().enumerate() {
            for (sample, &v) in row.iter().enumerate() {
                one_shot.record(sample, replica, v);
            }
        }
        let mut left = SeriesAccumulator::new(2);
        let mut right = SeriesAccumulator::new(2);
        for (replica, row) in values.iter().enumerate() {
            let target = if replica < 2 { &mut left } else { &mut right };
            for (sample, &v) in row.iter().enumerate() {
                target.record(sample, replica, v);
            }
        }
        left.merge(right);
        assert_eq!(left.num_times(), 2);
        assert_eq!(left.final_values(), one_shot.final_values());
        assert_eq!(
            left.law().ks_distance(&one_shot.law()),
            0.0,
            "the sorted law is exact under any partition"
        );
        for (a, b) in left.series().iter().zip(one_shot.series()) {
            assert_eq!(a.count(), b.count());
            assert_eq!(a.min(), b.min());
            assert_eq!(a.max(), b.max());
            assert!((a.mean() - b.mean()).abs() < 1e-12);
            assert!((a.variance() - b.variance()).abs() < 1e-12);
        }
        let (series, finals) = one_shot.into_series_and_finals();
        assert_eq!(series.len(), 2);
        assert_eq!(finals, vec![-2.0, 0.5, 3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "already recorded a final value")]
    fn series_accumulator_rejects_duplicate_finals() {
        let mut acc = SeriesAccumulator::new(1);
        acc.record(0, 3, 1.0);
        acc.record(0, 3, 2.0);
    }

    #[test]
    #[should_panic(expected = "in both accumulators")]
    fn series_accumulator_rejects_overlapping_merges() {
        let mut a = SeriesAccumulator::new(1);
        a.record(0, 0, 1.0);
        let mut b = SeriesAccumulator::new(1);
        b.record(0, 0, 2.0);
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "different time grids")]
    fn series_accumulator_rejects_mismatched_grids() {
        let mut a = SeriesAccumulator::new(1);
        a.merge(SeriesAccumulator::new(2));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_recording_times_rejected() {
        let game = WellGame::plateau(3, 1.0);
        let dynamics = LogitDynamics::new(game.clone(), 1.0);
        let obs = PotentialObservable::new(game);
        let _ = ensemble_time_series(&dynamics, &obs, 0, &[5, 5], 10, 1);
    }
}
