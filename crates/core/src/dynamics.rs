//! The revision-dynamics engine: pluggable update rules, selection schedules
//! and the induced Markov chains.
//!
//! [`DynamicsEngine<G, U>`] drives a noisy revision process on a strategic
//! game `G` under an [`UpdateRule`] `U` — the logit/Glauber softmax of
//! eq. (2) ([`Logit`], the paper's dynamics and the default), the Metropolis
//! kernel with the same Gibbs stationary distribution
//! ([`MetropolisLogit`](crate::rules::MetropolisLogit)), or noisy best
//! response ([`NoisyBestResponse`](crate::rules::NoisyBestResponse)).
//! [`LogitDynamics`] is a backward-compatible alias for the logit instance.
//!
//! Two simulation engines share every rule:
//!
//! * the **in-place profile engine** ([`DynamicsEngine::step_profile`]):
//!   mutates a strategy profile directly using reusable [`Scratch`] buffers,
//!   never touches the flat state index, and therefore scales to games whose
//!   profile space does not even fit in a `usize` (e.g. rings with `n = 10⁶`
//!   players). One step costs `O(|S_i| + cost(utilities_for))` — for
//!   `LocalGame`s that is `O(|S_i| + deg(i))`, independent of `n` and `|S|`;
//! * the **flat-index engine** ([`DynamicsEngine::step`] /
//!   [`DynamicsEngine::step_indexed`]): a thin wrapper that decodes the
//!   index, delegates to the profile engine and re-encodes. It consumes the
//!   RNG stream identically, so both engines produce the same trajectory from
//!   the same seed; it exists for the exact analyses, which index
//!   distributions by flat state.
//!
//! Orthogonally to the rule, a [`SelectionSchedule`] decides *who* revises at
//! each tick ([`DynamicsEngine::step_scheduled`]): one uniform player (the
//! paper's chain), a systematic sweep, or the parallel all-logit block update
//! in which every player revises against the frozen pre-tick profile. The
//! exact counterparts are [`DynamicsEngine::transition_matrix`] (uniform
//! selection, any rule), [`DynamicsEngine::transition_matrix_all_logit`] and
//! [`DynamicsEngine::transition_matrix_sweep_round`].

use crate::rules::{Logit, UpdateRule};
use crate::schedules::SelectionSchedule;
use logit_games::{Game, PotentialGame, ProfileSpace};
use logit_linalg::{CsrMatrix, Matrix};
use logit_markov::MarkovChain;
use rand::Rng;
use std::sync::OnceLock;

/// Reusable per-chain scratch buffers for the allocation-free step paths.
///
/// One `Scratch` per replica (or per thread) eliminates the per-step heap
/// churn the original engine suffered: utilities, probabilities and the
/// decoded profile all live here and are recycled across steps.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Utilities `u_i(s, x_{-i})`, one per strategy of the updating player.
    utils: Vec<f64>,
    /// The update-rule probabilities over those strategies.
    probs: Vec<f64>,
    /// Decoded profile buffer used by the flat-index wrapper.
    profile: Vec<usize>,
    /// Players selected by the current schedule tick.
    players: Vec<usize>,
    /// Strategies staged by a parallel block update before they are applied.
    staged: Vec<usize>,
    /// Byte-packed staged strategies for the SoA coloured sweeps
    /// (`step_coloured_pooled_bytes` in [`crate::locality`]): one byte per
    /// staged player instead of a `usize`, an 8× cut in the write stream
    /// that keeps a cache-blocked chunk's working set L2-resident.
    pub(crate) staged_bytes: Vec<u8>,
}

impl Scratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for `game`: avoids even the first-use allocations on
    /// the single-player step paths. The schedule buffers (`players`,
    /// `staged`) are sized for single-player ticks; a parallel block schedule
    /// grows them to `n` on its first tick and they are recycled thereafter.
    pub fn for_game<G: Game>(game: &G) -> Self {
        let m = game.max_strategies();
        let n = game.num_players();
        Self {
            utils: Vec::with_capacity(m),
            probs: Vec::with_capacity(m),
            profile: Vec::with_capacity(n),
            players: Vec::with_capacity(1),
            staged: Vec::new(),
            staged_bytes: Vec::new(),
        }
    }

    /// The update distribution computed by the most recent
    /// [`DynamicsEngine::update_distribution_into`] /
    /// [`DynamicsEngine::step_profile`] call.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Splits out the utility and probability buffers together (the
    /// borrow-checker-friendly handle the in-crate byte sweeps use to fill
    /// utilities and rule probabilities without an extra allocation).
    pub(crate) fn rule_buffers(&mut self) -> (&mut Vec<f64>, &mut Vec<f64>) {
        (&mut self.utils, &mut self.probs)
    }
}

/// What one in-place step did: which player updated and how she moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// The player selected for update.
    pub player: usize,
    /// Her strategy before the update.
    pub old_strategy: usize,
    /// Her strategy after the update (possibly the same).
    pub new_strategy: usize,
}

impl StepEvent {
    /// Whether the profile actually changed.
    pub fn moved(&self) -> bool {
        self.old_strategy != self.new_strategy
    }
}

/// A noisy revision process on a strategic game `G`: an [`UpdateRule`] `U`
/// at inverse noise `β`, plus the machinery to simulate it (both engines) and
/// to build its exact Markov chains under the selection schedules.
///
/// The struct borrows nothing: it owns the game (games are cheap to clone or
/// are themselves small descriptors). The profile space is materialised
/// lazily — only the flat-index paths need it, and for large-`n` games it
/// cannot even be represented (`|S|` overflows `usize`), while the profile
/// engine runs fine without it.
#[derive(Debug, Clone)]
pub struct DynamicsEngine<G: Game, U: UpdateRule = Logit> {
    game: G,
    rule: U,
    beta: f64,
    space: OnceLock<ProfileSpace>,
}

/// The logit dynamics `M_β(G)` of the paper — the [`Logit`] instance of the
/// generic engine, kept as a thin backward-compatible alias.
pub type LogitDynamics<G> = DynamicsEngine<G, Logit>;

impl<G: Game, U: UpdateRule + Default> DynamicsEngine<G, U> {
    /// Creates the dynamics with the rule's default parameters and inverse
    /// noise `β ≥ 0`.
    ///
    /// # Panics
    /// Panics when `β` is negative or not finite.
    pub fn new(game: G, beta: f64) -> Self {
        Self::with_rule(game, U::default(), beta)
    }
}

impl<G: Game, U: UpdateRule> DynamicsEngine<G, U> {
    /// Creates the dynamics with an explicit update rule and inverse noise
    /// `β ≥ 0`.
    ///
    /// # Panics
    /// Panics when `β` is negative or not finite.
    pub fn with_rule(game: G, rule: U, beta: f64) -> Self {
        assert!(
            beta >= 0.0 && beta.is_finite(),
            "beta must be finite and non-negative"
        );
        Self {
            game,
            rule,
            beta,
            space: OnceLock::new(),
        }
    }

    /// The inverse noise `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The underlying game.
    pub fn game(&self) -> &G {
        &self.game
    }

    /// The update rule.
    pub fn rule(&self) -> &U {
        &self.rule
    }

    /// The profile space of the game (materialised on first use).
    ///
    /// # Panics
    /// Panics when `|S| = Π_i |S_i|` overflows `usize` — use the profile
    /// engine ([`Self::step_profile`]) for such games; it never calls this.
    pub fn space(&self) -> &ProfileSpace {
        self.space.get_or_init(|| self.game.profile_space())
    }

    /// Number of states of the chain (`|S| = Π_i |S_i|`).
    ///
    /// # Panics
    /// Panics when `|S|` overflows `usize` (see [`Self::space`]).
    pub fn num_states(&self) -> usize {
        self.space().size()
    }

    /// The update distribution `σ_i(· | x)` of player `i` at profile `x`
    /// under the engine's rule, returned as a probability vector over the
    /// player's strategies.
    ///
    /// Allocating convenience wrapper around
    /// [`Self::update_distribution_into`]; hot paths should use the latter
    /// with a reused [`Scratch`].
    pub fn update_distribution(&self, player: usize, profile: &[usize]) -> Vec<f64> {
        let mut scratch = Scratch::new();
        let mut work = profile.to_vec();
        self.update_distribution_into(player, &mut work, &mut scratch);
        scratch.probs
    }

    /// Computes `σ_i(· | x)` into `scratch.probs` without allocating (after
    /// the buffers' first growth): the game's `utilities_for` batch hook
    /// fills `scratch.utils`, and the update rule turns the utilities into
    /// probabilities.
    ///
    /// `profile` is borrowed mutably so strategies can be varied in place by
    /// the game's `utilities_for` hook; it is restored before returning.
    pub fn update_distribution_into(
        &self,
        player: usize,
        profile: &mut [usize],
        scratch: &mut Scratch,
    ) {
        let m = self.game.num_strategies(player);
        scratch.utils.clear();
        scratch.utils.resize(m, 0.0);
        self.game.utilities_for(player, profile, &mut scratch.utils);
        self.rule.fill_probs(
            self.beta,
            profile[player],
            &scratch.utils,
            &mut scratch.probs,
        );
    }

    /// Probability that player `i`, selected for update at profile `x`, picks
    /// strategy `y` (a single entry of [`Self::update_distribution`]).
    pub fn update_probability(&self, player: usize, profile: &[usize], strategy: usize) -> f64 {
        self.update_distribution(player, profile)[strategy]
    }

    /// One in-place step of the dynamics under the paper's uniform
    /// single-player selection: selects a player uniformly at random,
    /// resamples her strategy from `σ_i(· | x)` and writes it directly into
    /// `profile`. Returns what happened as a [`StepEvent`].
    ///
    /// This is the large-`n` engine: it never builds the flat profile space,
    /// allocates nothing (with a warmed-up `scratch`), and its per-step cost
    /// is independent of `|S|`.
    pub fn step_profile<R: Rng + ?Sized>(
        &self,
        profile: &mut [usize],
        scratch: &mut Scratch,
        rng: &mut R,
    ) -> StepEvent {
        let n = self.game.num_players();
        debug_assert_eq!(
            profile.len(),
            n,
            "profile length must equal the player count"
        );
        let player = rng.gen_range(0..n);
        self.update_distribution_into(player, profile, scratch);
        let new_strategy = sample_index(&scratch.probs, rng);
        let old_strategy = profile[player];
        profile[player] = new_strategy;
        StepEvent {
            player,
            old_strategy,
            new_strategy,
        }
    }

    /// One in-place tick under an arbitrary [`SelectionSchedule`]: the
    /// schedule names the revising players, sequential schedules apply their
    /// updates one at a time, and parallel schedules (all-logit) sample every
    /// update against the frozen pre-tick profile before applying the whole
    /// block. Returns the number of players whose strategy changed.
    ///
    /// With [`UniformSingle`](crate::schedules::UniformSingle) this consumes
    /// the RNG stream identically to [`Self::step_profile`], so the two paths
    /// walk the same trajectory from the same seed.
    pub fn step_scheduled<S: SelectionSchedule, R: Rng + ?Sized>(
        &self,
        schedule: &S,
        t: u64,
        profile: &mut [usize],
        scratch: &mut Scratch,
        rng: &mut R,
    ) -> usize {
        let n = self.game.num_players();
        debug_assert_eq!(
            profile.len(),
            n,
            "profile length must equal the player count"
        );
        let mut players = std::mem::take(&mut scratch.players);
        schedule.select_players(t, n, rng, &mut players);
        let mut moved = 0;
        if schedule.parallel() {
            let mut staged = std::mem::take(&mut scratch.staged);
            staged.clear();
            for &player in &players {
                self.update_distribution_into(player, profile, scratch);
                staged.push(sample_index(&scratch.probs, rng));
            }
            for (&player, &strategy) in players.iter().zip(&staged) {
                if profile[player] != strategy {
                    moved += 1;
                }
                profile[player] = strategy;
            }
            scratch.staged = staged;
        } else {
            for &player in &players {
                self.update_distribution_into(player, profile, scratch);
                let strategy = sample_index(&scratch.probs, rng);
                if profile[player] != strategy {
                    moved += 1;
                }
                profile[player] = strategy;
            }
        }
        scratch.players = players;
        moved
    }

    /// One step of the flat-index chain using reusable scratch buffers:
    /// decodes `state`, delegates to [`Self::step_profile`] and re-encodes in
    /// `O(1)` via the single changed coordinate.
    ///
    /// Consumes the RNG stream identically to [`Self::step_profile`], so the
    /// two engines produce the same trajectory from the same seed.
    pub fn step_indexed<R: Rng + ?Sized>(
        &self,
        state: usize,
        scratch: &mut Scratch,
        rng: &mut R,
    ) -> usize {
        let space = self.space();
        let mut profile = std::mem::take(&mut scratch.profile);
        profile.resize(self.game.num_players(), 0);
        space.write_profile(state, &mut profile);
        let event = self.step_profile(&mut profile, scratch, rng);
        scratch.profile = profile;
        space.with_strategy(state, event.player, event.new_strategy)
    }

    /// The flat-index counterpart of [`Self::step_scheduled`]: decodes
    /// `state`, runs one schedule tick on the profile and re-encodes (in
    /// `O(n)` — a tick may change many coordinates).
    pub fn step_indexed_scheduled<S: SelectionSchedule, R: Rng + ?Sized>(
        &self,
        schedule: &S,
        t: u64,
        state: usize,
        scratch: &mut Scratch,
        rng: &mut R,
    ) -> usize {
        let space = self.space();
        let mut profile = std::mem::take(&mut scratch.profile);
        profile.resize(self.game.num_players(), 0);
        space.write_profile(state, &mut profile);
        self.step_scheduled(schedule, t, &mut profile, scratch, rng);
        let next = space.index_of(&profile);
        scratch.profile = profile;
        next
    }

    /// One step of the dynamics from the profile with flat index `state`.
    /// Returns the new flat index.
    ///
    /// Convenience wrapper that builds a fresh [`Scratch`] per call; loops
    /// should hold a `Scratch` and call [`Self::step_indexed`] (or work with
    /// profiles directly via [`Self::step_profile`]).
    pub fn step<R: Rng + ?Sized>(&self, state: usize, rng: &mut R) -> usize {
        let mut scratch = Scratch::new();
        self.step_indexed(state, &mut scratch, rng)
    }

    /// The full transition matrix under uniform single-player selection
    /// (eq. 3 for the logit rule) as a dense validated Markov chain.
    ///
    /// The matrix has `|S|²` entries; intended for the exact analyses
    /// (`|S| ≲ 4096`).
    pub fn transition_chain(&self) -> MarkovChain {
        MarkovChain::new(self.transition_matrix())
    }

    /// The dense transition matrix under uniform single-player selection
    /// without the validation wrapper. Works for every update rule: entry
    /// `(x, x[i → s])` accumulates `σ_i(s | x)/n`.
    pub fn transition_matrix(&self) -> Matrix {
        let space = self.space();
        let size = space.size();
        let n = self.game.num_players();
        let mut p = Matrix::zeros(size, size);
        let mut scratch = Scratch::for_game(&self.game);
        let mut profile = vec![0usize; n];
        for x in 0..size {
            space.write_profile(x, &mut profile);
            for player in 0..n {
                self.update_distribution_into(player, &mut profile, &mut scratch);
                for (s, &pr) in scratch.probs().iter().enumerate() {
                    let y = space.with_strategy(x, player, s);
                    p[(x, y)] += pr / n as f64;
                }
            }
        }
        p
    }

    /// The transition matrix in compressed sparse row form. Each row has at most
    /// `Σ_i(|S_i| - 1) + 1` non-zeros, so this scales to much larger state
    /// spaces than the dense construction.
    pub fn transition_sparse(&self) -> CsrMatrix {
        let space = self.space();
        let size = space.size();
        let n = self.game.num_players();
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(size);
        let mut scratch = Scratch::for_game(&self.game);
        let mut profile = vec![0usize; n];
        for x in 0..size {
            space.write_profile(x, &mut profile);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(space.deviations_per_profile() + 1);
            for player in 0..n {
                self.update_distribution_into(player, &mut profile, &mut scratch);
                for (s, &pr) in scratch.probs().iter().enumerate() {
                    if pr == 0.0 {
                        continue;
                    }
                    let y = space.with_strategy(x, player, s);
                    row.push((y, pr / n as f64));
                }
            }
            rows.push(row);
        }
        CsrMatrix::from_rows(size, rows)
    }

    /// The single-player revision kernel `P_i(x, x[i → s]) = σ_i(s | x)`:
    /// only player `i` moves, with probability given by the update rule.
    /// The systematic sweep is the ordered product of these kernels.
    pub fn player_kernel(&self, player: usize) -> Matrix {
        let space = self.space();
        let size = space.size();
        let mut p = Matrix::zeros(size, size);
        let mut scratch = Scratch::for_game(&self.game);
        let mut profile = vec![0usize; self.game.num_players()];
        for x in 0..size {
            space.write_profile(x, &mut profile);
            self.update_distribution_into(player, &mut profile, &mut scratch);
            for (s, &pr) in scratch.probs().iter().enumerate() {
                let y = space.with_strategy(x, player, s);
                p[(x, y)] += pr;
            }
        }
        p
    }

    /// The transition matrix of one full systematic sweep (players revising
    /// in order `0, 1, …, n−1`): the ordered kernel product
    /// `P_0 · P_1 ⋯ P_{n−1}`. One sweep-round step equals `n` player updates.
    pub fn transition_matrix_sweep_round(&self) -> Matrix {
        let n = self.game.num_players();
        let mut p = self.player_kernel(0);
        for player in 1..n {
            p = p.matmul(&self.player_kernel(player));
        }
        p
    }

    /// The sweep-round matrix as a validated Markov chain.
    pub fn transition_chain_sweep_round(&self) -> MarkovChain {
        MarkovChain::new(self.transition_matrix_sweep_round())
    }

    /// The transition matrix of the parallel **all-logit** block schedule:
    /// every player revises simultaneously against the frozen profile, so
    /// `P(x, y) = Π_i σ_i(y_i | x)`. Dense — every entry can be non-zero —
    /// and in general *not* reversible even for potential games, which is
    /// precisely what the all-logit line of work studies.
    pub fn transition_matrix_all_logit(&self) -> Matrix {
        let space = self.space();
        let size = space.size();
        let n = self.game.num_players();
        let mut p = Matrix::zeros(size, size);
        let mut scratch = Scratch::for_game(&self.game);
        let mut profile = vec![0usize; n];
        let mut per_player: Vec<Vec<f64>> = vec![Vec::new(); n];
        for x in 0..size {
            space.write_profile(x, &mut profile);
            for (player, probs) in per_player.iter_mut().enumerate() {
                self.update_distribution_into(player, &mut profile, &mut scratch);
                probs.clear();
                probs.extend_from_slice(scratch.probs());
            }
            for y in 0..size {
                let mut prob = 1.0;
                for (i, probs) in per_player.iter().enumerate() {
                    prob *= probs[space.strategy_of(y, i)];
                    if prob == 0.0 {
                        break;
                    }
                }
                p[(x, y)] = prob;
            }
        }
        p
    }

    /// The all-logit block-update matrix as a validated Markov chain. One
    /// block step equals `n` player updates.
    pub fn transition_chain_all_logit(&self) -> MarkovChain {
        MarkovChain::new(self.transition_matrix_all_logit())
    }
}

impl<G: PotentialGame, U: UpdateRule> DynamicsEngine<G, U> {
    /// The Gibbs distribution `π(x) ∝ e^{-βΦ(x)}` of the game (eq. 4, cost
    /// convention). It is the stationary distribution of the
    /// uniform-selection chain for the reversible rules ([`Logit`] and
    /// [`MetropolisLogit`](crate::rules::MetropolisLogit)); rules without
    /// detailed balance (noisy best response) and the all-logit schedule have
    /// different stationary laws — obtain those by a linear solve on the
    /// exact chain.
    pub fn gibbs(&self) -> logit_linalg::Vector {
        crate::gibbs::gibbs_distribution(&self.game, self.beta)
    }
}

/// Samples an index from an (already normalised) probability vector.
pub(crate) fn sample_index<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    sample_index_from_uniform(probs, rng.gen())
}

/// The inverse-CDF scan behind [`sample_index`], taking the uniform variate
/// explicitly — the coloured parallel-revision path derives one variate per
/// `(player, tick)` from a counter hash instead of advancing a shared
/// stream, which is what makes its update order unobservable.
pub(crate) fn sample_index_from_uniform(probs: &[f64], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    // Fallthrough: `u` landed in the rounding gap above the accumulated sum.
    // Metropolis and best-response rules assign exact zeros, so fall back to
    // the last *positive*-probability entry — never to an impossible move.
    probs
        .iter()
        .rposition(|&p| p > 0.0)
        .unwrap_or(probs.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{MetropolisLogit, NoisyBestResponse};
    use crate::schedules::{AllLogit, SystematicSweep, UniformSingle};
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, TablePotentialGame, WellGame};
    use logit_graphs::GraphBuilder;
    use logit_markov::{stationary_distribution, total_variation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_zero_is_uniform_updates() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let dyn0 = LogitDynamics::new(game, 0.0);
        let probs = dyn0.update_distribution(0, &[0, 1]);
        assert_eq!(probs.len(), 2);
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_distribution_matches_closed_form() {
        // Player 0 against opponent playing 0 in a coordination game with
        // payoffs a=2 (match) and d=0 (mismatch): σ(0|·) = e^{2β}/(e^{2β}+1).
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let beta = 0.7;
        let d = LogitDynamics::new(game, beta);
        let probs = d.update_distribution(0, &[1, 0]);
        let expect0 = (2.0 * beta).exp() / ((2.0 * beta).exp() + 1.0);
        assert!((probs[0] - expect0).abs() < 1e-12);
        assert!((probs[0] + probs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_beta_concentrates_on_best_response() {
        let game = CoordinationGame::from_deltas(3.0, 1.0);
        let d = LogitDynamics::new(game, 50.0);
        let probs = d.update_distribution(0, &[1, 0]);
        assert!(
            probs[0] > 0.999999,
            "best response should dominate at high beta"
        );
    }

    #[test]
    fn huge_beta_does_not_overflow() {
        let game = WellGame::plateau(4, 10.0);
        let d = LogitDynamics::new(game, 1e6);
        let probs = d.update_distribution(0, &[0, 0, 0, 0]);
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transition_matrix_is_stochastic_and_ergodic() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(3),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let d = LogitDynamics::new(game, 1.0);
        let chain = d.transition_chain();
        assert_eq!(chain.num_states(), 8);
        assert!(chain.is_ergodic());
    }

    #[test]
    fn transition_matrix_matches_eq_3_structure() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = LogitDynamics::new(game, 0.5);
        let p = d.transition_matrix();
        let space = d.space();
        // Entries between profiles at Hamming distance 2 must be zero.
        for x in 0..4 {
            for y in 0..4 {
                if space.hamming_distance(x, y) == 2 {
                    assert_eq!(p[(x, y)], 0.0);
                }
            }
        }
        // Off-diagonal entry = σ_i(y_i|x)/n.
        let x = space.index_of(&[0, 0]);
        let y = space.index_of(&[1, 0]);
        let sigma = d.update_probability(0, &[0, 0], 1);
        assert!((p[(x, y)] - sigma / 2.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_transitions_agree() {
        let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut StdRng::seed_from_u64(5));
        let d = LogitDynamics::new(game, 1.3);
        let dense = d.transition_matrix();
        let sparse = d.transition_sparse();
        assert!(sparse.is_row_stochastic(1e-9));
        assert!(sparse.to_dense().max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn gibbs_is_the_stationary_distribution() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::path(3),
            CoordinationGame::from_deltas(1.5, 1.0),
        );
        let d = LogitDynamics::new(game, 0.8);
        let chain = d.transition_chain();
        let pi_linear = stationary_distribution(&chain);
        let pi_gibbs = d.gibbs();
        assert!(total_variation(&pi_linear, &pi_gibbs) < 1e-9);
        // And the chain is reversible w.r.t. the Gibbs measure.
        assert!(chain.is_reversible(&pi_gibbs, 1e-9));
    }

    #[test]
    fn metropolis_shares_the_gibbs_stationary_distribution() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::path(3),
            CoordinationGame::from_deltas(1.5, 1.0),
        );
        let d = DynamicsEngine::with_rule(game, MetropolisLogit, 0.8);
        let chain = d.transition_chain();
        assert!(chain.is_ergodic());
        let pi_gibbs = d.gibbs();
        assert!(total_variation(&stationary_distribution(&chain), &pi_gibbs) < 1e-9);
        assert!(chain.is_reversible(&pi_gibbs, 1e-9));
    }

    #[test]
    fn noisy_best_response_chain_is_ergodic_but_not_gibbs() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::path(3),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let d = DynamicsEngine::with_rule(game, NoisyBestResponse::new(0.2), 1.0);
        let chain = d.transition_chain();
        assert!(chain.is_ergodic());
        let pi = stationary_distribution(&chain);
        // Its stationary law is a genuinely different object from Gibbs.
        assert!(total_variation(&pi, &d.gibbs()) > 1e-3);
    }

    #[test]
    fn all_logit_matrix_is_the_product_of_marginals() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = LogitDynamics::new(game, 0.9);
        let p = d.transition_matrix_all_logit();
        assert!(p.is_row_stochastic(1e-9));
        let space = d.space();
        for x in 0..4 {
            let profile = space.profile_of(x);
            let p0 = d.update_distribution(0, &profile);
            let p1 = d.update_distribution(1, &profile);
            for y in 0..4 {
                let expect = p0[space.strategy_of(y, 0)] * p1[space.strategy_of(y, 1)];
                assert!((p[(x, y)] - expect).abs() < 1e-12);
            }
        }
        // The block chain is a valid ergodic chain in its own right.
        assert!(d.transition_chain_all_logit().is_ergodic());
    }

    #[test]
    fn sweep_round_matrix_is_the_ordered_kernel_product() {
        let game = TablePotentialGame::random(vec![2, 2], 2.0, &mut StdRng::seed_from_u64(3));
        let d = LogitDynamics::new(game, 1.1);
        let product = d.player_kernel(0).matmul(&d.player_kernel(1));
        let sweep = d.transition_matrix_sweep_round();
        assert!(sweep.max_abs_diff(&product) < 1e-12);
        assert!(sweep.is_row_stochastic(1e-9));
        assert!(d.transition_chain_sweep_round().is_ergodic());
    }

    #[test]
    fn scheduled_uniform_single_matches_step_profile_exactly() {
        let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut StdRng::seed_from_u64(9));
        let d = DynamicsEngine::with_rule(game, MetropolisLogit, 1.2);
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        let mut scratch_a = Scratch::for_game(d.game());
        let mut scratch_b = Scratch::for_game(d.game());
        let mut prof_a = vec![0usize, 2, 1];
        let mut prof_b = prof_a.clone();
        for t in 0..200 {
            d.step_profile(&mut prof_a, &mut scratch_a, &mut rng_a);
            d.step_scheduled(&UniformSingle, t, &mut prof_b, &mut scratch_b, &mut rng_b);
            assert_eq!(prof_a, prof_b, "schedule path diverged at t = {t}");
        }
    }

    #[test]
    fn systematic_sweep_visits_players_in_order() {
        let game = WellGame::plateau(4, 1.0);
        let d = LogitDynamics::new(game, 0.7);
        let mut rng = StdRng::seed_from_u64(2);
        let mut scratch = Scratch::for_game(d.game());
        let mut profile = vec![0usize; 4];
        for t in 0..12u64 {
            let before = profile.clone();
            d.step_scheduled(&SystematicSweep, t, &mut profile, &mut scratch, &mut rng);
            let expected_player = (t % 4) as usize;
            for (i, (&a, &b)) in before.iter().zip(&profile).enumerate() {
                if i != expected_player {
                    assert_eq!(a, b, "sweep tick {t} touched player {i}");
                }
            }
        }
    }

    #[test]
    fn all_logit_block_samples_against_the_frozen_profile() {
        // Two-player coordination at huge beta from the mismatched profile:
        // each player's best response to the *frozen* profile is the other's
        // current strategy, so a parallel block update swaps both and the
        // pair keeps oscillating — the signature all-logit behaviour a
        // sequential schedule cannot produce.
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = LogitDynamics::new(game, 60.0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut scratch = Scratch::for_game(d.game());
        let mut profile = vec![0usize, 1];
        let moved = d.step_scheduled(&AllLogit, 0, &mut profile, &mut scratch, &mut rng);
        assert_eq!(profile, vec![1, 0], "both players swap simultaneously");
        assert_eq!(moved, 2);
        let moved = d.step_scheduled(&AllLogit, 1, &mut profile, &mut scratch, &mut rng);
        assert_eq!(profile, vec![0, 1], "and swap back");
        assert_eq!(moved, 2);
    }

    #[test]
    fn scheduled_flat_and_profile_paths_agree() {
        let game = TablePotentialGame::random(vec![2, 2, 3], 2.0, &mut StdRng::seed_from_u64(6));
        let d = LogitDynamics::new(game, 0.9);
        let space = d.space().clone();
        let mut rng_flat = StdRng::seed_from_u64(12);
        let mut rng_prof = StdRng::seed_from_u64(12);
        let mut scratch_flat = Scratch::for_game(d.game());
        let mut scratch_prof = Scratch::for_game(d.game());
        let mut state = space.index_of(&[1, 0, 2]);
        let mut profile = vec![1usize, 0, 2];
        for t in 0..60 {
            state = d.step_indexed_scheduled(&AllLogit, t, state, &mut scratch_flat, &mut rng_flat);
            d.step_scheduled(&AllLogit, t, &mut profile, &mut scratch_prof, &mut rng_prof);
            assert_eq!(space.index_of(&profile), state, "engines diverged");
        }
    }

    #[test]
    fn step_simulation_stays_in_range_and_moves_one_coordinate() {
        let game = WellGame::plateau(5, 2.0);
        let d = LogitDynamics::new(game, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut state = 0usize;
        for _ in 0..500 {
            let next = d.step(state, &mut rng);
            assert!(next < d.num_states());
            assert!(d.space().hamming_distance(state, next) <= 1);
            state = next;
        }
    }

    #[test]
    fn sample_index_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let probs = [0.1, 0.6, 0.3];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_index(&probs, &mut rng)] += 1;
        }
        let freq1 = counts[1] as f64 / 30_000.0;
        assert!((freq1 - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_beta_rejected() {
        let game = CoordinationGame::from_deltas(1.0, 1.0);
        let _ = LogitDynamics::new(game, -0.1);
    }

    #[test]
    fn profile_and_flat_engines_share_one_trajectory() {
        let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut StdRng::seed_from_u64(8));
        let d = LogitDynamics::new(game, 1.1);
        let space = d.space().clone();

        let mut rng_flat = StdRng::seed_from_u64(99);
        let mut rng_prof = StdRng::seed_from_u64(99);
        let mut scratch = Scratch::for_game(d.game());
        let mut state = space.index_of(&[1, 2, 0]);
        let mut profile = vec![1usize, 2, 0];
        for _ in 0..300 {
            state = d.step(state, &mut rng_flat);
            let event = d.step_profile(&mut profile, &mut scratch, &mut rng_prof);
            assert_eq!(space.index_of(&profile), state, "engines diverged");
            assert!(event.player < 3);
        }
    }

    #[test]
    fn step_events_report_the_move() {
        let game = WellGame::plateau(4, 1.0);
        let d = LogitDynamics::new(game, 0.5);
        let mut rng = StdRng::seed_from_u64(21);
        let mut scratch = Scratch::new();
        let mut profile = vec![0usize; 4];
        let mut moves = 0;
        for _ in 0..200 {
            let before = profile.clone();
            let event = d.step_profile(&mut profile, &mut scratch, &mut rng);
            assert_eq!(profile[event.player], event.new_strategy);
            assert_eq!(before[event.player], event.old_strategy);
            if event.moved() {
                moves += 1;
                assert_ne!(before, profile);
            } else {
                assert_eq!(before, profile);
            }
        }
        assert!(moves > 0, "a beta=0.5 chain moves sometimes");
    }

    #[test]
    fn profile_engine_runs_where_the_flat_index_cannot_exist() {
        // 2^1000 profiles: the flat index overflows usize, but the in-place
        // engine neither builds nor needs the profile space. Every rule runs
        // through the same engine.
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(1000),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let d = LogitDynamics::new(game.clone(), 1.5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut scratch = Scratch::for_game(d.game());
        let mut profile = vec![0usize; 1000];
        for _ in 0..5000 {
            d.step_profile(&mut profile, &mut scratch, &mut rng);
        }
        assert!(profile.iter().all(|&s| s < 2));

        let m = DynamicsEngine::with_rule(game, MetropolisLogit, 1.5);
        for _ in 0..5000 {
            m.step_profile(&mut profile, &mut scratch, &mut rng);
        }
        assert!(profile.iter().all(|&s| s < 2));
    }

    #[test]
    fn scratch_probs_expose_the_last_update_distribution() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = LogitDynamics::new(game, 0.7);
        let mut scratch = Scratch::new();
        let mut profile = vec![1usize, 0];
        d.update_distribution_into(0, &mut profile, &mut scratch);
        let via_scratch = scratch.probs().to_vec();
        let via_alloc = d.update_distribution(0, &[1, 0]);
        assert_eq!(via_scratch, via_alloc);
        assert_eq!(
            profile,
            vec![1, 0],
            "profile is restored after the batch call"
        );
    }
}
