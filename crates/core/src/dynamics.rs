//! The logit dynamics update rule and its Markov chain.
//!
//! Two simulation engines share the eq.-(2) update:
//!
//! * the **in-place profile engine** ([`LogitDynamics::step_profile`]):
//!   mutates a strategy profile directly using reusable [`Scratch`] buffers,
//!   never touches the flat state index, and therefore scales to games whose
//!   profile space does not even fit in a `usize` (e.g. rings with `n = 10⁶`
//!   players). One step costs `O(|S_i| + cost(utilities_for))` — for
//!   `LocalGame`s that is `O(|S_i| + deg(i))`, independent of `n` and `|S|`;
//! * the **flat-index engine** ([`LogitDynamics::step`] /
//!   [`LogitDynamics::step_indexed`]): a thin wrapper that decodes the index,
//!   delegates to the profile engine and re-encodes. It consumes the RNG
//!   stream identically, so both engines produce the same trajectory from the
//!   same seed; it exists for the exact analyses, which index distributions
//!   by flat state.

use logit_games::{Game, PotentialGame, ProfileSpace};
use logit_linalg::{CsrMatrix, Matrix};
use logit_markov::MarkovChain;
use rand::Rng;
use std::sync::OnceLock;

/// Reusable per-chain scratch buffers for the allocation-free step paths.
///
/// One `Scratch` per replica (or per thread) eliminates the per-step heap
/// churn the original engine suffered: utilities, probabilities and the
/// decoded profile all live here and are recycled across steps.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Utilities `u_i(s, x_{-i})`, one per strategy of the updating player.
    utils: Vec<f64>,
    /// The softmax probabilities of eq. (2) over those strategies.
    probs: Vec<f64>,
    /// Decoded profile buffer used by the flat-index wrapper.
    profile: Vec<usize>,
}

impl Scratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for `game` (avoids even the first-use allocations).
    pub fn for_game<G: Game>(game: &G) -> Self {
        let m = game.max_strategies();
        Self {
            utils: Vec::with_capacity(m),
            probs: Vec::with_capacity(m),
            profile: Vec::with_capacity(game.num_players()),
        }
    }

    /// The update distribution computed by the most recent
    /// [`LogitDynamics::update_distribution_into`] /
    /// [`LogitDynamics::step_profile`] call.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

/// What one in-place step did: which player updated and how she moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// The player selected for update.
    pub player: usize,
    /// Her strategy before the update.
    pub old_strategy: usize,
    /// Her strategy after the update (possibly the same).
    pub new_strategy: usize,
}

impl StepEvent {
    /// Whether the profile actually changed.
    pub fn moved(&self) -> bool {
        self.old_strategy != self.new_strategy
    }
}

/// The logit dynamics `M_β(G)` for a strategic game `G` with inverse noise `β`.
///
/// The struct borrows nothing: it owns the game (games are cheap to clone or are
/// themselves small descriptors). The profile space is materialised lazily —
/// only the flat-index paths need it, and for large-`n` games it cannot even
/// be represented (`|S|` overflows `usize`), while the profile engine runs
/// fine without it.
#[derive(Debug, Clone)]
pub struct LogitDynamics<G: Game> {
    game: G,
    beta: f64,
    space: OnceLock<ProfileSpace>,
}

impl<G: Game> LogitDynamics<G> {
    /// Creates the dynamics with inverse noise `β ≥ 0`.
    ///
    /// # Panics
    /// Panics when `β` is negative or not finite.
    pub fn new(game: G, beta: f64) -> Self {
        assert!(
            beta >= 0.0 && beta.is_finite(),
            "beta must be finite and non-negative"
        );
        Self {
            game,
            beta,
            space: OnceLock::new(),
        }
    }

    /// The inverse noise `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The underlying game.
    pub fn game(&self) -> &G {
        &self.game
    }

    /// The profile space of the game (materialised on first use).
    ///
    /// # Panics
    /// Panics when `|S| = Π_i |S_i|` overflows `usize` — use the profile
    /// engine ([`Self::step_profile`]) for such games; it never calls this.
    pub fn space(&self) -> &ProfileSpace {
        self.space.get_or_init(|| self.game.profile_space())
    }

    /// Number of states of the chain (`|S| = Π_i |S_i|`).
    ///
    /// # Panics
    /// Panics when `|S|` overflows `usize` (see [`Self::space`]).
    pub fn num_states(&self) -> usize {
        self.space().size()
    }

    /// The update distribution `σ_i(· | x)` of player `i` at profile `x`
    /// (eq. 2), returned as a probability vector over the player's strategies.
    ///
    /// Allocating convenience wrapper around
    /// [`Self::update_distribution_into`]; hot paths should use the latter
    /// with a reused [`Scratch`].
    pub fn update_distribution(&self, player: usize, profile: &[usize]) -> Vec<f64> {
        let mut scratch = Scratch::new();
        let mut work = profile.to_vec();
        self.update_distribution_into(player, &mut work, &mut scratch);
        scratch.probs
    }

    /// Computes `σ_i(· | x)` into `scratch.probs` without allocating (after
    /// the buffers' first growth).
    ///
    /// `profile` is borrowed mutably so strategies can be varied in place by
    /// the game's `utilities_for` hook; it is restored before returning.
    /// Numerically stable via the usual log-sum-exp shift, so large `β·u`
    /// values do not overflow.
    pub fn update_distribution_into(
        &self,
        player: usize,
        profile: &mut [usize],
        scratch: &mut Scratch,
    ) {
        let m = self.game.num_strategies(player);
        scratch.utils.clear();
        scratch.utils.resize(m, 0.0);
        self.game.utilities_for(player, profile, &mut scratch.utils);

        let max = scratch
            .utils
            .iter()
            .map(|&u| self.beta * u)
            .fold(f64::NEG_INFINITY, f64::max);
        scratch.probs.clear();
        scratch
            .probs
            .extend(scratch.utils.iter().map(|&u| (self.beta * u - max).exp()));
        let total: f64 = scratch.probs.iter().sum();
        for p in &mut scratch.probs {
            *p /= total;
        }
    }

    /// Probability that player `i`, selected for update at profile `x`, picks
    /// strategy `y` (a single entry of [`Self::update_distribution`]).
    pub fn update_probability(&self, player: usize, profile: &[usize], strategy: usize) -> f64 {
        self.update_distribution(player, profile)[strategy]
    }

    /// One in-place step of the dynamics: selects a player uniformly at
    /// random, resamples her strategy from `σ_i(· | x)` (eq. 2) and writes it
    /// directly into `profile`. Returns what happened as a [`StepEvent`].
    ///
    /// This is the large-`n` engine: it never builds the flat profile space,
    /// allocates nothing (with a warmed-up `scratch`), and its per-step cost
    /// is independent of `|S|`.
    pub fn step_profile<R: Rng + ?Sized>(
        &self,
        profile: &mut [usize],
        scratch: &mut Scratch,
        rng: &mut R,
    ) -> StepEvent {
        let n = self.game.num_players();
        debug_assert_eq!(
            profile.len(),
            n,
            "profile length must equal the player count"
        );
        let player = rng.gen_range(0..n);
        self.update_distribution_into(player, profile, scratch);
        let new_strategy = sample_index(&scratch.probs, rng);
        let old_strategy = profile[player];
        profile[player] = new_strategy;
        StepEvent {
            player,
            old_strategy,
            new_strategy,
        }
    }

    /// One step of the flat-index chain using reusable scratch buffers:
    /// decodes `state`, delegates to [`Self::step_profile`] and re-encodes in
    /// `O(1)` via the single changed coordinate.
    ///
    /// Consumes the RNG stream identically to [`Self::step_profile`], so the
    /// two engines produce the same trajectory from the same seed.
    pub fn step_indexed<R: Rng + ?Sized>(
        &self,
        state: usize,
        scratch: &mut Scratch,
        rng: &mut R,
    ) -> usize {
        let space = self.space();
        let mut profile = std::mem::take(&mut scratch.profile);
        profile.resize(self.game.num_players(), 0);
        space.write_profile(state, &mut profile);
        let event = self.step_profile(&mut profile, scratch, rng);
        scratch.profile = profile;
        space.with_strategy(state, event.player, event.new_strategy)
    }

    /// One step of the dynamics from the profile with flat index `state`.
    /// Returns the new flat index.
    ///
    /// Convenience wrapper that builds a fresh [`Scratch`] per call; loops
    /// should hold a `Scratch` and call [`Self::step_indexed`] (or work with
    /// profiles directly via [`Self::step_profile`]).
    pub fn step<R: Rng + ?Sized>(&self, state: usize, rng: &mut R) -> usize {
        let mut scratch = Scratch::new();
        self.step_indexed(state, &mut scratch, rng)
    }

    /// The full transition matrix (eq. 3) as a dense validated Markov chain.
    ///
    /// The matrix has `|S|²` entries; intended for the exact analyses
    /// (`|S| ≲ 4096`).
    pub fn transition_chain(&self) -> MarkovChain {
        MarkovChain::new(self.transition_matrix())
    }

    /// The dense transition matrix of eq. (3) without the validation wrapper.
    pub fn transition_matrix(&self) -> Matrix {
        let space = self.space();
        let size = space.size();
        let n = self.game.num_players();
        let mut p = Matrix::zeros(size, size);
        let mut scratch = Scratch::for_game(&self.game);
        let mut profile = vec![0usize; n];
        for x in 0..size {
            space.write_profile(x, &mut profile);
            for player in 0..n {
                self.update_distribution_into(player, &mut profile, &mut scratch);
                for (s, &pr) in scratch.probs().iter().enumerate() {
                    let y = space.with_strategy(x, player, s);
                    p[(x, y)] += pr / n as f64;
                }
            }
        }
        p
    }

    /// The transition matrix in compressed sparse row form. Each row has at most
    /// `Σ_i(|S_i| - 1) + 1` non-zeros, so this scales to much larger state
    /// spaces than the dense construction.
    pub fn transition_sparse(&self) -> CsrMatrix {
        let space = self.space();
        let size = space.size();
        let n = self.game.num_players();
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(size);
        let mut scratch = Scratch::for_game(&self.game);
        let mut profile = vec![0usize; n];
        for x in 0..size {
            space.write_profile(x, &mut profile);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(space.deviations_per_profile() + 1);
            for player in 0..n {
                self.update_distribution_into(player, &mut profile, &mut scratch);
                for (s, &pr) in scratch.probs().iter().enumerate() {
                    if pr == 0.0 {
                        continue;
                    }
                    let y = space.with_strategy(x, player, s);
                    row.push((y, pr / n as f64));
                }
            }
            rows.push(row);
        }
        CsrMatrix::from_rows(size, rows)
    }
}

impl<G: PotentialGame> LogitDynamics<G> {
    /// The Gibbs stationary distribution `π(x) ∝ e^{-βΦ(x)}` of the chain
    /// (eq. 4, cost convention). Only potential games have this closed form.
    pub fn gibbs(&self) -> logit_linalg::Vector {
        crate::gibbs::gibbs_distribution(&self.game, self.beta)
    }
}

/// Samples an index from an (already normalised) probability vector.
pub(crate) fn sample_index<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, TablePotentialGame, WellGame};
    use logit_graphs::GraphBuilder;
    use logit_markov::{stationary_distribution, total_variation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_zero_is_uniform_updates() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let dyn0 = LogitDynamics::new(game, 0.0);
        let probs = dyn0.update_distribution(0, &[0, 1]);
        assert_eq!(probs.len(), 2);
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_distribution_matches_closed_form() {
        // Player 0 against opponent playing 0 in a coordination game with
        // payoffs a=2 (match) and d=0 (mismatch): σ(0|·) = e^{2β}/(e^{2β}+1).
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let beta = 0.7;
        let d = LogitDynamics::new(game, beta);
        let probs = d.update_distribution(0, &[1, 0]);
        let expect0 = (2.0 * beta).exp() / ((2.0 * beta).exp() + 1.0);
        assert!((probs[0] - expect0).abs() < 1e-12);
        assert!((probs[0] + probs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_beta_concentrates_on_best_response() {
        let game = CoordinationGame::from_deltas(3.0, 1.0);
        let d = LogitDynamics::new(game, 50.0);
        let probs = d.update_distribution(0, &[1, 0]);
        assert!(
            probs[0] > 0.999999,
            "best response should dominate at high beta"
        );
    }

    #[test]
    fn huge_beta_does_not_overflow() {
        let game = WellGame::plateau(4, 10.0);
        let d = LogitDynamics::new(game, 1e6);
        let probs = d.update_distribution(0, &[0, 0, 0, 0]);
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transition_matrix_is_stochastic_and_ergodic() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(3),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let d = LogitDynamics::new(game, 1.0);
        let chain = d.transition_chain();
        assert_eq!(chain.num_states(), 8);
        assert!(chain.is_ergodic());
    }

    #[test]
    fn transition_matrix_matches_eq_3_structure() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = LogitDynamics::new(game, 0.5);
        let p = d.transition_matrix();
        let space = d.space();
        // Entries between profiles at Hamming distance 2 must be zero.
        for x in 0..4 {
            for y in 0..4 {
                if space.hamming_distance(x, y) == 2 {
                    assert_eq!(p[(x, y)], 0.0);
                }
            }
        }
        // Off-diagonal entry = σ_i(y_i|x)/n.
        let x = space.index_of(&[0, 0]);
        let y = space.index_of(&[1, 0]);
        let sigma = d.update_probability(0, &[0, 0], 1);
        assert!((p[(x, y)] - sigma / 2.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_transitions_agree() {
        let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut StdRng::seed_from_u64(5));
        let d = LogitDynamics::new(game, 1.3);
        let dense = d.transition_matrix();
        let sparse = d.transition_sparse();
        assert!(sparse.is_row_stochastic(1e-9));
        assert!(sparse.to_dense().max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn gibbs_is_the_stationary_distribution() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::path(3),
            CoordinationGame::from_deltas(1.5, 1.0),
        );
        let d = LogitDynamics::new(game, 0.8);
        let chain = d.transition_chain();
        let pi_linear = stationary_distribution(&chain);
        let pi_gibbs = d.gibbs();
        assert!(total_variation(&pi_linear, &pi_gibbs) < 1e-9);
        // And the chain is reversible w.r.t. the Gibbs measure.
        assert!(chain.is_reversible(&pi_gibbs, 1e-9));
    }

    #[test]
    fn step_simulation_stays_in_range_and_moves_one_coordinate() {
        let game = WellGame::plateau(5, 2.0);
        let d = LogitDynamics::new(game, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut state = 0usize;
        for _ in 0..500 {
            let next = d.step(state, &mut rng);
            assert!(next < d.num_states());
            assert!(d.space().hamming_distance(state, next) <= 1);
            state = next;
        }
    }

    #[test]
    fn sample_index_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let probs = [0.1, 0.6, 0.3];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_index(&probs, &mut rng)] += 1;
        }
        let freq1 = counts[1] as f64 / 30_000.0;
        assert!((freq1 - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_beta_rejected() {
        let game = CoordinationGame::from_deltas(1.0, 1.0);
        let _ = LogitDynamics::new(game, -0.1);
    }

    #[test]
    fn profile_and_flat_engines_share_one_trajectory() {
        let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut StdRng::seed_from_u64(8));
        let d = LogitDynamics::new(game, 1.1);
        let space = d.space().clone();

        let mut rng_flat = StdRng::seed_from_u64(99);
        let mut rng_prof = StdRng::seed_from_u64(99);
        let mut scratch = Scratch::for_game(d.game());
        let mut state = space.index_of(&[1, 2, 0]);
        let mut profile = vec![1usize, 2, 0];
        for _ in 0..300 {
            state = d.step(state, &mut rng_flat);
            let event = d.step_profile(&mut profile, &mut scratch, &mut rng_prof);
            assert_eq!(space.index_of(&profile), state, "engines diverged");
            assert!(event.player < 3);
        }
    }

    #[test]
    fn step_events_report_the_move() {
        let game = WellGame::plateau(4, 1.0);
        let d = LogitDynamics::new(game, 0.5);
        let mut rng = StdRng::seed_from_u64(21);
        let mut scratch = Scratch::new();
        let mut profile = vec![0usize; 4];
        let mut moves = 0;
        for _ in 0..200 {
            let before = profile.clone();
            let event = d.step_profile(&mut profile, &mut scratch, &mut rng);
            assert_eq!(profile[event.player], event.new_strategy);
            assert_eq!(before[event.player], event.old_strategy);
            if event.moved() {
                moves += 1;
                assert_ne!(before, profile);
            } else {
                assert_eq!(before, profile);
            }
        }
        assert!(moves > 0, "a beta=0.5 chain moves sometimes");
    }

    #[test]
    fn profile_engine_runs_where_the_flat_index_cannot_exist() {
        // 2^1000 profiles: the flat index overflows usize, but the in-place
        // engine neither builds nor needs the profile space.
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(1000),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let d = LogitDynamics::new(game, 1.5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut scratch = Scratch::for_game(d.game());
        let mut profile = vec![0usize; 1000];
        for _ in 0..5000 {
            d.step_profile(&mut profile, &mut scratch, &mut rng);
        }
        assert!(profile.iter().all(|&s| s < 2));
    }

    #[test]
    fn scratch_probs_expose_the_last_update_distribution() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = LogitDynamics::new(game, 0.7);
        let mut scratch = Scratch::new();
        let mut profile = vec![1usize, 0];
        d.update_distribution_into(0, &mut profile, &mut scratch);
        let via_scratch = scratch.probs().to_vec();
        let via_alloc = d.update_distribution(0, &[1, 0]);
        assert_eq!(via_scratch, via_alloc);
        assert_eq!(
            profile,
            vec![1, 0],
            "profile is restored after the batch call"
        );
    }
}
