//! The logit dynamics update rule and its Markov chain.

use logit_games::{Game, PotentialGame, ProfileSpace};
use logit_linalg::{CsrMatrix, Matrix};
use logit_markov::MarkovChain;
use rand::Rng;

/// The logit dynamics `M_β(G)` for a strategic game `G` with inverse noise `β`.
///
/// The struct borrows nothing: it owns the game (games are cheap to clone or are
/// themselves small descriptors) and caches the profile space.
#[derive(Debug, Clone)]
pub struct LogitDynamics<G: Game> {
    game: G,
    beta: f64,
    space: ProfileSpace,
}

impl<G: Game> LogitDynamics<G> {
    /// Creates the dynamics with inverse noise `β ≥ 0`.
    ///
    /// # Panics
    /// Panics when `β` is negative or not finite.
    pub fn new(game: G, beta: f64) -> Self {
        assert!(beta >= 0.0 && beta.is_finite(), "beta must be finite and non-negative");
        let space = game.profile_space();
        Self { game, beta, space }
    }

    /// The inverse noise `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The underlying game.
    pub fn game(&self) -> &G {
        &self.game
    }

    /// The profile space of the game.
    pub fn space(&self) -> &ProfileSpace {
        &self.space
    }

    /// Number of states of the chain (`|S| = Π_i |S_i|`).
    pub fn num_states(&self) -> usize {
        self.space.size()
    }

    /// The update distribution `σ_i(· | x)` of player `i` at profile `x`
    /// (eq. 2), returned as a probability vector over the player's strategies.
    ///
    /// Computed with the usual log-sum-exp shift so large `β·u` values do not
    /// overflow.
    pub fn update_distribution(&self, player: usize, profile: &[usize]) -> Vec<f64> {
        let m = self.game.num_strategies(player);
        let mut work = profile.to_vec();
        let mut logits = Vec::with_capacity(m);
        for s in 0..m {
            work[player] = s;
            logits.push(self.beta * self.game.utility(player, &work));
        }
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut probs: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let total: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        probs
    }

    /// Probability that player `i`, selected for update at profile `x`, picks
    /// strategy `y` (a single entry of [`Self::update_distribution`]).
    pub fn update_probability(&self, player: usize, profile: &[usize], strategy: usize) -> f64 {
        self.update_distribution(player, profile)[strategy]
    }

    /// One step of the dynamics from the profile with flat index `state`:
    /// select a player uniformly at random and resample her strategy from
    /// `σ_i(· | x)`. Returns the new flat index.
    pub fn step<R: Rng + ?Sized>(&self, state: usize, rng: &mut R) -> usize {
        let n = self.game.num_players();
        let player = rng.gen_range(0..n);
        let mut profile = vec![0usize; n];
        self.space.write_profile(state, &mut profile);
        let probs = self.update_distribution(player, &profile);
        let new_strategy = sample_index(&probs, rng);
        self.space.with_strategy(state, player, new_strategy)
    }

    /// The full transition matrix (eq. 3) as a dense validated Markov chain.
    ///
    /// The matrix has `|S|²` entries; intended for the exact analyses
    /// (`|S| ≲ 4096`).
    pub fn transition_chain(&self) -> MarkovChain {
        MarkovChain::new(self.transition_matrix())
    }

    /// The dense transition matrix of eq. (3) without the validation wrapper.
    pub fn transition_matrix(&self) -> Matrix {
        let size = self.space.size();
        let n = self.game.num_players();
        let mut p = Matrix::zeros(size, size);
        let mut profile = vec![0usize; n];
        for x in 0..size {
            self.space.write_profile(x, &mut profile);
            for player in 0..n {
                let probs = self.update_distribution(player, &profile);
                for (s, &pr) in probs.iter().enumerate() {
                    let y = self.space.with_strategy(x, player, s);
                    p[(x, y)] += pr / n as f64;
                }
            }
        }
        p
    }

    /// The transition matrix in compressed sparse row form. Each row has at most
    /// `Σ_i(|S_i| - 1) + 1` non-zeros, so this scales to much larger state
    /// spaces than the dense construction.
    pub fn transition_sparse(&self) -> CsrMatrix {
        let size = self.space.size();
        let n = self.game.num_players();
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(size);
        let mut profile = vec![0usize; n];
        for x in 0..size {
            self.space.write_profile(x, &mut profile);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(self.space.deviations_per_profile() + 1);
            for player in 0..n {
                let probs = self.update_distribution(player, &profile);
                for (s, &pr) in probs.iter().enumerate() {
                    if pr == 0.0 {
                        continue;
                    }
                    let y = self.space.with_strategy(x, player, s);
                    row.push((y, pr / n as f64));
                }
            }
            rows.push(row);
        }
        CsrMatrix::from_rows(size, rows)
    }
}

impl<G: PotentialGame> LogitDynamics<G> {
    /// The Gibbs stationary distribution `π(x) ∝ e^{-βΦ(x)}` of the chain
    /// (eq. 4, cost convention). Only potential games have this closed form.
    pub fn gibbs(&self) -> logit_linalg::Vector {
        crate::gibbs::gibbs_distribution(&self.game, self.beta)
    }
}

/// Samples an index from an (already normalised) probability vector.
pub(crate) fn sample_index<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, TablePotentialGame, WellGame};
    use logit_graphs::GraphBuilder;
    use logit_markov::{stationary_distribution, total_variation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_zero_is_uniform_updates() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let dyn0 = LogitDynamics::new(game, 0.0);
        let probs = dyn0.update_distribution(0, &[0, 1]);
        assert_eq!(probs.len(), 2);
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_distribution_matches_closed_form() {
        // Player 0 against opponent playing 0 in a coordination game with
        // payoffs a=2 (match) and d=0 (mismatch): σ(0|·) = e^{2β}/(e^{2β}+1).
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let beta = 0.7;
        let d = LogitDynamics::new(game, beta);
        let probs = d.update_distribution(0, &[1, 0]);
        let expect0 = (2.0 * beta).exp() / ((2.0 * beta).exp() + 1.0);
        assert!((probs[0] - expect0).abs() < 1e-12);
        assert!((probs[0] + probs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_beta_concentrates_on_best_response() {
        let game = CoordinationGame::from_deltas(3.0, 1.0);
        let d = LogitDynamics::new(game, 50.0);
        let probs = d.update_distribution(0, &[1, 0]);
        assert!(probs[0] > 0.999999, "best response should dominate at high beta");
    }

    #[test]
    fn huge_beta_does_not_overflow() {
        let game = WellGame::plateau(4, 10.0);
        let d = LogitDynamics::new(game, 1e6);
        let probs = d.update_distribution(0, &[0, 0, 0, 0]);
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transition_matrix_is_stochastic_and_ergodic() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(3),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let d = LogitDynamics::new(game, 1.0);
        let chain = d.transition_chain();
        assert_eq!(chain.num_states(), 8);
        assert!(chain.is_ergodic());
    }

    #[test]
    fn transition_matrix_matches_eq_3_structure() {
        let game = CoordinationGame::from_deltas(2.0, 1.0);
        let d = LogitDynamics::new(game, 0.5);
        let p = d.transition_matrix();
        let space = d.space();
        // Entries between profiles at Hamming distance 2 must be zero.
        for x in 0..4 {
            for y in 0..4 {
                if space.hamming_distance(x, y) == 2 {
                    assert_eq!(p[(x, y)], 0.0);
                }
            }
        }
        // Off-diagonal entry = σ_i(y_i|x)/n.
        let x = space.index_of(&[0, 0]);
        let y = space.index_of(&[1, 0]);
        let sigma = d.update_probability(0, &[0, 0], 1);
        assert!((p[(x, y)] - sigma / 2.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_transitions_agree() {
        let game = TablePotentialGame::random(vec![2, 3, 2], 2.0, &mut StdRng::seed_from_u64(5));
        let d = LogitDynamics::new(game, 1.3);
        let dense = d.transition_matrix();
        let sparse = d.transition_sparse();
        assert!(sparse.is_row_stochastic(1e-9));
        assert!(sparse.to_dense().max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn gibbs_is_the_stationary_distribution() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::path(3),
            CoordinationGame::from_deltas(1.5, 1.0),
        );
        let d = LogitDynamics::new(game, 0.8);
        let chain = d.transition_chain();
        let pi_linear = stationary_distribution(&chain);
        let pi_gibbs = d.gibbs();
        assert!(total_variation(&pi_linear, &pi_gibbs) < 1e-9);
        // And the chain is reversible w.r.t. the Gibbs measure.
        assert!(chain.is_reversible(&pi_gibbs, 1e-9));
    }

    #[test]
    fn step_simulation_stays_in_range_and_moves_one_coordinate() {
        let game = WellGame::plateau(5, 2.0);
        let d = LogitDynamics::new(game, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut state = 0usize;
        for _ in 0..500 {
            let next = d.step(state, &mut rng);
            assert!(next < d.num_states());
            assert!(d.space().hamming_distance(state, next) <= 1);
            state = next;
        }
    }

    #[test]
    fn sample_index_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let probs = [0.1, 0.6, 0.3];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_index(&probs, &mut rng)] += 1;
        }
        let freq1 = counts[1] as f64 / 30_000.0;
        assert!((freq1 - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_beta_rejected() {
        let game = CoordinationGame::from_deltas(1.0, 1.0);
        let _ = LogitDynamics::new(game, -0.1);
    }
}
