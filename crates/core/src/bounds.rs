//! Closed-form bounds from the paper, one function per theorem.
//!
//! Every experiment in `EXPERIMENTS.md` prints a "measured vs. bound" table; the
//! bound columns come from here. The functions return the bound exactly as the
//! theorem states it (including explicit constants), so measured values are
//! expected to sit *below* upper bounds and *above* lower bounds, while the
//! growth exponents should match.

/// Lemma 3.2: the relaxation time of the β = 0 chain is at most `n`.
pub fn lemma_3_2_relaxation_beta0(n: usize) -> f64 {
    n as f64
}

/// Lemma 3.3: for an `n`-player potential game with at most `m` strategies per
/// player and maximum global potential variation `ΔΦ`,
/// `t_rel(β) ≤ 2·m·n·e^{βΔΦ}`.
pub fn lemma_3_3_relaxation_upper(n: usize, m: usize, beta: f64, delta_phi: f64) -> f64 {
    2.0 * m as f64 * n as f64 * (beta * delta_phi).exp()
}

/// Theorem 3.4: `t_mix(ε) ≤ 2·m·n·e^{βΔΦ}·(log(1/ε) + βΔΦ + n·log m)`.
pub fn theorem_3_4_mixing_upper(
    n: usize,
    m: usize,
    beta: f64,
    delta_phi: f64,
    epsilon: f64,
) -> f64 {
    lemma_3_3_relaxation_upper(n, m, beta, delta_phi)
        * ((1.0 / epsilon).ln() + beta * delta_phi + n as f64 * (m as f64).ln())
}

/// Theorem 3.5 (lower bound for the well potential): the proof gives
/// `t_mix(ε) ≥ (1 − 2ε)/(2(m−1)) · e^{βΔΦ − (ΔΦ/δΦ)·log n}`.
pub fn theorem_3_5_mixing_lower(
    n: usize,
    m: usize,
    beta: f64,
    delta_phi: f64,
    delta_local: f64,
    epsilon: f64,
) -> f64 {
    (1.0 - 2.0 * epsilon) / (2.0 * (m as f64 - 1.0))
        * (beta * delta_phi - (delta_phi / delta_local) * (n as f64).ln()).exp()
}

/// Theorem 3.6 applicability: the result needs `β ≤ c/(n·δΦ)` for some `c < 1`.
/// Returns the product `c = β·n·δΦ`; the theorem applies when the result is `< 1`.
pub fn theorem_3_6_constant(beta: f64, n: usize, delta_local: f64) -> f64 {
    beta * n as f64 * delta_local
}

/// Theorem 3.6 (small β): path coupling with contraction `α = (1−c)/n` over the
/// Hamming graph of diameter `n` gives
/// `t_mix(ε) ≤ n·(log n + log(1/ε))/(1 − c)` where `c = β·n·δΦ < 1`.
pub fn theorem_3_6_mixing_upper(n: usize, beta: f64, delta_local: f64, epsilon: f64) -> f64 {
    let c = theorem_3_6_constant(beta, n, delta_local);
    assert!(c < 1.0, "Theorem 3.6 requires beta*n*deltaPhi < 1, got {c}");
    n as f64 * ((n as f64).ln() + (1.0 / epsilon).ln()) / (1.0 - c)
}

/// Lemma 3.7: `t_rel ≤ n·m^{2n+1}·e^{βζ}`.
pub fn lemma_3_7_relaxation_upper(n: usize, m: usize, beta: f64, zeta: f64) -> f64 {
    n as f64 * (m as f64).powi(2 * n as i32 + 1) * (beta * zeta).exp()
}

/// Theorem 3.8 (large β): combining Lemma 3.7 with Theorem 2.3 and
/// `π_min ≥ 1/(e^{βΔΦ}|S|)` gives
/// `t_mix(ε) ≤ n·m^{2n+1}·e^{βζ}·(log(1/ε) + βΔΦ + n·log m)`.
///
/// The headline statement of the theorem is the asymptotic `e^{βζ(1+o(1))}`;
/// this function returns the explicit pre-asymptotic bound used to check it.
pub fn theorem_3_8_mixing_upper(
    n: usize,
    m: usize,
    beta: f64,
    zeta: f64,
    delta_phi: f64,
    epsilon: f64,
) -> f64 {
    lemma_3_7_relaxation_upper(n, m, beta, zeta)
        * ((1.0 / epsilon).ln() + beta * delta_phi + n as f64 * (m as f64).ln())
}

/// Theorem 3.9 (large β lower bound):
/// `t_mix(ε) ≥ (1 − 2ε)/(2(m−1)|∂R|)·e^{βζ}`, where `|∂R|` is the size of the
/// inner boundary of the bottleneck set used in the proof (at most `|S|`).
pub fn theorem_3_9_mixing_lower(
    m: usize,
    beta: f64,
    zeta: f64,
    boundary_size: usize,
    epsilon: f64,
) -> f64 {
    (1.0 - 2.0 * epsilon) / (2.0 * (m as f64 - 1.0) * boundary_size as f64) * (beta * zeta).exp()
}

/// Theorem 4.2 (dominant strategies): the proof runs `k = ⌈2·mⁿ·ln 4⌉` phases of
/// `t* = ⌈2·n·ln n⌉` steps each, so `t_mix ≤ k·t*` — independent of β.
pub fn theorem_4_2_mixing_upper(n: usize, m: usize) -> f64 {
    let phases = (2.0 * (m as f64).powi(n as i32) * 4.0f64.ln()).ceil();
    let phase_len = (2.0 * n as f64 * (n as f64).ln()).ceil().max(1.0);
    phases * phase_len
}

/// Theorem 4.3 (dominant-strategy lower bound): for the all-zero game,
/// `t_mix ≥ (mⁿ − 1)/(4(m − 1))` for sufficiently large β.
pub fn theorem_4_3_mixing_lower(n: usize, m: usize) -> f64 {
    ((m as f64).powi(n as i32) - 1.0) / (4.0 * (m as f64 - 1.0))
}

/// Theorem 5.1 (graphical coordination games, arbitrary graph):
/// `t_mix ≤ 2·n³·e^{χ(G)(δ₀+δ₁)β}·(n·δ₀·β + 1)`.
pub fn theorem_5_1_mixing_upper(
    n: usize,
    cutwidth: usize,
    delta0: f64,
    delta1: f64,
    beta: f64,
) -> f64 {
    2.0 * (n as f64).powi(3)
        * (cutwidth as f64 * (delta0 + delta1) * beta).exp()
        * (n as f64 * delta0 * beta + 1.0)
}

/// Theorem 5.5 (clique): the mixing time is `Θ̃(e^{β(Φ_max − Φ(1))})`; this
/// returns the exponent `Φ_max − Φ(1)` (the clique barrier), so experiments can
/// compare the measured growth rate of `log t_mix` in β against it.
pub fn theorem_5_5_exponent(n: usize, delta0: f64, delta1: f64) -> f64 {
    logit_games::graphical::clique_barrier(n, delta0, delta1)
}

/// Theorem 5.6 (ring, no risk dominance): path coupling with contraction
/// `α = 2/(n(1 + e^{2δβ}))` over a diameter-`n` graph gives
/// `t_mix(ε) ≤ n·(1 + e^{2δβ})·(log n + log(1/ε))/2`.
pub fn theorem_5_6_mixing_upper(n: usize, delta: f64, beta: f64, epsilon: f64) -> f64 {
    n as f64 * (1.0 + (2.0 * delta * beta).exp()) * ((n as f64).ln() + (1.0 / epsilon).ln()) / 2.0
}

/// Theorem 5.7 (ring lower bound): with `R = {1}` the bottleneck ratio is
/// `1/(1 + e^{2δβ})`, giving `t_mix(ε) ≥ (1 − 2ε)(1 + e^{2δβ})/2`.
pub fn theorem_5_7_mixing_lower(delta: f64, beta: f64, epsilon: f64) -> f64 {
    (1.0 - 2.0 * epsilon) * (1.0 + (2.0 * delta * beta).exp()) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_monotone_in_beta() {
        let betas = [0.0, 0.5, 1.0, 2.0, 4.0];
        let mut prev = 0.0;
        for &b in &betas {
            let v = theorem_3_4_mixing_upper(4, 2, b, 3.0, 0.25);
            assert!(v >= prev);
            prev = v;
        }
        let mut prev = 0.0;
        for &b in &betas {
            let v = theorem_5_1_mixing_upper(5, 2, 1.0, 1.0, b);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn theorem_4_2_is_independent_of_beta_by_construction() {
        // Trivially true (no β argument) — but check the magnitude is O(m^n n log n).
        let v = theorem_4_2_mixing_upper(4, 2);
        assert!(v >= 16.0); // at least m^n
        assert!(v <= 16.0 * 4.0 * 8.0 * 10.0); // loose sanity cap
    }

    #[test]
    fn theorem_4_3_examples() {
        assert!((theorem_4_3_mixing_lower(2, 2) - 0.75).abs() < 1e-12);
        assert!((theorem_4_3_mixing_lower(3, 3) - 26.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn theorem_3_6_requires_small_beta() {
        assert!(theorem_3_6_constant(0.01, 5, 2.0) < 1.0);
        let bound = theorem_3_6_mixing_upper(5, 0.01, 2.0, 0.25);
        assert!(bound > 0.0);
        assert!(bound < 100.0);
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn theorem_3_6_rejects_large_beta() {
        let _ = theorem_3_6_mixing_upper(5, 1.0, 2.0, 0.25);
    }

    #[test]
    fn lower_bounds_grow_exponentially() {
        let low = theorem_5_7_mixing_lower(1.0, 1.0, 0.25);
        let high = theorem_5_7_mixing_lower(1.0, 3.0, 0.25);
        // Ratio should be roughly e^{2*2} = e^4.
        assert!(high / low > 30.0);

        let l1 = theorem_3_5_mixing_lower(8, 2, 2.0, 4.0, 2.0, 0.25);
        let l2 = theorem_3_5_mixing_lower(8, 2, 4.0, 4.0, 2.0, 0.25);
        assert!((l2 / l1 - (8.0f64).exp()).abs() / (8.0f64).exp() < 1e-9);
    }

    #[test]
    fn relaxation_bounds_nest() {
        // Theorem 3.4's relaxation bound at ζ = ΔΦ should never be smaller than
        // a factor of the Lemma 3.3 bound's exponential part (same exponent).
        let (n, m, beta) = (4, 2, 1.5);
        let dphi = 3.0;
        let a = lemma_3_3_relaxation_upper(n, m, beta, dphi);
        let b = lemma_3_7_relaxation_upper(n, m, beta, dphi);
        assert!(b >= a, "Lemma 3.7's constant is larger by design");
    }

    #[test]
    fn theorem_5_5_exponent_matches_clique_barrier() {
        let e = theorem_5_5_exponent(6, 2.0, 1.0);
        assert!(e > 0.0);
        assert_eq!(e, logit_games::graphical::clique_barrier(6, 2.0, 1.0));
    }
}
