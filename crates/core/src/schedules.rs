//! Player-selection schedules: who revises at each tick.
//!
//! The paper's chain selects **one player uniformly at random** per step; its
//! companion line of work studies the parallel "all-logit" variant in which
//! *every* player revises simultaneously, and round-robin (systematic sweep)
//! scans are the standard third point of comparison in the MCMC literature.
//! The [`SelectionSchedule`] trait captures the choice: a schedule names the
//! players revising at tick `t` and says whether they revise sequentially
//! (each seeing the previous updates of the same tick) or as a parallel block
//! (all sampling against the frozen pre-tick profile).
//!
//! The engine-side driver is
//! [`DynamicsEngine::step_scheduled`](crate::dynamics::DynamicsEngine::step_scheduled);
//! the exact counterpart for the parallel block schedule is
//! [`DynamicsEngine::transition_matrix_all_logit`](crate::dynamics::DynamicsEngine::transition_matrix_all_logit).
//!
//! The coloured parallel-revision schedules —
//! [`RandomBlock`](crate::parallel::RandomBlock) random `k`-subsets and
//! [`ColouredBlocks`](crate::parallel::ColouredBlocks) independent-set
//! blocks, with the genuinely parallel engine path — live in
//! [`crate::parallel`].

use rand::Rng;

/// A selection schedule: which players revise at tick `t`, and how the
/// updates within a tick compose.
pub trait SelectionSchedule: std::fmt::Debug + Clone + Send + Sync {
    /// Writes the players revising at tick `t` into `out` (cleared first), in
    /// the order their updates are applied. May consume randomness.
    fn select_players<R: Rng + ?Sized>(
        &self,
        t: u64,
        num_players: usize,
        rng: &mut R,
        out: &mut Vec<usize>,
    );

    /// `true` when the tick is a parallel block update: every selected player
    /// samples her new strategy against the frozen pre-tick profile and all
    /// moves are applied at once. `false` (the default) means sequential
    /// composition within the tick.
    fn parallel(&self) -> bool {
        false
    }

    /// Short identifier used in reports and benchmark rows.
    fn name(&self) -> &'static str;
}

/// The paper's schedule: one player, uniformly at random, per tick.
///
/// Consumes exactly one `gen_range` draw per tick — the same stream position
/// as the pre-refactor engine, so `Logit + UniformSingle` trajectories are
/// bit-identical to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformSingle;

impl SelectionSchedule for UniformSingle {
    fn select_players<R: Rng + ?Sized>(
        &self,
        _t: u64,
        num_players: usize,
        rng: &mut R,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        out.push(rng.gen_range(0..num_players));
    }

    fn name(&self) -> &'static str {
        "uniform_single"
    }
}

/// Deterministic round-robin: tick `t` revises player `t mod n`. A full pass
/// over the players every `n` ticks, no selection randomness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystematicSweep;

impl SelectionSchedule for SystematicSweep {
    fn select_players<R: Rng + ?Sized>(
        &self,
        t: u64,
        num_players: usize,
        _rng: &mut R,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        out.push((t % num_players as u64) as usize);
    }

    fn name(&self) -> &'static str {
        "systematic_sweep"
    }
}

/// The parallel block schedule of the all-logit dynamics: every player
/// revises at every tick, all sampling against the frozen pre-tick profile.
///
/// One tick equals `n` player updates (compare throughputs per *update*, not
/// per tick). The induced chain is `P(x, y) = Π_i σ_i(y_i | x)` — dense, and
/// in general *not* reversible even for potential games.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllLogit;

impl SelectionSchedule for AllLogit {
    fn select_players<R: Rng + ?Sized>(
        &self,
        _t: u64,
        num_players: usize,
        _rng: &mut R,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        out.extend(0..num_players);
    }

    fn parallel(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "all_logit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_single_picks_one_player_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = vec![99, 99];
        let mut seen = [false; 5];
        for t in 0..200 {
            UniformSingle.select_players(t, 5, &mut rng, &mut out);
            assert_eq!(out.len(), 1);
            assert!(out[0] < 5);
            seen[out[0]] = true;
        }
        assert!(seen.iter().all(|&s| s), "every player gets selected");
        assert!(!UniformSingle.parallel());
    }

    #[test]
    fn uniform_single_consumes_the_legacy_stream() {
        // One gen_range draw per tick, nothing else — the bit-compatibility
        // contract with the pre-refactor engine.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut out = Vec::new();
        for t in 0..50 {
            UniformSingle.select_players(t, 6, &mut a, &mut out);
            assert_eq!(out[0], b.gen_range(0..6usize));
        }
    }

    #[test]
    fn sweep_is_round_robin_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        for t in 0..9u64 {
            SystematicSweep.select_players(t, 3, &mut rng, &mut out);
            assert_eq!(out, vec![(t % 3) as usize]);
        }
        // The sweep consumed no randomness: the stream is still at its start.
        let mut fresh = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
    }

    #[test]
    fn all_logit_selects_everyone_in_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        AllLogit.select_players(3, 4, &mut rng, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(AllLogit.parallel());
        assert_eq!(AllLogit.name(), "all_logit");
    }
}
