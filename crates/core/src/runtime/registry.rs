//! Worker thread registry: one entry per pool worker, recording its index
//! and whether the optional core pin took effect.
//!
//! Pinning goes through a raw `sched_setaffinity` syscall (no libc
//! dependency): pid 0 targets the calling thread, and each worker asks for
//! core `worker_index % advertised_cores` at spawn. On non-Linux targets —
//! or when the kernel rejects the mask (cgroup cpuset restrictions,
//! offline cores) — the pin silently degrades to "not pinned" and the
//! registry records the outcome, so callers can observe what actually
//! happened rather than what was requested.

use std::sync::{Arc, Condvar, Mutex};

/// One pool worker's registry row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerEntry {
    /// Pool-local worker index (0-based, dense).
    pub index: usize,
    /// The core this worker was pinned to, if pinning was requested and
    /// the kernel accepted the mask.
    pub pinned_core: Option<usize>,
}

/// Registry of the pool's worker threads. Workers insert their entry once
/// at spawn; the pool constructor blocks until every worker has checked
/// in, so a constructed pool always exposes a complete, stable registry.
#[derive(Debug, Clone)]
pub struct ThreadRegistry {
    inner: Arc<RegistryInner>,
}

#[derive(Debug)]
struct RegistryInner {
    entries: Mutex<Vec<WorkerEntry>>,
    all_in: Condvar,
    expected: usize,
}

impl ThreadRegistry {
    pub(crate) fn new(expected: usize) -> Self {
        ThreadRegistry {
            inner: Arc::new(RegistryInner {
                entries: Mutex::new(Vec::with_capacity(expected)),
                all_in: Condvar::new(),
                expected,
            }),
        }
    }

    /// Called by each worker exactly once at spawn.
    pub(crate) fn check_in(&self, entry: WorkerEntry) {
        let mut entries = self.inner.entries.lock().expect("registry poisoned");
        entries.push(entry);
        if entries.len() == self.inner.expected {
            self.inner.all_in.notify_all();
        }
    }

    /// Blocks until every expected worker has checked in (used by the pool
    /// constructor so `registry()` is complete from the first dispatch).
    pub(crate) fn wait_complete(&self) {
        let mut entries = self.inner.entries.lock().expect("registry poisoned");
        while entries.len() < self.inner.expected {
            entries = self.inner.all_in.wait(entries).expect("registry poisoned");
        }
    }

    /// Number of registered workers.
    pub fn len(&self) -> usize {
        self.inner.entries.lock().expect("registry poisoned").len()
    }

    /// Whether the registry is empty (a pool can legitimately have zero
    /// workers when the caller does all the work inline).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the registry rows, sorted by worker index.
    pub fn entries(&self) -> Vec<WorkerEntry> {
        let mut rows = self
            .inner
            .entries
            .lock()
            .expect("registry poisoned")
            .clone();
        rows.sort_by_key(|e| e.index);
        rows
    }

    /// How many workers ended up actually pinned.
    pub fn pinned_count(&self) -> usize {
        self.inner
            .entries
            .lock()
            .expect("registry poisoned")
            .iter()
            .filter(|e| e.pinned_core.is_some())
            .count()
    }
}

/// Pins the calling thread to `core`, returning whether the kernel
/// accepted the mask. Linux-only; other targets always return `false`.
pub(crate) fn pin_current_thread(core: usize) -> bool {
    pin_impl(core)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn pin_impl(core: usize) -> bool {
    // cpu_set_t is 1024 bits; one u64 limb per 64 cores.
    let mut mask = [0u64; 16];
    let limb = core / 64;
    if limb >= mask.len() {
        return false;
    }
    mask[limb] = 1u64 << (core % 64);
    let mask_bytes = std::mem::size_of_val(&mask);
    // SAFETY: sched_setaffinity(pid = 0 → calling thread, cpusetsize,
    // *mask) only reads `mask_bytes` bytes from the pointer, which points
    // at a live, correctly sized stack array. No memory is written.
    let ret: isize;
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") mask_bytes,
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        let nr: usize = 122; // __NR_sched_setaffinity
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") 0isize => ret,
            in("x1") mask_bytes,
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn pin_impl(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_collects_and_sorts_entries() {
        let registry = ThreadRegistry::new(3);
        registry.check_in(WorkerEntry {
            index: 2,
            pinned_core: None,
        });
        registry.check_in(WorkerEntry {
            index: 0,
            pinned_core: Some(0),
        });
        registry.check_in(WorkerEntry {
            index: 1,
            pinned_core: None,
        });
        registry.wait_complete();
        assert_eq!(registry.len(), 3);
        assert!(!registry.is_empty());
        let rows = registry.entries();
        assert_eq!(rows.iter().map(|e| e.index).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(registry.pinned_count(), 1);
    }

    #[test]
    fn pinning_the_current_thread_reports_a_boolean_outcome() {
        // The outcome depends on the host (cgroup cpusets can reject any
        // mask), so assert only that the call returns and, if it claims
        // success, that re-pinning to the same core also succeeds.
        let ok = pin_current_thread(0);
        if ok {
            assert!(pin_current_thread(0), "re-pinning to core 0 must hold");
        }
        // An out-of-range core must never report success.
        assert!(!pin_current_thread(16 * 64 + 1));
    }
}
