//! Persistent parallel runtime: a worker pool spawned once and reused for
//! every tick, plus the configuration knobs shared by all parallel paths.
//!
//! PR 5's coloured independent-set engine and PR 4's pipelined farm both
//! paid a fresh `rayon::scope` (one OS-thread spawn per worker) on every
//! tick or run, which is why the committed coloured `par_over_seq` sat at
//! 0.66–0.77 and narrow colour classes could never amortise parallelism.
//! This module replaces per-tick thread creation with the skeleton-library
//! shape (spawn once, park on a wait policy, drive per-tick work through a
//! claim counter and a completion barrier):
//!
//! * [`RuntimeConfig`] — the single notion of "how many threads" (worker
//!   count, wait policy, core pinning, narrow-class threshold), threaded
//!   through [`Simulator`](crate::Simulator) and overridable from the
//!   environment for benches (`LOGIT_WORKERS`, `LOGIT_WAIT_POLICY`,
//!   `LOGIT_PIN_CORES`, `LOGIT_MIN_CLASS_SIZE`, `LOGIT_BLOCK_PLAYERS`).
//! * [`WorkerPool`] — the persistent pool itself: chunked work
//!   distribution ([`WorkerPool::run`], [`WorkerPool::for_each_chunk`]),
//!   a concurrent caller lane for farm shapes
//!   ([`WorkerPool::execute_with`]), per-dispatch barrier synchronisation,
//!   and first-panic propagation.
//! * [`ThreadRegistry`] — worker ids and pinning outcomes, observable so
//!   tests can assert the pool neither leaks nor respawns threads.
//!
//! Work distribution is a shared atomic claim counter, so chunk→worker
//! assignment is dynamic (idle workers steal whatever chunk is next); the
//! counter-derived per-player draw scheme makes the *results*
//! worker-count-independent and bit-identical to the sequential class
//! sweep regardless of which worker executes which chunk.

mod pool;
mod registry;

pub(crate) use pool::current_worker_index;
pub use pool::WorkerPool;
pub use registry::{ThreadRegistry, WorkerEntry};

/// Records that a warning for `var` has been emitted; returns `true` the
/// first time a given variable name is seen in this process. Delegates to
/// the workspace-wide dedup set in `logit-telemetry`, so the runtime's
/// `LOGIT_*` knobs and the telemetry layer's `LOGIT_TELEMETRY` read share
/// one once-per-variable ledger no matter which crate reads first.
#[cfg(test)]
fn first_warning(var: &str) -> bool {
    logit_telemetry::first_warning(var)
}

/// Emits a one-time stderr warning that the environment variable `var`
/// carried the unparseable `value` and the built-in default is used
/// instead. The fallback behaviour is unchanged from the silent era — a
/// bad value never aborts a run — but a typo like `LOGIT_WORKERS=for`
/// is no longer indistinguishable from the variable being unset.
pub(crate) fn warn_invalid_env(var: &str, value: &str) {
    logit_telemetry::warn_invalid_env(var, value);
}

/// How idle pool workers wait for the next dispatch. The policy sets how
/// long a worker stays *hot* between dispatches; every policy escalates to
/// parking on a condvar after a bounded idle window, so an idle pool never
/// taxes the host no matter the policy.
///
/// * [`Spin`](WaitPolicy::Spin) — busy-wait (with a periodic `yield_now`
///   safety valve) for ≈ a millisecond of idleness before parking. Lowest
///   dispatch latency; right for dense back-to-back ticks where the pool
///   is the only thing running.
/// * [`Yield`](WaitPolicy::Yield) — `yield_now` between polls, parking
///   after the idle budget. A good default: near-spin latency when cores
///   are free, cooperative when the host is oversubscribed (including
///   single-core CI).
/// * [`Park`](WaitPolicy::Park) — block on the condvar immediately.
///   Highest wake latency but zero idle CPU from the first moment; right
///   for service-style workloads where dispatches are sparse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WaitPolicy {
    /// Busy-wait (with a periodic yield safety valve), then park.
    Spin,
    /// Yield the CPU between polls, then park.
    #[default]
    Yield,
    /// Park on a condvar until a dispatch or shutdown wakes the worker.
    Park,
}

impl WaitPolicy {
    /// Stable lower-case name (used in bench JSON and env parsing).
    pub fn name(self) -> &'static str {
        match self {
            WaitPolicy::Spin => "spin",
            WaitPolicy::Yield => "yield",
            WaitPolicy::Park => "park",
        }
    }

    /// Parses the lower-case name emitted by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "spin" => Some(WaitPolicy::Spin),
            "yield" => Some(WaitPolicy::Yield),
            "park" => Some(WaitPolicy::Park),
            _ => None,
        }
    }

    /// All policies, for exhaustive test sweeps.
    pub const ALL: [WaitPolicy; 3] = [WaitPolicy::Spin, WaitPolicy::Yield, WaitPolicy::Park];
}

/// The one shared notion of "how parallel": worker count, wait policy,
/// pinning, and the narrow-class amortisation guard. Replaces the former
/// `PipelineConfig::workers` knob and `step_coloured_par`'s implicit
/// per-call worker argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Total stepping threads (including the calling thread for coloured
    /// sweeps; pool participants for farm shapes). `0` means "one per
    /// available core".
    pub workers: usize,
    /// How idle pool workers wait between dispatches.
    pub wait_policy: WaitPolicy,
    /// Pin each pool worker to a distinct core at spawn (Linux only;
    /// silently a no-op elsewhere). See the registry for outcomes.
    pub pin_cores: bool,
    /// Colour classes (or chunked work sets) smaller than this run inline
    /// on the calling thread: below the threshold, dispatch overhead beats
    /// any parallel win.
    pub min_class_size: usize,
    /// Cache-block size of the coloured sweeps, in players per chunk: a
    /// colour class is cut into blocks of at most this many players, so
    /// each block's working set (staged strategies + the bandwidth-wide
    /// profile window it reads after relabelling) stays L2-resident while
    /// the pool's claim counter load-balances the blocks dynamically.
    /// `0` disables blocking (one chunk per worker, the pre-locality
    /// behaviour). The default suits a 1–2 MiB L2.
    pub block_players: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 0,
            wait_policy: WaitPolicy::Yield,
            pin_cores: false,
            min_class_size: 256,
            block_players: 32_768,
        }
    }
}

impl RuntimeConfig {
    /// Reads the config from the environment, falling back to defaults for
    /// unset or unparseable variables: `LOGIT_WORKERS` (integer, 0 = auto),
    /// `LOGIT_WAIT_POLICY` (`spin` | `yield` | `park`), `LOGIT_PIN_CORES`
    /// (`1` | `true`), `LOGIT_MIN_CLASS_SIZE` (integer),
    /// `LOGIT_BLOCK_PLAYERS` (integer, 0 = no cache blocking).
    pub fn from_env() -> Self {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// [`from_env`](Self::from_env) with an injectable variable source, so
    /// parsing is testable without mutating process-global state. A set but
    /// unparseable variable falls back to the default *and* emits a
    /// one-time stderr warning naming the variable and the rejected value
    /// (see [`from_lookup_with`](Self::from_lookup_with) for the injectable
    /// warning sink the tests use).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        Self::from_lookup_with(lookup, warn_invalid_env)
    }

    /// [`from_lookup`](Self::from_lookup) with an injectable warning sink:
    /// `warn(var, value)` is called for every set-but-unparseable variable
    /// (no once-per-process dedup at this layer — that lives in the real
    /// stderr sink), and the default is used in its place.
    pub fn from_lookup_with(
        lookup: impl Fn(&str) -> Option<String>,
        mut warn: impl FnMut(&str, &str),
    ) -> Self {
        /// One knob: unset → default, parseable → parsed, anything else →
        /// default plus a warning naming the variable and the value.
        fn knob<T>(
            lookup: &impl Fn(&str) -> Option<String>,
            warn: &mut impl FnMut(&str, &str),
            var: &str,
            default: T,
            parse: impl Fn(&str) -> Option<T>,
        ) -> T {
            match lookup(var) {
                None => default,
                Some(value) => match parse(value.trim()) {
                    Some(parsed) => parsed,
                    None => {
                        warn(var, &value);
                        default
                    }
                },
            }
        }

        let defaults = RuntimeConfig::default();
        RuntimeConfig {
            workers: knob(&lookup, &mut warn, "LOGIT_WORKERS", defaults.workers, |v| {
                v.parse().ok()
            }),
            wait_policy: knob(
                &lookup,
                &mut warn,
                "LOGIT_WAIT_POLICY",
                defaults.wait_policy,
                WaitPolicy::parse,
            ),
            pin_cores: knob(
                &lookup,
                &mut warn,
                "LOGIT_PIN_CORES",
                defaults.pin_cores,
                |v| match v {
                    "1" | "true" | "TRUE" | "yes" => Some(true),
                    "0" | "false" | "FALSE" | "no" | "" => Some(false),
                    _ => None,
                },
            ),
            min_class_size: knob(
                &lookup,
                &mut warn,
                "LOGIT_MIN_CLASS_SIZE",
                defaults.min_class_size,
                |v| v.parse().ok(),
            ),
            block_players: knob(
                &lookup,
                &mut warn,
                "LOGIT_BLOCK_PLAYERS",
                defaults.block_players,
                |v| v.parse().ok(),
            ),
        }
    }

    /// The chunk size a coloured sweep should use for a class of
    /// `class_size` players split across `workers` stepping threads: an
    /// even split capped at [`block_players`](Self::block_players) (when
    /// non-zero), never below 1. More chunks than workers is fine — the
    /// pool's claim counter load-balances them.
    pub fn sweep_chunk(&self, class_size: usize, workers: usize) -> usize {
        let even = class_size.div_ceil(workers.max(1)).max(1);
        if self.block_players == 0 {
            even
        } else {
            even.min(self.block_players)
        }
    }

    /// The worker count with `0` resolved to the host's available
    /// parallelism; never less than 1.
    ///
    /// The host's parallelism is read once and cached:
    /// `std::thread::available_parallelism` re-reads cgroup limits on
    /// every call (syscalls on the Linux hot path), and this resolver sits
    /// inside per-tick worker-count decisions.
    pub fn resolved_workers(&self) -> usize {
        static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let requested = if self.workers == 0 {
            *CORES.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
        } else {
            self.workers
        };
        requested.max(1)
    }

    /// Total stepping threads for a colour class of `class_size` players:
    /// 1 (inline on the caller) when the class is narrower than
    /// [`min_class_size`](Self::min_class_size), otherwise the resolved
    /// worker count capped by the class size.
    pub fn class_workers(&self, class_size: usize) -> usize {
        if class_size < self.min_class_size {
            1
        } else {
            self.resolved_workers().min(class_size).max(1)
        }
    }

    /// Pool-participant count for a farm of `jobs` independent jobs (the
    /// caller runs the reducer, so it is not counted here).
    pub fn farm_workers(&self, jobs: usize) -> usize {
        self.resolved_workers().min(jobs).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_from<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |key| {
            pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn wait_policy_names_round_trip() {
        for policy in WaitPolicy::ALL {
            assert_eq!(WaitPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(WaitPolicy::parse(" SPIN "), Some(WaitPolicy::Spin));
        assert_eq!(WaitPolicy::parse("busy"), None);
    }

    #[test]
    fn env_lookup_parses_every_knob_and_falls_back_on_garbage() {
        let cfg = RuntimeConfig::from_lookup(lookup_from(&[
            ("LOGIT_WORKERS", "3"),
            ("LOGIT_WAIT_POLICY", "park"),
            ("LOGIT_PIN_CORES", "1"),
            ("LOGIT_MIN_CLASS_SIZE", "64"),
            ("LOGIT_BLOCK_PLAYERS", "4096"),
        ]));
        assert_eq!(
            cfg,
            RuntimeConfig {
                workers: 3,
                wait_policy: WaitPolicy::Park,
                pin_cores: true,
                min_class_size: 64,
                block_players: 4096,
            }
        );

        let garbage = RuntimeConfig::from_lookup(lookup_from(&[
            ("LOGIT_WORKERS", "lots"),
            ("LOGIT_WAIT_POLICY", "busy"),
            ("LOGIT_PIN_CORES", "maybe"),
            ("LOGIT_BLOCK_PLAYERS", "a few"),
        ]));
        assert_eq!(garbage, RuntimeConfig::default());

        let unset = RuntimeConfig::from_lookup(|_| None);
        assert_eq!(unset, RuntimeConfig::default());
    }

    #[test]
    fn unparseable_env_values_warn_with_variable_and_rejected_value() {
        let mut warnings: Vec<(String, String)> = Vec::new();
        let cfg = RuntimeConfig::from_lookup_with(
            lookup_from(&[
                ("LOGIT_WORKERS", "lots"),
                ("LOGIT_WAIT_POLICY", "busy"),
                ("LOGIT_PIN_CORES", "maybe"),
                ("LOGIT_MIN_CLASS_SIZE", "64"),
                ("LOGIT_BLOCK_PLAYERS", "a few"),
            ]),
            |var, value| warnings.push((var.to_string(), value.to_string())),
        );
        // The fallback behaviour is unchanged: bad values become defaults.
        assert_eq!(
            cfg,
            RuntimeConfig {
                min_class_size: 64,
                ..RuntimeConfig::default()
            }
        );
        // ...but every rejected value is reported, naming the variable.
        assert_eq!(
            warnings,
            vec![
                ("LOGIT_WORKERS".to_string(), "lots".to_string()),
                ("LOGIT_WAIT_POLICY".to_string(), "busy".to_string()),
                ("LOGIT_PIN_CORES".to_string(), "maybe".to_string()),
                ("LOGIT_BLOCK_PLAYERS".to_string(), "a few".to_string()),
            ]
        );
    }

    #[test]
    fn parseable_and_unset_env_values_never_warn() {
        let mut warned = 0usize;
        let cfg = RuntimeConfig::from_lookup_with(
            lookup_from(&[
                ("LOGIT_WORKERS", " 3 "),
                ("LOGIT_WAIT_POLICY", "PARK"),
                ("LOGIT_PIN_CORES", "no"),
            ]),
            |_, _| warned += 1,
        );
        assert_eq!(warned, 0);
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.wait_policy, WaitPolicy::Park);
        assert!(!cfg.pin_cores);
    }

    #[test]
    fn stderr_warnings_are_deduplicated_per_variable() {
        assert!(super::first_warning("LOGIT_TEST_DEDUP_KNOB"));
        assert!(
            !super::first_warning("LOGIT_TEST_DEDUP_KNOB"),
            "a second warning for the same variable must be suppressed"
        );
        assert!(super::first_warning("LOGIT_TEST_DEDUP_KNOB_TWO"));
        // The ledger is the workspace-wide one: a variable the telemetry
        // layer already warned for stays suppressed here, and vice versa.
        assert!(logit_telemetry::first_warning("LOGIT_TEST_DEDUP_SHARED"));
        assert!(
            !super::first_warning("LOGIT_TEST_DEDUP_SHARED"),
            "runtime and telemetry share one once-per-variable ledger"
        );
    }

    #[test]
    fn class_workers_applies_the_narrow_class_guard() {
        let cfg = RuntimeConfig {
            workers: 4,
            min_class_size: 100,
            ..RuntimeConfig::default()
        };
        assert_eq!(cfg.class_workers(99), 1, "narrow classes stay inline");
        assert_eq!(cfg.class_workers(100), 4, "wide classes get the pool");
        assert_eq!(cfg.class_workers(2), 1, "threshold dominates the cap");

        let tiny = RuntimeConfig {
            workers: 8,
            min_class_size: 0,
            ..RuntimeConfig::default()
        };
        assert_eq!(tiny.class_workers(3), 3, "class size caps the workers");
    }

    #[test]
    fn farm_workers_caps_at_the_job_count() {
        let cfg = RuntimeConfig {
            workers: 8,
            ..RuntimeConfig::default()
        };
        assert_eq!(cfg.farm_workers(3), 3);
        assert_eq!(cfg.farm_workers(100), 8);
        assert_eq!(cfg.farm_workers(1), 1);
    }

    #[test]
    fn sweep_chunk_caps_the_even_split_at_the_block_size() {
        let cfg = RuntimeConfig {
            workers: 4,
            block_players: 1000,
            ..RuntimeConfig::default()
        };
        // Even split below the cap: unchanged.
        assert_eq!(cfg.sweep_chunk(3000, 4), 750);
        // Even split above the cap: blocked.
        assert_eq!(cfg.sweep_chunk(100_000, 4), 1000);
        // Zero disables blocking entirely.
        let unblocked = RuntimeConfig {
            block_players: 0,
            ..cfg
        };
        assert_eq!(unblocked.sweep_chunk(100_000, 4), 25_000);
        // Degenerate inputs never yield a zero chunk.
        assert_eq!(cfg.sweep_chunk(0, 4), 1);
        assert_eq!(cfg.sweep_chunk(10, 0), 10);
    }

    #[test]
    fn resolved_workers_never_returns_zero() {
        let auto = RuntimeConfig::default();
        assert!(auto.resolved_workers() >= 1);
        let explicit = RuntimeConfig {
            workers: 5,
            ..RuntimeConfig::default()
        };
        assert_eq!(explicit.resolved_workers(), 5);
    }
}
