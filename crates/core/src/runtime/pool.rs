//! The persistent worker pool.
//!
//! Threads are spawned once (per pool — in practice once per
//! [`Simulator`](crate::Simulator)) and wait between dispatches on the
//! configured [`WaitPolicy`]; a dispatch publishes one *job* (a chunked
//! closure) through an epoch-tagged claim counter, workers steal chunks
//! from the shared counter until none remain, and the caller blocks on a
//! completion barrier. This replaces the per-tick `rayon::scope` thread
//! spawns the coloured and pipelined engines used to pay.
//!
//! # Protocol
//!
//! Shared state per pool: `epoch` (the latest dispatched job's id),
//! `claim` (a packed word: the epoch's low 32 bits in the high half, the
//! next unclaimed chunk in the low half), `completed` (chunks finished for
//! the current job), and a mutex-guarded job slot holding the type-erased
//! closure plus the participant admission count.
//!
//! Dispatch (caller): write the job descriptor under the slot lock →
//! reset `completed` → publish the tagged claim word → bump `epoch`
//! (Release) → wake parked workers. Workers: observe the epoch change,
//! admit themselves through the slot lock (at most `limit` participants
//! join a job — the admission count lives *inside* the lock so a stale
//! worker can never consume a newer job's seat), then claim chunks via a
//! CAS loop that validates the epoch tag, so a worker that slept through
//! an entire job can never execute a chunk against a dead closure: a
//! successful CAS with a matching tag implies the dispatching caller is
//! still blocked on this very job's barrier, hence every borrow in the
//! closure is still live. Each executed chunk (panicked or not) increments
//! `completed` (Release); the caller spins the barrier until `completed`
//! equals the chunk count (Acquire), which also publishes every chunk's
//! writes to the caller.
//!
//! Panics inside a chunk are caught, the first payload is stashed, the
//! remaining chunks still run (the barrier must fill), and the payload is
//! re-raised on the calling thread once the barrier completes — the same
//! first-panic semantics as the vendored `rayon::scope`. One dispatch at a
//! time: the pool is a per-`Simulator` resource, and nesting `run` inside
//! a pool worker (or racing two dispatches from two threads) is a
//! programming error that the `active` guard turns into a panic instead
//! of silent corruption.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use super::registry::{pin_current_thread, ThreadRegistry, WorkerEntry};
use super::{RuntimeConfig, WaitPolicy};

/// Chunk counts are capped so the claim word can pack epoch-tag and
/// counter into one u64 (far beyond any realistic per-tick chunking).
const CHUNK_LIMIT: u64 = u32::MAX as u64;

thread_local! {
    /// The pool-worker index of the current thread, set once at spawn.
    /// `None` on every thread that is not a pool worker (callers, tests).
    static POOL_WORKER_INDEX: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The spawn-time index of the pool worker running the current thread, or
/// `None` off the pool. This is the stable per-thread lane key the SPSC
/// channel backend needs: each pool worker owns exactly one producer lane,
/// so single-producer ring invariants hold whatever job the chunk-stealing
/// counter hands the thread.
pub(crate) fn current_worker_index() -> Option<usize> {
    POOL_WORKER_INDEX.with(|cell| cell.get())
}

/// The type-erased job descriptor. `data` points at the caller's closure
/// (alive for the whole dispatch: the caller blocks on the barrier);
/// `call` reconstitutes its concrete type. `joined`/`limit` implement
/// bounded participation: a worker may only take a seat while the slot
/// lock is held, so admission is race-free even against workers waking
/// from an older epoch.
#[derive(Clone, Copy)]
struct JobSlot {
    epoch: u64,
    chunks: u64,
    limit: usize,
    joined: usize,
    data: usize,
    call: Option<unsafe fn(*const (), usize)>,
}

impl JobSlot {
    const fn empty() -> Self {
        JobSlot {
            epoch: 0,
            chunks: 0,
            limit: 0,
            joined: 0,
            data: 0,
            call: None,
        }
    }
}

/// Pool instruments, registered once at spawn so the hot paths touch
/// only the atomic cells behind these handles (zero-sized no-ops without
/// the `telemetry` feature).
struct PoolTelemetry {
    /// `runtime.dispatch_ns` — wall time of a full pooled dispatch
    /// (install → chunks → barrier → finish), caller-side.
    dispatch_ns: logit_telemetry::Histogram,
    /// `runtime.parks` — workers escalating to the condvar after their
    /// idle poll budget ran dry.
    parks: logit_telemetry::Counter,
    /// `runtime.wakes` — parked workers woken by a dispatch (shutdown
    /// wakes are not counted).
    wakes: logit_telemetry::Counter,
    /// `runtime.inline_fallbacks` — `run` calls that bypassed the pool
    /// (single participant or single chunk).
    inline_fallbacks: logit_telemetry::Counter,
}

impl PoolTelemetry {
    fn register() -> Self {
        let registry = logit_telemetry::global();
        PoolTelemetry {
            dispatch_ns: registry.histogram("runtime.dispatch_ns"),
            parks: registry.counter("runtime.parks"),
            wakes: registry.counter("runtime.wakes"),
            inline_fallbacks: registry.counter("runtime.inline_fallbacks"),
        }
    }
}

struct Shared {
    /// Latest dispatched job id; strictly increasing, 0 = "none yet".
    epoch: AtomicU64,
    /// Packed claim word: `(epoch & 0xFFFF_FFFF) << 32 | next_chunk`.
    claim: AtomicU64,
    /// Chunks completed for the current job.
    completed: AtomicU64,
    /// The current job descriptor plus participant admission.
    job: Mutex<JobSlot>,
    /// First panic payload raised inside a chunk.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Set once, at pool drop.
    shutdown: AtomicBool,
    /// Guards against nested / concurrent dispatch.
    active: AtomicBool,
    /// Total dispatches that actually reached the pool (observable: the
    /// inline fallbacks never bump this).
    dispatches: AtomicU64,
    wait_policy: WaitPolicy,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    telemetry: PoolTelemetry,
}

/// Empty polls before a Spin worker stops burning cycles and parks —
/// roughly a millisecond of sustained idleness: long enough to stay hot
/// across back-to-back tick dispatches, bounded so a pool whose work is
/// running inline on the caller (narrow classes, single-core hosts) taxes
/// the host nothing.
const SPIN_IDLE_POLLS: u32 = 1 << 17;

/// Empty yields before a Yield worker parks. Every poll releases the CPU,
/// so the pre-park window is scheduler-paced rather than cycle-paced.
const YIELD_IDLE_POLLS: u32 = 1 << 10;

impl Shared {
    /// Waits until the epoch moves past `last_epoch` or shutdown is
    /// flagged. Returns the observed epoch.
    ///
    /// The wait policy only sets how long the worker stays *hot*: Spin
    /// busy-waits (with a yield safety valve for oversubscribed hosts) and
    /// Yield polls between `yield_now`s, but both escalate to the condvar
    /// once the idle budget runs out — an idle pool must never tax the
    /// caller, whatever the policy. Park skips straight to the condvar.
    fn wait_for_dispatch(&self, last_epoch: u64) -> Option<u64> {
        let budget = match self.wait_policy {
            WaitPolicy::Spin => SPIN_IDLE_POLLS,
            WaitPolicy::Yield => YIELD_IDLE_POLLS,
            WaitPolicy::Park => 0,
        };
        let mut polls: u32 = 0;
        while polls < budget {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let epoch = self.epoch.load(Ordering::Acquire);
            if epoch != last_epoch {
                return Some(epoch);
            }
            polls += 1;
            if self.wait_policy == WaitPolicy::Spin && !polls.is_multiple_of(1024) {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Sustained idleness (or Park from the start): block on the
        // condvar. Dispatch and shutdown notify under the same lock, so
        // re-checking the epoch while holding it closes the wakeup race.
        self.telemetry.parks.inc();
        let mut guard = self.park_lock.lock().expect("park lock poisoned");
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let epoch = self.epoch.load(Ordering::Acquire);
            if epoch != last_epoch {
                self.telemetry.wakes.inc();
                return Some(epoch);
            }
            guard = self.park_cv.wait(guard).expect("park lock poisoned");
        }
    }

    /// Claims and executes chunks of `job` until the claim counter runs
    /// out or the claim word's epoch tag no longer matches (the job is
    /// over). Called by admitted workers and by the dispatching caller.
    fn work_chunks(&self, job: &JobSlot) {
        let call = job.call.expect("job dispatched without a kernel");
        let tag = (job.epoch & CHUNK_LIMIT) << 32;
        let mut stolen = 0u64;
        loop {
            let current = self.claim.load(Ordering::Acquire);
            if (current & !CHUNK_LIMIT) != tag {
                break;
            }
            let next = current & CHUNK_LIMIT;
            if next >= job.chunks {
                break;
            }
            if self
                .claim
                .compare_exchange_weak(current, current + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // SAFETY: the tag matched at claim time, so the dispatching
            // caller is still blocked on this job's barrier (completed
            // cannot reach `chunks` before this chunk runs) and the
            // closure behind `data` is alive; `call` was erased from the
            // same concrete type as `data`.
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
                call(job.data as *const (), next as usize)
            }));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            stolen += 1;
            self.completed.fetch_add(1, Ordering::Release);
        }
        // Once per job per participant (never per chunk): attribute the
        // chunks this thread stole to its lane. The `enabled` guard keeps
        // the label formatting and registry lookup off the recording-off
        // path entirely.
        if stolen > 0 && logit_telemetry::enabled() {
            let lane;
            let worker = match current_worker_index() {
                Some(index) => {
                    lane = index.to_string();
                    lane.as_str()
                }
                None => "caller",
            };
            logit_telemetry::global()
                .counter_labelled("runtime.chunks_stolen", ("worker", worker))
                .add(stolen);
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut last_epoch = 0u64;
    loop {
        if shared.wait_for_dispatch(last_epoch).is_none() {
            return;
        }
        let job = {
            let mut slot = shared.job.lock().expect("job slot poisoned");
            // The slot may already describe a job newer than `epoch`;
            // always sync to what is actually installed.
            last_epoch = slot.epoch;
            if slot.joined >= slot.limit {
                continue;
            }
            slot.joined += 1;
            *slot
        };
        shared.work_chunks(&job);
    }
}

/// A persistent pool of worker threads with chunk-stealing dispatch. See
/// the [module docs](self) for the protocol; see
/// [`RuntimeConfig`] for the knobs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    registry: ThreadRegistry,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("wait_policy", &self.shared.wait_policy)
            .field("dispatches", &self.dispatches())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `config.resolved_workers()` persistent workers (pinning them
    /// round-robin across cores when `pin_cores` is set) and blocks until
    /// every worker has checked into the registry.
    pub fn new(config: &RuntimeConfig) -> Self {
        let workers = config.resolved_workers();
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            claim: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            job: Mutex::new(JobSlot::empty()),
            panic: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            active: AtomicBool::new(false),
            dispatches: AtomicU64::new(0),
            wait_policy: config.wait_policy,
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
            telemetry: PoolTelemetry::register(),
        });
        let registry = ThreadRegistry::new(workers);
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let pin = config.pin_cores;
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let registry = registry.clone();
                std::thread::Builder::new()
                    .name(format!("logit-pool-{index}"))
                    .spawn(move || {
                        POOL_WORKER_INDEX.with(|cell| cell.set(Some(index)));
                        let pinned_core = if pin {
                            let core = index % cores;
                            pin_current_thread(core).then_some(core)
                        } else {
                            None
                        };
                        registry.check_in(WorkerEntry { index, pinned_core });
                        worker_loop(shared);
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        registry.wait_complete();
        WorkerPool {
            shared,
            registry,
            handles,
        }
    }

    /// Number of pool worker threads (excluding callers).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The pool's wait policy.
    pub fn wait_policy(&self) -> WaitPolicy {
        self.shared.wait_policy
    }

    /// The worker registry (ids and pinning outcomes).
    pub fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    /// Dispatches that actually engaged pool workers. Inline fallbacks
    /// (one participant, or a single chunk) never count, which is what
    /// lets tests pin the narrow-class threshold behaviour.
    pub fn dispatches(&self) -> u64 {
        self.shared.dispatches.load(Ordering::Relaxed)
    }

    /// Runs `f(0), f(1), …, f(chunks - 1)` (each exactly once) across the
    /// calling thread plus up to `limit - 1` pool workers; returns after
    /// all chunks complete. With one effective participant (or one chunk)
    /// the chunks run inline on the caller with zero dispatch overhead.
    ///
    /// Chunk→thread assignment is dynamic (work stealing off a shared
    /// counter), so `f` must not care which thread runs which chunk —
    /// the engines' counter-derived draw scheme guarantees exactly that.
    pub fn run<F>(&self, chunks: usize, limit: usize, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        let helpers = limit
            .saturating_sub(1)
            .min(self.workers())
            .min(chunks.saturating_sub(1));
        if helpers == 0 {
            self.shared.telemetry.inline_fallbacks.inc();
            for chunk in 0..chunks {
                f(chunk);
            }
            return;
        }
        let _dispatch_span = self.shared.telemetry.dispatch_ns.span();
        let job = self.install(chunks, helpers, f);
        self.shared.work_chunks(&job);
        self.barrier(chunks as u64);
        self.finish(None);
    }

    /// Dispatches `chunks` invocations of `f` to up to `limit` pool
    /// workers while the *caller* concurrently runs `caller_work` (the
    /// farm shape: workers step, the caller reduces). Returns
    /// `caller_work`'s result once both it and every chunk are done.
    ///
    /// Panic priority matches [`run`]: a chunk panic is re-raised first
    /// (root cause), then the caller's own panic.
    pub fn execute_with<F, C, R>(&self, chunks: usize, limit: usize, f: &F, caller_work: C) -> R
    where
        F: Fn(usize) + Sync,
        C: FnOnce() -> R,
    {
        assert!(chunks > 0, "execute_with requires at least one chunk");
        // `WorkerPool::new` spawns at least one worker, so there is always
        // a pool participant to run the chunks while the caller reduces.
        let participants = limit.max(1).min(self.workers()).min(chunks);
        let _dispatch_span = self.shared.telemetry.dispatch_ns.span();
        let job = self.install(chunks, participants, f);
        debug_assert_eq!(job.chunks, chunks as u64);
        let result = catch_unwind(AssertUnwindSafe(caller_work));
        self.barrier(chunks as u64);
        self.finish(result.as_ref().err().map(|_| ()));
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Chunked mutable iteration: splits `items` into consecutive chunks
    /// of `chunk_size` and hands each chunk (with its index) to `f`,
    /// distributed across the caller plus up to `limit - 1` pool workers.
    /// The chunks are disjoint, so concurrent mutation is safe.
    pub fn for_each_chunk<T, F>(&self, items: &mut [T], chunk_size: usize, limit: usize, f: &F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let len = items.len();
        let chunks = len.div_ceil(chunk_size);
        let base = items.as_mut_ptr() as usize;
        let task = move |chunk: usize| {
            let start = chunk * chunk_size;
            let end = (start + chunk_size).min(len);
            // SAFETY: chunk ranges [start, end) are pairwise disjoint and
            // within `items`, which is exclusively borrowed for the whole
            // call; `base` round-trips the slice's own pointer.
            let slice =
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start) };
            f(chunk, slice);
        };
        self.run(chunks, limit, &task);
    }

    /// Publishes a job and returns the descriptor the caller itself may
    /// work from. `pool_participants` is the number of *pool* workers
    /// admitted (the caller is extra).
    fn install<F>(&self, chunks: usize, pool_participants: usize, f: &F) -> JobSlot
    where
        F: Fn(usize) + Sync,
    {
        assert!(
            (chunks as u64) <= CHUNK_LIMIT,
            "dispatch of {chunks} chunks exceeds the claim-word capacity"
        );
        assert!(
            !self.shared.active.swap(true, Ordering::AcqRel),
            "nested or concurrent WorkerPool dispatch (one job at a time; \
             never dispatch from inside a pool worker)"
        );
        let epoch = self.shared.epoch.load(Ordering::Relaxed) + 1;
        let job = JobSlot {
            epoch,
            chunks: chunks as u64,
            limit: pool_participants,
            joined: 0,
            data: f as *const F as usize,
            call: Some(chunk_trampoline::<F>),
        };
        *self.shared.job.lock().expect("job slot poisoned") = job;
        self.shared.completed.store(0, Ordering::Relaxed);
        self.shared
            .claim
            .store((epoch & CHUNK_LIMIT) << 32, Ordering::Release);
        self.shared.dispatches.fetch_add(1, Ordering::Relaxed);
        self.shared.epoch.store(epoch, Ordering::Release);
        // Workers of every policy may have escalated to the condvar after
        // their idle budget, so every dispatch must notify. Uncontended
        // lock + notify with no waiters costs nanoseconds against a
        // dispatch that steps a whole colour class.
        {
            let _guard = self.shared.park_lock.lock().expect("park lock poisoned");
            self.shared.park_cv.notify_all();
        }
        job
    }

    /// Blocks until every chunk of the current job has completed. The
    /// Acquire load pairs with each chunk's Release increment, publishing
    /// the chunks' writes to the caller.
    fn barrier(&self, chunks: u64) {
        let mut polls: u32 = 0;
        while self.shared.completed.load(Ordering::Acquire) < chunks {
            polls = polls.wrapping_add(1);
            if polls.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Clears the dispatch guard and re-raises the first chunk panic, if
    /// any. `caller_panicked` suppresses nothing — chunk panics always
    /// win — it only exists to document the priority at the call site.
    fn finish(&self, caller_panicked: Option<()>) {
        self.shared.active.store(false, Ordering::Release);
        let payload = self
            .shared
            .panic
            .lock()
            .expect("panic slot poisoned")
            .take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        let _ = caller_panicked;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.park_lock.lock().expect("park lock poisoned");
            self.shared.park_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Reconstitutes the concrete closure type erased into a [`JobSlot`].
///
/// # Safety
/// `data` must point at a live `F` — guaranteed by the dispatch protocol:
/// the caller blocks on the barrier while any worker can still hold a
/// claim on the job.
unsafe fn chunk_trampoline<F: Fn(usize) + Sync>(data: *const (), chunk: usize) {
    let f = &*(data as *const F);
    f(chunk);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::sync_channel;

    fn pool_with(workers: usize, wait_policy: WaitPolicy) -> WorkerPool {
        WorkerPool::new(&RuntimeConfig {
            workers,
            wait_policy,
            ..RuntimeConfig::default()
        })
    }

    #[test]
    fn run_executes_every_chunk_exactly_once_under_every_policy() {
        for policy in WaitPolicy::ALL {
            let pool = pool_with(3, policy);
            for chunks in [1usize, 2, 7, 64] {
                let counts: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
                pool.run(chunks, 4, &|c| {
                    counts[c].fetch_add(1, Ordering::Relaxed);
                });
                for (c, count) in counts.iter().enumerate() {
                    assert_eq!(
                        count.load(Ordering::Relaxed),
                        1,
                        "chunk {c} of {chunks} ran a wrong number of times ({policy:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_participant_dispatches_run_inline() {
        let pool = pool_with(2, WaitPolicy::Yield);
        let hits = AtomicUsize::new(0);
        pool.run(5, 1, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
        assert_eq!(pool.dispatches(), 0, "limit 1 must bypass the pool");
        pool.run(1, 8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 6);
        assert_eq!(pool.dispatches(), 0, "a single chunk must bypass the pool");
        pool.run(4, 3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        assert_eq!(pool.dispatches(), 1, "a real dispatch must be counted");
    }

    #[test]
    fn concurrency_never_exceeds_the_participant_limit() {
        let pool = pool_with(4, WaitPolicy::Yield);
        for limit in [2usize, 3] {
            let live = AtomicUsize::new(0);
            let high_water = AtomicUsize::new(0);
            pool.run(32, limit, &|_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                high_water.fetch_max(now, Ordering::SeqCst);
                std::thread::yield_now();
                live.fetch_sub(1, Ordering::SeqCst);
            });
            assert!(
                high_water.load(Ordering::SeqCst) <= limit,
                "observed more than {limit} concurrent participants"
            );
        }
    }

    #[test]
    fn for_each_chunk_hands_out_disjoint_slices() {
        let pool = pool_with(3, WaitPolicy::Spin);
        let mut items: Vec<usize> = vec![0; 103];
        pool.for_each_chunk(&mut items, 10, 4, &|chunk, slice| {
            assert!(slice.len() <= 10);
            for (i, slot) in slice.iter_mut().enumerate() {
                *slot = chunk * 10 + i;
            }
        });
        let expected: Vec<usize> = (0..103).collect();
        assert_eq!(items, expected, "every element written by its own chunk");
    }

    #[test]
    fn chunk_panics_propagate_with_their_payload_and_the_pool_survives() {
        let pool = pool_with(2, WaitPolicy::Yield);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, 3, &|c| {
                if c == 5 {
                    panic!("chunk payload");
                }
            });
        }));
        let payload = caught.expect_err("the chunk panic must propagate to the caller");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("chunk payload")
        );

        // The pool must remain usable after a panicked dispatch.
        let hits = AtomicUsize::new(0);
        pool.run(16, 3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn execute_with_runs_the_caller_concurrently_with_the_chunks() {
        let pool = pool_with(2, WaitPolicy::Yield);
        let (tx, rx) = sync_channel::<usize>(4);
        let total: usize = pool.execute_with(
            10,
            2,
            &|chunk| {
                tx.send(chunk).expect("reducer alive");
            },
            || rx.iter().take(10).sum(),
        );
        assert_eq!(total, (0..10).sum::<usize>());
    }

    #[test]
    fn execute_with_prioritises_the_chunk_panic_over_the_callers() {
        let pool = pool_with(2, WaitPolicy::Yield);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.execute_with(
                4,
                2,
                &|c| {
                    if c == 1 {
                        panic!("worker root cause");
                    }
                },
                || panic!("caller panic"),
            )
        }));
        let payload = caught.expect_err("some panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("worker root cause"),
            "the chunk panic is the root cause and must win"
        );
    }

    #[test]
    fn pool_reuse_is_leak_free_across_many_short_dispatches() {
        for policy in WaitPolicy::ALL {
            let pool = pool_with(3, policy);
            let workers = pool.workers();
            let registry_size = pool.registry().len();
            assert_eq!(registry_size, workers);
            let hits = AtomicUsize::new(0);
            let rounds = 300u64;
            for _ in 0..rounds {
                pool.run(6, 4, &|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            assert_eq!(hits.load(Ordering::Relaxed) as u64, rounds * 6);
            assert_eq!(
                pool.registry().len(),
                registry_size,
                "registry must stay stable: no thread respawns or leaks ({policy:?})"
            );
            assert_eq!(pool.dispatches(), rounds);
        }
    }

    #[test]
    fn pool_workers_expose_a_stable_lane_index_and_callers_do_not() {
        use std::collections::BTreeSet;
        let pool = pool_with(3, WaitPolicy::Yield);
        assert_eq!(
            super::current_worker_index(),
            None,
            "the calling thread is not a pool lane"
        );
        let seen = Mutex::new(BTreeSet::new());
        pool.run(64, 4, &|_| {
            // The caller participates in `run` too, reporting `None`; every
            // pool worker reports its spawn index.
            if let Some(lane) = super::current_worker_index() {
                seen.lock().expect("lane set poisoned").insert(lane);
            }
            std::thread::yield_now();
        });
        let seen = seen.into_inner().expect("lane set poisoned");
        assert!(
            seen.iter().all(|&lane| lane < pool.workers()),
            "lane indices must stay within the spawned worker range"
        );
    }

    #[test]
    fn registry_reports_pinning_outcomes() {
        let pool = WorkerPool::new(&RuntimeConfig {
            workers: 2,
            pin_cores: true,
            ..RuntimeConfig::default()
        });
        let entries = pool.registry().entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].index, 0);
        assert_eq!(entries[1].index, 1);
        // Whether the pin took is host-dependent (cgroup cpusets can veto
        // it); the contract is that the outcome is recorded consistently.
        assert_eq!(
            pool.registry().pinned_count(),
            entries.iter().filter(|e| e.pinned_core.is_some()).count()
        );
    }

    #[test]
    fn nested_dispatch_is_rejected() {
        let pool = pool_with(2, WaitPolicy::Yield);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.execute_with(2, 1, &|_| {}, || {
                // Dispatching from the caller lane while a job is active
                // must trip the guard rather than corrupt the claim word.
                pool.run(4, 2, &|_| {});
            })
        }));
        assert!(caught.is_err(), "concurrent dispatch must panic");
        // Guard must be cleared so the pool stays usable.
        let hits = AtomicUsize::new(0);
        pool.run(4, 2, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
