//! Memory-locality layer for large-`n` simulation: bandwidth-minimising
//! player relabelling plus byte-profile (SoA) coloured sweeps.
//!
//! At `n = 10⁶`–`10⁷` players the coloured engine is memory-bound, not
//! compute-bound: each revision streams the player's neighbour row and
//! gathers the neighbours' current strategies, so the working set per
//! revision is governed by *where* the neighbours live. This module
//! attacks that on three fronts:
//!
//! 1. **Relabelling** ([`LocalityLayout`]): players are renamed along a
//!    reverse Cuthill–McKee ordering of the interaction graph
//!    ([`logit_graphs::rcm_ordering`]), shrinking the graph bandwidth so a
//!    revision's gathers land within a few cache lines of the player's own
//!    strategy slot instead of anywhere in an `O(n)` array.
//! 2. **Byte profiles**: strategies are stored one byte per player
//!    (games with at most 256 strategies — every concrete large-`n` game
//!    here is binary), so the whole strategy vector of a `10⁶`-player game
//!    is 1 MB and sits in L2 during a sweep.
//! 3. **Cache-blocked sweeps**: the pooled class sweep hands out chunks
//!    capped at [`crate::runtime::RuntimeConfig`]`::block_players`, keeping
//!    each worker's write stream and gather window L2-resident.
//!
//! The layer is a *pure view*: draws stay keyed by the **original** player
//! ids (the layout carries `labels[new] = old` into the engine), colour
//! classes are transported verbatim through the permutation, and the
//! utility kernels are bitwise-stable under both the byte representation
//! and the relabelling — so trajectories mapped back through the inverse
//! permutation are bit-identical to the unrelabelled engine's. The
//! relabelled-bit-identity proptest harness pins this across all update
//! rules, topologies, worker counts and block sizes.

use crate::dynamics::{sample_index_from_uniform, DynamicsEngine, Scratch};
use crate::parallel::{coloring_for_graph, player_tick_uniform, STAGE_BUFFERS};
use crate::rules::UpdateRule;
use crate::runtime::{RuntimeConfig, WorkerPool};
use logit_games::{interaction_graph, LocalGame};
use logit_graphs::{bandwidth_of_ordering, rcm_ordering, Coloring, Graph, VertexOrdering};

/// How many players ahead of the revision the byte sweeps issue
/// [`LocalGame::prefetch_frozen_bytes`]. A colour-class sweep strides the
/// CSR target array by `num_classes` rows, which defeats the hardware
/// stride prefetcher once the array spills L2; eight players of lookahead
/// (a few hundred bytes of rows in flight) is enough to hide an L3 hit at
/// the per-update cost of the cheapest rule while staying far inside the
/// line-fill-buffer budget. Purely a hint: draws and utilities are
/// untouched, so bit-identity is unaffected.
const PREFETCH_AHEAD: usize = 8;

/// A bandwidth-minimising relabelling of a game's players, with everything
/// the engine needs to run on the relabelled instance and map results back.
///
/// Built once per (graph, colouring) pair; the ordering is reverse
/// Cuthill–McKee, the colouring is the original one transported through the
/// permutation (colour *values* are preserved, so the class-of-tick cycle —
/// and therefore the revision schedule — replays tick-for-tick).
#[derive(Clone, Debug)]
pub struct LocalityLayout {
    /// new position `k` holds original player `ordering.vertex_at(k)`.
    ordering: VertexOrdering,
    /// `labels[new] = old`: the original id of the player at each new
    /// position, in the `u32` width the engine's draw key-path consumes.
    labels: Vec<u32>,
    /// The original colouring transported through the permutation.
    coloring: Coloring,
    /// Graph bandwidth under the identity (original) labelling.
    bandwidth_before: usize,
    /// Graph bandwidth under the RCM labelling.
    bandwidth_after: usize,
}

impl LocalityLayout {
    /// Computes the RCM layout of `graph` and transports `coloring` through
    /// it. `coloring` must be a colouring of `graph` (same vertex count).
    ///
    /// # Panics
    /// Panics when the colouring covers a different vertex count, or when
    /// the graph has more than `u32::MAX` vertices (the label array and the
    /// CSR adjacency share that width).
    pub fn from_graph(graph: &Graph, coloring: &Coloring) -> Self {
        let n = graph.num_vertices();
        assert_eq!(
            coloring.num_vertices(),
            n,
            "colouring covers a different vertex count"
        );
        assert!(n <= u32::MAX as usize, "player ids must fit in u32");
        let identity = VertexOrdering::identity(n);
        let bandwidth_before = bandwidth_of_ordering(graph, &identity);
        let ordering = rcm_ordering(graph);
        let bandwidth_after = bandwidth_of_ordering(graph, &ordering);
        let labels = ordering.as_slice().iter().map(|&v| v as u32).collect();
        let coloring = coloring.relabelled(&ordering);
        LocalityLayout {
            ordering,
            labels,
            coloring,
            bandwidth_before,
            bandwidth_after,
        }
    }

    /// The layout of a game's interaction graph under the default colouring
    /// choice ([`coloring_for_graph`]). Returns the layout together with
    /// the graph it was computed from, so callers can build the relabelled
    /// game without bridging the interaction graph a second time.
    pub fn for_game<G: LocalGame>(game: &G) -> (Self, Graph) {
        let graph = interaction_graph(game);
        let coloring = coloring_for_graph(&graph);
        (Self::from_graph(&graph, &coloring), graph)
    }

    /// The RCM ordering: new position `k` holds original player
    /// `ordering.vertex_at(k)`.
    pub fn ordering(&self) -> &VertexOrdering {
        &self.ordering
    }

    /// `labels[new] = old` as `u32`s — the draw-key table the byte engine
    /// paths consume so relabelled players keep their original RNG streams.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The original colouring transported through the permutation.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// Graph bandwidth under the original labelling.
    pub fn bandwidth_before(&self) -> usize {
        self.bandwidth_before
    }

    /// Graph bandwidth under the RCM labelling.
    pub fn bandwidth_after(&self) -> usize {
        self.bandwidth_after
    }

    /// `graph` with its vertices renamed along the layout's ordering — the
    /// graph to build the relabelled game from.
    pub fn relabel_graph(&self, graph: &Graph) -> Graph {
        graph.relabelled(&self.ordering)
    }

    /// Packs an original-label `usize` profile into a relabelled byte
    /// profile: `out[k] = original[ordering.vertex_at(k)]`.
    ///
    /// # Panics
    /// Panics when a strategy does not fit in a byte or the lengths differ.
    pub fn pack_profile(&self, original: &[usize], out: &mut Vec<u8>) {
        assert_eq!(original.len(), self.labels.len(), "profile length mismatch");
        out.clear();
        out.extend(self.labels.iter().map(|&old| {
            let s = original[old as usize];
            assert!(s < 256, "strategy {s} does not fit in a byte");
            s as u8
        }));
    }

    /// Unpacks a relabelled byte profile back into original labels:
    /// `out[labels[k]] = relabelled[k]`.
    ///
    /// # Panics
    /// Panics when the lengths differ.
    pub fn unpack_profile(&self, relabelled: &[u8], out: &mut Vec<usize>) {
        assert_eq!(
            relabelled.len(),
            self.labels.len(),
            "profile length mismatch"
        );
        out.clear();
        out.resize(self.labels.len(), 0);
        for (&old, &s) in self.labels.iter().zip(relabelled.iter()) {
            out[old as usize] = s as usize;
        }
    }
}

impl<G: LocalGame, U: UpdateRule> DynamicsEngine<G, U> {
    /// One coloured tick on a **byte** strategy profile, sequential: the
    /// players of colour class `t mod num_classes` revise in class order,
    /// utilities through [`LocalGame::utilities_for_frozen_bytes`].
    ///
    /// `labels`, when present, maps engine positions to **original** player
    /// ids (`labels[position] = original`): every draw is keyed by the
    /// original id, so an engine running on a relabelled game replays the
    /// unrelabelled trajectory bit-for-bit. Pass `None` when the engine's
    /// own labelling is the original one.
    ///
    /// Returns the number of players that moved.
    ///
    /// # Panics
    /// Panics when the game has more than 256 strategies for some player,
    /// or when the colouring covers a different player count.
    pub fn step_coloured_bytes(
        &self,
        coloring: &Coloring,
        t: u64,
        seed: u64,
        labels: Option<&[u32]>,
        profile: &mut [u8],
        scratch: &mut Scratch,
    ) -> usize {
        let n = self.game().num_players();
        assert!(
            self.game().max_strategies() <= 256,
            "byte profiles require at most 256 strategies per player"
        );
        assert_eq!(
            coloring.num_vertices(),
            n,
            "colouring covers a different player count"
        );
        debug_assert_eq!(profile.len(), n);
        let beta = self.beta();
        let class = coloring.class_of_tick(t);
        let mut moved = 0;
        let (utils, probs) = scratch.rule_buffers();
        let members = coloring.class(class);
        for (i, &player) in members.iter().enumerate() {
            if let Some(&ahead) = members.get(i + PREFETCH_AHEAD) {
                self.game().prefetch_frozen_bytes(ahead);
            }
            let m = self.game().num_strategies(player);
            utils.clear();
            utils.resize(m, 0.0);
            // A colour class is an independent set, so no revising player
            // can observe a same-tick update: reading the live profile here
            // is the same as reading the frozen pre-tick one.
            self.game()
                .utilities_for_frozen_bytes(player, profile, utils);
            self.rule()
                .fill_probs(beta, profile[player] as usize, utils, probs);
            let key = labels.map_or(player, |l| l[player] as usize);
            let strategy =
                sample_index_from_uniform(probs, player_tick_uniform(seed, key, t)) as u8;
            if profile[player] != strategy {
                moved += 1;
            }
            profile[player] = strategy;
        }
        moved
    }
}

impl<G: LocalGame + Sync, U: UpdateRule> DynamicsEngine<G, U> {
    /// One coloured tick on a byte profile through the persistent
    /// [`WorkerPool`]: the byte counterpart of
    /// [`Self::step_coloured_pooled`], with the same narrow-class inline
    /// fallback, the same cache-blocked chunking
    /// ([`RuntimeConfig::sweep_chunk`]) and the same draw keys — so it is
    /// bit-identical to [`Self::step_coloured_bytes`] from the same
    /// `(seed, t, labels)` regardless of worker count or block size.
    ///
    /// Returns the number of players that moved.
    ///
    /// # Panics
    /// Panics when the game has more than 256 strategies for some player,
    /// or when the colouring covers a different player count.
    #[allow(clippy::too_many_arguments)]
    pub fn step_coloured_pooled_bytes(
        &self,
        coloring: &Coloring,
        t: u64,
        seed: u64,
        labels: Option<&[u32]>,
        profile: &mut [u8],
        scratch: &mut Scratch,
        pool: &WorkerPool,
        config: &RuntimeConfig,
    ) -> usize {
        let n = self.game().num_players();
        assert!(
            self.game().max_strategies() <= 256,
            "byte profiles require at most 256 strategies per player"
        );
        assert_eq!(
            coloring.num_vertices(),
            n,
            "colouring covers a different player count"
        );
        debug_assert_eq!(profile.len(), n);
        let players = coloring.class(coloring.class_of_tick(t));
        let workers = config.class_workers(players.len()).min(pool.workers() + 1);
        if workers <= 1 {
            return self.step_coloured_bytes(coloring, t, seed, labels, profile, scratch);
        }

        let mut staged = std::mem::take(&mut scratch.staged_bytes);
        staged.clear();
        staged.resize(players.len(), 0);
        let chunk = config.sweep_chunk(players.len(), workers);
        let frozen: &[u8] = profile;
        pool.for_each_chunk(&mut staged, chunk, workers, &|index, out| {
            let start = index * chunk;
            let player_chunk = &players[start..start + out.len()];
            STAGE_BUFFERS.with(|buffers| {
                let (utils, probs) = &mut *buffers.borrow_mut();
                self.stage_class_bytes_with(
                    player_chunk,
                    t,
                    seed,
                    labels,
                    frozen,
                    out,
                    utils,
                    probs,
                );
            });
        });

        let mut moved = 0;
        for (&player, &strategy) in players.iter().zip(staged.iter()) {
            if profile[player] != strategy {
                moved += 1;
            }
            profile[player] = strategy;
        }
        scratch.staged_bytes = staged;
        moved
    }

    /// Samples the new strategies of `players` against the frozen byte
    /// `profile` into `staged` — the per-worker kernel of
    /// [`Self::step_coloured_pooled_bytes`]. Draw keys come from `labels`
    /// when present (original player ids), else the positions themselves.
    #[allow(clippy::too_many_arguments)]
    fn stage_class_bytes_with(
        &self,
        players: &[usize],
        t: u64,
        seed: u64,
        labels: Option<&[u32]>,
        profile: &[u8],
        staged: &mut [u8],
        utils: &mut Vec<f64>,
        probs: &mut Vec<f64>,
    ) {
        let beta = self.beta();
        for (i, (&player, slot)) in players.iter().zip(staged.iter_mut()).enumerate() {
            if let Some(&ahead) = players.get(i + PREFETCH_AHEAD) {
                self.game().prefetch_frozen_bytes(ahead);
            }
            let m = self.game().num_strategies(player);
            utils.clear();
            utils.resize(m, 0.0);
            self.game()
                .utilities_for_frozen_bytes(player, profile, utils);
            self.rule()
                .fill_probs(beta, profile[player] as usize, utils, probs);
            let key = labels.map_or(player, |l| l[player] as usize);
            *slot = sample_index_from_uniform(probs, player_tick_uniform(seed, key, t)) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LogitDynamics;
    use crate::rules::{MetropolisLogit, NoisyBestResponse};
    use logit_games::{CoordinationGame, GraphicalCoordinationGame, IsingGame};
    use logit_graphs::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shuffled_circulant(n: usize, k: usize, seed: u64) -> Graph {
        let g = GraphBuilder::circulant(n, k);
        let mut rng = StdRng::seed_from_u64(seed);
        let shuffle = VertexOrdering::random(n, &mut rng);
        g.relabelled(&shuffle)
    }

    #[test]
    fn layout_shrinks_the_bandwidth_of_a_shuffled_circulant() {
        let g = shuffled_circulant(64, 2, 7);
        let coloring = coloring_for_graph(&g);
        let layout = LocalityLayout::from_graph(&g, &coloring);
        assert!(layout.bandwidth_before() > 5, "shuffle left it narrow");
        assert!(
            layout.bandwidth_after() <= 2 * 2 + 1,
            "RCM should recover a near-banded layout, got {}",
            layout.bandwidth_after()
        );
        assert!(layout.bandwidth_after() <= layout.bandwidth_before());
    }

    #[test]
    fn pack_then_unpack_round_trips_a_profile() {
        let g = shuffled_circulant(40, 2, 11);
        let coloring = coloring_for_graph(&g);
        let layout = LocalityLayout::from_graph(&g, &coloring);
        let original: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let mut packed = Vec::new();
        layout.pack_profile(&original, &mut packed);
        let mut back = Vec::new();
        layout.unpack_profile(&packed, &mut back);
        assert_eq!(back, original);
        // And the packed view really is a permutation of the original.
        for k in 0..40 {
            assert_eq!(packed[k] as usize, original[layout.labels()[k] as usize]);
        }
    }

    #[test]
    fn relabelled_byte_sweep_replays_the_unrelabelled_trajectory() {
        // The core bit-identity claim, exercised on both count-kernel games:
        // the relabelled byte engine (draws keyed by original ids via the
        // label table) must reproduce the unrelabelled usize engine's
        // trajectory exactly after unpacking.
        let n = 48;
        let graph = shuffled_circulant(n, 2, 3);
        let coloring = coloring_for_graph(&graph);
        let layout = LocalityLayout::from_graph(&graph, &coloring);
        let seed = 0xA11CE;
        let beta = 1.25;

        let base = CoordinationGame::from_deltas(2.0, 1.0);
        let coord = GraphicalCoordinationGame::new(graph.clone(), base);
        let relabelled_coord = GraphicalCoordinationGame::new(layout.relabel_graph(&graph), base);
        let ising = IsingGame::new(graph.clone(), 0.75, 0.2);
        let relabelled_ising = IsingGame::new(layout.relabel_graph(&graph), 0.75, 0.2);

        let start: Vec<usize> = (0..n).map(|i| (i / 3) % 2).collect();
        let ticks = 3 * coloring.num_classes() as u64 + 2;

        check_replay(
            LogitDynamics::new(coord, beta),
            LogitDynamics::new(relabelled_coord, beta),
            &coloring,
            &layout,
            &start,
            seed,
            ticks,
        );
        check_replay(
            DynamicsEngine::with_rule(ising, MetropolisLogit, beta),
            DynamicsEngine::with_rule(relabelled_ising, MetropolisLogit, beta),
            &coloring,
            &layout,
            &start,
            seed ^ 0x5EED,
            ticks,
        );
    }

    fn check_replay<G: LocalGame, U: UpdateRule>(
        reference: DynamicsEngine<G, U>,
        relabelled: DynamicsEngine<G, U>,
        coloring: &Coloring,
        layout: &LocalityLayout,
        start: &[usize],
        seed: u64,
        ticks: u64,
    ) {
        let mut ref_profile = start.to_vec();
        let mut ref_scratch = Scratch::for_game(reference.game());
        let mut bytes = Vec::new();
        layout.pack_profile(start, &mut bytes);
        let mut byte_scratch = Scratch::for_game(relabelled.game());
        let mut unpacked = Vec::new();
        for t in 0..ticks {
            let moved_ref =
                reference.step_coloured(coloring, t, seed, &mut ref_profile, &mut ref_scratch);
            let moved_bytes = relabelled.step_coloured_bytes(
                layout.coloring(),
                t,
                seed,
                Some(layout.labels()),
                &mut bytes,
                &mut byte_scratch,
            );
            assert_eq!(moved_ref, moved_bytes, "moved count diverged at t={t}");
            layout.unpack_profile(&bytes, &mut unpacked);
            assert_eq!(unpacked, ref_profile, "trajectory diverged at t={t}");
        }
    }

    #[test]
    fn pooled_byte_sweep_matches_the_sequential_byte_sweep() {
        let n = 40;
        let graph = shuffled_circulant(n, 2, 9);
        let coloring = coloring_for_graph(&graph);
        let layout = LocalityLayout::from_graph(&graph, &coloring);
        let game = IsingGame::new(layout.relabel_graph(&graph), 0.5, 0.1);
        let engine = DynamicsEngine::with_rule(game, NoisyBestResponse::new(0.15), 2.0);
        let seed = 0xB10C;

        let start: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mut seq = Vec::new();
        layout.pack_profile(&start, &mut seq);
        let mut pooled = seq.clone();
        let mut seq_scratch = Scratch::for_game(engine.game());
        let mut pooled_scratch = Scratch::for_game(engine.game());

        let config = RuntimeConfig {
            workers: 3,
            min_class_size: 1,
            block_players: 4,
            ..RuntimeConfig::default()
        };
        let pool = WorkerPool::new(&config);

        for t in 0..(2 * layout.coloring().num_classes() as u64 + 3) {
            let a = engine.step_coloured_bytes(
                layout.coloring(),
                t,
                seed,
                Some(layout.labels()),
                &mut seq,
                &mut seq_scratch,
            );
            let b = engine.step_coloured_pooled_bytes(
                layout.coloring(),
                t,
                seed,
                Some(layout.labels()),
                &mut pooled,
                &mut pooled_scratch,
                &pool,
                &config,
            );
            assert_eq!(a, b, "moved count diverged at t={t}");
            assert_eq!(seq, pooled, "profiles diverged at t={t}");
        }
    }
}
