//! Gibbs measures of potential games.
//!
//! For a potential game with (cost-convention) potential `Φ` and inverse noise
//! `β`, the stationary distribution of the logit dynamics is
//! `π_β(x) = e^{-βΦ(x)} / Z_β` with partition function `Z_β = Σ_y e^{-βΦ(y)}`
//! (eq. 4 of the paper, with the sign convention fixed as discussed in
//! DESIGN.md). All computations shift by the minimum potential so that large
//! `βΔΦ` values cannot overflow.

use logit_games::PotentialGame;
use logit_linalg::Vector;

/// The Gibbs distribution `π_β` over flat profile indices.
pub fn gibbs_distribution<G: PotentialGame>(game: &G, beta: f64) -> Vector {
    let space = game.profile_space();
    let mut buf = vec![0usize; game.num_players()];
    let potentials: Vec<f64> = space
        .indices()
        .map(|idx| {
            space.write_profile(idx, &mut buf);
            game.potential(&buf)
        })
        .collect();
    gibbs_from_potentials(&potentials, beta)
}

/// Gibbs distribution computed directly from a vector of potential values.
pub fn gibbs_from_potentials(potentials: &[f64], beta: f64) -> Vector {
    assert!(!potentials.is_empty(), "need at least one state");
    assert!(
        beta >= 0.0 && beta.is_finite(),
        "beta must be finite and non-negative"
    );
    let min = potentials.iter().copied().fold(f64::INFINITY, f64::min);
    let mut weights: Vec<f64> = potentials
        .iter()
        .map(|&phi| (-beta * (phi - min)).exp())
        .collect();
    let z: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= z;
    }
    Vector::from_vec(weights)
}

/// Natural logarithm of the partition function `log Z_β = log Σ_x e^{-βΦ(x)}`,
/// computed with the log-sum-exp trick.
pub fn log_partition_function<G: PotentialGame>(game: &G, beta: f64) -> f64 {
    let space = game.profile_space();
    let mut buf = vec![0usize; game.num_players()];
    let potentials: Vec<f64> = space
        .indices()
        .map(|idx| {
            space.write_profile(idx, &mut buf);
            game.potential(&buf)
        })
        .collect();
    let min = potentials.iter().copied().fold(f64::INFINITY, f64::min);
    let sum: f64 = potentials.iter().map(|&p| (-beta * (p - min)).exp()).sum();
    -beta * min + sum.ln()
}

/// The smallest stationary probability `π_min = min_x π_β(x)`, which appears in
/// the Theorem 2.3 upper bound `t_mix ≤ t_rel · log(1/(ε π_min))`.
pub fn min_stationary_probability<G: PotentialGame>(game: &G, beta: f64) -> f64 {
    gibbs_distribution(game, beta).min()
}

/// Expected potential under the Gibbs measure, `E_π[Φ]` — a convenient scalar
/// observable for simulation-vs-theory comparisons.
pub fn expected_potential<G: PotentialGame>(game: &G, beta: f64) -> f64 {
    let space = game.profile_space();
    let mut buf = vec![0usize; game.num_players()];
    let pi = gibbs_distribution(game, beta);
    space
        .indices()
        .map(|idx| {
            space.write_profile(idx, &mut buf);
            pi[idx] * game.potential(&buf)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logit_games::{CoordinationGame, Game, GraphicalCoordinationGame, WellGame};
    use logit_graphs::GraphBuilder;

    #[test]
    fn beta_zero_gives_uniform() {
        let game = WellGame::plateau(4, 3.0);
        let pi = gibbs_distribution(&game, 0.0);
        let n = game.num_profiles();
        for i in 0..n {
            assert!((pi[i] - 1.0 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn gibbs_weights_follow_potential_ordering() {
        let game = CoordinationGame::from_deltas(3.0, 1.0);
        let space = game.profile_space();
        let pi = gibbs_distribution(&game, 1.0);
        let p00 = pi[space.index_of(&[0, 0])];
        let p11 = pi[space.index_of(&[1, 1])];
        let p01 = pi[space.index_of(&[0, 1])];
        // Lower potential (deeper equilibrium) gets more mass.
        assert!(p00 > p11);
        assert!(p11 > p01);
        assert!(pi.is_distribution(1e-12));
    }

    #[test]
    fn explicit_two_state_ratio() {
        // π(x)/π(y) = e^{-β(Φ(x)-Φ(y))}.
        let potentials = [0.0, 2.0];
        let beta = 1.3;
        let pi = gibbs_from_potentials(&potentials, beta);
        let ratio = pi[0] / pi[1];
        assert!((ratio - (beta * 2.0).exp()).abs() / ratio < 1e-12);
    }

    #[test]
    fn large_beta_concentrates_on_minimizers() {
        let game = GraphicalCoordinationGame::new(
            GraphBuilder::ring(4),
            CoordinationGame::from_deltas(2.0, 1.0),
        );
        let space = game.profile_space();
        let pi = gibbs_distribution(&game, 20.0);
        // The risk-dominant consensus (all zeros) has minimal potential.
        assert!(pi[space.index_of(&[0, 0, 0, 0])] > 0.999);
    }

    #[test]
    fn no_overflow_for_extreme_beta_and_potential() {
        let potentials = [0.0, 1000.0, -500.0];
        let pi = gibbs_from_potentials(&potentials, 100.0);
        assert!(pi.is_distribution(1e-12));
        assert!(pi[2] > 0.999999);
    }

    #[test]
    fn log_partition_matches_direct_small_case() {
        let game = CoordinationGame::from_deltas(1.0, 1.0);
        let beta = 0.5;
        let direct: f64 = {
            let space = game.profile_space();
            space
                .indices()
                .map(|i| {
                    (-beta * {
                        let p = space.profile_of(i);
                        logit_games::PotentialGame::potential(&game, &p)
                    })
                    .exp()
                })
                .sum::<f64>()
                .ln()
        };
        assert!((log_partition_function(&game, beta) - direct).abs() < 1e-10);
    }

    #[test]
    fn expected_potential_decreases_with_beta() {
        let game = WellGame::new(6, 4.0, 2.0);
        let e_low = expected_potential(&game, 0.1);
        let e_high = expected_potential(&game, 5.0);
        assert!(
            e_high < e_low,
            "higher rationality should concentrate on lower potential"
        );
    }

    #[test]
    fn min_stationary_probability_bound_from_theorem_3_4_proof() {
        // The proof of Theorem 3.4 uses π(x) >= 1 / (e^{βΔΦ} |S|).
        let game = WellGame::plateau(4, 2.0);
        let beta = 1.2;
        let pmin = min_stationary_probability(&game, beta);
        let bound = 1.0 / ((beta * game.max_global_variation()).exp() * game.num_profiles() as f64);
        assert!(pmin >= bound - 1e-15);
    }
}
